#!/usr/bin/env python
"""Docstring style gate for the engine/serve public API (CI-enforced).

An AST-based, zero-dependency substitute for ``pydocstyle``/``ruff`` D-rules
(the offline toolchain this repo targets has neither). Scoped to the
packages whose docstrings the serving stack's users read:

* ``src/repro/api/``, ``src/repro/engine/``, ``src/repro/serve/`` and
  ``src/repro/cluster/`` (every module), and
* ``src/repro/core/paged_index.py`` (the shared index base).

Rules enforced:

* every module has a docstring (``pydocstyle`` D100/D104);
* every public class, function, method and property has a docstring
  (D101-D103; dunders and ``_private`` names are exempt);
* the summary paragraph starts with an uppercase letter and ends with
  terminal punctuation (D403/D415, relaxed to the paragraph rather than
  the first physical line);
* the batch-API methods named in ``REQUIRED_SECTIONS`` document their
  ``Parameters`` / ``Returns`` sections (numpydoc style).

Run: ``python tools/check_docstyle.py`` — prints one line per violation
and exits non-zero if any exist. Wired into CI next to the test suite.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent

#: Files/directories whose public API the gate covers.
TARGETS = (
    "src/repro/api",
    "src/repro/cluster",
    "src/repro/engine",
    "src/repro/net",
    "src/repro/obs",
    "src/repro/serve",
    "src/repro/wal",
    "src/repro/core/paged_index.py",
)

#: Batch-API entry points that must carry numpydoc sections wherever they
#: are defined in the target files.
REQUIRED_SECTIONS = {
    "get_batch": ("Parameters", "Returns"),
    "get_batch_shard": ("Parameters", "Returns"),
    "range_batch": ("Parameters", "Returns"),
    "insert_batch": ("Parameters",),
    "delete_batch": ("Parameters", "Returns"),
    "open_engine": ("Parameters", "Returns"),
    "open_server": ("Parameters", "Returns"),
    "slice_pages": ("Parameters", "Returns"),
    "residency_report": ("Returns",),
    "to_state": ("Returns",),
    "from_state": ("Parameters", "Returns"),
}

#: Terminal punctuation accepted at the end of a summary paragraph.
_SUMMARY_ENDINGS = (".", ":", "?", "!", "::")


def iter_target_files() -> Iterator[Path]:
    """Yield every Python file covered by the gate, sorted for stable output."""
    for target in TARGETS:
        path = REPO / target
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _summary_paragraph(doc: str) -> str:
    """The docstring's first paragraph (up to the first blank line)."""
    lines: List[str] = []
    for line in doc.strip().splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def _check_docstring(
    path: Path, name: str, node: ast.AST, doc: str | None
) -> Iterator[Tuple[Path, int, str]]:
    lineno = getattr(node, "lineno", 1)
    if not doc or not doc.strip():
        yield path, lineno, f"{name}: missing docstring"
        return
    summary = _summary_paragraph(doc)
    # Only letters can violate the capitalization rule — a summary may
    # legitimately open with ``code``, a digit, or punctuation (matching
    # pydocstyle D403's capitalizable-word scope).
    if summary[0].isalpha() and not summary[0].isupper():
        yield path, lineno, (
            f"{name}: summary should start with an uppercase letter "
            f"({summary[:40]!r}...)"
        )
    if not summary.endswith(_SUMMARY_ENDINGS):
        yield path, lineno, (
            f"{name}: summary paragraph should end with terminal "
            f"punctuation (got ...{summary[-30:]!r})"
        )
    base = name.rsplit(".", 1)[-1]
    for section in REQUIRED_SECTIONS.get(base, ()):
        if section not in doc:
            yield path, lineno, (
                f"{name}: batch-API docstring must document a "
                f"'{section}' section"
            )


def check_file(path: Path) -> List[Tuple[Path, int, str]]:
    """All violations in one file as ``(path, line, message)`` tuples."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = list(_check_docstring(path, "module", tree, ast.get_docstring(tree)))

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    violations.extend(
                        _check_docstring(
                            path,
                            f"{prefix}{child.name}",
                            child,
                            ast.get_docstring(child),
                        )
                    )
                walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                dunder = child.name.startswith("__") and child.name.endswith("__")
                if _is_public(child.name) and not dunder:
                    # Property setters document themselves on the getter.
                    is_setter = any(
                        isinstance(d, ast.Attribute) and d.attr == "setter"
                        for d in child.decorator_list
                    )
                    doc = ast.get_docstring(child)
                    if not (is_setter and not doc):
                        violations.extend(
                            _check_docstring(
                                path, f"{prefix}{child.name}", child, doc
                            )
                        )

    walk(tree, "")
    return violations


def main() -> int:
    """Check every target file; print violations; return an exit code."""
    all_violations: List[Tuple[Path, int, str]] = []
    n_files = 0
    for path in iter_target_files():
        n_files += 1
        all_violations.extend(check_file(path))
    if all_violations:
        for path, lineno, message in all_violations:
            print(f"{path.relative_to(REPO)}:{lineno}: {message}")
        print(f"docstyle: {len(all_violations)} violation(s) in {n_files} files")
        return 1
    print(f"docstyle: OK ({n_files} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
