#!/usr/bin/env python3
"""Aggregate committed ``BENCH_*.json`` artifacts into one trajectory table.

Each engine-track benchmark (``python -m repro.bench engine|serve|
cluster|obs|wal``) commits a JSON artifact at the repo root so the perf
trajectory accumulates across PRs. This tool folds all of them into one
markdown table — experiment, last-commit date (from git), and a headline
number with context — and splices it into ``docs/BENCHMARKS.md`` between
the ``<!-- bench-report:start -->`` / ``<!-- bench-report:end -->``
markers (appending the block on first run).

Usage::

    python tools/bench_report.py            # rewrite docs/BENCHMARKS.md
    python tools/bench_report.py --check    # exit 1 if the doc is stale

CI runs ``--check`` so a PR that moves a committed number without
regenerating the table fails fast.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parents[1]
DOC = REPO / "docs" / "BENCHMARKS.md"
START = "<!-- bench-report:start -->"
END = "<!-- bench-report:end -->"


def _git_date(path: Path) -> str:
    """The artifact's last commit date (YYYY-MM-DD), or ``uncommitted``."""
    try:
        out = subprocess.run(
            ["git", "log", "-1", "--format=%cs", "--", str(path)],
            cwd=REPO, capture_output=True, text=True, timeout=30,
        ).stdout.strip()
    except OSError:
        return "unknown"
    return out or "uncommitted"


def _fmt_ops(ops: float) -> str:
    if ops >= 1e6:
        return f"{ops / 1e6:.2f}M ops/s"
    return f"{ops / 1e3:.0f}k ops/s"


def _headline_engine(doc: Dict[str, Any]) -> Tuple[str, str]:
    best = max(doc["rows"], key=lambda r: r.get("speedup_vs_baseline") or 0.0)
    return (
        f"{best['speedup_vs_baseline']:.1f}x vs {best['baseline']}",
        f"{best['dataset']}/{best['mode']}, {_fmt_ops(best['ops_per_second'])}",
    )


def _headline_serve(doc: Dict[str, Any]) -> Tuple[str, str]:
    best = max(doc["rows"], key=lambda r: r.get("speedup_vs_naive") or 0.0)
    return (
        f"{best['speedup_vs_naive']:.1f}x vs naive",
        f"{best['mode']} @ c={best['concurrency']}, "
        f"p99 {best['p99_us']:.0f}us",
    )


def _headline_cluster(doc: Dict[str, Any]) -> Tuple[str, str]:
    best = max(doc["rows"], key=lambda r: r.get("speedup_vs_inproc") or 0.0)
    return (
        f"{best['speedup_vs_inproc']:.2f}x vs in-proc",
        f"{best['workload']} @ {best['workers']} workers, "
        f"{_fmt_ops(best['ops_per_second'])}",
    )


def _headline_obs(doc: Dict[str, Any]) -> Tuple[str, str]:
    rows = {r["mode"]: r for r in doc["rows"]}
    off = rows["off"]["overhead_pct"]
    limit = doc["params"].get("off_overhead_limit_pct")
    detail = ", ".join(
        f"{mode} {rows[mode]['overhead_pct']:+.1f}%"
        for mode in ("metrics", "workload", "full", "full+workload")
        if mode in rows
    )
    return f"off {off:+.1f}% (guard <= {limit:.0f}%)", detail


def _headline_wal(doc: Dict[str, Any]) -> Tuple[str, str]:
    thr = {
        r["mode"]: r for r in doc["rows"]
        if r.get("kind") == "insert_throughput"
    }
    rec = [r for r in doc["rows"] if r.get("kind") == "recovery"]
    head = "n/a"
    if "off" in thr:
        head = f"off {thr['off']['overhead_pct']:+.1f}%"
    if "wal" in thr:
        head += f", wal {thr['wal']['overhead_pct']:+.1f}%"
    detail = ""
    if rec:
        big = max(rec, key=lambda r: r["n"])
        detail = (
            f"recovery {big['keys_per_second'] / 1e6:.1f}M keys/s "
            f"@ n={big['n']}"
        )
    return head, detail


def _headline_net(doc: Dict[str, Any]) -> Tuple[str, str]:
    rows = doc["rows"]
    scalar = [
        r for r in rows
        if r["path"] == "tcp" and r["load"] == "closed-loop"
    ]
    best = max(scalar, key=lambda r: r["ops_per_second"])
    batch = next(
        (r for r in rows
         if r["path"] == "tcp" and str(r["load"]).startswith("get_batch")),
        None,
    )
    head = f"{best['vs_inproc']:.0%} of in-proc (scalar TCP)"
    detail = (
        f"{_fmt_ops(best['ops_per_second'])} @ c={best['clients']}, "
        f"p99 {best['p99_us']:.0f}us"
    )
    if batch is not None:
        detail += f"; {batch['load']} {batch['vs_inproc']:.0%} of in-proc"
    return head, detail


_HEADLINES = {
    "engine": _headline_engine,
    "serve": _headline_serve,
    "cluster": _headline_cluster,
    "obs": _headline_obs,
    "wal": _headline_wal,
    "net": _headline_net,
}


def _headline(name: str, doc: Dict[str, Any]) -> Tuple[str, str]:
    fn = _HEADLINES.get(name)
    if fn is not None:
        try:
            return fn(doc)
        except (KeyError, ValueError, TypeError):
            pass  # schema drifted: fall through to the generic row
    rows = doc.get("rows") or [{}]
    ops = rows[0].get("ops_per_second")
    return ("" if ops is None else _fmt_ops(ops)), f"{len(rows)} rows"


def build_table() -> str:
    """The markdown trajectory table over every committed artifact."""
    lines = [
        "| Experiment | Updated | Headline | Detail |",
        "| ---------- | ------- | -------- | ------ |",
    ]
    artifacts = sorted(REPO.glob("BENCH_*.json"))
    if not artifacts:
        return "_No committed `BENCH_*.json` artifacts found._"
    for path in artifacts:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            lines.append(f"| `{path.name}` | — | unreadable: {exc} | |")
            continue
        name = doc.get("experiment", path.stem.replace("BENCH_", ""))
        head, detail = _headline(name, doc)
        lines.append(
            f"| `{name}` | {_git_date(path)} | {head} | {detail} |"
        )
    return "\n".join(lines)


def render_block() -> str:
    """The full marker-delimited block to splice into the doc."""
    return (
        f"{START}\n"
        "## Benchmark trajectory (generated)\n\n"
        "One headline row per committed artifact — regenerate with\n"
        "`python tools/bench_report.py` after updating any "
        "`BENCH_*.json`.\n\n"
        f"{build_table()}\n"
        f"{END}"
    )


def spliced(text: str) -> str:
    """``text`` with the generated block replaced (or appended)."""
    block = render_block()
    if START in text and END in text:
        head, _, rest = text.partition(START)
        _, _, tail = rest.partition(END)
        return head + block + tail
    return text.rstrip("\n") + "\n\n" + block + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify the doc is current instead of rewriting it",
    )
    args = parser.parse_args(argv)
    current = DOC.read_text()
    updated = spliced(current)
    if args.check:
        if updated != current:
            print(
                "docs/BENCHMARKS.md trajectory table is stale; run "
                "`python tools/bench_report.py`", file=sys.stderr,
            )
            return 1
        print("bench report: docs/BENCHMARKS.md is current")
        return 0
    if updated != current:
        DOC.write_text(updated)
        print(f"bench report: rewrote {DOC.relative_to(REPO)}")
    else:
        print("bench report: no changes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
