#!/usr/bin/env python3
"""CI smoke for the live admin endpoint: start, probe, verify, exit.

Boots a real ``Server`` (sharded engine, ``telemetry="full"``) with an
auto-assigned admin port, drives a short skewed workload through it,
then probes every admin route over a raw TCP connection and asserts:

* ``/metrics`` answers 200 with Prometheus text naming at least one
  metric family;
* ``/workload`` answers 200 with JSON whose heatmap/skew blocks are
  populated (the workload profiler saw the traffic);
* ``/stats`` and ``/slow`` answer 200 with parseable JSON;
* an unknown path answers 404.

Exit code 0 on success, 1 with a diagnostic on any failure — no pytest
dependency, so CI can run it as a bare step with a hard timeout.
"""

from __future__ import annotations

import asyncio
import json
import sys

import numpy as np

from repro import open_server

N = 4_096
N_QUERIES = 4_096


async def _fetch(port: int, path: str):
    """One raw HTTP GET against the admin port: (status, body bytes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ")[1]), body


async def _run() -> int:
    rng = np.random.default_rng(5)
    keys = np.sort(rng.uniform(0.0, 1e6, N))
    hot = keys[:: N // 8]  # a few hot keys to give /workload a skew
    server = open_server(
        keys,
        executor="sharded",
        n_shards=2,
        telemetry="full",
        admin_port=0,
        max_batch=256,
    )
    async with server:
        port = server.admin.port
        stream = np.concatenate(
            [rng.choice(hot, N_QUERIES // 2), rng.choice(keys, N_QUERIES // 2)]
        )
        rng.shuffle(stream)
        for start in range(0, stream.size, 512):
            chunk = stream[start:start + 512]
            await asyncio.gather(*(server.get(float(k)) for k in chunk))

        status, body = await _fetch(port, "/metrics")
        assert status == 200, f"/metrics -> {status}"
        assert b"# TYPE" in body, "/metrics: no metric families"

        status, body = await _fetch(port, "/workload")
        assert status == 200, f"/workload -> {status}"
        workload = json.loads(body)
        snap = workload["workload"]
        assert snap is not None, "/workload: profiler missing"
        assert snap["total_keys"] > 0, "/workload: saw no traffic"
        assert len(snap["heatmap"]) == snap["n_shards"]
        assert workload["skew"]["hottest_shard"] is not None

        for path in ("/stats", "/slow"):
            status, body = await _fetch(port, path)
            assert status == 200, f"{path} -> {status}"
            json.loads(body)

        status, _ = await _fetch(port, "/nope")
        assert status == 404, f"/nope -> {status}"

    print(
        f"admin smoke OK: port {port}, "
        f"{snap['total_keys']} keys profiled, "
        f"hottest shard {workload['skew']['hottest_shard']}"
    )
    return 0


def main() -> int:
    """CLI entry point; returns a process exit code."""
    try:
        return asyncio.run(_run())
    except AssertionError as exc:
        print(f"admin smoke FAILED: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
