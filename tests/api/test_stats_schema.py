"""Cross-backend ``stats()`` conformance: one schema, five backends.

Every engine the factory can open must answer ``stats()`` with the same
top-level key set, so dashboards and the obs exporters can consume any
backend without per-backend branches. The cluster backend must also agree
*numerically* with its in-process twin on the structural fields, and the
Server nests its engine's stats under one stable key.
"""

import asyncio

import numpy as np
import pytest

from repro import open_engine, open_server

N = 5_000
KEYS = np.sort(np.random.default_rng(11).uniform(0, 1e6, N))

#: The unified engine-stats schema (additive over the pre-PR keys).
ENGINE_KEYS = {
    "backend",
    "n",
    "n_shards",
    "cuts",
    "model_bytes",
    "n_pages",
    "buffered_elements",
    "page_rebuilds",
    "view_hits",
    "view_builds",
    "view_hit_rate",
    "view_patches",
    "view_full_rebuilds",
    "shards",
    "workers",
    "ipc",
    "wal",
    "workload",
    "slow_ops",
}

ENGINE_BACKENDS = {
    "sharded": dict(executor="sharded", n_shards=2),
    "single": dict(executor="single"),
    "fixed-page": dict(executor="sharded", n_shards=2, index="fixed"),
    "cluster": dict(executor="cluster", n_shards=2),
}


@pytest.mark.parametrize("name", sorted(ENGINE_BACKENDS))
def test_engine_stats_schema_is_uniform(name):
    engine = open_engine(KEYS, **ENGINE_BACKENDS[name])
    try:
        stats = engine.stats()
        assert set(stats) == ENGINE_KEYS, (
            f"{name}: {set(stats) ^ ENGINE_KEYS}"
        )
        assert stats["backend"] in ("sharded", "cluster")
        assert stats["n"] == N
        assert isinstance(stats["ipc"], dict)
        assert {"batches", "pickle_fallbacks", "lane_growths"} <= set(
            stats["ipc"]
        )
        assert isinstance(stats["workers"], list)
        # Telemetry off: the observability blocks exist but are None.
        assert stats["workload"] is None
        assert stats["slow_ops"] is None
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def test_cluster_structural_stats_match_in_process_twin():
    twin = open_engine(KEYS, executor="sharded", n_shards=2)
    cluster = open_engine(KEYS, executor="cluster", n_shards=2)
    try:
        # Exercise the write path so page_rebuilds can move on both sides.
        extra = np.random.default_rng(12).uniform(0, 1e6, 2_000)
        twin.insert_batch(extra)
        cluster.insert_batch(extra)
        a, b = twin.stats(), cluster.stats()
        for key in ("n", "n_shards", "cuts", "n_pages",
                    "buffered_elements", "model_bytes", "page_rebuilds"):
            assert a[key] == b[key], (key, a[key], b[key])
        assert len(b["workers"]) == 2
        assert b["ipc"]["batches"] > 0
    finally:
        cluster.close()


#: The ``stats()["workload"]`` block schema (telemetry with profiling on).
WORKLOAD_KEYS = {
    "n_bins",
    "n_shards",
    "sample",
    "batch_sample",
    "total_keys",
    "merged_deltas",
    "read_fraction",
    "verbs",
    "heatmap",
    "hot_keys",
    "skew",
}

#: The ``stats()["slow_ops"]`` block schema (telemetry mode "full").
SLOW_OPS_KEYS = {
    "count",
    "capacity",
    "dropped",
    "observed",
    "threshold_us",
    "p99_estimate_us",
}


@pytest.mark.parametrize("name", sorted(ENGINE_BACKENDS))
def test_workload_stats_schema_is_uniform(name):
    engine = open_engine(KEYS, telemetry="full", **ENGINE_BACKENDS[name])
    try:
        engine.get_batch(KEYS[:256])
        stats = engine.stats()
        assert set(stats) == ENGINE_KEYS
        workload = stats["workload"]
        assert set(workload) == WORKLOAD_KEYS, set(workload) ^ WORKLOAD_KEYS
        assert workload["total_keys"] >= 256
        assert set(workload["verbs"]) == {"get", "range", "insert", "delete"}
        assert len(workload["heatmap"]) == workload["n_shards"]
        assert {"per_shard", "shard_gini", "hottest_shard", "top_bins"} <= set(
            workload["skew"]
        )
        assert set(stats["slow_ops"]) == SLOW_OPS_KEYS
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()


def test_cluster_workload_block_structurally_matches_twin():
    twin = open_engine(KEYS, executor="sharded", n_shards=2,
                       telemetry="full")
    cluster = open_engine(KEYS, executor="cluster", n_shards=2,
                          telemetry="full")
    try:
        # 960 keys: divisible by the profiler's default stride, so the
        # in-process scaled verb counts come out exact and comparable to
        # the cluster side's exact per-delta totals.
        q = KEYS[::5][:960]
        twin.get_batch(q)
        cluster.get_batch(q)
        a = twin.stats()["workload"]
        b = cluster.stats()["workload"]
        assert set(a) == set(b) == WORKLOAD_KEYS
        assert a["n_shards"] == b["n_shards"] == 2
        assert a["n_bins"] == b["n_bins"]
        # Both sides profiled the same batch (counts are sketch
        # estimates, so compare structure and totals, not bins).
        assert b["merged_deltas"] > 0
        assert a["total_keys"] == b["total_keys"]
        assert sum(a["verbs"]["get"]) == sum(b["verbs"]["get"])
        assert [set(row) for row in a["heatmap"]] == [
            set(row) for row in b["heatmap"]
        ]
        assert set(a["skew"]) == set(b["skew"])
    finally:
        cluster.close()


def test_server_stats_nest_engine_schema():
    async def drive():
        server = open_server(KEYS, executor="sharded", n_shards=2,
                             max_batch=64)
        async with server:
            await asyncio.gather(*(server.get(float(k)) for k in KEYS[:50]))
        return server.stats()

    stats = asyncio.run(drive())
    assert set(stats["engine"]) == ENGINE_KEYS
    assert stats["engine"]["backend"] == "sharded"
    assert stats["telemetry"] is None  # off by default
    assert set(stats["batcher"]["flush_reasons"]) == {
        "size", "timer", "idle", "drain",
    }
    assert stats["completed"] == 50
