"""EngineConfig <-> JSON round-trip: every field survives, typos fail loudly."""

import numpy as np
import pytest

from repro import EngineConfig, Telemetry, open_engine
from repro.core.errors import InvalidParameterError


def test_default_config_round_trips():
    cfg = EngineConfig()
    assert EngineConfig.from_json(cfg.to_json()) == cfg


def test_non_default_fields_round_trip():
    cfg = EngineConfig(
        executor="cluster",
        n_shards=3,
        index="fixed",
        page_size=128,
        buffer_capacity=8,
        index_kwargs={"search": "linear"},
        lane_capacity=1 << 20,
        op_timeout=5.0,
        max_batch=64,
        max_delay=0.01,
        eager_flush=False,
        max_pending=100,
        overload="reject",
        shard_concurrency=2,
        latency_window=500,
        telemetry="metrics",
    )
    back = EngineConfig.from_json(cfg.to_json())
    assert back == cfg


def test_telemetry_instance_collapses_to_mode_string():
    cfg = EngineConfig(telemetry=Telemetry(mode="full"))
    data = cfg.to_dict()
    assert data["telemetry"] == "full"
    back = EngineConfig.from_dict(data)
    assert back.telemetry == "full"


def test_unknown_key_rejected():
    with pytest.raises(InvalidParameterError, match="unknown EngineConfig"):
        EngineConfig.from_dict({"n_shards": 2, "shards": 4})


def test_invalid_json_rejected():
    with pytest.raises(InvalidParameterError, match="invalid config JSON"):
        EngineConfig.from_json("{not json")
    with pytest.raises(InvalidParameterError, match="must be a dict"):
        EngineConfig.from_json("[1, 2]")


def test_from_dict_validates_fields():
    with pytest.raises(InvalidParameterError, match="executor"):
        EngineConfig.from_dict({"executor": "gpu"})
    with pytest.raises(InvalidParameterError, match="telemetry"):
        EngineConfig.from_dict({"telemetry": "verbose"})


def test_opaque_runtime_objects_do_not_serialize():
    from concurrent.futures import ThreadPoolExecutor

    pool = ThreadPoolExecutor(max_workers=1)
    try:
        cfg = EngineConfig(serve_executor=pool)
        with pytest.raises(InvalidParameterError, match="serve_executor"):
            cfg.to_json()
    finally:
        pool.shutdown()
    # String settings of the same fields serialize fine.
    cfg = EngineConfig(serve_executor="thread", mp_context="spawn")
    back = EngineConfig.from_json(cfg.to_json())
    assert back.serve_executor == "thread" and back.mp_context == "spawn"


def test_round_tripped_config_opens_an_engine():
    keys = np.sort(np.random.default_rng(3).uniform(0, 1e6, 2_000))
    cfg = EngineConfig.from_json(
        EngineConfig(n_shards=2, telemetry="metrics").to_json()
    )
    engine = open_engine(keys, config=cfg)
    engine.get_batch(keys[:8])
    assert engine.telemetry is not None
    assert engine.telemetry.mode == "metrics"
