"""EngineConfig presets: named starting points that stay plain configs."""

import numpy as np
import pytest

from repro.api import EngineConfig, open_engine
from repro.core.errors import InvalidParameterError


def test_read_optimized_shape():
    c = EngineConfig.preset("read_optimized")
    assert c.error == 32.0
    assert c.buffer_capacity == 16
    assert c.max_batch == 4096
    assert c.eager_flush is True


def test_write_optimized_shape():
    c = EngineConfig.preset("write_optimized")
    assert c.error == 256.0
    assert c.buffer_capacity == 128
    assert c.eager_flush is False
    assert c.max_delay > EngineConfig().max_delay


def test_durable_shape(tmp_path):
    c = EngineConfig.preset("durable", data_dir=str(tmp_path))
    assert c.durability == "wal+snapshot"
    assert c.background_snapshots is True
    assert c.wal_sync is True


def test_durable_requires_data_dir():
    with pytest.raises(InvalidParameterError, match="data_dir"):
        EngineConfig.preset("durable")


def test_unknown_preset_rejected():
    with pytest.raises(InvalidParameterError, match="unknown preset"):
        EngineConfig.preset("turbo")


@pytest.mark.parametrize("name", ["read_optimized", "write_optimized"])
def test_presets_json_roundtrip(name):
    c = EngineConfig.preset(name)
    assert EngineConfig.from_json(c.to_json()) == c


def test_durable_preset_json_roundtrip(tmp_path):
    c = EngineConfig.preset("durable", data_dir=str(tmp_path))
    assert EngineConfig.from_json(c.to_json()) == c


def test_overrides_win_over_preset_fields():
    c = EngineConfig.preset("read_optimized", error=128.0, n_shards=8)
    assert c.error == 128.0
    assert c.n_shards == 8
    assert c.max_batch == 4096  # untouched preset choice survives


def test_preset_opens_a_working_engine():
    keys = np.sort(np.random.default_rng(1).uniform(0, 1e6, 2_000))
    engine = open_engine(keys, config=EngineConfig.preset("read_optimized"))
    assert engine.get(keys[7]) == 7
    engine.insert_batch(np.array([2e6]), np.array([1]))
    assert engine.get(2e6) == 1
