"""The declarative factory: config validation, backend selection, knobs."""

import numpy as np
import pytest

from repro import (
    ClusterEngine,
    EngineConfig,
    EngineProtocol,
    ShardedEngine,
    open_engine,
    open_server,
)
from repro.baselines import FixedPageIndex
from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.serve import Server

KEYS = np.sort(np.random.default_rng(0).uniform(0, 1e5, 2_000))


class TestConfig:
    def test_unknown_executor_rejected(self):
        with pytest.raises(InvalidParameterError):
            open_engine(KEYS, executor="gpu")

    def test_unknown_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            EngineConfig(index="hash").validate()

    def test_overrides_do_not_mutate_base_config(self):
        base = EngineConfig(n_shards=4)
        engine = open_engine(KEYS, config=base, n_shards=2)
        assert engine.n_shards == 2
        assert base.n_shards == 4


class TestOpenEngine:
    def test_sharded_default(self):
        engine = open_engine(KEYS, error=32.0)
        assert isinstance(engine, ShardedEngine)
        assert isinstance(engine, EngineProtocol)
        assert engine.n_shards == 4
        assert isinstance(engine._shards[0], FITingTree)
        assert (engine.get_batch(KEYS[:64]) == np.arange(64)).all()

    def test_single_forces_one_shard(self):
        engine = open_engine(KEYS, executor="single", n_shards=8)
        assert engine.n_shards == 1

    def test_fixed_page_index_kind(self):
        engine = open_engine(KEYS, index="fixed", page_size=64, n_shards=2)
        assert isinstance(engine._shards[0], FixedPageIndex)
        assert engine._shards[0].page_size == 64
        assert (engine.get_batch(KEYS[:64]) == np.arange(64)).all()

    def test_index_kwargs_forwarded(self):
        engine = open_engine(KEYS, index_kwargs={"search": "linear"})
        assert engine._shards[0].search_mode == "linear"

    def test_values_and_empty_build(self):
        values = np.arange(KEYS.size) * 10
        engine = open_engine(KEYS, values, n_shards=2)
        assert engine.get(KEYS[7]) == 70
        empty = open_engine()
        empty.insert_batch([3.0, 1.0])
        assert len(empty) == 2

    def test_cluster_executor_full_crud(self):
        with open_engine(KEYS, executor="cluster", n_shards=2) as engine:
            assert isinstance(engine, ClusterEngine)
            assert isinstance(engine, EngineProtocol)
            assert (engine.get_batch(KEYS[:32]) == np.arange(32)).all()
            assert (engine.delete_batch(KEYS[:8]) == np.arange(8)).all()
            assert len(engine) == KEYS.size - 8


class TestOpenServer:
    def test_server_wraps_configured_engine(self):
        server = open_server(KEYS, n_shards=2, max_batch=128, max_pending=64)
        assert isinstance(server, Server)
        assert isinstance(server.engine, ShardedEngine)
        assert server._batcher.max_batch == 128
        assert server._max_pending == 64

    def test_server_serves(self):
        import asyncio

        async def main():
            server = open_server(KEYS, n_shards=2)
            async with server:
                assert await server.get(KEYS[5]) == 5
                assert await server.delete(KEYS[5]) == 5

        asyncio.run(main())
