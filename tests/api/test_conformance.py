"""Cross-backend conformance: one mixed CRUD scenario, bit-identical results.

Every backend the factory can open — the in-process ShardedEngine (sharded
and single-shard), the multi-process ClusterEngine, the fixed-page
baseline behind the engine API, and the async Server over both engines —
runs the same stateful get/range/insert/delete scenario through one
adapter seam. Each backend's full result trace must equal the reference
backend's exactly: same values, same miss slots, same auto row ids, same
post-delete state. This is the contract `repro.api.protocol.EngineProtocol`
writes down, checked end to end.
"""

import asyncio

import numpy as np
import pytest

from repro import EngineConfig, EngineProtocol, open_engine, open_server
from repro.core.errors import KeyNotFoundError

N = 3_000
RNG = np.random.default_rng(42)
BUILD_KEYS = np.sort(RNG.uniform(0, 1e6, N))
ABSENT = -12345.0
PROBES = np.concatenate([BUILD_KEYS[::20], RNG.uniform(0, 1e6, 40)])
INS_KEYS = RNG.uniform(0, 1e6, 300)
DEL_KEYS = np.concatenate([BUILD_KEYS[5:600:4], INS_KEYS[:40]])
BOUNDS = np.asarray(
    [
        [BUILD_KEYS[10], BUILD_KEYS[120]],
        [0.0, BUILD_KEYS[3]],
        [BUILD_KEYS[-5], 2e6],
        [5e5, 5e5 + 2e4],
    ]
)

BASE = EngineConfig(n_shards=2, error=64.0, buffer_capacity=16, max_batch=256)


def norm(value):
    """Arrays/iterables to plain comparable lists (NaN-free test data)."""
    if isinstance(value, np.ndarray):
        return [None if v is None else v for v in value.tolist()]
    return value


class EngineAdapter:
    """Drive a backend satisfying EngineProtocol directly (sync verbs)."""

    def __init__(self, engine):
        self.engine = engine

    async def get_many(self, keys, default):
        return norm(self.engine.get_batch(keys, default))

    async def insert_many(self, keys):
        self.engine.insert_batch(keys)

    async def delete_many(self, keys):
        return norm(self.engine.delete_batch(keys))

    async def ranges(self, bounds):
        return [
            (norm(k), norm(v)) for k, v in self.engine.range_batch(bounds)
        ]

    async def get(self, key, default=None):
        return self.engine.get(key, default)

    async def insert(self, key):
        self.engine.insert(key)

    async def delete(self, key):
        return self.engine.delete(key)

    async def mixed_rw(self, k_new, k_old):
        """Sequential insert/get/delete/get — the server twin interleaves
        them concurrently under the batcher's write fence."""
        self.engine.insert(k_new)
        seen = self.engine.get(k_new, "MISS")
        deleted = self.engine.delete(k_old)
        gone = self.engine.get(k_old, "MISS")
        return [seen, deleted, gone]

    def length(self):
        return len(self.engine)

    def finish(self):
        self.engine.validate()


class ServerAdapter(EngineAdapter):
    """Drive a Server facade: every batch becomes concurrent awaits."""

    def __init__(self, server):
        super().__init__(server.engine)
        self.server = server

    async def get_many(self, keys, default):
        return list(
            await asyncio.gather(*[self.server.get(k, default) for k in keys])
        )

    async def insert_many(self, keys):
        await asyncio.gather(*[self.server.insert(k) for k in keys])

    async def delete_many(self, keys):
        return list(
            await asyncio.gather(*[self.server.delete(k) for k in keys])
        )

    async def ranges(self, bounds):
        results = await asyncio.gather(
            *[self.server.range(lo, hi) for lo, hi in bounds]
        )
        return [(norm(k), norm(v)) for k, v in results]

    async def get(self, key, default=None):
        return await self.server.get(key, default)

    async def insert(self, key):
        await self.server.insert(key)

    async def delete(self, key):
        return await self.server.delete(key)

    async def mixed_rw(self, k_new, k_old):
        """The concurrent twin: submission order must decide visibility."""
        return list(
            await asyncio.gather(
                self.server.insert(k_new),
                self.server.get(k_new, "MISS"),
                self.server.delete(k_old),
                self.server.get(k_old, "MISS"),
            )
        )[1:]  # drop the insert's None


async def scenario(api) -> list:
    """The shared mixed CRUD scenario; returns the full result trace."""
    trace = []
    trace.append(("initial_probes", await api.get_many(PROBES, -1.0)))
    await api.insert_many(INS_KEYS)
    trace.append(("len_after_insert", api.length()))
    trace.append(("inserted_visible", await api.get_many(INS_KEYS, -1.0)))
    trace.append(("ranges_pre_delete", await api.ranges(BOUNDS)))
    trace.append(("deleted_values", await api.delete_many(DEL_KEYS)))
    trace.append(("len_after_delete", api.length()))
    trace.append(
        (
            "post_delete_probes",
            await api.get_many(np.concatenate([DEL_KEYS, PROBES]), -1.0),
        )
    )
    trace.append(("ranges_post_delete", await api.ranges(BOUNDS)))
    # Scalar verbs + absent-key behavior.
    with pytest.raises(KeyNotFoundError):
        await api.delete(ABSENT)
    await api.insert(777.25)
    trace.append(("scalar_roundtrip", await api.get(777.25, "MISS")))
    trace.append(("scalar_delete", await api.delete(777.25)))
    trace.append(("scalar_gone", await api.get(777.25, "MISS")))
    # Read-your-writes across an interleaved insert/delete window.
    trace.append(("mixed_rw", await api.mixed_rw(888.125, BUILD_KEYS[2])))
    trace.append(("final_len", api.length()))
    api.finish()
    return trace


def run_backend(name: str) -> list:
    """Open one backend through the factory and run the scenario on it."""
    if name == "sharded":
        engine = open_engine(BUILD_KEYS, config=BASE)
    elif name == "single":
        engine = open_engine(BUILD_KEYS, config=BASE, executor="single")
    elif name == "fixed-page":
        engine = open_engine(
            BUILD_KEYS, config=BASE, index="fixed", page_size=128,
            buffer_capacity=16,
        )
    elif name == "cluster":
        engine = open_engine(BUILD_KEYS, config=BASE, executor="cluster")
    elif name in ("server-sharded", "server-cluster"):
        executor = "sharded" if name == "server-sharded" else "cluster"
        server = open_server(BUILD_KEYS, config=BASE, executor=executor)

        async def drive_server():
            async with server:
                return await scenario(ServerAdapter(server))

        try:
            return asyncio.run(drive_server())
        finally:
            if executor == "cluster":
                server.engine.close()
    else:  # pragma: no cover - test wiring error
        raise AssertionError(name)
    try:
        assert isinstance(engine, EngineProtocol)
        return asyncio.run(scenario(EngineAdapter(engine)))
    finally:
        if hasattr(engine, "close"):
            engine.close()


@pytest.fixture(scope="module")
def reference_trace():
    return run_backend("sharded")


@pytest.mark.parametrize(
    "backend",
    ["single", "fixed-page", "cluster", "server-sharded", "server-cluster"],
)
def test_backend_matches_reference(backend, reference_trace):
    trace = run_backend(backend)
    assert len(trace) == len(reference_trace)
    for (label, got), (ref_label, want) in zip(trace, reference_trace):
        assert label == ref_label
        assert got == want, f"{backend}: {label} diverged"


def test_reference_trace_sane(reference_trace):
    """The reference itself exercises hits, misses, and real deletions."""
    trace = dict(reference_trace)
    assert trace["len_after_insert"] == N + len(INS_KEYS)
    assert trace["len_after_delete"] == N + len(INS_KEYS) - len(DEL_KEYS)
    assert -1.0 in trace["initial_probes"]  # absent probes really miss
    assert all(v != -1.0 for v in trace["inserted_visible"])
    deleted = trace["deleted_values"]
    assert len(deleted) == len(DEL_KEYS) and all(v is not None for v in deleted)
    # Every deleted occurrence is gone afterwards (delete-then-lookup).
    post = trace["post_delete_probes"][: len(DEL_KEYS)]
    assert all(v == -1.0 for v in post)
    # mixed_rw's insert is the second post-build insert => rowid N+300+1.
    assert trace["mixed_rw"] == [N + len(INS_KEYS) + 1, 2, "MISS"]
