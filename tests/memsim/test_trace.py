"""Address-trace generation and cache replay of B+ tree lookups."""

import numpy as np

from repro.btree import BPlusTree
from repro.memsim import (
    AddressSpace,
    CacheSim,
    array_binary_search_trace,
    lookup_trace,
)


def build_tree(n=2_000, branching=8):
    tree = BPlusTree(branching=branching)
    for i in range(n):
        tree.insert(float(i), i)
    return tree


class TestLookupTrace:
    def test_trace_length_tracks_height(self):
        tree = build_tree()
        space = AddressSpace()
        trace = lookup_trace(tree, 1234.0, space)
        # height-1 inner nodes + >=1 probe in the leaf.
        assert len(trace) >= tree.height

    def test_empty_tree_empty_trace(self):
        assert lookup_trace(BPlusTree(), 1.0, AddressSpace()) == []

    def test_addresses_stable_across_lookups(self):
        tree = build_tree()
        space = AddressSpace()
        t1 = lookup_trace(tree, 500.0, space)
        t2 = lookup_trace(tree, 500.0, space)
        assert t1 == t2

    def test_different_keys_share_root(self):
        tree = build_tree()
        space = AddressSpace()
        t1 = lookup_trace(tree, 10.0, space)
        t2 = lookup_trace(tree, 1990.0, space)
        assert t1[0][0] == t2[0][0]  # same root address
        assert t1[-1][0] != t2[-1][0]  # different leaves

    def test_repeated_lookups_become_cache_hits(self):
        tree = build_tree()
        space = AddressSpace()
        cache = CacheSim(capacity_bytes=1 << 20, line_size=64, ways=8)
        first = cache.replay(lookup_trace(tree, 777.0, space))
        again = cache.replay(lookup_trace(tree, 777.0, space))
        assert first.misses > 0
        assert again.misses == 0

    def test_scattered_lookups_thrash_small_cache(self):
        tree = build_tree(5_000)
        space = AddressSpace()
        cache = CacheSim(capacity_bytes=4 * 1024, line_size=64, ways=4)
        rng = np.random.default_rng(0)
        misses = 0
        for q in rng.uniform(0, 5_000, 200):
            misses += cache.replay(lookup_trace(tree, float(q), space)).misses
        # A 4KB cache cannot hold a 5k-entry tree: most lookups miss.
        assert misses > 200


class TestArrayTrace:
    def test_probe_count_logarithmic(self):
        trace = array_binary_search_trace(0, 1024, target_index=500)
        assert 1 <= len(trace) <= 11

    def test_probes_converge_to_target(self):
        trace = array_binary_search_trace(0, 100, target_index=42,
                                          element_bytes=8)
        assert trace[-1][0] == 42 * 8

    def test_empty_array(self):
        assert array_binary_search_trace(0, 0, 0) == []

    def test_small_window_fits_one_line(self):
        # All probes of a 8-element window land within one cache line.
        trace = array_binary_search_trace(0, 8, target_index=3)
        lines = {addr // 64 for addr, _ in trace}
        assert len(lines) == 1
