"""Latency models: flat, hierarchy, per-level descent, split pricing."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.memsim import (
    AccessCounter,
    CacheLevel,
    LatencyModel,
    XEON_E5_2660_HIERARCHY,
)


class TestFlatModel:
    def test_constant_cost(self):
        model = LatencyModel(c=75.0)
        assert model.access_ns(1) == 75.0
        assert model.access_ns(10**12) == 75.0
        assert model.latency_ns(4, 10**9) == 300.0

    def test_invalid_c(self):
        with pytest.raises(InvalidParameterError):
            LatencyModel(c=0)

    def test_tree_access_is_c(self):
        model = LatencyModel(c=50.0)
        assert model.tree_access_ns(10**9, height=5, branching=16) == 50.0


class TestHierarchyModel:
    def test_level_selection(self):
        model = LatencyModel()
        assert model.access_ns(16 * 1024) == 4.0  # L1
        assert model.access_ns(128 * 1024) == 12.0  # L2
        assert model.access_ns(10 * 1024 * 1024) == 40.0  # L3
        assert model.access_ns(10**9) == 100.0  # DRAM

    def test_boundaries_inclusive(self):
        model = LatencyModel()
        assert model.access_ns(32 * 1024) == 4.0
        assert model.access_ns(32 * 1024 + 1) == 12.0

    def test_custom_hierarchy_validation(self):
        with pytest.raises(InvalidParameterError):
            LatencyModel(hierarchy=())
        with pytest.raises(InvalidParameterError):
            LatencyModel(hierarchy=(CacheLevel("L1", 100, 1.0),))  # bounded last
        with pytest.raises(InvalidParameterError):
            LatencyModel(
                hierarchy=(
                    CacheLevel("big", 1000, 1.0),
                    CacheLevel("small", 100, 2.0),
                    CacheLevel("mem", None, 3.0),
                )
            )

    def test_default_hierarchy_is_valid(self):
        assert XEON_E5_2660_HIERARCHY[-1].capacity_bytes is None


class TestTreeDescent:
    def test_upper_levels_cheaper(self):
        model = LatencyModel()
        # 10MB tree, 5 levels: top levels hot (L1), bottom at L3 -> the
        # per-node average is strictly between the extremes.
        avg = model.tree_access_ns(10 * 1024 * 1024, height=5, branching=16)
        assert 4.0 < avg < 40.0

    def test_single_level_tree(self):
        model = LatencyModel()
        assert model.tree_access_ns(1024, height=1, branching=16) == 4.0

    def test_bigger_tree_costs_more(self):
        model = LatencyModel()
        small = model.tree_access_ns(64 * 1024, 3, 16)
        large = model.tree_access_ns(64 * 1024 * 1024, 3, 16)
        assert large > small


class TestOpPricing:
    def _counter(self):
        counter = AccessCounter()
        counter.op()
        counter.tree_node()
        counter.tree_node()
        counter.segment_binary_search(32)
        return counter

    def test_flat_op_latency(self):
        model = LatencyModel(c=10.0)
        counter = self._counter()
        assert model.op_latency_ns(counter, 10**9) == pytest.approx(
            10.0 * counter.random_accesses
        )

    def test_split_pricing_separates_residencies(self):
        model = LatencyModel()
        counter = self._counter()
        # Tiny index (L1), huge data (DRAM).
        cost = model.op_latency_split_ns(counter, 1024, 10**9)
        expected = 2 * 4.0 + counter.data_line_misses * 100.0
        assert cost == pytest.approx(expected)

    def test_split_pricing_with_descent_levels(self):
        model = LatencyModel()
        counter = self._counter()
        big_index = 10 * 1024 * 1024
        with_levels = model.op_latency_split_ns(
            counter, big_index, 10**9, height=4, branching=16
        )
        flat_levels = model.op_latency_split_ns(counter, big_index, 10**9)
        # Hot upper levels make the descent cheaper than flat L3 pricing.
        assert with_levels < flat_levels

    def test_zero_ops_is_zero(self):
        model = LatencyModel()
        assert model.op_latency_ns(AccessCounter(), 100) == 0.0
        assert model.op_latency_split_ns(AccessCounter(), 100, 100) == 0.0
