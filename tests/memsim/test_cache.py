"""Set-associative LRU cache simulator and multi-level chaining."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.memsim import AddressSpace, CacheSim, MultiLevelCache


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        cache = CacheSim(capacity_bytes=1024, line_size=64, ways=2)
        assert cache.access(0) == 1  # cold miss
        assert cache.access(0) == 0  # hit
        assert cache.access(8) == 0  # same line
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1

    def test_lru_eviction_within_set(self):
        # 2 lines total, fully associative (1 set, 2 ways).
        cache = CacheSim(capacity_bytes=128, line_size=64, ways=2)
        cache.access(0)    # line 0
        cache.access(64)   # line 1
        cache.access(128)  # line 2 evicts line 0 (LRU)
        assert cache.access(64) == 0   # still cached
        assert cache.access(0) == 1    # was evicted

    def test_lru_order_updated_on_hit(self):
        cache = CacheSim(capacity_bytes=128, line_size=64, ways=2)
        cache.access(0)
        cache.access(64)
        cache.access(0)     # touch line 0: now line 1 is LRU
        cache.access(128)   # evicts line 1
        assert cache.access(0) == 0
        assert cache.access(64) == 1

    def test_set_mapping_conflicts(self):
        # 4 lines, 1 way: direct mapped with 4 sets. Lines 0 and 4 collide.
        cache = CacheSim(capacity_bytes=256, line_size=64, ways=1)
        cache.access(0)
        cache.access(4 * 64)
        assert cache.access(0) == 1  # conflict-evicted despite capacity

    def test_multi_line_access(self):
        cache = CacheSim(capacity_bytes=1024, line_size=64, ways=4)
        misses = cache.access(0, size=200)  # spans 4 lines
        assert misses == 4

    def test_replay_and_reset(self):
        cache = CacheSim(capacity_bytes=1024, line_size=64, ways=4)
        stats = cache.replay([(0, 8), (0, 8), (64, 8)])
        assert stats.accesses == 3
        assert stats.misses == 2
        assert stats.miss_ratio == pytest.approx(2 / 3)
        cache.reset()
        assert cache.stats.accesses == 0

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            CacheSim(capacity_bytes=0)
        with pytest.raises(InvalidParameterError):
            CacheSim(capacity_bytes=64 * 9, line_size=64, ways=6)  # 9 % 6 != 0
        with pytest.raises(InvalidParameterError):
            CacheSim(capacity_bytes=32, line_size=64)  # smaller than a line
        with pytest.raises(InvalidParameterError):
            CacheSim(capacity_bytes=1024).access(0, size=0)

    def test_ways_clamped_to_line_count(self):
        # Requesting more ways than lines degrades to fully associative.
        cache = CacheSim(capacity_bytes=128, line_size=64, ways=16)
        assert cache.ways == 2
        assert cache.n_sets == 1

    def test_working_set_behaviour(self):
        # Working set fits: steady-state hit ratio ~1; doesn't fit: misses.
        cache = CacheSim(capacity_bytes=64 * 16, line_size=64, ways=16)
        fitting = [(i * 64, 8) for i in range(16)] * 10
        cache.replay(fitting[:16])  # warm up
        stats = cache.replay(fitting[16:])
        assert stats.miss_ratio == 0.0
        cache.reset()
        thrashing = [(i * 64, 8) for i in range(32)] * 10
        stats = cache.replay(thrashing)
        assert stats.miss_ratio > 0.9


class TestMultiLevelCache:
    def make(self):
        l1 = CacheSim(capacity_bytes=128, line_size=64, ways=2)
        l2 = CacheSim(capacity_bytes=512, line_size=64, ways=8)
        return MultiLevelCache([l1, l2], [1.0, 10.0], memory_ns=100.0)

    def test_miss_goes_to_memory(self):
        mlc = self.make()
        assert mlc.access(0) == 111.0  # L1 miss + L2 miss + memory

    def test_hit_in_l1(self):
        mlc = self.make()
        mlc.access(0)
        assert mlc.access(0) == 1.0

    def test_hit_in_l2_after_l1_eviction(self):
        mlc = self.make()
        mlc.access(0)
        mlc.access(64)
        mlc.access(128)  # evicts line 0 from tiny L1; L2 keeps it
        assert mlc.access(0) == 11.0

    def test_replay_totals(self):
        mlc = self.make()
        total = mlc.replay([(0, 8), (0, 8)])
        assert total == 112.0
        stats = mlc.per_level_stats()
        assert stats["L1"].accesses == 2

    def test_mismatched_latencies_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiLevelCache([CacheSim(128)], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            MultiLevelCache([], [])


class TestAddressSpace:
    def test_alignment(self):
        space = AddressSpace(base=0, align=64)
        a = space.alloc(10)
        b = space.alloc(10)
        assert a % 64 == 0
        assert b % 64 == 0
        assert b > a

    def test_of_memoizes_per_object(self):
        space = AddressSpace()
        obj = object()
        assert space.of(obj, 100) == space.of(obj, 100)
        other = object()
        assert space.of(other, 100) != space.of(obj, 100)

    def test_bytes_allocated(self):
        space = AddressSpace()
        space.of(object(), 100)
        space.of(object(), 50)
        assert space.bytes_allocated == 150

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            AddressSpace(align=3)
        with pytest.raises(InvalidParameterError):
            AddressSpace().alloc(0)
