"""Access counters: probe math, line-miss math, snapshot arithmetic."""

import pytest

from repro.memsim import (
    AccessCounter,
    binary_search_line_misses,
    binary_search_probes,
)


class TestProbeMath:
    @pytest.mark.parametrize(
        "window,expected",
        [(0, 0), (1, 1), (2, 2), (3, 3), (4, 3), (8, 4), (9, 5), (1024, 11)],
    )
    def test_binary_search_probes(self, window, expected):
        assert binary_search_probes(window) == expected

    @pytest.mark.parametrize(
        "window,expected",
        [(0, 0), (1, 1), (8, 1), (16, 2), (64, 4), (1 << 20, 18)],
    )
    def test_line_misses(self, window, expected):
        assert binary_search_line_misses(window) == expected

    def test_line_misses_never_exceed_probes(self):
        for window in (1, 2, 5, 17, 100, 10_000):
            assert binary_search_line_misses(window) <= binary_search_probes(
                window
            )


class TestCounter:
    def test_initial_state(self):
        counter = AccessCounter()
        assert counter.random_accesses == 0
        assert counter.data_line_misses == 0
        assert counter.per_op() == {}

    def test_accumulation(self):
        counter = AccessCounter()
        counter.op()
        counter.tree_node()
        counter.tree_node()
        counter.segment_binary_search(64)
        counter.buffer_binary_search(8)
        assert counter.tree_nodes == 2
        assert counter.segment_probes == binary_search_probes(64)
        assert counter.buffer_probes == binary_search_probes(8)
        assert counter.random_accesses == (
            2 + binary_search_probes(64) + binary_search_probes(8)
        )
        assert counter.data_line_misses == (
            binary_search_line_misses(64) + binary_search_line_misses(8)
        )

    def test_direct_probes_count_as_misses(self):
        counter = AccessCounter()
        counter.segment_probe(3)
        counter.buffer_probe(2)
        assert counter.segment_line_misses == 3
        assert counter.buffer_line_misses == 2

    def test_per_op_averages(self):
        counter = AccessCounter()
        for _ in range(4):
            counter.op()
            counter.tree_node()
        per = counter.per_op()
        assert per["tree_nodes"] == 1.0
        assert per["random_accesses"] == 1.0

    def test_reset(self):
        counter = AccessCounter()
        counter.op()
        counter.tree_node()
        counter.data_move(5)
        counter.split()
        counter.reset()
        assert counter.tree_nodes == 0
        assert counter.data_moves == 0
        assert counter.splits == 0
        assert counter.ops == 0
        assert counter.segment_line_misses == 0

    def test_snapshot_is_independent(self):
        counter = AccessCounter()
        counter.tree_node()
        snap = counter.snapshot()
        counter.tree_node()
        assert snap.tree_nodes == 1
        assert counter.tree_nodes == 2

    def test_diff(self):
        counter = AccessCounter()
        counter.op()
        counter.tree_node()
        earlier = counter.snapshot()
        counter.op()
        counter.tree_node()
        counter.segment_binary_search(16)
        delta = counter.diff(earlier)
        assert delta.ops == 1
        assert delta.tree_nodes == 1
        assert delta.segment_probes == binary_search_probes(16)
        assert delta.segment_line_misses == binary_search_line_misses(16)
