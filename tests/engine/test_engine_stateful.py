"""Stateful property testing: the ShardedEngine vs a sorted-multimap model.

Hypothesis drives arbitrary interleavings of ``insert_batch`` /
``get_batch`` / ``range_batch`` (plus scalar mirrors) against a
dict-of-counters + sorted-pairs oracle. The key domain is deliberately
small relative to the build size so batches routinely contain duplicate
keys, repeat keys across batches, and straddle shard boundaries; empty
batches are generated explicitly. After every step the engine must agree
with the oracle, and per-shard invariants must hold at teardown.
"""

from bisect import insort
from collections import Counter

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.engine import ShardedEngine

KEYS = st.integers(min_value=0, max_value=200).map(float)
#: Batches may be empty — the empty-batch no-op is part of the contract.
BATCHES = st.lists(KEYS, min_size=0, max_size=40)


class ShardedEngineMachine(RuleBasedStateMachine):
    @initialize(
        build_keys=st.lists(KEYS, max_size=120).map(sorted),
        n_shards=st.integers(min_value=1, max_value=6),
        error=st.integers(min_value=4, max_value=48),
    )
    def build(self, build_keys, n_shards, error):
        self.engine = ShardedEngine(
            np.asarray(build_keys, dtype=np.float64),
            n_shards=n_shards,
            error=error,
            buffer_capacity=max(1, error // 3),
        )
        self.next_rowid = len(build_keys)
        self.model = Counter(build_keys)
        #: Sorted (key, value) pairs — the range-scan oracle.
        self.pairs = [(k, i) for i, k in enumerate(build_keys)]

    @rule(batch=BATCHES)
    def insert_batch(self, batch):
        keys = np.asarray(batch, dtype=np.float64)
        versions = self.engine.shard_versions()
        self.engine.insert_batch(keys)
        if not batch:
            # Empty batches must not touch shard state or consume row ids.
            assert self.engine.shard_versions() == versions
            assert self.engine._next_rowid == self.next_rowid
            return
        for k in batch:
            self.model[k] += 1
            insort(self.pairs, (k, self.next_rowid))
            self.next_rowid += 1

    @rule(batch=BATCHES)
    def insert_batch_boundary_keys(self, batch):
        """Batches biased onto the shard cuts themselves (and one key to
        either side), the routing edge the partition contract pins."""
        cuts = self.engine.cuts
        if cuts.size == 0:
            return
        keys = []
        for i, k in enumerate(batch):
            cut = float(cuts[i % cuts.size])
            keys.append(cut + (i % 3 - 1))  # cut-1, cut, cut+1 round-robin
        self.engine.insert_batch(np.asarray(keys, dtype=np.float64))
        for k in keys:
            self.model[k] += 1
            insort(self.pairs, (k, self.next_rowid))
            self.next_rowid += 1

    @rule(queries=st.lists(KEYS, min_size=0, max_size=30))
    def get_batch_agrees(self, queries):
        q = np.asarray(queries, dtype=np.float64)
        sentinel = object()
        got = self.engine.get_batch(q, sentinel)
        assert len(got) == len(queries)
        for key, value in zip(queries, got):
            if self.model[key] > 0:
                assert value is not sentinel, f"batch missed present key {key}"
                assert any(
                    k == key and v == value for k, v in self.pairs
                ), f"wrong value {value} for {key}"
            else:
                assert value is sentinel, f"batch hit absent key {key}"

    @rule(key=KEYS)
    def scalar_get_agrees(self, key):
        present = self.model[key] > 0
        assert (key in self.engine) == present

    @rule(
        bounds=st.lists(
            st.tuples(KEYS, st.integers(min_value=0, max_value=60)),
            min_size=1,
            max_size=4,
        )
    )
    def range_batch_agrees(self, bounds):
        arr = np.asarray([[lo, lo + span] for lo, span in bounds])
        results = self.engine.range_batch(arr)
        assert len(results) == len(bounds)
        for (lo, span), (keys, values) in zip(bounds, results):
            hi = lo + span
            expected = [k for k, _ in self.pairs if lo <= k <= hi]
            assert list(keys) == expected
            got_pairs = sorted(zip(keys.tolist(), (int(v) for v in values)))
            assert got_pairs == sorted(
                (k, v) for k, v in self.pairs if lo <= k <= hi
            )

    @invariant()
    def size_agrees(self):
        if hasattr(self, "engine"):
            assert len(self.engine) == sum(self.model.values())

    def teardown(self):
        if hasattr(self, "engine"):
            self.engine.validate()


TestShardedEngineStateful = ShardedEngineMachine.TestCase
TestShardedEngineStateful.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
