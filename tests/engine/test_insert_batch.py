"""The bulk write path: state equivalence, no-op edges, residency, speed.

Pins the PR's write-path contract:

* ``ShardedEngine.insert_batch`` leaves exactly the state the per-key
  apply path (route + one buffered scalar insert per key) leaves;
* an empty batch is a strict no-op — no shard versions bumped, no row ids
  consumed, no flat views invalidated;
* steady-state flat-view residency is ~2x table data (pages + combined
  view), not ~3x (per-shard views are zero-copy slices of the combined
  arrays);
* at 100k+ keys the bulk path clears the 3x acceptance bar over the
  per-key apply path.
"""

import time

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import get
from repro.engine import ShardedEngine
from repro.engine.partition import shard_bounds

key_st = st.integers(min_value=0, max_value=300).map(float)


def apply_per_key(engine, keys, values):
    """The pre-bulk apply path: grouped routing, scalar insert per key."""
    order = np.argsort(keys, kind="stable")
    sk, sv = keys[order], values[order]
    for sid, (a, b) in enumerate(shard_bounds(sk, engine.cuts)):
        shard = engine._shards[sid]
        for k, v in zip(sk[a:b], sv[a:b]):
            shard.insert(k, v)


def engine_state(engine):
    return [
        (
            page.start_key,
            page.keys.tolist(),
            list(page.values),
            [float(k) for k in page.buf_keys],
            list(page.buf_values),
        )
        for shard in engine._shards
        for page in shard.pages()
    ]


class TestBulkEquivalence:
    @given(
        build=st.lists(key_st, max_size=200).map(sorted),
        batch=st.lists(key_st, max_size=150),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_state_identical_to_per_key_apply(self, build, batch, n_shards):
        arr = np.asarray(build, dtype=np.float64)
        bulk = ShardedEngine(arr, n_shards=n_shards, error=24, buffer_capacity=6)
        ref = ShardedEngine(arr, n_shards=n_shards, error=24, buffer_capacity=6)
        keys = np.asarray(batch, dtype=np.float64)
        values = np.arange(len(build), len(build) + len(batch), dtype=np.int64)
        bulk.insert_batch(keys, values)
        if keys.size:
            apply_per_key(ref, keys, values)
        bulk.validate()
        assert engine_state(bulk) == engine_state(ref)

    def test_large_mixed_batch(self):
        keys = get("uniform", n=20_000, seed=3)
        bulk = ShardedEngine(keys, n_shards=4, error=128, buffer_capacity=32)
        ref = ShardedEngine(keys, n_shards=4, error=128, buffer_capacity=32)
        rng = np.random.default_rng(4)
        ins = rng.uniform(keys.min() - 100, keys.max() + 100, 5_000)
        vals = np.arange(len(keys), len(keys) + ins.size, dtype=np.int64)
        bulk.insert_batch(ins, vals)
        apply_per_key(ref, ins, vals)
        assert engine_state(bulk) == engine_state(ref)
        q = np.concatenate([ins, keys[:2000]])
        assert (bulk.get_batch(q) == ref.get_batch(q)).all()


class TestEmptyBatchNoOp:
    def test_empty_batch_touches_nothing(self):
        keys = np.sort(np.random.default_rng(5).uniform(0, 1e6, 5_000))
        engine = ShardedEngine(keys, n_shards=4, error=64)
        engine.get_batch(keys[:256])  # warm the flat views
        versions = tuple(s.version for s in engine._shards)
        rowid = engine._next_rowid
        builds = engine.stats()["view_builds"]

        for empty in (np.empty(0), [], np.asarray([], dtype=np.float64)):
            engine.insert_batch(empty)

        assert tuple(s.version for s in engine._shards) == versions
        assert engine._next_rowid == rowid
        assert len(engine) == keys.size
        # Views stayed valid: the next batch is a cache hit, not a rebuild.
        engine.get_batch(keys[:256])
        assert engine.stats()["view_builds"] == builds

    def test_empty_batch_on_empty_engine(self):
        engine = ShardedEngine()
        engine.insert_batch(np.empty(0))
        assert len(engine) == 0
        assert engine._next_rowid == 0


class TestResidency:
    def test_combined_view_residency_is_2x(self):
        """Pages + combined view only: per-shard views are slices."""
        keys = get("uniform", n=50_000, seed=6)
        engine = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=0)
        engine.get_batch(keys[:1024])  # build per-shard + combined views
        report = engine.residency_report()
        assert report["page_bytes"] > 0
        assert 1.8 <= report["residency_ratio"] <= 2.2, report
        # Shard views really are windows into the combined arrays.
        combined = engine._combined
        for shard in engine._shards:
            view = shard._flat_view_cache
            assert np.shares_memory(view.keys, combined.keys)
            assert np.shares_memory(view.values, combined.values)

    def test_sliced_views_answer_grouped_reads(self):
        """After a write dirties one shard, the grouped read path mixes
        slice-backed clean views with a rebuilt dirty view correctly."""
        keys = get("uniform", n=20_000, seed=7)
        engine = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=32)
        engine.get_batch(keys[:512])  # assemble combined + slices
        engine.insert_batch(np.asarray([keys[100] + 0.5]))  # dirty one shard
        q = np.concatenate([keys[:1000], [keys[100] + 0.5]])
        sentinel = object()
        got = engine.get_batch(q, sentinel)
        for key, value in zip(q, got):
            assert value is not sentinel
            assert engine.get(key, sentinel) == value


class TestAcceptanceSpeedup:
    def test_insert_batch_beats_per_key_apply_3x(self):
        """The PR's headline write number: >= 3x over the per-key apply
        path at 100k uniform keys (write-optimized buffer config)."""
        keys = get("uniform", n=100_000, seed=8)
        rng = np.random.default_rng(9)
        ins = rng.uniform(keys[0], keys[-1], 100_000)
        vals = np.arange(keys.size, keys.size + ins.size, dtype=np.int64)

        def build():
            return ShardedEngine(
                keys, n_shards=4, error=1056.0, buffer_capacity=1024
            )

        # Best-of-3 on both sides to keep CI timing noise out of the ratio
        # (best-of-2 was observed to flake under full-suite CPU load).
        per_key_seconds, bulk_seconds = [], []
        for _ in range(3):
            ref = build()
            start = time.perf_counter()
            apply_per_key(ref, ins, vals)
            per_key_seconds.append(time.perf_counter() - start)

            bulk = build()
            start = time.perf_counter()
            bulk.insert_batch(ins, vals)
            bulk_seconds.append(time.perf_counter() - start)

        # Identical state (spot check: every inserted key answers equally).
        sample = ins[::257]
        assert (ref.get_batch(sample) == bulk.get_batch(sample)).all()

        ratio = min(per_key_seconds) / min(bulk_seconds)
        assert ratio >= 3.0, f"insert speedup {ratio:.1f}x below the 3x bar"
