"""FlatView: the vectorized batch path matches per-key gets exactly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FixedPageIndex
from repro.core.fiting_tree import FITingTree
from repro.engine.batch import flat_view
from repro.memsim import AccessCounter

key_st = st.integers(min_value=0, max_value=400).map(float)
build_st = st.lists(key_st, min_size=1, max_size=200).map(sorted)


def assert_batch_matches_scalar(index, queries):
    sentinel = object()
    batch = index.get_batch(queries, sentinel)
    for q, got in zip(queries, batch):
        expected = index.get(q, sentinel)
        if expected is sentinel:
            assert got is sentinel, f"batch hit where scalar missed: {q}"
        else:
            assert got == expected, f"mismatch at {q}: {got} != {expected}"


class TestFlatViewLookups:
    def test_uniform_hits_and_misses(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=64)
        rng = np.random.default_rng(0)
        present = uniform_keys[rng.integers(0, len(uniform_keys), 500)]
        absent = rng.uniform(-1e5, 2e6, 200)
        assert_batch_matches_scalar(tree, np.concatenate([present, absent]))

    def test_periodic_keys(self, periodic_keys):
        tree = FITingTree(periodic_keys, error=16)
        assert_batch_matches_scalar(tree, periodic_keys[::3])

    def test_duplicate_keys(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.integers(0, 200, 2000).astype(np.float64))
        tree = FITingTree(keys, error=32)
        queries = np.concatenate([np.unique(keys), np.asarray([-1.0, 500.0])])
        assert_batch_matches_scalar(tree, queries)

    def test_buffered_inserts_visible(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=256, buffer_capacity=64)
        view_before = flat_view(tree)
        rng = np.random.default_rng(4)
        inserted = rng.uniform(0, 1e6, 300)
        for k in inserted:
            tree.insert(k)
        # Snapshot invalidated by the version counter, not object identity.
        assert flat_view(tree) is not view_before
        assert_batch_matches_scalar(tree, inserted)
        assert_batch_matches_scalar(tree, uniform_keys[::17])

    def test_deletion_widened_windows(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=64, buffer_capacity=16)
        rng = np.random.default_rng(5)
        doomed = rng.choice(uniform_keys, 200, replace=False)
        for k in doomed:
            tree.delete(k)
        remaining = np.asarray([k for k, _ in tree.items()])
        assert_batch_matches_scalar(tree, remaining[::5])
        assert_batch_matches_scalar(tree, doomed)

    def test_view_cached_until_mutation(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=64)
        stats = {}
        v1 = flat_view(tree, stats)
        v2 = flat_view(tree, stats)
        assert v1 is v2
        assert stats == {"view_builds": 1, "view_hits": 1}
        tree.insert(123.25)
        v3 = flat_view(tree, stats)
        assert v3 is not v1
        assert stats == {"view_builds": 2, "view_hits": 1}

    def test_fixed_page_index_whole_page_windows(self, uniform_keys):
        fixed = FixedPageIndex(uniform_keys, page_size=256, buffer_capacity=0)
        assert_batch_matches_scalar(fixed, uniform_keys[::11])
        assert_batch_matches_scalar(fixed, np.asarray([-5.0, 2e6]))

    def test_buffered_values_of_other_dtypes_survive(self):
        keys = np.arange(100, dtype=np.float64)
        tree = FITingTree(keys, error=32, buffer_capacity=8)
        tree.insert(2.5, 7.5)  # float payload into an int64-valued index
        tree.insert(3.5, "tag")  # arbitrary object payload
        tree.insert(4.5, 2**70)  # beyond int64 range
        out = tree.get_batch(np.asarray([2.5, 3.5, 4.5, 10.0]))
        assert out[0] == tree.get(2.5) == 7.5
        assert out[1] == tree.get(3.5) == "tag"
        assert out[2] == tree.get(4.5) == 2**70
        assert out[3] == 10

    def test_nan_payload_keeps_values_dtype(self):
        keys = np.arange(50.0)
        tree = FITingTree(keys, values=keys * 2.0, error=16, buffer_capacity=4)
        tree.insert(7.5, float("nan"))
        out = tree.get_batch(np.asarray([3.0, 4.0]))
        assert out.dtype == np.float64  # NaN is representable: no object fallback
        assert np.isnan(tree.get_batch(np.asarray([7.5]))[0])

    def test_failed_delete_keeps_view_cached(self, uniform_keys):
        import pytest

        from repro.core.errors import KeyNotFoundError

        tree = FITingTree(uniform_keys, error=64, buffer_capacity=16)
        v1 = flat_view(tree)
        with pytest.raises(KeyNotFoundError):
            tree.delete(-123.0)
        assert flat_view(tree) is v1, "no-op delete must not invalidate"
        assert tree.delete_value(float(uniform_keys[0]), "nope") is False
        assert flat_view(tree) is v1, "no-op delete_value must not invalidate"
        tree.delete(float(uniform_keys[0]))
        assert flat_view(tree) is not v1

    def test_non_finite_queries_miss_cleanly(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=64, buffer_capacity=16)
        tree.insert(500.5)  # non-empty buffer: misses also probe buffers
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = tree.get_batch(
                np.asarray([np.nan, np.inf, -np.inf, float(uniform_keys[0])]),
                default=None,
            )
        assert out[0] is None and out[1] is None and out[2] is None
        assert out[3] == 0
        # Queries the scalar path cannot evaluate charge no probes.
        tree.counter = counter = AccessCounter()
        tree.get_batch(np.asarray([np.nan, np.inf]), default=None)
        assert counter.segment_probes == 0
        assert counter.buffer_probes == 0

    def test_empty_index(self):
        tree = FITingTree(None, error=64)
        out = tree.get_batch(np.asarray([1.0, 2.0]), default=-1)
        assert out.tolist() == [-1, -1]

    def test_all_hits_returns_values_dtype(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=64)
        out = tree.get_batch(uniform_keys[:100])
        assert out.dtype == np.int64
        assert out.tolist() == list(range(100))

    def test_counter_charged_in_bulk(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=64)
        tree.counter = counter = AccessCounter()
        tree.get_batch(uniform_keys[:50])
        assert counter.ops == 50
        assert counter.tree_nodes == 50 * tree.height
        assert counter.segment_probes > 0

    @given(
        keys=build_st,
        error=st.integers(min_value=2, max_value=64),
        queries=st.lists(key_st, max_size=40),
        inserts=st.lists(key_st, max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_batch_equals_scalar(self, keys, error, queries, inserts):
        tree = FITingTree(
            np.asarray(keys, dtype=np.float64),
            error=error,
            buffer_capacity=max(1, error // 2),
        )
        for k in inserts:
            tree.insert(k)
        stream = np.asarray(queries + keys[:10] + inserts[:10], dtype=np.float64)
        if stream.size:
            assert_batch_matches_scalar(tree, stream)


class TestFlatViewRanges:
    def test_range_arrays_match_range_items(self, uniform_keys):
        tree = FITingTree(uniform_keys, error=64, buffer_capacity=16)
        rng = np.random.default_rng(6)
        for k in rng.uniform(0, 1e6, 30):
            tree.insert(k)
        view = flat_view(tree)
        for lo, hi in [(1e5, 2e5), (0.0, 1e6), (9e5, 9.5e5)]:
            expected = list(tree.range_items(lo, hi))
            keys_got, values_got = view.range_arrays(lo, hi)
            assert [k for k, _ in expected] == keys_got.tolist()
            assert [v for _, v in expected] == values_got.tolist()

    def test_exclusive_bounds(self, small_keys):
        tree = FITingTree(small_keys, error=16)
        view = flat_view(tree)
        lo, hi = float(small_keys[10]), float(small_keys[-10])
        for inc_lo in (True, False):
            for inc_hi in (True, False):
                expected = list(tree.range_items(lo, hi, inc_lo, inc_hi))
                keys_got, _ = view.range_arrays(lo, hi, inc_lo, inc_hi)
                assert [k for k, _ in expected] == keys_got.tolist()
