"""The engine bulk delete path: equivalence, no-op edges, view upkeep, speed.

Pins the PR's engine-level delete contract:

* ``ShardedEngine.delete_batch`` leaves exactly the state the per-key
  delete path (route + one scalar ``delete`` per key) leaves, returning
  the same values in request order;
* an empty batch is a strict no-op (no shard versions bumped);
* the combined flat view recovers incrementally after single-shard
  deletes (the same patch path inserts use);
* at 100k keys the bulk path clears the 3x acceptance bar over the
  per-key delete loop.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import KeyNotFoundError
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.engine.partition import shard_bounds

key_st = st.integers(min_value=0, max_value=300).map(float)


def delete_per_key(engine, keys):
    """The reference path: grouped routing, one scalar delete per key."""
    order = np.argsort(np.asarray(keys, dtype=np.float64), kind="stable")
    out = np.empty(len(keys), dtype=object)
    sk = np.asarray(keys, dtype=np.float64)[order]
    for sid, (a, b) in enumerate(shard_bounds(sk, engine.cuts)):
        shard = engine._shards[sid]
        for pos, k in zip(order[a:b], sk[a:b]):
            try:
                out[pos] = shard.delete(k)
            except KeyNotFoundError:
                out[pos] = None
    return list(out)


def engine_state(engine):
    return [
        (
            page.start_key,
            page.keys.tolist(),
            list(page.values),
            [float(k) for k in page.buf_keys],
            list(page.buf_values),
            page.deletions,
        )
        for shard in engine._shards
        for page in shard.pages()
    ]


class TestBulkEquivalence:
    @given(
        build=st.lists(key_st, min_size=1, max_size=200).map(sorted),
        batch=st.lists(key_st, min_size=1, max_size=150),
        n_shards=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=80, deadline=None)
    def test_state_identical_to_per_key_delete(self, build, batch, n_shards):
        arr = np.asarray(build, dtype=np.float64)
        bulk = ShardedEngine(arr, n_shards=n_shards, error=24, buffer_capacity=6)
        ref = ShardedEngine(arr, n_shards=n_shards, error=24, buffer_capacity=6)
        want = delete_per_key(ref, batch)
        got = bulk.delete_batch(
            np.asarray(batch, dtype=np.float64), missing="ignore", default=None
        )
        assert list(got) == want
        bulk.validate()
        assert engine_state(bulk) == engine_state(ref)

    def test_large_mixed_batch(self):
        keys = get("uniform", n=20_000, seed=3)
        bulk = ShardedEngine(keys, n_shards=4, error=128, buffer_capacity=32)
        ref = ShardedEngine(keys, n_shards=4, error=128, buffer_capacity=32)
        rng = np.random.default_rng(4)
        ins = rng.uniform(keys.min(), keys.max(), 2_000)
        bulk.insert_batch(ins)
        ref.insert_batch(ins)
        victims = np.concatenate(
            [keys[rng.choice(keys.size, 5_000, replace=False)], ins[:500]]
        )
        want = delete_per_key(ref, victims)
        got = bulk.delete_batch(victims, missing="ignore", default=None)
        assert list(got) == want
        assert engine_state(bulk) == engine_state(ref)
        assert len(bulk) == len(ref)

    def test_missing_raise_is_default(self):
        keys = np.sort(np.random.default_rng(5).uniform(0, 1e4, 1_000))
        engine = ShardedEngine(keys, n_shards=2, error=32, buffer_capacity=8)
        with pytest.raises(KeyNotFoundError):
            engine.delete_batch([keys[0], 2e9])  # 2e9 sorts (and misses) last
        # keys[0] routed/applied before the raise, as the scalar loop would.
        sentinel = object()
        assert engine.get(keys[0], sentinel) is sentinel


class TestEmptyBatchNoOp:
    def test_empty_batch_touches_nothing(self):
        keys = np.sort(np.random.default_rng(6).uniform(0, 1e6, 5_000))
        engine = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=16)
        engine.get_batch(keys[:256])  # warm flat views
        versions = engine.shard_versions()
        builds = engine.stats()["view_builds"]
        for empty in (np.empty(0), [], np.asarray([], dtype=np.float64)):
            out = engine.delete_batch(empty)
            assert out.size == 0
        assert engine.shard_versions() == versions
        engine.get_batch(keys[:256])
        assert engine.stats()["view_builds"] == builds


class TestViewMaintenance:
    def test_single_shard_delete_patches_combined_view(self):
        keys = get("uniform", n=20_000, seed=7)
        engine = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=16)
        engine.get_batch(keys[:512])  # assemble the combined view
        low_shard = keys[keys < engine.cuts[0]][:200]
        engine.delete_batch(low_shard)
        sentinel = object()
        # Serve enough batches to cross the stale-read grace and reassemble.
        for _ in range(8):
            got = engine.get_batch(np.concatenate([low_shard, keys[-200:]]),
                                   sentinel)
        assert all(v is sentinel for v in got[: low_shard.size])
        assert all(v is not sentinel for v in got[low_shard.size:])
        stats = engine.stats()
        assert stats["view_patches"] >= 1  # incremental splice, not rebuild


class TestAcceptanceSpeedup:
    def test_delete_batch_beats_per_key_delete_3x(self):
        """The PR's headline delete number: >= 3x over the per-key delete
        loop at 100k uniform keys (write-optimized buffer config)."""
        keys = get("uniform", n=100_000, seed=8)
        rng = np.random.default_rng(9)
        victims = keys[rng.choice(keys.size, 50_000, replace=False)]

        def build():
            return ShardedEngine(
                keys, n_shards=4, error=1056.0, buffer_capacity=1024
            )

        # Best-of-3 on both sides to keep CI timing noise out of the ratio.
        per_key_seconds, bulk_seconds = [], []
        for _ in range(3):
            eng_pk = build()
            start = time.perf_counter()
            order = np.argsort(victims, kind="stable")
            sk = victims[order]
            for sid, (a, b) in enumerate(shard_bounds(sk, eng_pk.cuts)):
                delete = eng_pk._shards[sid].delete
                for k in sk[a:b]:
                    delete(k)
            per_key_seconds.append(time.perf_counter() - start)

            eng_bulk = build()
            start = time.perf_counter()
            eng_bulk.delete_batch(victims)
            bulk_seconds.append(time.perf_counter() - start)

        assert len(eng_pk) == len(eng_bulk) == keys.size - victims.size
        sample = victims[::97]
        miss = object()
        assert all(
            v is miss for v in eng_bulk.get_batch(sample, miss)
        ) and all(v is miss for v in eng_pk.get_batch(sample, miss))
        speedup = min(per_key_seconds) / min(bulk_seconds)
        assert speedup >= 3.0, f"delete_batch speedup {speedup:.2f}x < 3x"
