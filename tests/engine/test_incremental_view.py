"""Incremental combined-view maintenance: patch one shard, not the world.

Regression contract for the engine's read-path cache: when exactly one
shard mutates, reassembly splices that shard's slice into the existing
combined arrays (``view_patches`` counter) instead of re-concatenating
every shard (``view_full_rebuilds`` counter) — and both paths produce
views whose answers are bit-identical to a freshly built engine's.
"""

import numpy as np
import pytest

from repro.engine import ShardedEngine
from repro.engine.engine import _STALE_READS_BEFORE_REBUILD


def drain_grace(engine, queries):
    """Read until the stale-read amortization grace expires and the
    combined view is reassembled."""
    for _ in range(_STALE_READS_BEFORE_REBUILD + 1):
        engine.get_batch(queries)


@pytest.fixture
def keys():
    return np.sort(np.random.default_rng(0).uniform(0, 1e6, 30_000))


@pytest.fixture
def engine(keys):
    engine = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=32)
    engine.warm()
    return engine


def low_shard_inserts(engine, n, seed=1):
    """Keys guaranteed to land on shard 0 only."""
    hi = float(engine.cuts[0]) - 1.0
    return np.random.default_rng(seed).uniform(0.0, hi, n)


def one_shard_inserts(engine, sid, n, seed=1):
    """Keys guaranteed to land on shard ``sid`` only."""
    lo = float(engine.cuts[sid - 1]) if sid > 0 else 0.0
    hi = float(engine.cuts[sid]) - 1.0 if sid < engine.cuts.size else 1e6
    return np.random.default_rng(seed).uniform(lo, hi, n)


class TestPatchPath:
    def test_warm_is_one_full_rebuild(self, engine):
        stats = engine.stats()
        assert stats["view_full_rebuilds"] == 1
        assert stats["view_patches"] == 0

    def test_single_dirty_shard_patches(self, engine, keys):
        engine.insert_batch(low_shard_inserts(engine, 20))
        drain_grace(engine, keys[::101])
        stats = engine.stats()
        assert stats["view_patches"] == 1
        assert stats["view_full_rebuilds"] == 1  # untouched

    def test_multi_dirty_shards_full_rebuild(self, engine, keys):
        # One key per end of the key space: two shards mutate.
        engine.insert_batch(np.asarray([keys[0] + 0.5, keys[-1] - 0.5]))
        drain_grace(engine, keys[::101])
        stats = engine.stats()
        assert stats["view_full_rebuilds"] == 2
        assert stats["view_patches"] == 0

    def test_patched_view_answers_match_fresh_engine(self, engine, keys):
        inserts = low_shard_inserts(engine, 50)
        engine.insert_batch(inserts)
        drain_grace(engine, keys[::97])
        assert engine.stats()["view_patches"] == 1

        twin = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=32)
        twin.insert_batch(inserts)
        rng = np.random.default_rng(2)
        queries = np.concatenate([
            inserts,
            keys[rng.integers(0, len(keys), 1_500)],
            rng.uniform(-50, 1e6 + 50, 500),
        ])
        got = engine.get_batch(queries, default=-1)
        want = twin.get_batch(queries, default=-1)
        assert got.dtype == want.dtype
        for g, w in zip(got, want):
            assert g == w

    def test_patched_view_range_and_scalar_match(self, engine, keys):
        inserts = low_shard_inserts(engine, 30, seed=3)
        engine.insert_batch(inserts)
        drain_grace(engine, keys[::97])
        sample = inserts[0]
        assert engine.get(sample) == engine.get_batch([sample])[0]
        lo, hi = 0.0, float(engine.cuts[0]) + 10.0
        view_keys, view_values = engine.range_arrays(lo, hi)
        expected = []
        for shard in engine.shards:
            expected.extend(shard.range_items(lo, hi))
        assert [k for k, _ in expected] == view_keys.tolist()
        assert [v for _, v in expected] == view_values.tolist()

    def test_repeated_single_shard_writes_keep_patching(self, engine, keys):
        for round_no in range(3):
            engine.insert_batch(low_shard_inserts(engine, 10, seed=round_no))
            drain_grace(engine, keys[::101])
        stats = engine.stats()
        assert stats["view_patches"] == 3
        assert stats["view_full_rebuilds"] == 1

    def test_page_split_inside_dirty_shard_still_patches(self, keys):
        """A patch must cope with the dirty shard changing page count."""
        engine = ShardedEngine(keys, n_shards=4, error=24, buffer_capacity=4)
        engine.warm()
        pages_before = engine.stats()["shards"][0]["n_pages"]
        # Enough inserts into shard 0 to overflow buffers and re-segment.
        engine.insert_batch(low_shard_inserts(engine, 400, seed=5))
        drain_grace(engine, keys[::101])
        stats = engine.stats()
        assert stats["view_patches"] == 1
        assert stats["shards"][0]["n_pages"] != pages_before
        twin = ShardedEngine(keys, n_shards=4, error=24, buffer_capacity=4)
        twin.insert_batch(low_shard_inserts(engine, 400, seed=5))
        probe = keys[::53]
        assert engine.get_batch(probe).tolist() == twin.get_batch(probe).tolist()

    @pytest.mark.parametrize("sid", [1, 2, 3])
    def test_patching_inner_shards_keeps_cut_routing(self, engine, keys, sid):
        """The subtlest splice line: a patched shard i>0 must keep its
        first routing key lowered to its cut, so queries in
        [cut, first page start) still route into it afterwards."""
        inserts = one_shard_inserts(engine, sid, 40, seed=11)
        engine.insert_batch(inserts)
        drain_grace(engine, keys[::101])
        assert engine.stats()["view_patches"] == 1

        twin = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=32)
        twin.insert_batch(inserts)
        cuts = engine.cuts
        boundary = np.concatenate(
            [[c - 0.5, c, c + 0.5] for c in cuts.tolist()]
        )
        queries = np.concatenate([inserts, boundary,
                                  keys[::211], [keys[0], keys[-1]]])
        got = engine.get_batch(queries, default=-1)
        want = twin.get_batch(queries, default=-1)
        assert got.dtype == want.dtype
        for q, g, w in zip(queries, got, want):
            assert g == w, (sid, q)
        # And an under-page-start buffered insert routes into the patched
        # shard exactly as the scalar path does.
        probe = float(cuts[sid - 1]) + 1e-4
        engine.insert(probe)
        twin.insert(probe)
        assert engine.get_batch([probe])[0] == twin.get_batch([probe])[0]

    def test_residency_stays_collapsed_after_patch(self, engine, keys):
        engine.insert_batch(low_shard_inserts(engine, 20, seed=7))
        drain_grace(engine, keys[::101])
        assert engine.stats()["view_patches"] == 1
        ratio = engine.residency_report()["residency_ratio"]
        assert ratio < 2.5  # per-shard views still alias the combined


class TestSingleShardEngine:
    def test_single_shard_never_counts_rebuilds(self, keys):
        engine = ShardedEngine(keys, n_shards=1, error=64, buffer_capacity=16)
        engine.warm()
        engine.insert_batch(keys[:5] + 0.25)
        engine.get_batch(keys[::200])
        stats = engine.stats()
        # The combined view IS the shard view: neither counter moves.
        assert stats["view_full_rebuilds"] == 0
        assert stats["view_patches"] == 0
