"""Range partitioning: cut selection, shard slices, and the router."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError, NotSortedError
from repro.engine.partition import partition_cuts, route, shard_bounds

key_st = st.integers(min_value=0, max_value=200).map(float)
build_st = st.lists(key_st, max_size=120).map(sorted)


class TestPartitionCuts:
    def test_even_split(self):
        keys = np.arange(1000, dtype=np.float64)
        cuts = partition_cuts(keys, 4)
        assert cuts.tolist() == [250.0, 500.0, 750.0]

    def test_single_shard_no_cuts(self):
        assert partition_cuts(np.arange(10.0), 1).size == 0

    def test_empty_keys(self):
        assert partition_cuts(np.empty(0), 8).size == 0

    def test_strictly_increasing(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.uniform(0, 100, 5000))
        cuts = partition_cuts(keys, 16)
        assert np.all(np.diff(cuts) > 0)

    def test_all_equal_keys_collapse_to_one_shard(self):
        keys = np.full(100, 7.0)
        assert partition_cuts(keys, 4).size == 0

    def test_more_shards_than_keys(self):
        keys = np.asarray([1.0, 2.0, 3.0])
        cuts = partition_cuts(keys, 10)
        assert np.all(np.diff(cuts) > 0)
        assert cuts.size <= 2

    def test_invalid_n_shards(self):
        with pytest.raises(InvalidParameterError):
            partition_cuts(np.arange(10.0), 0)

    def test_unsorted_rejected(self):
        with pytest.raises(NotSortedError):
            partition_cuts(np.asarray([3.0, 1.0, 2.0]), 2)


class TestRoute:
    def test_matches_scalar_bisect(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.uniform(0, 1000, 2000))
        cuts = partition_cuts(keys, 5)
        queries = rng.uniform(-50, 1050, 500)
        sids = route(cuts, queries)
        for q, sid in zip(queries, sids):
            expected = int(np.sum(cuts <= q))
            assert sid == expected

    def test_cut_key_routes_right(self):
        cuts = np.asarray([10.0, 20.0])
        assert route(cuts, [10.0]).tolist() == [1]
        assert route(cuts, [20.0]).tolist() == [2]
        assert route(cuts, [9.999]).tolist() == [0]
        assert route(cuts, [-1e9]).tolist() == [0]


class TestShardBounds:
    def test_slices_cover_and_partition(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.integers(0, 300, 4000).astype(np.float64))
        cuts = partition_cuts(keys, 7)
        bounds = shard_bounds(keys, cuts)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(keys)
        for (_, e1), (s2, _) in zip(bounds, bounds[1:]):
            assert e1 == s2

    def test_duplicates_never_straddle(self):
        keys = np.sort(np.repeat(np.arange(50.0), 40))
        cuts = partition_cuts(keys, 4)
        for a, b in shard_bounds(keys, cuts):
            shard = keys[a:b]
            if a > 0:
                assert keys[a - 1] != shard[0]

    @given(keys=build_st, n_shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=150, deadline=None)
    def test_route_agrees_with_bounds(self, keys, n_shards):
        """Every build key routes to the shard whose slice holds it."""
        arr = np.asarray(keys, dtype=np.float64)
        cuts = partition_cuts(arr, n_shards)
        bounds = shard_bounds(arr, cuts)
        sids = route(cuts, arr)
        for pos, sid in enumerate(sids):
            a, b = bounds[sid]
            assert a <= pos < b
