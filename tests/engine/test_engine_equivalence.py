"""ShardedEngine: batch results are identical to per-key scalar results.

The satellite contract for the engine layer: ``get_batch``/``range_batch``
agree with per-key ``FITingTree.get``/``range_items`` across uniform,
temporal and adversarial datasets — including duplicate keys and
post-insert/buffered state — and the batch path clears the 5x speedup bar.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.engine import ShardedEngine

key_st = st.integers(min_value=0, max_value=300).map(float)
build_st = st.lists(key_st, max_size=150).map(sorted)


def dataset_keys(name, n=8_000, seed=0):
    return get(name, n=n, seed=seed)


def assert_engine_matches_scalar(engine, queries):
    """engine.get_batch == per-key scalar FITingTree.get on the same state."""
    sentinel = object()
    batch = engine.get_batch(queries, sentinel)
    for q, got in zip(queries, batch):
        expected = engine.get(q, sentinel)  # routed per-key FITingTree.get
        if expected is sentinel:
            assert got is sentinel, f"batch hit where scalar missed: {q}"
        else:
            assert got == expected, f"mismatch at {q}: {got} != {expected}"


@pytest.mark.parametrize("dataset", ["uniform", "iot", "adversarial"])
@pytest.mark.parametrize("n_shards", [1, 4])
class TestGetBatchEquivalence:
    def test_build_only(self, dataset, n_shards):
        keys = dataset_keys(dataset)
        engine = ShardedEngine(keys, n_shards=n_shards, error=64)
        rng = np.random.default_rng(1)
        present = keys[rng.integers(0, len(keys), 600)]
        absent = rng.uniform(keys.min() - 10, keys.max() + 10, 300)
        queries = np.concatenate([present, absent])
        assert_engine_matches_scalar(engine, queries)
        # And against a plain single FITing-Tree sharing the row-id space.
        tree = FITingTree(keys, error=64)
        sentinel = object()
        batch = engine.get_batch(present, sentinel)
        for q, got in zip(present, batch):
            assert keys[int(got)] == q == keys[int(tree.get(q, sentinel))]

    def test_post_insert_buffered_state(self, dataset, n_shards):
        keys = dataset_keys(dataset)
        engine = ShardedEngine(
            keys, n_shards=n_shards, error=128, buffer_capacity=32
        )
        rng = np.random.default_rng(2)
        inserts = rng.uniform(keys.min(), keys.max(), 500)
        engine.insert_batch(inserts)
        assert len(engine) == len(keys) + len(inserts)
        queries = np.concatenate([inserts, keys[rng.integers(0, len(keys), 400)]])
        assert_engine_matches_scalar(engine, queries)


class TestDuplicates:
    def test_duplicate_heavy_build_and_inserts(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.integers(0, 150, 6000).astype(np.float64))
        engine = ShardedEngine(keys, n_shards=4, error=48, buffer_capacity=16)
        engine.insert_batch(rng.integers(0, 150, 200).astype(np.float64))
        queries = np.arange(-5.0, 160.0)
        assert_engine_matches_scalar(engine, queries)

    def test_duplicates_never_straddle_shards(self):
        keys = np.sort(np.repeat(np.arange(40.0), 300))
        engine = ShardedEngine(keys, n_shards=4, error=32)
        for cut in engine.cuts:
            hits = [
                i
                for i, shard in enumerate(engine.shards)
                if len(shard.lookup_all(cut)) > 0
            ]
            assert len(hits) == 1
        assert_engine_matches_scalar(engine, np.arange(40.0))


class TestRangeBatchEquivalence:
    @pytest.mark.parametrize("dataset", ["uniform", "iot", "adversarial"])
    def test_matches_single_tree(self, dataset):
        keys = dataset_keys(dataset, n=5_000)
        tree = FITingTree(keys, error=64)
        engine = ShardedEngine(keys, n_shards=4, error=64)
        rng = np.random.default_rng(4)
        los = rng.uniform(keys.min(), keys.max(), 20)
        bounds = np.stack([los, los + (keys.max() - keys.min()) * 0.07], axis=1)
        results = engine.range_batch(bounds)
        assert len(results) == len(bounds)
        for (lo, hi), (got_keys, got_values) in zip(bounds, results):
            expected = list(tree.range_items(lo, hi))
            assert [k for k, _ in expected] == got_keys.tolist()
            assert [v for _, v in expected] == got_values.tolist()

    def test_post_insert_and_bounds_modes(self):
        keys = np.sort(np.random.default_rng(5).uniform(0, 1000, 3000))
        engine = ShardedEngine(keys, n_shards=3, error=64, buffer_capacity=16)
        engine.insert_batch(np.random.default_rng(6).uniform(0, 1000, 150))
        lo, hi = 200.0, 400.0
        for inc_lo in (True, False):
            for inc_hi in (True, False):
                got_keys, got_values = engine.range_arrays(lo, hi, inc_lo, inc_hi)
                expected = []
                for shard in engine.shards:
                    expected.extend(shard.range_items(lo, hi, inc_lo, inc_hi))
                assert [k for k, _ in expected] == got_keys.tolist()
                assert [v for _, v in expected] == got_values.tolist()

    def test_cross_shard_span(self):
        keys = np.arange(1000, dtype=np.float64)
        engine = ShardedEngine(keys, n_shards=4, error=32)
        got_keys, _ = engine.range_arrays(100.0, 900.0)
        assert got_keys.tolist() == [float(k) for k in range(100, 901)]


class TestEngineBehaviour:
    def test_empty_engine_grows_by_inserts(self):
        engine = ShardedEngine(n_shards=4, error=64, buffer_capacity=8)
        assert len(engine) == 0
        out = engine.get_batch(np.asarray([1.0]), default=-7)
        assert out.tolist() == [-7]
        engine.insert_batch(np.asarray([5.0, 1.0, 9.0]))
        assert len(engine) == 3
        assert_engine_matches_scalar(engine, np.asarray([1.0, 5.0, 9.0, 2.0]))

    def test_insert_batch_matches_scalar_loop(self):
        keys = np.sort(np.random.default_rng(7).uniform(0, 100, 2000))
        batched = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=16)
        looped = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=16)
        stream = np.random.default_rng(8).uniform(0, 100, 300)
        batched.insert_batch(stream)
        for k in stream:
            looped.insert(k)
        assert len(batched) == len(looped)
        queries = np.concatenate([stream, keys[::7]])
        sentinel = object()
        for got, want in zip(
            batched.get_batch(queries, sentinel), looped.get_batch(queries, sentinel)
        ):
            assert (got is sentinel) == (want is sentinel)
            if got is not sentinel:
                assert got == want

    def test_under_min_insert_after_cut_key_deleted(self):
        """Routing stays correct when a shard's first page start drifts
        above the cut (min key deleted, page rebuilt) and a smaller key —
        still >= the cut — is buffered as an under-min insert."""
        keys = np.arange(0, 1000, dtype=np.float64)
        engine = ShardedEngine(keys, n_shards=4, error=32, buffer_capacity=8)
        cut = float(engine.cuts[0])
        shard = engine.shard_for(cut)
        shard.delete(cut)
        # Overflow the first page's buffer so it rebuilds with start > cut.
        engine.insert_batch(cut + np.arange(1, 9) / 10.0)
        first_start = min(page.start_key for page in shard.pages())
        assert first_start > cut
        probe = cut + 0.05  # routes to this shard, below its first page start
        engine.insert(probe)
        assert engine.get(probe) is not None
        out = engine.get_batch(np.asarray([probe, cut]), default=None)
        assert out[0] == engine.get(probe)
        assert out[1] is None

    def test_explicit_values_and_payload_requirements(self):
        keys = np.asarray([1.0, 2.0, 3.0])
        engine = ShardedEngine(keys, values=np.asarray([10, 20, 30]), n_shards=2)
        assert engine.get(2.0) == 20
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            engine.insert_batch(np.asarray([4.0]))

    def test_heterogeneous_shard_dtypes_scatter_losslessly(self):
        """The grouped fallback path must not cast one shard's values into
        another shard's dtype."""
        built = []

        def factory(k, v):
            # First shard carries int64 row ids, later shards float64+0.5.
            dtype = np.int64 if not built else np.float64
            vals = np.asarray(v, dtype=dtype)
            if built:
                vals = vals + 0.5
            built.append(dtype)
            return FITingTree(k, vals, error=32, buffer_capacity=8)

        keys = np.arange(100, dtype=np.float64)
        engine = ShardedEngine(keys, n_shards=2, index_factory=factory)
        assert engine._combined_view() is None  # mixed dtypes: grouped path
        lo_key, hi_key = 10.0, 60.0
        out = engine.get_batch(np.asarray([lo_key, hi_key]))
        assert out[0] == engine.get(lo_key) == 10
        assert out[1] == engine.get(hi_key) == 60.5
        # Cross-shard ranges must not let NumPy promote int64 into float64.
        range_keys, range_values = engine.range_arrays(48.0, 52.0)
        for k, v in zip(range_keys, range_values):
            assert v == engine.get(k), f"range value {v!r} != get({k})"

    def test_stats_shape(self):
        keys = np.sort(np.random.default_rng(9).uniform(0, 1e5, 20_000))
        engine = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=16)
        engine.get_batch(keys[:100])
        engine.get_batch(keys[100:200])
        stats = engine.stats()
        assert stats["n"] == 20_000
        assert stats["n_shards"] == 4
        assert len(stats["shards"]) == 4
        assert stats["view_builds"] >= 1
        assert stats["view_hits"] >= 1
        assert 0.0 <= stats["view_hit_rate"] <= 1.0
        assert stats["n_pages"] == sum(s["n_pages"] for s in stats["shards"])
        engine.validate()

    def test_counter_instrumentation(self):
        from repro.memsim import AccessCounter

        keys = np.sort(np.random.default_rng(10).uniform(0, 1e5, 5_000))
        engine = ShardedEngine(keys, n_shards=4, error=64)
        engine.counter = counter = AccessCounter()
        engine.get_batch(keys[:64])
        assert counter.ops == 64
        assert counter.random_accesses > 0

    def test_combined_and_grouped_paths_charge_identically(self):
        """Modeled tree-descent charges are per-shard-exact on both read
        paths, so the execution strategy never skews modeled costs."""
        from repro.memsim import AccessCounter

        keys = np.sort(np.random.default_rng(12).uniform(0, 1e5, 20_000))
        q = keys[np.random.default_rng(13).integers(0, len(keys), 512)]

        combined = ShardedEngine(keys, n_shards=4, error=64)
        combined.counter = c1 = AccessCounter()
        combined.get_batch(q)

        grouped = ShardedEngine(keys, n_shards=4, error=64)
        grouped.counter = c2 = AccessCounter()
        # Pin the combined cache to "known heterogeneous" for these
        # versions so get_batch takes the grouped per-shard path.
        grouped._combined = None
        grouped._combined_versions = tuple(s.version for s in grouped._shards)
        grouped.get_batch(q)

        assert c1.tree_nodes == c2.tree_nodes
        assert c1.segment_probes == c2.segment_probes
        assert c1.ops == c2.ops == 512

    @given(
        keys=build_st,
        n_shards=st.integers(min_value=1, max_value=5),
        inserts=st.lists(key_st, max_size=50),
        queries=st.lists(key_st, max_size=40),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_engine_matches_scalar(self, keys, n_shards, inserts, queries):
        engine = ShardedEngine(
            np.asarray(keys, dtype=np.float64),
            n_shards=n_shards,
            error=32,
            buffer_capacity=8,
        )
        if inserts:
            engine.insert_batch(np.asarray(inserts, dtype=np.float64))
        stream = np.asarray(queries + keys[:10] + inserts[:10], dtype=np.float64)
        if stream.size:
            assert_engine_matches_scalar(engine, stream)
        assert len(engine) == len(keys) + len(inserts)


class TestAcceptanceSpeedup:
    def test_sharded_batch_beats_scalar_loop_5x(self):
        """The PR's headline number: >= 5x over per-key FITingTree.get at
        100k uniform keys, batch size 1024, 4 shards."""
        keys = get("uniform", n=100_000, seed=0)
        tree = FITingTree(keys, error=64, buffer_capacity=0)
        engine = ShardedEngine(keys, n_shards=4, error=64, buffer_capacity=0)
        rng = np.random.default_rng(11)
        queries = keys[rng.integers(0, len(keys), 32_768)]

        def time_batch():
            start = time.perf_counter()
            for i in range(0, len(queries), 1024):
                engine.get_batch(queries[i : i + 1024])
            return time.perf_counter() - start

        scalar_queries = queries[:4096]
        tree_get = tree.get

        def time_scalar():
            start = time.perf_counter()
            for q in scalar_queries:
                tree_get(q)
            return time.perf_counter() - start

        # Best-of-3 on both sides to keep CI timing noise out of the ratio.
        batch_seconds = min(time_batch() for _ in range(3))
        scalar_seconds = min(time_scalar() for _ in range(3))
        scalar = [tree_get(q) for q in scalar_queries]
        batch = engine.get_batch(queries)

        # Bit-identical results on the overlapping prefix.
        head = engine.get_batch(scalar_queries)
        assert head.tolist() == scalar
        assert batch is not None and batch.dtype == np.int64

        scalar_ns = scalar_seconds / len(scalar_queries)
        batch_ns = batch_seconds / len(queries)
        assert scalar_ns / batch_ns >= 5.0, (
            f"speedup {scalar_ns / batch_ns:.1f}x below the 5x bar"
        )
