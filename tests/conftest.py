"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_keys(rng):
    """10k sorted unique-ish uniform keys."""
    return np.sort(rng.uniform(0.0, 1e6, 10_000))


@pytest.fixture
def small_keys(rng):
    """500 sorted keys with a few duplicates mixed in."""
    keys = rng.uniform(0.0, 1e4, 480)
    dups = rng.choice(keys, 20)
    out = np.sort(np.concatenate([keys, dups]))
    return out


@pytest.fixture
def periodic_keys():
    """2k keys from a bursty process (strong local slope changes)."""
    rng = np.random.default_rng(7)
    bursts = []
    t = 0.0
    for _ in range(20):
        t += rng.uniform(50.0, 500.0)
        bursts.append(t + np.sort(rng.uniform(0.0, 5.0, 100)))
    return np.concatenate(bursts)
