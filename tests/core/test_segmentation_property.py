"""Hypothesis property tests for the segmentation algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.segment import verify_segments
from repro.core.segmentation import (
    max_segments_bound,
    shrinking_cone,
    shrinking_cone_reference,
)

# Sorted float arrays with duplicates, moderate sizes, finite values.
sorted_keys_st = (
    st.lists(
        st.floats(
            min_value=-1e6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=300,
    )
    .map(sorted)
    .map(lambda xs: np.asarray(xs, dtype=np.float64))
)

error_st = st.one_of(
    st.integers(min_value=1, max_value=100).map(float),
    st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
)

accept_st = st.sampled_from(["paper", "exact"])


@given(keys=sorted_keys_st, error=error_st, accept=accept_st)
@settings(max_examples=200, deadline=None)
def test_segments_cover_and_respect_error(keys, error, accept):
    segs = shrinking_cone(keys, error, accept=accept)
    verify_segments(keys, segs, error)


@given(
    keys=sorted_keys_st,
    error=error_st,
    accept=accept_st,
    chunk=st.integers(min_value=2, max_value=64),
)
@settings(max_examples=150, deadline=None)
def test_vectorized_equals_reference(keys, error, accept, chunk):
    fast = shrinking_cone(keys, error, accept=accept, chunk=chunk)
    ref = shrinking_cone_reference(keys, error, accept=accept)
    assert fast == ref


@given(keys=sorted_keys_st, error=error_st)
@settings(max_examples=150, deadline=None)
def test_exact_accept_never_worse(keys, error):
    paper = shrinking_cone(keys, error, accept="paper")
    exact = shrinking_cone(keys, error, accept="exact")
    assert len(exact) <= len(paper)


@given(keys=sorted_keys_st, error=st.integers(min_value=1, max_value=50))
@settings(max_examples=150, deadline=None)
def test_segment_count_within_element_bound(keys, error):
    # For integer errors every non-final segment covers >= error+1 slots
    # (Theorem 3.1 for distinct keys; duplicate-run splitting by
    # construction), so |D|/(error+1) + 1 bounds the count even for
    # duplicate-heavy inputs where the paper's |keys|/2 term fails
    # (see max_segments_bound docstring).
    segs = shrinking_cone(keys, float(error))
    assert len(segs) <= len(keys) / (error + 1.0) + 1
    for seg in segs[:-1]:
        assert seg.length >= error + 1


@given(keys=sorted_keys_st, error=st.integers(min_value=1, max_value=50))
@settings(max_examples=100, deadline=None)
def test_paper_bound_holds_without_long_duplicate_runs(keys, error):
    _, counts = np.unique(keys, return_counts=True)
    if counts.max() > error + 1:
        return  # paper bound's precondition violated; covered above
    segs = shrinking_cone(keys, float(error))
    bound = max_segments_bound(len(counts), len(keys), float(error))
    # +1 slack: a point exactly on the cone boundary can split one segment
    # more than the real-arithmetic bound predicts (float rounding of
    # s + err/d vs (y+err-y0)/d differs by an ulp).
    assert len(segs) <= max(1.0, np.ceil(bound)) + 1


@given(keys=sorted_keys_st, error=error_st)
@settings(max_examples=100, deadline=None)
def test_monotone_in_error(keys, error):
    few = shrinking_cone(keys, error * 4)
    many = shrinking_cone(keys, error)
    assert len(few) <= len(many)


@given(keys=sorted_keys_st, error=error_st)
@settings(max_examples=100, deadline=None)
def test_segment_starts_strictly_increase_positions(keys, error):
    segs = shrinking_cone(keys, error)
    positions = [s.start_pos for s in segs]
    assert positions == sorted(set(positions))
    lengths = sum(s.length for s in segs)
    assert lengths == len(keys)
