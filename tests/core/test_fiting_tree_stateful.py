"""Stateful property testing: the FITing-Tree vs a sorted-multimap model.

Hypothesis drives arbitrary interleavings of insert/delete/get/range
operations against both the index and a plain dict-of-counters model; after
every step the index must agree with the model, and structural invariants
must hold at teardown.
"""

from collections import Counter

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.fiting_tree import FITingTree

KEYS = st.integers(min_value=0, max_value=120).map(float)


class FITingTreeMachine(RuleBasedStateMachine):
    @initialize(
        build_keys=st.lists(KEYS, max_size=60).map(sorted),
        error=st.integers(min_value=2, max_value=32),
    )
    def build(self, build_keys, error):
        self.index = FITingTree(
            np.asarray(build_keys, dtype=np.float64),
            error=error,
            buffer_capacity=max(1, error // 2),
        )
        self.model = Counter(build_keys)
        self.ops = 0

    @rule(key=KEYS)
    def insert(self, key):
        self.index.insert(key)
        self.model[key] += 1
        self.ops += 1

    @rule(key=KEYS)
    def delete_if_present(self, key):
        if self.model[key] > 0:
            self.index.delete(key)
            self.model[key] -= 1
        else:
            try:
                self.index.delete(key)
                raise AssertionError("delete of absent key must raise")
            except KeyError:
                pass
        self.ops += 1

    @rule(key=KEYS)
    def get_agrees(self, key):
        present = self.model[key] > 0
        assert (key in self.index) == present
        assert len(self.index.lookup_all(key)) == self.model[key]

    @rule(lo=KEYS, span=st.integers(min_value=0, max_value=40))
    def range_agrees(self, lo, span):
        hi = lo + span
        got = [k for k, _ in self.index.range_items(lo, hi)]
        expected = sorted(
            k for k in self.model.elements() if lo <= k <= hi
        )
        assert got == expected

    @invariant()
    def size_agrees(self):
        if hasattr(self, "model"):
            assert len(self.index) == sum(self.model.values())

    def teardown(self):
        if hasattr(self, "index"):
            self.index.validate()


TestFITingTreeStateful = FITingTreeMachine.TestCase
TestFITingTreeStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
