"""Segment dataclass and segmentation verification helpers."""

import numpy as np
import pytest

from repro.core.errors import SegmentationError
from repro.core.segment import Segment, max_deviation, verify_segments


class TestSegment:
    def test_predict_linear(self):
        seg = Segment(start_key=10.0, start_pos=5, slope=2.0, length=20)
        assert seg.predict(10.0) == 5.0
        assert seg.predict(11.0) == 7.0
        assert seg.predict(12.5) == 10.0

    def test_predict_clamped_bounds(self):
        seg = Segment(start_key=0.0, start_pos=100, slope=1.0, length=10)
        assert seg.predict_clamped(-50.0) == 100
        assert seg.predict_clamped(5.0) == 105
        assert seg.predict_clamped(500.0) == 109

    def test_local_offset(self):
        seg = Segment(start_key=0.0, start_pos=100, slope=1.0, length=10)
        assert seg.local_offset(3.0) == 3

    def test_end_pos(self):
        seg = Segment(start_key=0.0, start_pos=7, slope=0.0, length=3)
        assert seg.end_pos == 10

    def test_zero_length_rejected(self):
        with pytest.raises(SegmentationError):
            Segment(start_key=0.0, start_pos=0, slope=1.0, length=0)

    def test_negative_slope_rejected(self):
        with pytest.raises(SegmentationError):
            Segment(start_key=0.0, start_pos=0, slope=-0.1, length=1)

    def test_frozen(self):
        seg = Segment(0.0, 0, 1.0, 1)
        with pytest.raises(AttributeError):
            seg.slope = 2.0


class TestMaxDeviation:
    def test_perfect_fit_zero(self):
        keys = np.arange(100, dtype=np.float64)
        seg = Segment(start_key=0.0, start_pos=0, slope=1.0, length=100)
        assert max_deviation(keys, np.arange(100.0), seg) == 0.0

    def test_known_deviation(self):
        keys = np.array([0.0, 1.0, 2.0, 3.0])
        # slope 0: predicted positions all 0; true 0..3 -> deviation 3.
        seg = Segment(start_key=0.0, start_pos=0, slope=0.0, length=4)
        assert max_deviation(keys, np.arange(4.0), seg) == 3.0


class TestVerifySegments:
    def test_accepts_valid(self):
        keys = np.arange(50, dtype=np.float64)
        segs = [
            Segment(0.0, 0, 1.0, 25),
            Segment(25.0, 25, 1.0, 25),
        ]
        verify_segments(keys, segs, error=1)

    def test_rejects_gap(self):
        keys = np.arange(50, dtype=np.float64)
        segs = [Segment(0.0, 0, 1.0, 20), Segment(25.0, 25, 1.0, 25)]
        with pytest.raises(SegmentationError, match="contiguous"):
            verify_segments(keys, segs, error=1)

    def test_rejects_wrong_start_key(self):
        keys = np.arange(10, dtype=np.float64)
        segs = [Segment(3.0, 0, 1.0, 10)]
        with pytest.raises(SegmentationError, match="start key"):
            verify_segments(keys, segs, error=1)

    def test_rejects_error_violation(self):
        keys = np.arange(10, dtype=np.float64)
        segs = [Segment(0.0, 0, 0.0, 10)]  # slope 0 -> deviation up to 9
        with pytest.raises(SegmentationError, match="error bound"):
            verify_segments(keys, segs, error=2)

    def test_rejects_incomplete_cover(self):
        keys = np.arange(10, dtype=np.float64)
        segs = [Segment(0.0, 0, 1.0, 5)]
        with pytest.raises(SegmentationError, match="cover"):
            verify_segments(keys, segs, error=1)

    def test_empty_input_no_segments_ok(self):
        verify_segments(np.empty(0), [], error=1)

    def test_nonempty_input_no_segments_rejected(self):
        with pytest.raises(SegmentationError):
            verify_segments(np.arange(3.0), [], error=1)
