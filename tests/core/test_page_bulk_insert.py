"""``bulk_insert`` is result-identical to a loop of scalar inserts.

The bulk write path's contract, pinned at both layers:

* ``SegmentPage.bulk_insert`` produces exactly the buffer a loop of
  ``insert_into_buffer`` would — including the ``bisect_left`` tie order
  (batch ties stack in reverse arrival order, ahead of existing equals)
  and the modeled counter charges;
* ``PagedIndexBase.insert_batch`` produces exactly the index state a loop
  of ``insert`` (in stable key order) would — including mid-batch buffer
  overflows, merge/re-segmentation splits, and object-dtype payloads that
  cannot be represented in the page's values dtype.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.core.page import SegmentPage
from repro.memsim import AccessCounter

key_st = st.integers(min_value=0, max_value=60).map(float)
batch_st = st.lists(st.tuples(key_st, st.integers(0, 10**6)), max_size=80)


def make_page(data_keys):
    keys = np.asarray(sorted(data_keys), dtype=np.float64)
    return SegmentPage(
        keys[0] if keys.size else 0.0,
        0.0,
        keys,
        np.arange(keys.size, dtype=np.int64),
    )


def page_state(page):
    return (
        page.keys.tolist(),
        page.values.tolist(),
        [float(k) for k in page.buf_keys],
        [v for v in page.buf_values],
    )


class TestPageLevel:
    @given(
        data_keys=st.lists(key_st, max_size=30),
        pre=batch_st,
        batch=batch_st,
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_scalar_loop(self, data_keys, pre, batch):
        """One bulk_insert == the same batch applied key by key."""
        scalar, bulk = make_page(data_keys), make_page(data_keys)
        for k, v in sorted(pre, key=lambda kv: kv[0]):
            scalar.insert_into_buffer(k, v)
            # pre-populate bulk identically (scalar path on both)
            bulk.insert_into_buffer(k, v)
        batch_sorted = sorted(batch, key=lambda kv: kv[0])
        c_scalar, c_bulk = AccessCounter(), AccessCounter()
        for k, v in batch_sorted:
            scalar.insert_into_buffer(k, v, c_scalar)
        bk = np.asarray([k for k, _ in batch_sorted], dtype=np.float64)
        bv = np.asarray([v for _, v in batch_sorted], dtype=np.int64)
        bulk.bulk_insert(bk, bv, c_bulk)
        assert page_state(scalar) == page_state(bulk)
        assert c_scalar.buffer_probes == c_bulk.buffer_probes
        assert c_scalar.buffer_line_misses == c_bulk.buffer_line_misses
        assert c_scalar.data_moves == c_bulk.data_moves

    def test_tie_order_matches_bisect_left(self):
        """Batch ties land reversed, ahead of previously buffered equals —
        exactly what repeated bisect_left insertion does."""
        scalar, bulk = make_page([1.0, 9.0]), make_page([1.0, 9.0])
        for page in (scalar, bulk):
            page.insert_into_buffer(5.0, "old")
        for k, v in ((5.0, "a"), (5.0, "b")):
            scalar.insert_into_buffer(k, v)
        bulk.bulk_insert(
            np.asarray([5.0, 5.0]), np.asarray(["a", "b"], dtype=object)
        )
        assert scalar.buf_values == ["b", "a", "old"]
        assert page_state(scalar) == page_state(bulk)

    def test_empty_batch_is_noop(self):
        page = make_page([1.0, 2.0])
        page.insert_into_buffer(1.5, 7)
        before = page_state(page)
        page.bulk_insert(np.empty(0), np.empty(0, dtype=np.int64))
        assert page_state(page) == before


def index_state(index):
    return [
        (p.start_key, p.keys.tolist(), list(p.values),
         [float(k) for k in p.buf_keys], list(p.buf_values))
        for p in index.pages()
    ]


class TestIndexLevel:
    @given(
        build=st.lists(key_st, max_size=60).map(sorted),
        batch=st.lists(st.tuples(key_st, st.integers(0, 10**6)), max_size=120),
        error=st.integers(min_value=2, max_value=24),
    )
    @settings(max_examples=150, deadline=None)
    def test_insert_batch_matches_scalar_loop(self, build, batch, error):
        """insert_batch == looping insert in stable key order, through
        buffer overflows and page splits."""
        cap = max(1, error // 2)
        scalar = FITingTree(
            np.asarray(build, dtype=np.float64), error=error,
            buffer_capacity=cap,
        )
        bulk = FITingTree(
            np.asarray(build, dtype=np.float64), error=error,
            buffer_capacity=cap,
        )
        keys = np.asarray([k for k, _ in batch], dtype=np.float64)
        values = np.asarray([v for _, v in batch], dtype=np.int64)
        order = np.argsort(keys, kind="stable")
        for k, v in zip(keys[order], values[order]):
            scalar.insert(k, v)
        bulk.insert_batch(keys, values)
        scalar.validate()
        bulk.validate()
        assert len(scalar) == len(bulk) == len(build) + len(batch)
        assert index_state(scalar) == index_state(bulk)

    @given(
        build=st.lists(key_st, min_size=1, max_size=40).map(sorted),
        batch_keys=st.lists(key_st, min_size=1, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_object_payload_fallback(self, build, batch_keys):
        """Object-dtype payloads (unrepresentable in the page dtype) flow
        through the bulk path unchanged, including flat-view exports."""
        payloads = np.empty(len(batch_keys), dtype=object)
        for i, k in enumerate(batch_keys):
            payloads[i] = ("tag", k, i)
        arr = np.asarray(build, dtype=np.float64)
        build_values = np.empty(arr.size, dtype=object)
        build_values[:] = [("build", i) for i in range(arr.size)]
        scalar = FITingTree(arr, build_values, error=16, buffer_capacity=4)
        bulk = FITingTree(arr, build_values.copy(), error=16, buffer_capacity=4)
        keys = np.asarray(batch_keys, dtype=np.float64)
        order = np.argsort(keys, kind="stable")
        for i in order:
            scalar.insert(keys[i], payloads[i])
        bulk.insert_batch(keys, payloads)
        assert index_state(scalar) == index_state(bulk)
        for k, p in zip(batch_keys, payloads):
            assert p in scalar.lookup_all(k)
            assert scalar.lookup_all(k) == bulk.lookup_all(k)
        # The batch read path must agree too (object buffer export).
        got = bulk.get_batch(keys)
        for i, k in enumerate(keys):
            assert got[i] == scalar.get(k)

    def test_sequence_payload_lists_stay_opaque(self):
        """A plain list of tuple payloads (equal-length or ragged) must
        behave exactly like the scalar loop — not recurse into a 2-D
        array or raise."""
        build = np.arange(10, dtype=np.float64)
        build_values = np.empty(10, dtype=object)
        build_values[:] = [("b", i) for i in range(10)]
        for payloads in (
            [(10, 20), (30, 40)],          # equal-length: np.asarray -> 2-D
            [(1, 2), (3, 4, 5)],           # ragged: np.asarray raises
        ):
            scalar = FITingTree(build, build_values, error=16, buffer_capacity=4)
            bulk = FITingTree(build, build_values.copy(), error=16,
                              buffer_capacity=4)
            keys = [4.5, 5.5]
            for k, v in zip(keys, payloads):
                scalar.insert(k, v)
            bulk.insert_batch(keys, payloads)
            assert index_state(scalar) == index_state(bulk)
            for k, v in zip(keys, payloads):
                assert bulk.get(k) == v

    def test_insert_batch_into_empty_index(self):
        index = FITingTree(error=16, buffer_capacity=4)
        index.insert_batch([3.0, 1.0, 2.0, 1.0])
        index.validate()
        # Auto row ids are assigned in request order, pre-sort.
        assert index.get(3.0) == 0
        assert sorted(index.lookup_all(1.0)) == [1, 3]
        assert index.get(2.0) == 2

    def test_empty_batch_is_noop(self):
        index = FITingTree(np.arange(10, dtype=np.float64), error=16)
        version = index.version
        index.insert_batch(np.empty(0))
        assert index.version == version and len(index) == 10

    def test_typed_values_require_explicit_batch_values(self):
        index = FITingTree(
            np.arange(8, dtype=np.float64),
            np.arange(8, dtype=np.int64) * 10,
            error=16,
        )
        with pytest.raises(InvalidParameterError):
            index.insert_batch([1.5, 2.5])
