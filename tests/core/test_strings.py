"""String-key index: prefix encoding, collisions, ranges, mutation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError, KeyNotFoundError
from repro.core.strings import StringFITingTree, encode_prefix


WORDS = sorted(
    [
        "alpha", "alphabet", "alphabetical", "alphanumeric", "beta",
        "betamax", "gamma", "gamma-ray", "delta", "epsilon", "zeta", "eta",
        "theta", "iota", "kappa", "lambda", "mu", "nu", "xi", "omicron",
        "pi", "rho", "sigma", "tau", "upsilon", "phi", "chi", "psi", "omega",
    ]
)


class TestEncoding:
    def test_order_preserving(self):
        rng = np.random.default_rng(0)
        strings = sorted(
            bytes(rng.integers(97, 123, size=rng.integers(0, 12)).tolist())
            for _ in range(300)
        )
        encoded = [encode_prefix(s) for s in strings]
        assert encoded == sorted(encoded)

    def test_prefix_collision_is_equality(self):
        assert encode_prefix("abcdefgh") == encode_prefix("abcdefzz")
        assert encode_prefix("abcdef") == encode_prefix("abcdefXYZ")
        assert encode_prefix("abcdeX") != encode_prefix("abcdeY")

    def test_empty_and_short(self):
        assert encode_prefix("") == 0.0
        assert encode_prefix("a") < encode_prefix("b")

    def test_bytes_and_str_agree(self):
        assert encode_prefix("hello") == encode_prefix(b"hello")

    def test_invalid_type(self):
        with pytest.raises(InvalidParameterError):
            encode_prefix(123)


class TestStringIndex:
    @pytest.fixture
    def index(self):
        return StringFITingTree(WORDS, error=8, buffer_capacity=2)

    def test_every_key_found(self, index):
        for i, word in enumerate(WORDS):
            assert index.get(word) == i
            assert word in index

    def test_collisions_resolved_exactly(self, index):
        # 'alphab...' words share the 6-byte prefix -> encoded duplicates.
        assert encode_prefix("alphabet") == encode_prefix("alphabetical")
        assert index.get("alphabet") == WORDS.index("alphabet")
        assert index.get("alphabetical") == WORDS.index("alphabetical")
        assert index.get("alphabZZZ") is None  # same prefix, not present

    def test_missing(self, index):
        assert index.get("nope") is None
        with pytest.raises(KeyNotFoundError):
            index["nope"]

    def test_duplicate_strings(self):
        keys = sorted(["dup", "dup", "dup", "other"])
        idx = StringFITingTree(keys, error=4, buffer_capacity=1)
        assert len(idx.lookup_all("dup")) == 3

    def test_unsorted_rejected(self):
        with pytest.raises(InvalidParameterError):
            StringFITingTree(["b", "a"], error=8)

    def test_values_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            StringFITingTree(["a", "b"], values=[1], error=8)

    def test_custom_payloads(self):
        idx = StringFITingTree(["a", "b"], values=["pay-a", "pay-b"], error=8)
        assert idx.get("b") == "pay-b"

    def test_range_items(self, index):
        got = [k.decode() for k, _ in index.range_items("beta", "eta")]
        expected = [w for w in WORDS if "beta" <= w <= "eta"]
        assert got == expected

    def test_range_boundary_prefix_filtering(self, index):
        # Bounds inside a shared prefix group must filter exactly.
        got = [k.decode() for k, _ in index.range_items("alphab", "alphan")]
        assert got == ["alphabet", "alphabetical"]
        got = [k.decode() for k, _ in index.range_items("alphabeta", "alphan")]
        assert got == ["alphabetical"]

    def test_prefix_items(self, index):
        got = sorted(k.decode() for k, _ in index.prefix_items("alpha"))
        assert got == ["alpha", "alphabet", "alphabetical", "alphanumeric"]
        got = sorted(k.decode() for k, _ in index.prefix_items("gamma"))
        assert got == ["gamma", "gamma-ray"]
        assert list(index.prefix_items("zzz")) == []

    def test_insert_and_lookup(self, index):
        index.insert("newword", "fresh")
        assert index.get("newword") == "fresh"
        assert len(index) == len(WORDS) + 1
        index.validate()

    def test_insert_colliding_prefix(self, index):
        index.insert("alphabetize", 999)  # shares the 6-byte prefix
        assert index.get("alphabetize") == 999
        assert index.get("alphabet") == WORDS.index("alphabet")
        assert index.get("alphabetical") == WORDS.index("alphabetical")

    def test_delete_exact_string_among_collisions(self, index):
        n = len(index)
        payload = index.delete("alphabet")
        assert payload == WORDS.index("alphabet")
        assert index.get("alphabet") is None
        assert index.get("alphanumeric") == WORDS.index("alphanumeric")
        assert len(index) == n - 1
        index.validate()

    def test_delete_missing_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.delete("ghost")

    def test_compression(self):
        # Many sorted URLs: far fewer segments than keys.
        urls = sorted(f"https://example.com/page/{i:08d}" for i in range(5_000))
        idx = StringFITingTree(urls, error=64, buffer_capacity=0)
        assert idx.n_segments < 500
        assert idx.get(urls[1234]) == 1234

    def test_stats(self, index):
        assert index.stats()["n"] == len(WORDS)


@given(
    words=st.lists(
        st.text(alphabet="abcdefg", max_size=10), min_size=1, max_size=80
    ).map(sorted),
    probes=st.lists(st.text(alphabet="abcdefg", max_size=10), max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_property_string_index_matches_list(words, probes):
    index = StringFITingTree(words, error=6, buffer_capacity=2)
    for probe in probes + words[:5]:
        expected = [i for i, w in enumerate(words) if w == probe]
        assert sorted(index.lookup_all(probe)) == expected
