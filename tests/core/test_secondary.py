"""Secondary (non-clustered) index: duplicates, rowids, ranges, mutation."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.secondary import SecondaryFITingTree


@pytest.fixture
def column(rng):
    # Unsorted column with heavy duplication (100 distinct values).
    return rng.choice(np.linspace(0, 99, 100), 5_000)


class TestBuild:
    def test_empty(self):
        idx = SecondaryFITingTree(error=16)
        assert len(idx) == 0
        assert idx.lookup(1.0) == []

    def test_rowid_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            SecondaryFITingTree([1.0, 2.0], rowids=[0], error=16)

    def test_compresses_vs_elements(self, column):
        idx = SecondaryFITingTree(column, error=64)
        assert idx.n_segments < len(column) / 20


class TestLookup:
    def test_finds_all_matching_rows(self, column):
        idx = SecondaryFITingTree(column, error=32)
        for value in (0.0, 42.0, 99.0):
            expected = set(np.flatnonzero(column == value).tolist())
            assert set(idx.lookup(value)) == expected

    def test_duplicates_in_table_order(self, column):
        idx = SecondaryFITingTree(column, error=32)
        rows = idx.lookup(7.0)
        assert rows == sorted(rows)  # stable sort keeps table order

    def test_missing_value(self, column):
        idx = SecondaryFITingTree(column, error=32)
        assert idx.lookup(123.456) == []
        assert idx.get(123.456) is None
        assert idx.get(123.456, -1) == -1
        assert 123.456 not in idx
        assert 42.0 in idx

    def test_custom_rowids(self):
        column = np.array([5.0, 3.0, 5.0])
        rowids = np.array([100, 200, 300])
        idx = SecondaryFITingTree(column, rowids=rowids, error=8)
        assert set(idx.lookup(5.0)) == {100, 300}
        assert idx.lookup(3.0) == [200]

    def test_bulk_lookup(self, column):
        idx = SecondaryFITingTree(column, error=32)
        out = idx.bulk_lookup([0.0, 123.456], default=-1)
        assert out[1] == -1
        assert out[0] in set(np.flatnonzero(column == 0.0).tolist())


class TestRange:
    def test_range_rowids_complete(self, column):
        idx = SecondaryFITingTree(column, error=32)
        got = sorted(idx.range_rowids(10.0, 20.0))
        expected = sorted(np.flatnonzero((column >= 10.0) & (column <= 20.0)).tolist())
        assert got == expected

    def test_range_items_value_order(self, column):
        idx = SecondaryFITingTree(column, error=32)
        values = [v for v, _ in idx.range_items(10.0, 20.0)]
        assert values == sorted(values)

    def test_items_cover_table(self, column):
        idx = SecondaryFITingTree(column, error=32)
        rowids = sorted(r for _, r in idx.items())
        assert rowids == list(range(len(column)))


class TestMutation:
    def test_insert_new_row(self, column):
        idx = SecondaryFITingTree(column, error=32)
        idx.insert(55.5, 999_999)
        assert 999_999 in idx.lookup(55.5)
        assert len(idx) == len(column) + 1
        idx.validate()

    def test_delete_row(self, column):
        idx = SecondaryFITingTree(column, error=32)
        n_before = len(idx.lookup(42.0))
        rowid = idx.delete(42.0)
        assert len(idx.lookup(42.0)) == n_before - 1
        assert rowid in set(np.flatnonzero(column == 42.0).tolist())
        idx.validate()

    def test_many_inserts(self, column, rng):
        idx = SecondaryFITingTree(column, error=32)
        for i, v in enumerate(rng.uniform(0, 99, 500)):
            idx.insert(v, 10_000 + i)
        idx.validate()
        assert len(idx) == len(column) + 500


class TestSizeAccounting:
    def test_key_pages_constant_across_error(self, column):
        coarse = SecondaryFITingTree(column, error=256)
        fine = SecondaryFITingTree(column, error=8)
        assert coarse.key_pages_bytes() == fine.key_pages_bytes()
        assert coarse.model_bytes() < fine.model_bytes()

    def test_stats(self, column):
        idx = SecondaryFITingTree(column, error=32)
        stats = idx.stats()
        assert stats["key_pages_bytes"] == 16 * len(column)
        assert stats["n_segments"] == idx.n_segments
