"""Cost model: formulas, monotonicity, the two DBA selectors."""

import pytest

from repro.core.cost_model import CostModel, CostModelParams, DEFAULT_ERROR_GRID
from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.core.segmentation import shrinking_cone


@pytest.fixture
def keys(periodic_keys):
    return periodic_keys


@pytest.fixture
def model(keys):
    return CostModel.learned(keys, params=CostModelParams(c_ns=100.0))


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(InvalidParameterError):
            CostModelParams(c_ns=0)
        with pytest.raises(InvalidParameterError):
            CostModelParams(branching=1)
        with pytest.raises(InvalidParameterError):
            CostModelParams(fill=0.0)
        with pytest.raises(InvalidParameterError):
            CostModelParams(fill=1.5)
        with pytest.raises(InvalidParameterError):
            CostModelParams(seq_ns=-1)


class TestSegmentsFn:
    def test_learned_matches_direct_segmentation(self, keys, model):
        for error in (8, 32):
            # The model segments at the post-buffer threshold.
            seg_threshold = max(1, error - error // 2)
            direct = len(shrinking_cone(keys, seg_threshold))
            assert model._effective_segments(error, error // 2) == direct

    def test_learned_memoizes(self, keys, monkeypatch):
        import repro.core.cost_model as cm

        calls = []
        real = cm.shrinking_cone

        def spy(*args, **kwargs):
            calls.append(args[1])
            return real(*args, **kwargs)

        monkeypatch.setattr(cm, "shrinking_cone", spy)
        model = CostModel.learned(keys)
        model.segments(16)
        model.segments(16)  # second call must hit the memo, not segment
        assert len(calls) == 1

    def test_worst_case_formula(self):
        model = CostModel.worst_case(10_000)
        assert model.segments(99) == 100
        assert model.segments(10_000_000) == 1

    def test_invalid_segments_fn_rejected(self):
        model = CostModel(lambda e: 0, n=10)
        with pytest.raises(InvalidParameterError):
            model.segments(5)


class TestLatencyModel:
    def test_positive_and_finite(self, model):
        for error in (4, 64, 1024):
            lat = model.lookup_latency_ns(error)
            assert 0 < lat < 1e7

    def test_scales_with_c(self, keys):
        slow = CostModel.learned(keys, params=CostModelParams(c_ns=200.0))
        fast = CostModel.learned(keys, params=CostModelParams(c_ns=50.0))
        assert slow.lookup_latency_ns(64) == pytest.approx(
            4 * fast.lookup_latency_ns(64)
        )

    def test_window_term_grows_with_error(self, model):
        # For large errors the log2(e) term dominates: latency grows.
        assert model.lookup_latency_ns(2**14) > model.lookup_latency_ns(2**6)

    def test_invalid_error_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            model.lookup_latency_ns(0)

    def test_insert_latency_positive(self, model):
        for error in (8, 128):
            assert model.insert_latency_ns(error) > 0

    def test_insert_needs_buffer(self, model):
        with pytest.raises(InvalidParameterError):
            model.insert_latency_ns(8, buffer_size=0)


class TestSizeModel:
    def test_size_decreases_with_error(self, model):
        sizes = [model.size_bytes(e) for e in (4, 32, 256, 2048)]
        assert sizes == sorted(sizes, reverse=True)

    def test_size_is_pessimistic_vs_built_index(self, keys):
        model = CostModel.learned(keys)
        for error in (8, 32, 128):
            index = FITingTree(keys, error=error, buffer_capacity=error // 2)
            assert model.size_bytes(error) >= index.model_bytes()

    def test_latency_estimate_upper_bounds_flat_cost(self, keys):
        """Estimate >= access-counted cost at the same c (paper Fig 10a)."""
        from repro.memsim import LatencyModel
        from repro.workloads import run_lookups, uniform_lookups

        c = 50.0
        model = CostModel.learned(keys, params=CostModelParams(c_ns=c))
        queries = uniform_lookups(keys, 500, seed=1)
        for error in (16, 64):
            index = FITingTree(keys, error=error, buffer_capacity=error // 2)
            res = run_lookups(index, queries, latency_model=LatencyModel(c=c))
            assert model.lookup_latency_ns(error) >= res.modeled_ns_per_op


class TestSelectors:
    def test_latency_selector_meets_sla(self, model):
        sla = model.lookup_latency_ns(64) + 1
        chosen = model.pick_error_for_latency(sla, candidates=(16, 64, 256))
        assert model.lookup_latency_ns(chosen) <= sla

    def test_latency_selector_minimizes_size(self, model):
        # A generous SLA admits every candidate: pick the smallest index.
        chosen = model.pick_error_for_latency(1e9, candidates=(16, 64, 256))
        assert chosen == 256

    def test_latency_selector_infeasible_raises(self, model):
        with pytest.raises(InvalidParameterError):
            model.pick_error_for_latency(1.0, candidates=(16, 64))

    def test_size_selector_meets_budget(self, model):
        budget = model.size_bytes(64) + 1
        chosen = model.pick_error_for_size(budget, candidates=(16, 64, 256))
        assert model.size_bytes(chosen) <= budget

    def test_size_selector_minimizes_latency(self, model):
        # Unlimited budget: pick the fastest (smallest feasible latency).
        chosen = model.pick_error_for_size(1e12, candidates=(16, 64, 256))
        latencies = {e: model.lookup_latency_ns(e) for e in (16, 64, 256)}
        assert latencies[chosen] == min(latencies.values())

    def test_size_selector_infeasible_raises(self, model):
        with pytest.raises(InvalidParameterError):
            model.pick_error_for_size(1.0, candidates=(16,))

    def test_default_grid_is_usable(self, model):
        chosen = model.pick_error_for_size(1e12, candidates=DEFAULT_ERROR_GRID)
        assert chosen in DEFAULT_ERROR_GRID


class TestEndToEndSLA:
    def test_chosen_error_honors_simulated_sla(self, keys):
        """The full DBA loop: pick from SLA, build, measure, verify."""
        from repro.memsim import LatencyModel
        from repro.workloads import run_lookups, uniform_lookups

        c = 50.0
        model = CostModel.learned(keys, params=CostModelParams(c_ns=c))
        sla_ns = 900.0
        error = model.pick_error_for_latency(sla_ns, candidates=(8, 32, 128, 512))
        index = FITingTree(keys, error=error, buffer_capacity=int(error) // 2)
        res = run_lookups(
            index, uniform_lookups(keys, 500, seed=2),
            latency_model=LatencyModel(c=c),
        )
        assert res.modeled_ns_per_op <= sla_ns
