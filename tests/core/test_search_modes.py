"""In-segment search strategies: binary vs linear vs exponential.

All three must return identical results (first occurrence or miss) on every
workload; they differ only in probe counts. Paper Section 4.1.2.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.core.page import SegmentPage
from repro.memsim import AccessCounter

MODES = ("binary", "linear", "exponential")


def linear_page(n=200):
    keys = np.arange(n, dtype=np.float64)
    return SegmentPage(0.0, 1.0, keys, np.arange(n, dtype=np.int64))


def skewed_page():
    # Imperfect slope: predictions are off by up to ~5 positions.
    rng = np.random.default_rng(0)
    keys = np.sort(rng.uniform(0, 100, 200))
    span = keys[-1] - keys[0]
    return SegmentPage(float(keys[0]), 199 / span, keys, np.arange(200))


class TestModesAgree:
    @pytest.mark.parametrize("mode", MODES)
    def test_hits_on_linear_page(self, mode):
        page = linear_page()
        for i in range(0, 200, 13):
            assert page.find_in_data(float(i), 8, mode=mode) == i

    @pytest.mark.parametrize("mode", MODES)
    def test_misses_on_linear_page(self, mode):
        page = linear_page()
        assert page.find_in_data(13.5, 8, mode=mode) == -1
        assert page.find_in_data(-100.0, 8, mode=mode) == -1
        assert page.find_in_data(1e9, 8, mode=mode) == -1

    @pytest.mark.parametrize("mode", MODES)
    def test_skewed_predictions(self, mode):
        page = skewed_page()
        for i in range(0, 200, 7):
            assert page.find_in_data(float(page.keys[i]), 8, mode=mode) == (
                page.find_in_data(float(page.keys[i]), 8, mode="binary")
            )

    @pytest.mark.parametrize("mode", MODES)
    def test_first_occurrence_of_duplicates(self, mode):
        keys = np.array([0.0, 1.0, 2.0, 2.0, 2.0, 3.0, 4.0, 5.0])
        page = SegmentPage(0.0, 1.4, keys, np.arange(8))
        assert page.find_in_data(2.0, 8, mode=mode) == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            linear_page().find_in_data(1.0, 8, mode="quantum")

    @pytest.mark.parametrize("mode", MODES)
    def test_empty_page(self, mode):
        page = SegmentPage(0.0, 1.0, np.empty(0), np.empty(0, dtype=np.int64))
        assert page.find_in_data(1.0, 8, mode=mode) == -1


class TestProbeAccounting:
    def test_linear_cheap_when_prediction_exact(self):
        page = linear_page()
        counter = AccessCounter()
        page.find_in_data(100.0, 50, counter, mode="linear")
        assert counter.segment_probes <= 2

    def test_binary_pays_for_window(self):
        page = linear_page()
        counter = AccessCounter()
        page.find_in_data(100.0, 50, counter, mode="binary")
        assert counter.segment_probes >= 6  # ~log2(100)

    def test_exponential_between(self):
        page = linear_page()
        exp_counter = AccessCounter()
        page.find_in_data(100.0, 50, exp_counter, mode="exponential")
        bin_counter = AccessCounter()
        page.find_in_data(100.0, 50, bin_counter, mode="binary")
        assert exp_counter.segment_probes <= bin_counter.segment_probes

    def test_linear_explodes_with_bad_prediction(self):
        page = skewed_page()
        # Find the worst-predicted key and compare probe counts.
        worst = max(
            range(200),
            key=lambda i: abs(page.window(float(page.keys[i]), 0)[0] - i),
        )
        counter = AccessCounter()
        page.find_in_data(float(page.keys[worst]), 50, counter, mode="linear")
        assert counter.segment_probes >= 1


class TestIndexLevel:
    @pytest.mark.parametrize("mode", MODES)
    def test_index_results_identical(self, uniform_keys, mode):
        baseline = FITingTree(uniform_keys, error=64, buffer_capacity=0)
        index = FITingTree(
            uniform_keys, error=64, buffer_capacity=0, search=mode
        )
        queries = np.concatenate(
            [uniform_keys[::101], uniform_keys[::97] + 0.25]
        )
        assert index.bulk_lookup(queries, -1) == baseline.bulk_lookup(queries, -1)

    def test_invalid_search_rejected(self, uniform_keys):
        with pytest.raises(InvalidParameterError):
            FITingTree(uniform_keys, error=64, search="bogus")


key_list_st = st.lists(
    st.integers(min_value=0, max_value=400).map(float),
    min_size=1,
    max_size=200,
).map(sorted)


@given(keys=key_list_st, error=st.integers(min_value=2, max_value=64),
       probe=st.integers(min_value=-10, max_value=410).map(float))
@settings(max_examples=150, deadline=None)
def test_property_modes_equivalent(keys, error, probe):
    arr = np.asarray(keys)
    results = set()
    for mode in MODES:
        index = FITingTree(arr, error=error, buffer_capacity=0, search=mode)
        results.add(index.get(probe, default=-1))
    assert len(results) == 1
