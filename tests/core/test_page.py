"""SegmentPage: windowed search, buffer ops, deletion widening, iteration."""

import math

import numpy as np
import pytest

from repro.core.errors import InvariantViolationError
from repro.core.page import SegmentPage
from repro.memsim import AccessCounter


def linear_page(n=100, start=0.0, slope=1.0):
    keys = start + np.arange(n, dtype=np.float64) / slope
    return SegmentPage(start, slope, keys, np.arange(n, dtype=np.int64))


class TestWindow:
    def test_window_centered_on_prediction(self):
        page = linear_page(100)
        lo, hi = page.window(50.0, search_error=5)
        assert lo <= 50 <= hi - 1
        assert hi - lo <= 2 * 5 + 2

    def test_window_clamps_left(self):
        page = linear_page(100)
        lo, hi = page.window(0.0, search_error=5)
        assert lo == 0

    def test_window_clamps_right(self):
        page = linear_page(100)
        lo, hi = page.window(99.0, search_error=5)
        assert hi == 100

    def test_window_far_outside_prediction(self):
        page = linear_page(100)
        lo, hi = page.window(-1e9, search_error=5)
        assert (lo, hi) == (0, 1)
        lo, hi = page.window(1e9, search_error=5)
        assert (lo, hi) == (99, 100)

    def test_infinite_error_full_page(self):
        page = linear_page(64)
        assert page.window(3.0, math.inf) == (0, 64)

    def test_empty_page(self):
        page = SegmentPage(0.0, 1.0, np.empty(0), np.empty(0, dtype=np.int64))
        assert page.window(1.0, 5) == (0, 0)
        assert page.find_in_data(1.0, 5) == -1

    def test_deletions_widen_window(self):
        page = linear_page(100)
        lo0, hi0 = page.window(50.0, 3)
        page.deletions = 2
        lo1, hi1 = page.window(50.0, 3)
        assert (hi1 - lo1) > (hi0 - lo0)


class TestFind:
    def test_find_every_key(self):
        page = linear_page(200)
        for i in range(0, 200, 7):
            assert page.find_in_data(float(i), 1) == i

    def test_find_missing(self):
        page = linear_page(50)
        assert page.find_in_data(3.5, 2) == -1

    def test_find_first_of_duplicates(self):
        keys = np.array([0.0, 1.0, 1.0, 1.0, 2.0, 3.0])
        page = SegmentPage(0.0, 1.0, keys, np.arange(6))
        assert page.find_in_data(1.0, 6) == 1

    def test_counter_records_probes(self):
        page = linear_page(100)
        counter = AccessCounter()
        page.find_in_data(50.0, 7, counter)
        assert counter.segment_probes > 0
        assert counter.segment_line_misses >= 1

    def test_get_checks_buffer_after_data(self):
        page = linear_page(10)
        page.insert_into_buffer(3.5, 999)
        assert page.get(3.5, 2) == 999
        assert page.get(3.0, 2) == 3
        assert page.get(4.75, 2, default="nope") == "nope"


class TestBuffer:
    def test_buffer_stays_sorted(self):
        page = linear_page(10)
        for k in (5.5, 1.5, 9.5, 0.5):
            page.insert_into_buffer(k, int(k))
        assert page.buf_keys == sorted(page.buf_keys)
        assert page.n_buffer == 4
        assert page.n_total == 14

    def test_find_in_buffer(self):
        page = linear_page(10)
        page.insert_into_buffer(2.5, -1)
        page.insert_into_buffer(2.5, -2)
        assert page.find_in_buffer(2.5) == 0
        assert page.find_in_buffer(9.9) == -1

    def test_delete_at_buffer(self):
        page = linear_page(10)
        page.insert_into_buffer(2.5, -1)
        assert page.delete_at_buffer(0) == -1
        assert page.n_buffer == 0

    def test_merged_arrays(self):
        page = linear_page(5)
        page.insert_into_buffer(1.5, 100)
        page.insert_into_buffer(-1.0, 200)
        merged_keys, merged_values = page.merged_arrays()
        assert list(merged_keys) == [-1.0, 0.0, 1.0, 1.5, 2.0, 3.0, 4.0]
        assert list(merged_values) == [200, 0, 1, 100, 2, 3, 4]

    def test_merged_arrays_empty_buffer_is_identity(self):
        page = linear_page(5)
        keys, values = page.merged_arrays()
        assert keys is page.keys
        assert values is page.values


class TestDeleteData:
    def test_delete_at_data(self):
        page = linear_page(10)
        assert page.delete_at_data(4) == 4
        assert page.n_data == 9
        assert page.deletions == 1
        # Remaining keys still findable with the widened window.
        for i in [0, 3, 5, 9]:
            assert page.get(float(i), 1) == i


class TestIterItems:
    def test_interleaves_buffer(self):
        page = linear_page(5)
        page.insert_into_buffer(1.5, 100)
        page.insert_into_buffer(4.5, 200)
        keys = [k for k, _ in page.iter_items()]
        assert keys == [0.0, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5]

    def test_lo_skips(self):
        page = linear_page(10)
        page.insert_into_buffer(4.5, 100)
        keys = [k for k, _ in page.iter_items(lo=4.0)]
        assert keys == [4.0, 4.5, 5.0, 6.0, 7.0, 8.0, 9.0]

    def test_min_max_key(self):
        page = linear_page(5)
        assert page.min_key() == 0.0
        assert page.max_key() == 4.0
        page.insert_into_buffer(-1.0, 1)
        page.insert_into_buffer(99.0, 2)
        assert page.min_key() == -1.0
        assert page.max_key() == 99.0


class TestValidate:
    def test_valid_page_passes(self):
        page = linear_page(20)
        page.validate(search_error=1, buffer_capacity=10)

    def test_unsorted_data_fails(self):
        page = linear_page(5)
        page.keys = page.keys[::-1].copy()
        with pytest.raises(InvariantViolationError):
            page.validate(1, 10)

    def test_overfull_buffer_fails(self):
        page = linear_page(5)
        page.insert_into_buffer(0.5, 1)
        page.insert_into_buffer(0.6, 2)
        with pytest.raises(InvariantViolationError):
            page.validate(1, 2)

    def test_deviation_violation_fails(self):
        keys = np.array([0.0, 1.0, 2.0, 100.0, 101.0])
        page = SegmentPage(0.0, 1.0, keys, np.arange(5))
        with pytest.raises(InvariantViolationError):
            page.validate(search_error=1, buffer_capacity=10)

    def test_length_mismatch_fails(self):
        page = linear_page(5)
        page.values = page.values[:-1]
        with pytest.raises(InvariantViolationError):
            page.validate(1, 10)
