"""The bulk delete path: scalar equivalence, charge parity, edge cases.

Pins the PR's delete contract at the core layer:

* ``PagedIndexBase.delete_batch`` leaves exactly the state a loop of
  scalar ``delete`` calls (sorted order, ties in request order) leaves —
  including page rebuilds triggered by deletion widening — and returns
  the same values;
* deleted keys then miss on lookup; deleting an absent key is a no-op
  under ``missing="ignore"`` and raises under ``missing="raise"``;
* interleaved insert/delete batches stay equivalent to their scalar twin;
* the scalar path and the batch path charge identical page-level
  counters (the counter-asymmetry fix: deletes now charge ``data_move``
  like inserts always did, and the vectorized path replicates the
  scalar loop's evolving buffer/window charges exactly).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import KeyNotFoundError
from repro.core.fiting_tree import FITingTree
from repro.memsim.counter import AccessCounter

key_st = st.integers(min_value=0, max_value=120).map(float)

#: Counter fields that must match between the scalar loop and the batch
#: path. ``tree_nodes`` is excluded by design: the batch path descends
#: once per touched page instead of once per key (that is the point).
PAGE_LEVEL_FIELDS = (
    "segment_probes",
    "segment_line_misses",
    "buffer_probes",
    "buffer_line_misses",
    "data_moves",
    "splits",
    "ops",
)


def build_pair(build, error=24, buffer_capacity=6):
    arr = np.asarray(sorted(build), dtype=np.float64)
    c1, c2 = AccessCounter(), AccessCounter()
    ref = FITingTree(arr, error=error, buffer_capacity=buffer_capacity, counter=c1)
    bulk = FITingTree(arr, error=error, buffer_capacity=buffer_capacity, counter=c2)
    return ref, bulk, c1, c2


def state_of(index):
    return [
        (
            page.start_key,
            page.keys.tolist(),
            list(page.values),
            [float(k) for k in page.buf_keys],
            list(page.buf_values),
            page.deletions,
        )
        for page in index.pages()
    ]


def scalar_delete_loop(index, keys):
    """The reference semantics: scalar deletes in stable-sorted order."""
    out = []
    order = np.argsort(np.asarray(keys, dtype=np.float64), kind="stable")
    sorted_back = np.empty(len(keys), dtype=object)
    for pos in order:
        try:
            sorted_back[pos] = index.delete(float(keys[pos]))
        except KeyNotFoundError:
            sorted_back[pos] = None
    out = list(sorted_back)
    return out


class TestScalarEquivalence:
    @given(
        build=st.lists(key_st, min_size=1, max_size=150),
        inserts=st.lists(key_st, max_size=60),
        deletes=st.lists(key_st, min_size=1, max_size=120),
    )
    @settings(max_examples=120, deadline=None)
    def test_state_values_and_counters_match(self, build, inserts, deletes):
        ref, bulk, c_ref, c_bulk = build_pair(build)
        if inserts:
            ins = np.asarray(inserts, dtype=np.float64)
            ref.insert_batch(ins)
            bulk.insert_batch(ins)
        want = scalar_delete_loop(ref, deletes)
        got = bulk.delete_batch(deletes, missing="ignore", default=None)
        assert list(got) == want
        bulk.validate()
        assert state_of(ref) == state_of(bulk)
        assert list(ref.items()) == list(bulk.items())
        for field in PAGE_LEVEL_FIELDS:
            assert getattr(c_ref, field) == getattr(c_bulk, field), field

    @given(
        build=st.lists(key_st, min_size=1, max_size=100),
        rounds=st.lists(
            st.tuples(
                st.lists(key_st, max_size=25), st.lists(key_st, max_size=25)
            ),
            max_size=4,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_insert_delete_rounds(self, build, rounds):
        ref, bulk, _c1, _c2 = build_pair(build, error=16, buffer_capacity=4)
        for inserts, deletes in rounds:
            if inserts:
                ins = np.asarray(inserts, dtype=np.float64)
                ref.insert_batch(ins)
                bulk.insert_batch(ins)
            if deletes:
                scalar_delete_loop(ref, deletes)
                bulk.delete_batch(deletes, missing="ignore")
            assert state_of(ref) == state_of(bulk)
        bulk.validate()


class TestDeleteSemantics:
    def test_delete_then_lookup_misses(self):
        keys = np.sort(np.random.default_rng(0).uniform(0, 1e4, 4_000))
        index = FITingTree(keys, error=64, buffer_capacity=16)
        victims = keys[100:2100:2]
        got = index.delete_batch(victims)
        assert (got == np.arange(100, 2100, 2)).all()
        sentinel = object()
        assert all(index.get(k, sentinel) is sentinel for k in victims[:200])
        survivors = keys[101:2101:2]
        assert (index.get_batch(survivors) == np.arange(101, 2101, 2)).all()
        assert len(index) == keys.size - victims.size
        index.validate()

    def test_delete_absent_ignore_is_noop(self):
        keys = np.sort(np.random.default_rng(1).uniform(0, 1e4, 1_000))
        index = FITingTree(keys, error=32, buffer_capacity=8)
        before = state_of(index)
        version = index.version
        out = index.delete_batch(
            [-5.0, 2e9, keys[0] + 1e-7], missing="ignore", default="gone"
        )
        assert list(out) == ["gone"] * 3
        assert state_of(index) == before
        assert index.version == version  # strict no-op, views stay valid

    def test_delete_absent_raises_after_applying_earlier_keys(self):
        keys = np.asarray([1.0, 2.0, 3.0, 4.0])
        index = FITingTree(keys, error=8, buffer_capacity=2)
        with pytest.raises(KeyNotFoundError):
            index.delete_batch([2.0, 2.5])  # 2.0 applies, then 2.5 raises
        sentinel = object()
        assert index.get(2.0, sentinel) is sentinel
        assert len(index) == 3

    def test_empty_batch_is_strict_noop(self):
        index = FITingTree(np.asarray([1.0, 2.0]), error=8, buffer_capacity=2)
        version = index.version
        out = index.delete_batch(np.empty(0))
        assert out.size == 0
        assert index.version == version

    def test_duplicate_requests_consume_occurrences_then_miss(self):
        keys = np.asarray([1.0, 2.0, 2.0, 2.0, 3.0])
        index = FITingTree(keys, error=8, buffer_capacity=2)
        out = index.delete_batch([2.0] * 5, missing="ignore", default=None)
        assert sorted(v for v in out if v is not None) == [1, 2, 3]
        assert list(out).count(None) == 2
        sentinel = object()
        assert index.get(2.0, sentinel) is sentinel

    def test_deletion_widening_triggers_rebuild_like_scalar(self):
        keys = np.sort(np.random.default_rng(2).uniform(0, 1e4, 2_000))
        ref = FITingTree(keys, error=24, buffer_capacity=6)
        bulk = FITingTree(keys, error=24, buffer_capacity=6)
        victims = keys[::3]  # enough deletions per page to force rebuilds
        scalar_delete_loop(ref, victims)
        bulk.delete_batch(victims)
        assert state_of(ref) == state_of(bulk)
        bulk.validate()
        assert all(p.deletions < 6 for p in bulk.pages())

    def test_buffered_occurrences_deleted_before_data(self):
        index = FITingTree(np.asarray([1.0, 2.0, 3.0]), error=16,
                           buffer_capacity=8)
        index.insert(2.0, 99)  # buffered duplicate of a data key
        out = index.delete_batch([2.0, 2.0])
        assert list(out) == [99, 1]  # buffer first, then the data slot
