"""Optimal segmentation: cross-validation against brute force and greedy."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.optimal import (
    cone_bounds,
    optimal_count_bruteforce,
    optimal_segment_count,
    optimal_segments,
    optimal_segments_endpoint,
)
from repro.core.segment import verify_segments
from repro.core.segmentation import shrinking_cone
from repro.datasets import adversarial_keys


def random_keys(seed, n, dup_frac=0.3):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0, 200, n)
    n_dup = int(n * dup_frac)
    if n_dup:
        base[:n_dup] = rng.choice(base[n_dup:], n_dup)
    return np.sort(base)


class TestFreeSlopeOptimal:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce(self, seed):
        keys = random_keys(seed, 40)
        for error in (1.0, 3.0, 9.0):
            expected = optimal_count_bruteforce(keys, error, "free")
            assert len(optimal_segments(keys, error)) == expected
            assert optimal_segment_count(keys, error) == expected

    def test_segments_are_valid(self, periodic_keys):
        for error in (3, 11, 47):
            segs = optimal_segments(periodic_keys, error)
            verify_segments(periodic_keys, segs, error)

    def test_never_more_than_greedy(self, periodic_keys):
        for error in (2, 5, 20, 80):
            opt = optimal_segment_count(periodic_keys, error)
            greedy = len(shrinking_cone(periodic_keys, error))
            assert opt <= greedy

    def test_count_equals_segments_len(self, periodic_keys):
        for error in (4, 16):
            assert optimal_segment_count(periodic_keys, error) == len(
                optimal_segments(periodic_keys, error)
            )

    def test_linear_data_single_segment(self):
        keys = np.arange(5_000, dtype=np.float64)
        assert optimal_segment_count(keys, 1) == 1

    def test_empty_and_single(self):
        assert optimal_segments([], 5) == []
        assert optimal_segment_count([], 5) == 0
        assert len(optimal_segments([3.0], 5)) == 1

    def test_duplicates(self):
        keys = np.array([1.0] * 30)
        # Duplicate runs force ceil(30 / (e+1)) segments even for optimal.
        assert optimal_segment_count(keys, 9) == 3

    def test_monotone_in_error(self, periodic_keys):
        counts = [
            optimal_segment_count(periodic_keys, e) for e in (2, 8, 32, 128)
        ]
        assert counts == sorted(counts, reverse=True)


class TestEndpointOptimal:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_bruteforce(self, seed):
        keys = random_keys(seed, 35)
        for error in (1.0, 3.0, 9.0):
            expected = optimal_count_bruteforce(keys, error, "endpoint")
            got = len(optimal_segments_endpoint(keys, error))
            assert got == expected

    def test_segments_are_valid(self, periodic_keys):
        keys = periodic_keys[:600]
        for error in (3, 11):
            segs = optimal_segments_endpoint(keys, error)
            verify_segments(keys, segs, error)

    def test_free_never_worse_than_endpoint(self):
        for seed in range(6):
            keys = random_keys(seed + 100, 60)
            for error in (2.0, 6.0):
                free = optimal_segment_count(keys, error)
                endpoint = len(optimal_segments_endpoint(keys, error))
                assert free <= endpoint

    def test_greedy_vs_endpoint_on_real_shape(self, periodic_keys):
        keys = periodic_keys[:800]
        error = 5.0
        greedy = len(shrinking_cone(keys, error))
        endpoint = len(optimal_segments_endpoint(keys, error))
        assert endpoint <= greedy

    def test_size_guard(self):
        keys = np.arange(100, dtype=np.float64)
        with pytest.raises(InvalidParameterError, match="max_n"):
            optimal_segments_endpoint(keys, 5, max_n=50)
        # Explicit override works.
        segs = optimal_segments_endpoint(keys, 5, max_n=100)
        assert len(segs) == 1

    def test_empty_and_single(self):
        assert optimal_segments_endpoint([], 5) == []
        assert len(optimal_segments_endpoint([1.0], 5)) == 1

    def test_all_duplicates(self):
        keys = np.array([2.0] * 25)
        segs = optimal_segments_endpoint(keys, 9.0)
        assert len(segs) == 3
        verify_segments(keys, segs, 9.0)


class TestAdversarial:
    """Appendix A.3: greedy produces N+2 segments, optimal stays O(1)."""

    @pytest.mark.parametrize("n_patterns", [0, 3, 25])
    def test_greedy_count_exact(self, n_patterns):
        keys = adversarial_keys(n_patterns, error=100)
        greedy = len(shrinking_cone(keys, 100))
        assert greedy == n_patterns + 2

    @pytest.mark.parametrize("n_patterns", [3, 25])
    def test_optimal_constant(self, n_patterns):
        keys = adversarial_keys(n_patterns, error=100)
        assert optimal_segment_count(keys, 100) <= 2

    def test_endpoint_optimal_small(self):
        keys = adversarial_keys(5, error=100)
        assert len(optimal_segments_endpoint(keys, 100)) <= 3

    def test_ratio_grows_linearly(self):
        r10 = len(shrinking_cone(adversarial_keys(10, 100), 100))
        r40 = len(shrinking_cone(adversarial_keys(40, 100), 100))
        assert r40 - r10 == 30


class TestConeBounds:
    def test_feasible_interval_contains_obvious_slope(self):
        keys = np.arange(100, dtype=np.float64)
        lo, hi = cone_bounds(keys, 0, 100, error=1)
        assert lo <= 1.0 <= hi

    def test_infeasible_raises(self):
        from repro.core.errors import SegmentationError

        keys = np.array([0.0] * 50)  # 50 duplicates, error 3: infeasible
        with pytest.raises(SegmentationError):
            cone_bounds(keys, 0, 50, error=3)
