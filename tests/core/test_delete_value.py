"""delete_value / delete_row: removing a specific (key, payload) pair."""

import numpy as np
import pytest

from repro.core.fiting_tree import FITingTree
from repro.core.secondary import SecondaryFITingTree


class TestDeleteValue:
    def test_removes_only_matching_payload(self):
        keys = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        values = np.array([10, 20, 21, 22, 30])
        t = FITingTree(keys, values, error=8, buffer_capacity=2)
        assert t.delete_value(2.0, 21)
        assert sorted(t.lookup_all(2.0)) == [20, 22]
        assert len(t) == 4
        t.validate()

    def test_no_match_returns_false(self):
        t = FITingTree(np.array([1.0, 2.0]), np.array([10, 20]), error=8,
                       buffer_capacity=2)
        assert not t.delete_value(2.0, 999)
        assert not t.delete_value(5.0, 10)
        assert len(t) == 2

    def test_matches_in_buffer(self):
        t = FITingTree(np.arange(100.0), error=16, buffer_capacity=8)
        t.insert(50.5, 777)
        t.insert(50.5, 778)
        assert t.delete_value(50.5, 778)
        assert t.lookup_all(50.5) == [777]
        t.validate()

    def test_read_only_rejected(self):
        from repro.core.errors import InvalidParameterError

        t = FITingTree(np.arange(10.0), error=8, buffer_capacity=0)
        with pytest.raises(InvalidParameterError):
            t.delete_value(1.0, 1)

    def test_across_split_duplicate_run(self):
        keys = np.sort(np.concatenate([np.full(50, 5.0), np.arange(50.0) + 100]))
        t = FITingTree(keys, error=4, buffer_capacity=2)
        rows = t.lookup_all(5.0)
        victim = rows[25]
        assert t.delete_value(5.0, victim)
        remaining = t.lookup_all(5.0)
        assert victim not in remaining
        assert len(remaining) == 49
        t.validate()

    def test_rebuild_after_many_value_deletes(self):
        keys = np.arange(1000, dtype=np.float64)
        t = FITingTree(keys, error=16, buffer_capacity=4)
        for i in range(200, 220):
            assert t.delete_value(float(i), i)
        t.validate()
        assert t.get(199.0) == 199
        assert t.get(205.0) is None


class TestSecondaryDeleteRow:
    def test_delete_specific_row(self):
        column = np.array([7.0, 7.0, 7.0, 3.0])
        idx = SecondaryFITingTree(column, error=8, buffer_capacity=2)
        assert idx.delete_row(7.0, 1)
        assert sorted(idx.lookup(7.0)) == [0, 2]
        idx.validate()

    def test_delete_row_absent(self):
        column = np.array([7.0, 3.0])
        idx = SecondaryFITingTree(column, error=8, buffer_capacity=2)
        assert not idx.delete_row(7.0, 99)
        assert not idx.delete_row(1.0, 0)
        assert len(idx) == 2
