"""ShrinkingCone segmentation: correctness, bounds, duplicates, edge cases."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, NotSortedError
from repro.core.segment import verify_segments
from repro.core.segmentation import (
    cone_reach,
    exact_cone,
    fixed_segments,
    max_segments_bound,
    shrinking_cone,
    shrinking_cone_reference,
)


class TestBasics:
    def test_empty(self):
        assert shrinking_cone([], 10) == []

    def test_single_key(self):
        segs = shrinking_cone([42.0], 10)
        assert len(segs) == 1
        assert segs[0].start_key == 42.0
        assert segs[0].length == 1

    def test_perfectly_linear_one_segment(self):
        keys = np.arange(10_000, dtype=np.float64)
        segs = shrinking_cone(keys, 1)
        assert len(segs) == 1
        assert segs[0].slope == pytest.approx(1.0)
        verify_segments(keys, segs, 1)

    def test_two_regimes_two_segments(self):
        # Slope 1 then slope 100: a tight error cannot bridge them.
        a = np.arange(1000, dtype=np.float64)
        b = 1000.0 + np.arange(1000, dtype=np.float64) * 100.0
        keys = np.concatenate([a, b])
        segs = shrinking_cone(keys, 5)
        assert 2 <= len(segs) <= 4
        verify_segments(keys, segs, 5)

    def test_error_bound_always_satisfied(self, periodic_keys):
        for error in (1, 3, 10, 50):
            segs = shrinking_cone(periodic_keys, error)
            verify_segments(periodic_keys, segs, error)

    def test_larger_error_fewer_segments(self, periodic_keys):
        counts = [
            len(shrinking_cone(periodic_keys, e)) for e in (1, 5, 25, 125)
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_unsorted_rejected(self):
        with pytest.raises(NotSortedError):
            shrinking_cone([3.0, 1.0, 2.0], 10)

    def test_bad_error_rejected(self):
        for bad in (0, -1):
            with pytest.raises(InvalidParameterError):
                shrinking_cone([1.0, 2.0], bad)

    def test_bad_accept_rejected(self):
        with pytest.raises(InvalidParameterError):
            shrinking_cone([1.0, 2.0], 10, accept="fuzzy")

    def test_bad_chunk_rejected(self):
        with pytest.raises(InvalidParameterError):
            shrinking_cone([1.0, 2.0], 10, chunk=1)

    def test_2d_input_rejected(self):
        with pytest.raises(InvalidParameterError):
            shrinking_cone(np.zeros((3, 3)), 10)

    def test_fractional_error(self, periodic_keys):
        segs = shrinking_cone(periodic_keys, 2.5)
        verify_segments(periodic_keys, segs, 2.5)


class TestDuplicates:
    def test_short_duplicate_run_single_segment(self):
        keys = np.array([1.0] * 5 + [2.0, 3.0, 4.0])
        segs = shrinking_cone(keys, 10)
        assert len(segs) == 1
        verify_segments(keys, segs, 10)

    def test_long_duplicate_run_splits(self):
        keys = np.array([1.0] * 100)
        segs = shrinking_cone(keys, 9)
        # Each segment covers at most error+1 = 10 duplicate slots.
        assert len(segs) == 10
        assert all(s.length == 10 for s in segs)
        verify_segments(keys, segs, 9)

    def test_all_equal_keys_slope_zero(self):
        keys = np.array([5.0] * 8)
        segs = shrinking_cone(keys, 100)
        assert len(segs) == 1
        assert segs[0].slope == 0.0

    def test_duplicates_mid_stream(self):
        keys = np.sort(np.array([1.0, 2.0, 2.0, 2.0, 3.0, 10.0, 11.0] * 30))
        for error in (2, 5, 40):
            segs = shrinking_cone(keys, error)
            verify_segments(keys, segs, error)

    def test_step_data_worst_case_counts(self):
        from repro.datasets import step_data

        keys = step_data(5_000, step=100)
        below = shrinking_cone(keys, 10)
        # Worst case: roughly one segment per error+1 positions (a segment
        # can absorb one extra element when it straddles a step boundary).
        assert 5_000 / 13 <= len(below) <= -(-5_000 // 11)
        assert all(s.length >= 11 for s in below[:-1])
        above = shrinking_cone(keys, 100)
        assert len(above) == 1


class TestTheorem31:
    """Theorem 3.1: a maximal segment covers at least error+1 locations."""

    @pytest.mark.parametrize("error", [2, 5, 17])
    def test_min_coverage_random(self, error, rng):
        keys = np.sort(rng.uniform(0, 1e5, 3_000))
        segs = shrinking_cone(keys, error)
        # Every segment except the last was closed by a violation, hence
        # maximal, hence covers >= error+1 locations.
        for seg in segs[:-1]:
            assert seg.length >= error + 1

    def test_min_coverage_periodic(self, periodic_keys):
        error = 4
        segs = shrinking_cone(periodic_keys, error)
        assert len(segs) > 2
        for seg in segs[:-1]:
            assert seg.length >= error + 1

    def test_segment_count_bound(self, periodic_keys):
        error = 6
        segs = shrinking_cone(periodic_keys, error)
        n_distinct = len(np.unique(periodic_keys))
        bound = max_segments_bound(n_distinct, len(periodic_keys), error)
        assert len(segs) <= bound


class TestReferenceEquivalence:
    @pytest.mark.parametrize("accept", ["paper", "exact"])
    @pytest.mark.parametrize("error", [1, 7, 64])
    def test_fast_matches_reference(self, accept, error, rng):
        keys = np.sort(rng.uniform(0, 1e4, 1_500))
        fast = shrinking_cone(keys, error, accept=accept, chunk=64)
        ref = shrinking_cone_reference(keys, error, accept=accept)
        assert fast == ref

    def test_fast_matches_reference_with_duplicates(self, rng):
        base = rng.uniform(0, 100, 300)
        keys = np.sort(np.concatenate([base, rng.choice(base, 300)]))
        for error in (2, 11):
            assert shrinking_cone(keys, error, chunk=32) == (
                shrinking_cone_reference(keys, error)
            )

    def test_chunk_size_does_not_change_result(self, periodic_keys):
        baseline = shrinking_cone(periodic_keys, 8, chunk=4096)
        for chunk in (2, 3, 17, 100):
            assert shrinking_cone(periodic_keys, 8, chunk=chunk) == baseline


class TestExactAccept:
    def test_exact_never_more_segments(self, rng):
        for seed in range(5):
            keys = np.sort(np.random.default_rng(seed).uniform(0, 1e5, 2_000))
            for error in (3, 10, 50):
                paper = shrinking_cone(keys, error, accept="paper")
                exact = exact_cone(keys, error)
                assert len(exact) <= len(paper)
                verify_segments(keys, exact, error)

    def test_exact_cone_valid_on_periodic(self, periodic_keys):
        segs = exact_cone(periodic_keys, 7)
        verify_segments(periodic_keys, segs, 7)


class TestConeReach:
    def test_reach_at_least_next(self):
        keys = np.array([0.0, 100.0, 101.0, 102.0])
        for i in range(4):
            assert cone_reach(keys, i, 1) >= i + 1

    def test_reach_full_for_linear(self):
        keys = np.arange(500, dtype=np.float64)
        assert cone_reach(keys, 0, 1) == 500

    def test_reach_prefix_closed(self, periodic_keys):
        # Reach defines feasibility: any prefix of the reach is feasible,
        # verified via verify_segments on the sub-segment.
        from repro.core.optimal import cone_bounds
        from repro.core.segment import Segment
        from repro.core.segmentation import _slope_from_cone

        error = 5.0
        reach = cone_reach(periodic_keys, 0, error)
        assert reach > 1
        for end in (2, reach // 2, reach):
            lo, hi = cone_bounds(periodic_keys, 0, end, error)
            seg = Segment(
                float(periodic_keys[0]), 0, _slope_from_cone(lo, hi), end
            )
            verify_segments(periodic_keys[:end], [seg], error)


class TestFixedSegments:
    def test_exact_division(self):
        keys = np.arange(100, dtype=np.float64)
        segs = fixed_segments(keys, 25)
        assert [s.length for s in segs] == [25, 25, 25, 25]

    def test_remainder_page(self):
        keys = np.arange(103, dtype=np.float64)
        segs = fixed_segments(keys, 25)
        assert [s.length for s in segs] == [25, 25, 25, 25, 3]

    def test_page_size_one(self):
        segs = fixed_segments(np.arange(5.0), 1)
        assert len(segs) == 5

    def test_invalid_page_size(self):
        with pytest.raises(InvalidParameterError):
            fixed_segments(np.arange(5.0), 0)

    def test_contiguous_cover(self):
        keys = np.sort(np.random.default_rng(3).uniform(0, 10, 77))
        segs = fixed_segments(keys, 10)
        assert segs[0].start_pos == 0
        for a, b in zip(segs, segs[1:]):
            assert a.end_pos == b.start_pos
        assert segs[-1].end_pos == 77
