"""The paper's in-cone accept test is sufficient but NOT necessary.

This is the documented deviation in DESIGN.md: the paper claims that a
point falling outside the cone cannot extend the segment, but a concrete
counterexample shows the slope-interval intersection can remain non-empty.
These tests pin the counterexample and the relationship between the two
accept tests.
"""

import numpy as np

from repro.core.segment import verify_segments
from repro.core.segmentation import exact_cone, shrinking_cone


def test_counterexample_paper_rejects_exact_accepts():
    # error = 10; origin (0, pos 0).
    # A = key 100 at pos 5 (5 duplicates of origin first): hi = 15/100.
    # B = key 101 at pos 20: s = 20/101 ~ 0.198 > hi = 0.15 -> paper splits.
    # But lo_cand = 10/101 ~ 0.099 <= 0.15 -> intersection non-empty: a
    # slope like 0.12 satisfies both |12-5|<=10 and |12.12-20|<=10.
    keys = np.array([0.0] * 5 + [100.0] * 15 + [101.0])
    error = 10.0
    paper = shrinking_cone(keys, error, accept="paper")
    exact = shrinking_cone(keys, error, accept="exact")
    assert len(exact) < len(paper), (
        "expected the exact test to accept a point the paper test rejects"
    )
    # Both outputs still satisfy the error bound.
    verify_segments(keys, paper, error)
    verify_segments(keys, exact, error)


def test_exact_single_segment_on_counterexample():
    keys = np.array([0.0] * 5 + [100.0] * 15 + [101.0])
    exact = shrinking_cone(keys, 10.0, accept="exact")
    assert len(exact) == 1


def test_paper_test_is_sufficient():
    """Everything the paper test produces is a valid segmentation."""
    rng = np.random.default_rng(0)
    for _ in range(10):
        keys = np.sort(rng.uniform(0, 1000, 500))
        for error in (2, 8):
            verify_segments(keys, shrinking_cone(keys, error), error)


def test_exact_upper_bounded_by_paper_everywhere():
    rng = np.random.default_rng(1)
    for trial in range(20):
        n = int(rng.integers(2, 400))
        keys = np.sort(rng.choice(rng.uniform(0, 500, n), n))
        error = float(rng.uniform(0.5, 30))
        paper = shrinking_cone(keys, error, accept="paper")
        exact = exact_cone(keys, error)
        assert len(exact) <= len(paper)
