"""Property test: save/load round trips are invisible to the index.

The satellite contract for the persistence layer: for ANY build + insert
history, serializing and reloading mid-history leaves the index bit-
identical to a twin that never touched disk — same contents, same page
geometry, same buffered entries, same row-id counter, and identical
behavior under FURTHER inserts after the reload (the part the happy-path
suite never covered).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fiting_tree import FITingTree
from repro.core.serialize import load_index, save_index

key_st = st.integers(min_value=0, max_value=400).map(float)
build_st = st.lists(key_st, max_size=120).map(sorted)
inserts_st = st.lists(key_st, max_size=60)
error_st = st.integers(min_value=4, max_value=64)


def assert_twins(a: FITingTree, b: FITingTree) -> None:
    """Bit-identical state: geometry, contents, buffers, counters."""
    assert len(a) == len(b)
    assert a.n_pages == b.n_pages
    assert a.model_bytes() == b.model_bytes()
    assert a._next_rowid == b._next_rowid
    assert list(a.items()) == list(b.items())
    for (ka, pa), (kb, pb) in zip(a._tree.items(), b._tree.items()):
        assert ka == kb
        assert pa.slope == pb.slope
        assert pa.deletions == pb.deletions
        assert pa.keys.tolist() == pb.keys.tolist()
        assert pa.values.tolist() == pb.values.tolist()
        assert pa.buf_keys == pb.buf_keys
        assert pa.buf_values == pb.buf_values


@given(
    build=build_st,
    first=inserts_st,
    second=inserts_st,
    error=error_st,
)
@settings(max_examples=80, deadline=None)
def test_roundtrip_mid_history_is_invisible(tmp_path_factory, build, first,
                                            second, error):
    path = str(tmp_path_factory.mktemp("ser") / "index.npz")
    buffer_capacity = max(1, error // 3)
    keys = np.asarray(build, dtype=np.float64)

    disk = FITingTree(keys, error=error, buffer_capacity=buffer_capacity)
    twin = FITingTree(keys, error=error, buffer_capacity=buffer_capacity)
    for k in first:
        disk.insert(k)
        twin.insert(k)

    save_index(disk, path)
    loaded = load_index(path)
    loaded.validate()
    assert_twins(loaded, twin)

    # The reloaded index must keep behaving identically — later inserts
    # land in the same buffers, trigger the same splits, assign the same
    # row ids.
    for k in second:
        loaded.insert(k)
        twin.insert(k)
    loaded.validate()
    twin.validate()
    assert_twins(loaded, twin)
    probe = np.asarray(
        sorted(set(build + first + second + [401.0])), dtype=np.float64
    )
    sentinel = object()
    for q in probe:
        got = loaded.get(q, sentinel)
        want = twin.get(q, sentinel)
        assert (got is sentinel) == (want is sentinel)
        if got is not sentinel:
            assert got == want
