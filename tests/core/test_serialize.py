"""Save/load round trips for the FITing-Tree."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.core.serialize import load_index, save_index


def roundtrip(index, tmp_path):
    path = str(tmp_path / "index.npz")
    save_index(index, path)
    return load_index(path)


class TestRoundTrip:
    def test_fresh_index(self, uniform_keys, tmp_path):
        index = FITingTree(uniform_keys, error=64)
        loaded = roundtrip(index, tmp_path)
        loaded.validate()
        assert len(loaded) == len(index)
        assert loaded.n_segments == index.n_segments
        assert loaded.model_bytes() == index.model_bytes()
        for i in range(0, len(uniform_keys), 199):
            assert loaded.get(uniform_keys[i]) == i

    def test_after_mutations(self, uniform_keys, tmp_path, rng):
        index = FITingTree(uniform_keys, error=32, buffer_capacity=8)
        inserted = rng.uniform(0, 1e6, 500)
        for i, k in enumerate(inserted):
            index.insert(k, 100_000 + i)
        for k in uniform_keys[::500]:
            index.delete(k)
        loaded = roundtrip(index, tmp_path)
        loaded.validate()
        assert len(loaded) == len(index)
        assert list(loaded.items()) == list(index.items())
        # Buffered (unmerged) inserts survive the round trip.
        assert loaded.get(inserted[0]) == 100_000

    def test_rowid_counter_survives(self, uniform_keys, tmp_path):
        index = FITingTree(uniform_keys, error=64)
        index.insert(1e7)
        loaded = roundtrip(index, tmp_path)
        loaded.insert(1e7 + 1)
        assert loaded.get(1e7 + 1) == len(uniform_keys) + 1

    def test_parameters_survive(self, uniform_keys, tmp_path):
        index = FITingTree(
            uniform_keys, error=48, buffer_capacity=7, accept="exact",
            search="exponential", branching=8,
        )
        loaded = roundtrip(index, tmp_path)
        assert loaded.error == 48
        assert loaded.buffer_capacity == 7
        assert loaded.seg_error == 41
        assert loaded._accept == "exact"
        assert loaded.search_mode == "exponential"
        assert loaded._tree.branching == 8

    def test_empty_index(self, tmp_path):
        loaded = roundtrip(FITingTree(error=16), tmp_path)
        assert len(loaded) == 0
        loaded.insert(1.0)
        assert loaded.get(1.0) == 0

    def test_float_values(self, tmp_path):
        keys = np.arange(100, dtype=np.float64)
        index = FITingTree(keys, keys * 0.5, error=8)
        loaded = roundtrip(index, tmp_path)
        assert loaded.get(10.0) == 5.0
        loaded.insert(200.0, 100.0)
        assert loaded.get(200.0) == 100.0

    def test_duplicate_runs_survive(self, tmp_path):
        keys = np.sort(np.concatenate([np.full(40, 5.0), np.arange(40.0)]))
        index = FITingTree(keys, error=4, buffer_capacity=2)
        expected = len(index.lookup_all(5.0))
        assert expected == 41  # 40 explicit + the 5.0 inside arange(40)
        loaded = roundtrip(index, tmp_path)
        assert len(loaded.lookup_all(5.0)) == expected

    def test_loaded_index_mutable(self, uniform_keys, tmp_path):
        loaded = roundtrip(FITingTree(uniform_keys, error=32), tmp_path)
        for i in range(200):
            loaded.insert(float(i) * 11.13, 900_000 + i)
        loaded.validate()
        assert len(loaded) == len(uniform_keys) + 200


class TestErrors:
    def test_object_values_rejected(self, tmp_path):
        values = np.array(["a", "b"], dtype=object)
        index = FITingTree(np.arange(2.0), values, error=4)
        with pytest.raises(InvalidParameterError):
            save_index(index, str(tmp_path / "x.npz"))

    def test_wrong_type_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            save_index({"not": "an index"}, str(tmp_path / "x.npz"))

    def test_version_check(self, uniform_keys, tmp_path):
        import json

        path = str(tmp_path / "index.npz")
        save_index(FITingTree(uniform_keys[:100], error=16), path)
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["format_version"] = 999
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez(path, **data)
        with pytest.raises(InvalidParameterError, match="version"):
            load_index(path)
