"""The (start_key, seq) tree-key machinery: splits, interleaving, renumber.

These scenarios target the trickiest part of the paged index: pages that
share a start key (split duplicate runs) must keep their relative data
order across arbitrarily many re-segmentations, including when seq-number
gaps are exhausted and a global renumber is needed.
"""

import numpy as np

from repro.core.fiting_tree import FITingTree
from repro.core.paged_index import _SEQ_SPACING


def test_bulk_seqs_are_spaced():
    keys = np.sort(np.random.default_rng(0).uniform(0, 1e4, 2000))
    t = FITingTree(keys, error=4, buffer_capacity=1)
    seqs = [seq for (_, seq), _ in t._tree.items()]
    assert seqs == sorted(seqs)
    assert all(b - a == _SEQ_SPACING for a, b in zip(seqs, seqs[1:]))


def test_split_inserts_between_neighbors():
    keys = np.sort(np.random.default_rng(1).uniform(0, 1e4, 2000))
    t = FITingTree(keys, error=8, buffer_capacity=2)
    for i in range(200):
        t.insert(float(i * 50 % 10_000), 10_000 + i)
    t.validate()
    seqs = [seq for (_, seq), _ in t._tree.items()]
    assert seqs == sorted(seqs)  # still monotone after many splits
    tree_keys = [k for k, _ in t._tree.items()]
    assert tree_keys == sorted(tree_keys)


def test_equal_start_pages_keep_data_order():
    # A duplicate run long enough to split across pages with equal starts.
    keys = np.sort(np.concatenate([np.full(60, 500.0), np.arange(100.0)]))
    t = FITingTree(keys, error=4, buffer_capacity=2)
    starts = [k for (k, _), _ in t._tree.items()]
    assert starts.count(500.0) > 1
    # All 60 duplicate values recoverable in insertion (rowid) order.
    values = t.lookup_all(500.0)
    assert sorted(values) == values
    assert len(values) == 60


def test_repeated_splits_inside_duplicate_run():
    keys = np.sort(np.concatenate([np.full(60, 500.0), np.arange(100.0)]))
    t = FITingTree(keys, error=4, buffer_capacity=2)
    # Hammer the duplicate-run area with inserts, forcing repeated
    # re-segmentation of equal-start pages.
    for i in range(120):
        t.insert(500.0, 10_000 + i)
    t.validate()
    assert len(t.lookup_all(500.0)) == 180
    tree_keys = [k for k, _ in t._tree.items()]
    assert tree_keys == sorted(tree_keys)


def test_renumber_preserves_contents():
    keys = np.sort(np.random.default_rng(2).uniform(0, 1e3, 500))
    t = FITingTree(keys, error=8, buffer_capacity=2)
    before = list(t.items())
    seq_of = t._renumber()
    assert len(seq_of) == t.n_segments
    t.validate()
    assert list(t.items()) == before
    seqs = [seq for (_, seq), _ in t._tree.items()]
    assert all(b - a == _SEQ_SPACING for a, b in zip(seqs, seqs[1:]))


def test_renumber_path_triggered_by_gap_exhaustion():
    # Artificially shrink all seq gaps so the next multi-page split must
    # renumber; behaviour must be unchanged.
    keys = np.sort(np.random.default_rng(3).uniform(0, 1e4, 3000))
    t = FITingTree(keys, error=8, buffer_capacity=2)
    items = list(t._tree.items())
    t._tree.clear()
    for i, ((start, _), page) in enumerate(items):
        t._tree.insert((start, i * 1e-12), page)  # microscopic gaps
    t._dirty = True
    for i in range(300):
        t.insert(float(np.random.default_rng(4 + i).uniform(0, 1e4)))
    t.validate()
    assert len(t) == 3300
    tree_keys = [k for k, _ in t._tree.items()]
    assert tree_keys == sorted(tree_keys)


def test_directory_cache_invalidation():
    keys = np.sort(np.random.default_rng(5).uniform(0, 1e3, 500))
    t = FITingTree(keys, error=16, buffer_capacity=2)
    q = [keys[3], keys[400]]
    assert t.bulk_lookup(q) == [3, 400]
    # Mutate; the cached directory must be rebuilt, not reused.
    for i in range(50):
        t.insert(float(i) + 0.5, 1000 + i)
    assert t.bulk_lookup([49.5]) == [1049]
