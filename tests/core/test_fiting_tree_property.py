"""Property tests: the FITing-Tree behaves like a sorted multimap."""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fiting_tree import FITingTree

key_st = st.integers(min_value=0, max_value=300).map(float)
build_st = st.lists(key_st, max_size=150).map(sorted)
error_st = st.integers(min_value=2, max_value=64)


@given(keys=build_st, error=error_st, queries=st.lists(key_st, max_size=30))
@settings(max_examples=150, deadline=None)
def test_lookup_all_matches_multiset(keys, error, queries):
    arr = np.asarray(keys, dtype=np.float64)
    tree = FITingTree(arr, error=error, buffer_capacity=error // 2)
    model = Counter(keys)
    for q in queries + keys[:10]:
        assert len(tree.lookup_all(q)) == model[q]
        assert (q in tree) == (model[q] > 0)
    tree.validate()


@given(
    keys=build_st,
    error=error_st,
    inserts=st.lists(key_st, max_size=80),
)
@settings(max_examples=120, deadline=None)
def test_inserts_preserve_multiset(keys, error, inserts):
    arr = np.asarray(keys, dtype=np.float64)
    tree = FITingTree(arr, error=error, buffer_capacity=max(1, error // 2))
    model = Counter(keys)
    for k in inserts:
        tree.insert(k)
        model[k] += 1
    tree.validate()
    assert len(tree) == sum(model.values())
    for q in set(inserts) | set(keys[:5]):
        assert len(tree.lookup_all(q)) == model[q]
    # Full iteration yields the sorted multiset.
    iterated = [k for k, _ in tree.items()]
    assert iterated == sorted(model.elements())


@given(
    keys=build_st,
    error=error_st,
    ops=st.lists(st.tuples(st.booleans(), key_st), max_size=80),
)
@settings(max_examples=100, deadline=None)
def test_mixed_insert_delete(keys, error, ops):
    arr = np.asarray(keys, dtype=np.float64)
    tree = FITingTree(arr, error=error, buffer_capacity=max(1, error // 2))
    model = Counter(keys)
    for is_insert, k in ops:
        if is_insert or model[k] == 0:
            tree.insert(k)
            model[k] += 1
        else:
            tree.delete(k)
            model[k] -= 1
    tree.validate()
    assert len(tree) == sum(model.values())
    for q in {k for _, k in ops}:
        assert len(tree.lookup_all(q)) == model[q]


@given(
    keys=build_st,
    error=error_st,
    lo=key_st,
    span=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=120, deadline=None)
def test_range_matches_filter(keys, error, lo, span):
    hi = lo + span
    arr = np.asarray(keys, dtype=np.float64)
    tree = FITingTree(arr, error=error, buffer_capacity=0)
    got = [k for k, _ in tree.range_items(lo, hi)]
    assert got == [k for k in keys if lo <= k <= hi]


@given(keys=build_st, error=error_st, queries=st.lists(key_st, max_size=40))
@settings(max_examples=100, deadline=None)
def test_bulk_lookup_equals_get(keys, error, queries):
    if not queries:
        return
    arr = np.asarray(keys, dtype=np.float64)
    tree = FITingTree(arr, error=error, buffer_capacity=0)
    assert tree.bulk_lookup(queries, default=-1) == [
        tree.get(q, -1) for q in queries
    ]
