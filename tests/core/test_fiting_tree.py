"""Clustered FITing-Tree: build, lookups, ranges, inserts, deletes."""

import numpy as np
import pytest

from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    NotSortedError,
)
from repro.core.fiting_tree import FITingTree


@pytest.fixture
def index(uniform_keys):
    return FITingTree(uniform_keys, error=64)


class TestConstruction:
    def test_empty(self):
        t = FITingTree(error=32)
        assert len(t) == 0
        assert t.n_segments == 0
        assert t.get(5.0) is None
        t.validate()

    def test_error_must_exceed_buffer(self):
        with pytest.raises(InvalidParameterError):
            FITingTree([1.0], error=10, buffer_capacity=10)
        with pytest.raises(InvalidParameterError):
            FITingTree([1.0], error=10, buffer_capacity=20)

    def test_negative_buffer_rejected(self):
        with pytest.raises(InvalidParameterError):
            FITingTree([1.0], error=10, buffer_capacity=-1)

    def test_default_buffer_is_half_error(self):
        t = FITingTree([1.0, 2.0], error=100)
        assert t.buffer_capacity == 50
        assert t.seg_error == 50.0

    def test_unsorted_keys_rejected(self):
        with pytest.raises(NotSortedError):
            FITingTree([3.0, 1.0], error=10)

    def test_values_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            FITingTree([1.0, 2.0], [7], error=10)

    def test_far_fewer_segments_than_keys(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        assert t.n_segments < len(uniform_keys) / 50

    def test_exact_accept_variant(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64, accept="exact")
        t.validate()
        assert t.get(uniform_keys[7]) == 7


class TestLookups:
    def test_every_built_key_found(self, uniform_keys):
        t = FITingTree(uniform_keys, error=48)
        for i in range(0, len(uniform_keys), 97):
            assert t.get(uniform_keys[i]) == i

    def test_missing_key_default(self, index):
        assert index.get(-1.0) is None
        assert index.get(-1.0, "x") == "x"

    def test_contains(self, uniform_keys, index):
        assert uniform_keys[5] in index
        assert -1.0 not in index

    def test_getitem_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index[-123.0]

    def test_custom_values(self):
        keys = np.arange(100, dtype=np.float64)
        values = keys * 2.5
        t = FITingTree(keys, values, error=8)
        assert t.get(40.0) == 100.0

    def test_small_error_still_correct(self, uniform_keys):
        t = FITingTree(uniform_keys, error=2, buffer_capacity=1)
        for i in range(0, len(uniform_keys), 211):
            assert t.get(uniform_keys[i]) == i

    def test_bulk_lookup_matches_get(self, uniform_keys, rng):
        t = FITingTree(uniform_keys, error=32)
        queries = np.concatenate(
            [rng.choice(uniform_keys, 100), rng.uniform(-10, 1e6 + 10, 100)]
        )
        bulk = t.bulk_lookup(queries, default=-1)
        single = [t.get(q, -1) for q in queries]
        assert bulk == single

    def test_bulk_lookup_empty_index(self):
        t = FITingTree(error=16)
        assert t.bulk_lookup([1.0, 2.0], default=0) == [0, 0]


class TestDuplicates:
    def test_lookup_all_small_run(self):
        keys = np.sort(np.array([1.0, 2.0, 2.0, 2.0, 3.0] * 4))
        t = FITingTree(keys, error=32)
        assert sorted(t.lookup_all(2.0)) == sorted(
            int(i) for i in np.flatnonzero(keys == 2.0)
        )
        assert t.lookup_all(9.9) == []

    def test_lookup_all_run_split_across_segments(self):
        # error 4, buffer 2 -> seg_error 2: a run of 40 equal keys must
        # split into many segments sharing a start key.
        keys = np.sort(np.concatenate([np.full(40, 50.0), np.arange(40.0)]))
        t = FITingTree(keys, error=4, buffer_capacity=2)
        assert t.n_segments > 5
        assert len(t.lookup_all(50.0)) == 40
        t.validate()

    def test_get_returns_some_occurrence(self):
        keys = np.array([1.0] * 30)
        t = FITingTree(keys, error=5, buffer_capacity=2)
        assert t.get(1.0) in set(range(30))


class TestRangeQueries:
    def test_range_matches_numpy(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        lo, hi = uniform_keys[200], uniform_keys[800]
        got = [k for k, _ in t.range_items(lo, hi)]
        expected = uniform_keys[(uniform_keys >= lo) & (uniform_keys <= hi)]
        assert np.allclose(got, expected)

    def test_range_values_are_rowids(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        got = [v for _, v in t.range_items(uniform_keys[10], uniform_keys[20])]
        assert got == list(range(10, 21))

    def test_range_exclusive_bounds(self):
        keys = np.arange(100, dtype=np.float64)
        t = FITingTree(keys, error=8)
        got = [k for k, _ in t.range_items(10, 20, include_lo=False, include_hi=False)]
        assert got == list(np.arange(11.0, 20.0))

    def test_range_spans_segments(self, periodic_keys):
        t = FITingTree(periodic_keys, error=4, buffer_capacity=1)
        assert t.n_segments > 1
        lo, hi = periodic_keys[5], periodic_keys[-5]
        got = [k for k, _ in t.range_items(lo, hi)]
        expected = periodic_keys[(periodic_keys >= lo) & (periodic_keys <= hi)]
        assert np.allclose(got, expected)

    def test_range_open_ended(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        assert len(list(t.range_items())) == len(uniform_keys)
        assert len(list(t.range_items(lo=uniform_keys[-3]))) == 3
        assert len(list(t.range_items(hi=uniform_keys[2]))) == 3

    def test_range_includes_buffered(self, uniform_keys):
        t = FITingTree(uniform_keys, error=1000, buffer_capacity=400)
        t.insert(uniform_keys[50] + 1e-9, 777_777)
        got = [v for _, v in t.range_items(uniform_keys[50], uniform_keys[52])]
        assert 777_777 in got

    def test_items_sorted(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        keys = [k for k, _ in t.items()]
        assert keys == sorted(keys)
        assert len(keys) == len(uniform_keys)


class TestInserts:
    def test_insert_into_empty(self):
        t = FITingTree(error=16)
        t.insert(5.0)
        assert t.get(5.0) == 0
        assert len(t) == 1
        t.validate()

    def test_auto_rowids_continue(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        t.insert(1e7)
        assert t.get(1e7) == len(uniform_keys)

    def test_insert_below_minimum(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        t.insert(-1000.0, 42)
        assert t.get(-1000.0) == 42
        t.validate()

    def test_insert_above_maximum(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        t.insert(1e12, 42)
        assert t.get(1e12) == 42
        t.validate()

    def test_buffer_overflow_triggers_resegmentation(self):
        keys = np.arange(1000, dtype=np.float64)
        t = FITingTree(keys, error=8, buffer_capacity=2)
        before = t.n_segments
        for i in range(40):
            t.insert(500.0 + i / 100.0, 10_000 + i)
        t.validate()
        for i in range(40):
            assert t.get(500.0 + i / 100.0) == 10_000 + i
        assert len(t) == 1040
        assert t.n_segments >= before

    def test_many_random_inserts_stay_consistent(self, rng):
        keys = np.sort(rng.uniform(0, 1e5, 2_000))
        t = FITingTree(keys, error=32, buffer_capacity=8)
        inserted = rng.uniform(0, 1e5, 1_000)
        for i, k in enumerate(inserted):
            t.insert(k, 100_000 + i)
        t.validate()
        assert len(t) == 3_000
        for i, k in enumerate(inserted[::13]):
            assert k in t

    def test_sequential_append_workload(self):
        keys = np.arange(500, dtype=np.float64)
        t = FITingTree(keys, error=16, buffer_capacity=4)
        for i in range(500, 1500):
            t.insert(float(i))
        t.validate()
        assert len(t) == 1500
        assert t.get(1499.0) == 1499

    def test_typed_values_require_explicit_value(self):
        t = FITingTree(np.arange(5.0), np.arange(5.0) * 2, error=4)
        with pytest.raises(InvalidParameterError):
            t.insert(9.0)
        t.insert(9.0, 18.0)
        assert t.get(9.0) == 18.0

    def test_object_values_allow_none(self):
        values = np.array(["a", "b", "c"], dtype=object)
        t = FITingTree(np.arange(3.0), values, error=4)
        t.insert(7.0)
        assert t.get(7.0) is None

    def test_read_only_mode_rejects_writes(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64, buffer_capacity=0)
        with pytest.raises(InvalidParameterError):
            t.insert(1.0)
        with pytest.raises(InvalidParameterError):
            t.delete(uniform_keys[0])


class TestDeletes:
    def test_delete_from_buffer(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        t.insert(123.456, 999)
        assert t.delete(123.456) == 999
        assert 123.456 not in t
        t.validate()

    def test_delete_from_data(self, uniform_keys):
        t = FITingTree(uniform_keys, error=64)
        assert t.delete(uniform_keys[10]) == 10
        assert len(t) == len(uniform_keys) - 1
        assert t.get(uniform_keys[11]) == 11
        t.validate()

    def test_delete_missing_raises(self, index):
        with pytest.raises(KeyNotFoundError):
            index.delete(-555.0)

    def test_delete_many_triggers_rebuild(self):
        keys = np.arange(2_000, dtype=np.float64)
        t = FITingTree(keys, error=16, buffer_capacity=4)
        for k in range(100, 400, 2):
            t.delete(float(k))
        t.validate()
        assert len(t) == 2_000 - 150
        assert t.get(101.0) == 101
        assert t.get(100.0) is None

    def test_delete_everything(self):
        keys = np.arange(300, dtype=np.float64)
        t = FITingTree(keys, error=8, buffer_capacity=2)
        for k in range(300):
            t.delete(float(k))
        assert len(t) == 0
        t.validate()

    def test_delete_then_reinsert(self, uniform_keys):
        t = FITingTree(uniform_keys, error=32)
        key = uniform_keys[77]
        t.delete(key)
        t.insert(key, 424242)
        assert t.get(key) == 424242
        t.validate()


class TestStatsAndSize:
    def test_model_bytes_far_below_full(self, uniform_keys):
        from repro.baselines import FullIndex

        t = FITingTree(uniform_keys, error=256, buffer_capacity=0)
        full = FullIndex(uniform_keys)
        assert t.model_bytes() * 10 < full.model_bytes()

    def test_model_bytes_grows_as_error_shrinks(self, uniform_keys):
        big = FITingTree(uniform_keys, error=512, buffer_capacity=0)
        small = FITingTree(uniform_keys, error=4, buffer_capacity=0)
        assert small.model_bytes() > big.model_bytes()

    def test_stats_fields(self, index):
        stats = index.stats()
        assert stats["n"] == len(index)
        assert stats["n_segments"] == index.n_segments
        assert stats["error"] == 64.0
        assert stats["seg_error"] == 32.0
        assert stats["avg_segment_len"] > 1
