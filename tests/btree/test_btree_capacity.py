"""Decoupled leaf capacity vs branching, and reporting helpers."""

import pytest

from repro.bench.reporting import format_table, format_value
from repro.btree import BPlusTree


class TestLeafCapacityDecoupled:
    @pytest.mark.parametrize("branching,leaf", [(4, 32), (32, 4), (3, 2), (16, 100)])
    def test_mixed_capacities(self, branching, leaf):
        tree = BPlusTree(branching=branching, leaf_capacity=leaf)
        for i in range(500):
            tree.insert(i, i)
        tree.validate()
        assert list(tree.keys()) == list(range(500))
        for i in range(0, 500, 3):
            tree.delete(i)
        tree.validate()
        assert len(tree) == 500 - 167

    def test_wide_leaves_fewer_nodes(self):
        narrow = BPlusTree(branching=16, leaf_capacity=4)
        wide = BPlusTree(branching=16, leaf_capacity=64)
        for i in range(1000):
            narrow.insert(i, i)
            wide.insert(i, i)
        assert wide.node_counts()[1] < narrow.node_counts()[1]

    def test_bulk_load_with_decoupled_capacity(self):
        tree = BPlusTree(branching=4, leaf_capacity=50)
        tree.bulk_load([(i, i) for i in range(777)], fill=0.8)
        tree.validate()
        assert len(tree) == 777


class TestReporting:
    def test_format_value_variants(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"
        assert format_value(0.0) == "0"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(0.0001) == "0.0001"
        assert format_value(123.4567) == "123.5"
        assert format_value(1.5) == "1.5"
        assert format_value(12345) == "12,345"
        assert format_value("text") == "text"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_union_of_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        out = format_table(rows)
        assert "a" in out and "b" in out

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="x")

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2}]
        out = format_table(rows, columns=["b"])
        assert "a" not in out.splitlines()[0]
