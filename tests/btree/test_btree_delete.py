"""B+ tree deletion: borrow, merge, root collapse, full drains."""

import pytest

from repro.btree import BPlusTree
from repro.core.errors import KeyNotFoundError


def build(n, branching=4):
    tree = BPlusTree(branching=branching)
    for i in range(n):
        tree.insert(i, i * 10)
    return tree


class TestDeleteBasics:
    def test_delete_returns_value(self):
        tree = build(10)
        assert tree.delete(3) == 30
        assert 3 not in tree
        assert len(tree) == 9
        tree.validate()

    def test_delete_missing_raises(self):
        tree = build(10)
        with pytest.raises(KeyNotFoundError):
            tree.delete(99)

    def test_delete_from_empty_raises(self):
        with pytest.raises(KeyNotFoundError):
            BPlusTree().delete(1)

    def test_delitem(self):
        tree = build(10)
        del tree[4]
        assert 4 not in tree

    def test_pop_with_default(self):
        tree = build(5)
        assert tree.pop(2) == 20
        assert tree.pop(2, "gone") == "gone"
        with pytest.raises(KeyNotFoundError):
            tree.pop(2)

    def test_delete_last_key_empties_tree(self):
        tree = build(1)
        tree.delete(0)
        assert len(tree) == 0
        assert tree.height == 0
        tree.validate()


class TestRebalancing:
    def test_drain_ascending(self):
        tree = build(300)
        for i in range(300):
            tree.delete(i)
            tree.validate()
        assert len(tree) == 0

    def test_drain_descending(self):
        tree = build(300)
        for i in range(299, -1, -1):
            tree.delete(i)
            tree.validate()
        assert len(tree) == 0

    def test_drain_from_middle_out(self):
        tree = build(200)
        order = sorted(range(200), key=lambda i: abs(i - 100))
        for i in order:
            tree.delete(i)
            tree.validate()
        assert len(tree) == 0

    def test_alternating_delete_keeps_invariants(self):
        tree = build(256, branching=5)
        for i in range(0, 256, 2):
            tree.delete(i)
        tree.validate()
        assert len(tree) == 128
        assert list(tree.keys()) == list(range(1, 256, 2))

    def test_root_collapses_when_single_child(self):
        tree = build(100, branching=4)
        h = tree.height
        for i in range(95):
            tree.delete(i)
        tree.validate()
        assert tree.height < h

    def test_delete_then_reinsert(self):
        tree = build(128)
        for i in range(0, 128, 3):
            tree.delete(i)
        for i in range(0, 128, 3):
            tree.insert(i, i * 10)
        tree.validate()
        assert len(tree) == 128
        for i in range(128):
            assert tree.get(i) == i * 10

    def test_delete_separator_key_keeps_routing(self):
        # Deleting keys that appear as inner separators must not break
        # descent (separators may legally reference absent keys).
        tree = build(200, branching=4)
        root_keys = list(tree._root.keys)
        for key in root_keys:
            tree.delete(key)
        tree.validate()
        for key in root_keys:
            assert key not in tree
            tree.insert(key, "back")
            assert tree.get(key) == "back"


class TestDeleteRandomized:
    @pytest.mark.parametrize("branching", [3, 4, 8, 16])
    def test_random_interleaving(self, branching, rng):
        tree = BPlusTree(branching=branching)
        model = {}
        keys = rng.permutation(400)
        for k in keys:
            tree.insert(int(k), int(k))
            model[int(k)] = int(k)
        delete_order = rng.permutation(400)
        for i, k in enumerate(delete_order):
            assert tree.delete(int(k)) == model.pop(int(k))
            if i % 37 == 0:
                tree.validate()
                assert len(tree) == len(model)
        assert len(tree) == 0
