"""Ordered queries: floor/ceiling/lower/higher, range scans, iteration start."""

import pytest

from repro.btree import BPlusTree


@pytest.fixture
def tree():
    t = BPlusTree(branching=4)
    for i in range(0, 100, 10):  # 0, 10, ..., 90
        t.insert(i, f"v{i}")
    return t


class TestFloorCeiling:
    def test_floor_exact(self, tree):
        assert tree.floor_item(50) == (50, "v50")

    def test_floor_between(self, tree):
        assert tree.floor_item(55) == (50, "v50")

    def test_floor_below_min(self, tree):
        assert tree.floor_item(-1) is None

    def test_floor_above_max(self, tree):
        assert tree.floor_item(1000) == (90, "v90")

    def test_ceiling_exact(self, tree):
        assert tree.ceiling_item(50) == (50, "v50")

    def test_ceiling_between(self, tree):
        assert tree.ceiling_item(55) == (60, "v60")

    def test_ceiling_above_max(self, tree):
        assert tree.ceiling_item(91) is None

    def test_ceiling_below_min(self, tree):
        assert tree.ceiling_item(-5) == (0, "v0")

    def test_lower_is_strict(self, tree):
        assert tree.lower_item(50) == (40, "v40")
        assert tree.lower_item(55) == (50, "v50")
        assert tree.lower_item(0) is None

    def test_higher_is_strict(self, tree):
        assert tree.higher_item(50) == (60, "v60")
        assert tree.higher_item(45) == (50, "v50")
        assert tree.higher_item(90) is None

    def test_empty_tree_queries(self):
        t = BPlusTree()
        assert t.floor_item(1) is None
        assert t.ceiling_item(1) is None
        assert t.lower_item(1) is None
        assert t.higher_item(1) is None

    def test_floor_across_leaf_boundary(self):
        # Force a query to land on a leaf whose smallest key exceeds it.
        t = BPlusTree(branching=3)
        for i in range(30):
            t.insert(i * 2, i)  # even keys
        for odd in range(1, 59, 2):
            assert t.floor_item(odd)[0] == odd - 1
            assert t.ceiling_item(odd)[0] == odd + 1


class TestRangeItems:
    def test_full_range(self, tree):
        assert len(list(tree.range_items())) == 10

    def test_closed_range(self, tree):
        items = list(tree.range_items(20, 50))
        assert [k for k, _ in items] == [20, 30, 40, 50]

    def test_open_lo(self, tree):
        items = list(tree.range_items(20, 50, include_lo=False))
        assert [k for k, _ in items] == [30, 40, 50]

    def test_open_hi(self, tree):
        items = list(tree.range_items(20, 50, include_hi=False))
        assert [k for k, _ in items] == [20, 30, 40]

    def test_bounds_between_keys(self, tree):
        items = list(tree.range_items(15, 45))
        assert [k for k, _ in items] == [20, 30, 40]

    def test_empty_range(self, tree):
        assert list(tree.range_items(51, 59)) == []

    def test_range_outside_domain(self, tree):
        assert list(tree.range_items(1000, 2000)) == []
        assert [k for k, _ in tree.range_items(-100, -1)] == []

    def test_unbounded_lo(self, tree):
        items = list(tree.range_items(hi=30))
        assert [k for k, _ in items] == [0, 10, 20, 30]

    def test_unbounded_hi(self, tree):
        items = list(tree.range_items(lo=70))
        assert [k for k, _ in items] == [70, 80, 90]

    def test_empty_tree_range(self):
        assert list(BPlusTree().range_items(0, 10)) == []

    def test_large_range_crosses_many_leaves(self):
        t = BPlusTree(branching=3)
        for i in range(500):
            t.insert(i, i)
        items = list(t.range_items(100, 399))
        assert [k for k, _ in items] == list(range(100, 400))


class TestItemsFromFloor:
    def test_starts_at_floor(self, tree):
        items = list(tree.items_from_floor(55))
        assert [k for k, _ in items] == [50, 60, 70, 80, 90]

    def test_exact_key(self, tree):
        items = list(tree.items_from_floor(50))
        assert items[0] == (50, "v50")

    def test_below_min_starts_at_first(self, tree):
        items = list(tree.items_from_floor(-10))
        assert items[0] == (0, "v0")
        assert len(items) == 10

    def test_empty(self):
        assert list(BPlusTree().items_from_floor(5)) == []
