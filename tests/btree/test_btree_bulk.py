"""Bulk loading: fill factors, tail rebalancing, input validation."""

import pytest

from repro.btree import BPlusTree
from repro.core.errors import InvalidParameterError, NotSortedError


def pairs(n):
    return [(i, i * 3) for i in range(n)]


class TestBulkLoad:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 16, 17, 100, 1000])
    def test_roundtrip(self, n):
        tree = BPlusTree(branching=4)
        tree.bulk_load(pairs(n))
        tree.validate()
        assert len(tree) == n
        assert list(tree.items()) == pairs(n)

    @pytest.mark.parametrize("fill", [0.5, 0.7, 1.0])
    def test_fill_factors_valid(self, fill):
        tree = BPlusTree(branching=8)
        tree.bulk_load(pairs(500), fill=fill)
        tree.validate()
        assert list(tree.keys()) == list(range(500))

    def test_lower_fill_makes_more_leaves(self):
        dense = BPlusTree(branching=8)
        dense.bulk_load(pairs(500), fill=1.0)
        sparse = BPlusTree(branching=8)
        sparse.bulk_load(pairs(500), fill=0.5)
        assert sparse.node_counts()[1] > dense.node_counts()[1]

    def test_bad_fill_rejected(self):
        tree = BPlusTree()
        with pytest.raises(InvalidParameterError):
            tree.bulk_load(pairs(5), fill=0.0)
        with pytest.raises(InvalidParameterError):
            tree.bulk_load(pairs(5), fill=1.5)

    def test_non_empty_tree_rejected(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        with pytest.raises(InvalidParameterError):
            tree.bulk_load(pairs(5))

    def test_unsorted_rejected(self):
        tree = BPlusTree()
        with pytest.raises(NotSortedError):
            tree.bulk_load([(2, 0), (1, 0)])

    def test_duplicate_keys_rejected(self):
        tree = BPlusTree()
        with pytest.raises(NotSortedError):
            tree.bulk_load([(1, 0), (1, 1)])

    def test_bulk_then_mutate(self):
        tree = BPlusTree(branching=4)
        tree.bulk_load(pairs(200))
        for i in range(200, 260):
            tree.insert(i, i * 3)
        for i in range(0, 100, 2):
            tree.delete(i)
        tree.validate()
        assert len(tree) == 260 - 50

    def test_bulk_equivalent_to_inserts(self):
        bulk = BPlusTree(branching=5)
        bulk.bulk_load(pairs(333))
        incremental = BPlusTree(branching=5)
        for k, v in pairs(333):
            incremental.insert(k, v)
        assert list(bulk.items()) == list(incremental.items())

    def test_tail_leaf_not_underfull(self):
        # n chosen so a naive chunking leaves a 1-element trailing leaf.
        tree = BPlusTree(branching=16)
        tree.bulk_load(pairs(16 * 5 + 1))
        tree.validate()  # validate() checks min occupancy

    def test_generator_input(self):
        tree = BPlusTree()
        tree.bulk_load(((i, i) for i in range(50)))
        assert len(tree) == 50
