"""Basic B+ tree operations: get/insert/contains/iteration/min/max."""

import pytest

from repro.btree import BPlusTree
from repro.core.errors import (
    EmptyIndexError,
    InvalidParameterError,
    KeyNotFoundError,
)


def make_tree(items, branching=4):
    tree = BPlusTree(branching=branching)
    for k, v in items:
        tree.insert(k, v)
    return tree


class TestConstruction:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert not tree
        assert tree.height == 0
        assert tree.get(1) is None
        tree.validate()

    def test_branching_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            BPlusTree(branching=2)

    def test_leaf_capacity_too_small_rejected(self):
        with pytest.raises(InvalidParameterError):
            BPlusTree(leaf_capacity=1)

    def test_default_leaf_capacity_follows_branching(self):
        tree = BPlusTree(branching=7)
        assert tree.leaf_capacity == 7


class TestInsertGet:
    def test_single_insert(self):
        tree = BPlusTree()
        assert tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert len(tree) == 1
        assert tree.height == 1

    def test_many_inserts_ascending(self):
        tree = make_tree((i, i * 10) for i in range(200))
        assert len(tree) == 200
        for i in range(200):
            assert tree.get(i) == i * 10
        tree.validate()

    def test_many_inserts_descending(self):
        tree = make_tree((i, i) for i in range(199, -1, -1))
        assert len(tree) == 200
        assert list(tree.keys()) == list(range(200))
        tree.validate()

    def test_upsert_replaces_value(self):
        tree = make_tree([(1, "a")])
        assert not tree.insert(1, "b")  # existing key: not new
        assert tree.get(1) == "b"
        assert len(tree) == 1

    def test_get_missing_returns_default(self):
        tree = make_tree([(1, "a")])
        assert tree.get(2) is None
        assert tree.get(2, "fallback") == "fallback"

    def test_contains(self):
        tree = make_tree([(1, "a"), (3, "c")])
        assert 1 in tree
        assert 2 not in tree

    def test_contains_none_value(self):
        tree = make_tree([(1, None)])
        assert 1 in tree

    def test_getitem_and_setitem(self):
        tree = BPlusTree()
        tree[3] = "x"
        assert tree[3] == "x"
        with pytest.raises(KeyNotFoundError):
            tree[4]

    def test_float_keys(self):
        tree = make_tree([(0.5, "a"), (1.25, "b"), (-3.75, "c")])
        assert tree.get(1.25) == "b"
        assert tree.get(-3.75) == "c"

    def test_tuple_keys(self):
        tree = make_tree([((1, 0.0), "a"), ((1, 1.0), "b"), ((2, 0.0), "c")])
        assert tree.get((1, 1.0)) == "b"
        assert tree.floor_item((1, 0.5)) == ((1, 0.0), "a")


class TestMinMax:
    def test_min_max(self):
        tree = make_tree((i, i) for i in [5, 1, 9, 3, 7])
        assert tree.min_item() == (1, 1)
        assert tree.max_item() == (9, 9)

    def test_min_max_empty_raise(self):
        tree = BPlusTree()
        with pytest.raises(EmptyIndexError):
            tree.min_item()
        with pytest.raises(EmptyIndexError):
            tree.max_item()


class TestIteration:
    def test_items_sorted(self, rng):
        keys = rng.permutation(500)
        tree = make_tree((int(k), int(k) * 2) for k in keys)
        items = list(tree.items())
        assert items == [(i, i * 2) for i in range(500)]

    def test_keys_values_aligned(self):
        tree = make_tree([(2, "b"), (1, "a"), (3, "c")])
        assert list(tree.keys()) == [1, 2, 3]
        assert list(tree.values()) == ["a", "b", "c"]
        assert list(iter(tree)) == [1, 2, 3]

    def test_clear(self):
        tree = make_tree((i, i) for i in range(50))
        tree.clear()
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.validate()
        tree.insert(1, 1)
        assert tree.get(1) == 1


class TestStructure:
    def test_height_grows_logarithmically(self):
        tree = make_tree(((i, i) for i in range(1000)), branching=4)
        # 4-ary tree over 1000 keys: height must be bounded by ~log2(1000).
        assert 4 <= tree.height <= 10

    def test_node_counts(self):
        tree = make_tree(((i, i) for i in range(100)), branching=4)
        inner, leaves = tree.node_counts()
        assert leaves >= 100 // 4
        assert inner >= 1

    def test_model_bytes_scales_with_entries(self):
        t1 = make_tree((i, i) for i in range(100))
        t2 = make_tree((i, i) for i in range(1000))
        assert t2.model_bytes() > t1.model_bytes() * 5
        # At minimum the leaf level: 16 bytes per entry.
        assert t1.model_bytes() >= 100 * 16

    def test_counter_counts_descent(self):
        from repro.memsim import AccessCounter

        counter = AccessCounter()
        tree = BPlusTree(branching=4, counter=counter)
        for i in range(200):
            tree.insert(i, i)
        counter.reset()
        tree.get(137)
        assert counter.tree_nodes == tree.height
