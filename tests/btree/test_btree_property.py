"""Property-based B+ tree tests: equivalence with a dict model."""

from bisect import bisect_left, bisect_right, insort

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree

# Small key domain forces collisions (upserts) and dense structure churn.
keys_st = st.integers(min_value=-50, max_value=50)
ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys_st, st.integers()),
        st.tuples(st.just("delete"), keys_st, st.none()),
        st.tuples(st.just("get"), keys_st, st.none()),
    ),
    max_size=200,
)


@given(ops=ops_st, branching=st.integers(min_value=3, max_value=9))
@settings(max_examples=120, deadline=None)
def test_matches_dict_model(ops, branching):
    tree = BPlusTree(branching=branching)
    model = {}
    for op, key, value in ops:
        if op == "insert":
            tree.insert(key, value)
            model[key] = value
        elif op == "delete":
            if key in model:
                assert tree.delete(key) == model.pop(key)
            else:
                assert tree.pop(key, "missing") == "missing"
        else:
            assert tree.get(key, "missing") == model.get(key, "missing")
    tree.validate()
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())


@given(keys=st.lists(st.integers(min_value=-1000, max_value=1000), max_size=150))
@settings(max_examples=100, deadline=None)
def test_ordered_queries_match_sorted_list(keys):
    tree = BPlusTree(branching=4)
    sorted_keys = []
    for k in keys:
        if tree.insert(k, k):
            insort(sorted_keys, k)

    for probe in list(sorted_keys[:5]) + [-2000, 0, 37, 2000]:
        i = bisect_right(sorted_keys, probe)
        expected_floor = sorted_keys[i - 1] if i else None
        floor = tree.floor_item(probe)
        assert (floor[0] if floor else None) == expected_floor

        j = bisect_left(sorted_keys, probe)
        expected_ceil = sorted_keys[j] if j < len(sorted_keys) else None
        ceil = tree.ceiling_item(probe)
        assert (ceil[0] if ceil else None) == expected_ceil

        i = bisect_left(sorted_keys, probe)
        expected_lower = sorted_keys[i - 1] if i else None
        lower = tree.lower_item(probe)
        assert (lower[0] if lower else None) == expected_lower

        j = bisect_right(sorted_keys, probe)
        expected_higher = sorted_keys[j] if j < len(sorted_keys) else None
        higher = tree.higher_item(probe)
        assert (higher[0] if higher else None) == expected_higher


@given(
    keys=st.sets(st.integers(min_value=0, max_value=500), max_size=120),
    lo=st.integers(min_value=-10, max_value=510),
    span=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_range_items_match_slice(keys, lo, span):
    hi = lo + span
    tree = BPlusTree(branching=4)
    for k in keys:
        tree.insert(k, -k)
    expected = [(k, -k) for k in sorted(keys) if lo <= k <= hi]
    assert list(tree.range_items(lo, hi)) == expected


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_bulk_load_matches_inserts(data):
    keys = sorted(
        data.draw(st.sets(st.integers(min_value=0, max_value=10_000), max_size=300))
    )
    fill = data.draw(st.sampled_from([0.5, 0.75, 1.0]))
    branching = data.draw(st.integers(min_value=3, max_value=8))
    bulk = BPlusTree(branching=branching)
    bulk.bulk_load([(k, k) for k in keys], fill=fill)
    bulk.validate()
    assert list(bulk.keys()) == keys
    assert len(bulk) == len(keys)
