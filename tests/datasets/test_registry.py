"""Dataset registry: determinism, sortedness, sizes, error handling."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.datasets import get, names, register, spec


EXPECTED = {
    "adversarial",
    "iot",
    "lognormal",
    "maps",
    "osm_lon",
    "step",
    "taxi_drop_lat",
    "taxi_drop_lon",
    "taxi_pickup_time",
    "uniform",
    "weblogs",
}


def test_all_expected_datasets_registered():
    assert EXPECTED <= set(names())


@pytest.mark.parametrize("name", sorted(EXPECTED))
class TestEveryDataset:
    def test_sorted_and_sized(self, name):
        keys = get(name, n=5_000, seed=0)
        assert len(keys) == 5_000
        assert keys.dtype == np.float64
        assert np.all(np.diff(keys) >= 0)
        assert np.all(np.isfinite(keys))

    def test_deterministic(self, name):
        a = get(name, n=2_000, seed=3)
        b = get(name, n=2_000, seed=3)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self, name):
        if name in ("step", "adversarial"):
            pytest.skip("deterministic constructions ignore the seed")
        a = get(name, n=2_000, seed=1)
        b = get(name, n=2_000, seed=2)
        assert not np.array_equal(a, b)

    def test_zero_elements(self, name):
        assert len(get(name, n=0, seed=0)) == 0


def test_unknown_dataset_raises():
    with pytest.raises(InvalidParameterError, match="unknown dataset"):
        get("no_such_dataset")


def test_negative_n_raises():
    with pytest.raises(InvalidParameterError):
        get("uniform", n=-1)


def test_double_registration_raises():
    with pytest.raises(InvalidParameterError):
        register("uniform", lambda n, s: np.zeros(n), "dup", "dup")


def test_spec_metadata():
    s = spec("weblogs")
    assert s.name == "weblogs"
    assert "715M" in s.paper_counterpart


def test_wrong_length_builder_caught():
    register(
        "_broken_for_test",
        lambda n, s: np.zeros(max(0, n - 1)),
        "broken",
        "none",
    )
    with pytest.raises(InvalidParameterError, match="produced"):
        get("_broken_for_test", n=5)
