"""Per-dataset structure: each substitute must show the property the paper
attributes to its real counterpart."""

import numpy as np
import pytest

from repro.datasets import (
    adversarial_keys,
    adversarial_n_for_elements,
    get,
    iot,
    maps_longitude,
    mixture_sorted,
    poisson_from_hourly_profile,
    step_data,
    taxi_drop_lat,
    taxi_drop_lon,
    taxi_pickup_time,
    weblogs,
)

_HOUR = 3600.0
_DAY = 24 * _HOUR


def hourly_counts(times, n_hours):
    bins = np.arange(n_hours + 1) * _HOUR
    counts, _ = np.histogram(times, bins=bins)
    return counts


class TestPoissonProfile:
    def test_counts_follow_profile(self):
        rates = np.array([0.0, 10.0, 0.0, 10.0])
        times = poisson_from_hourly_profile(1_000, rates, seed=0)
        counts = hourly_counts(times, 4)
        assert counts[0] == 0 and counts[2] == 0
        assert counts[1] + counts[3] == 1_000

    def test_zero_mass_raises(self):
        with pytest.raises(ValueError):
            poisson_from_hourly_profile(10, np.zeros(5), seed=0)

    def test_empty(self):
        assert len(poisson_from_hourly_profile(0, np.ones(3), 0)) == 0


class TestWeblogs:
    def test_nights_quieter_than_days(self):
        times = weblogs(50_000, seed=0, years=1)
        hour_of_day = (times // _HOUR) % 24
        night = np.sum((hour_of_day >= 1) & (hour_of_day < 5))
        day = np.sum((hour_of_day >= 12) & (hour_of_day < 16))
        assert day > 2 * night

    def test_weekends_quieter(self):
        times = weblogs(50_000, seed=0, years=1)
        day_of_week = (times // _DAY) % 7
        weekend_daily = np.sum(day_of_week >= 5) / 2
        weekday_daily = np.sum(day_of_week < 5) / 5
        assert weekday_daily > 1.5 * weekend_daily

    def test_traffic_grows_over_years(self):
        times = weblogs(100_000, seed=0, years=10)
        span = times[-1]
        first_half = np.sum(times < span / 2)
        assert first_half < 50_000  # growth shifts mass to later years


class TestIoT:
    def test_working_hours_dominate(self):
        times = iot(50_000, seed=0, days=28)
        hour_of_day = (times // _HOUR) % 24
        working = np.sum((hour_of_day >= 8) & (hour_of_day < 19))
        assert working > 0.7 * 50_000

    def test_weekends_nearly_silent(self):
        times = iot(50_000, seed=0, days=28)
        day_of_week = (times // _DAY) % 7
        weekend_daily = np.sum(day_of_week >= 5) / 2
        weekday_daily = np.sum(day_of_week < 5) / 5
        assert weekday_daily > 5 * weekend_daily

    def test_staircase_shape(self):
        # Figure 1: large key gaps at night vs dense daytime keys. Compare
        # the biggest inter-arrival gap to the median one.
        times = iot(20_000, seed=0, days=14)
        gaps = np.diff(times)
        assert gaps.max() > 100 * np.median(gaps[gaps > 0])


class TestTaxi:
    def test_pickup_rush_hours(self):
        times = taxi_pickup_time(50_000, seed=0, days=28)
        day_of_week = (times // _DAY) % 7
        weekday_times = times[day_of_week < 5]
        hour_of_day = (weekday_times // _HOUR) % 24
        evening_rush = np.sum((hour_of_day >= 17) & (hour_of_day < 20))
        predawn = np.sum((hour_of_day >= 3) & (hour_of_day < 6))
        assert evening_rush > 3 * predawn

    def test_drop_coordinates_in_nyc_box(self):
        lat = taxi_drop_lat(10_000, seed=0)
        lon = taxi_drop_lon(10_000, seed=0)
        assert lat.min() >= 40.5 and lat.max() <= 41.0
        assert lon.min() >= -74.15 and lon.max() <= -73.65

    def test_drop_lat_concentrated_midtown(self):
        lat = taxi_drop_lat(10_000, seed=0)
        near = np.sum(np.abs(lat - 40.75) < 0.08)
        assert near > 5_000


class TestMaps:
    def test_longitude_range(self):
        lon = maps_longitude(10_000, seed=0)
        assert lon.min() >= -180.0 and lon.max() <= 180.0

    def test_continental_clusters_present(self):
        lon = maps_longitude(50_000, seed=0)
        europe = np.sum(np.abs(lon - 10.0) < 15.0)
        mid_pacific = np.sum(np.abs(lon + 160.0) < 15.0)
        assert europe > 5 * mid_pacific

    def test_locally_linear_at_small_scales(self):
        # The paper's observation behind Figure 8: maps needs few segments
        # per element at small error scales.
        from repro.analysis import nonlinearity_ratio

        lon = maps_longitude(30_000, seed=0)
        assert nonlinearity_ratio(lon, 20) < 0.3

    def test_mixture_sorted_weights(self):
        keys = mixture_sorted(
            10_000, 0, [(1.0, 0.0, 1.0)], uniform_weight=1.0,
            uniform_range=(100.0, 200.0),
        )
        near_zero = np.sum(np.abs(keys) < 10.0)
        in_uniform = np.sum((keys >= 100.0) & (keys <= 200.0))
        assert abs(near_zero - in_uniform) < 1_000


class TestStepData:
    def test_structure(self):
        keys = step_data(1_000, step=100)
        assert len(keys) == 1_000
        uniq, counts = np.unique(keys, return_counts=True)
        assert np.all(counts == 100)
        assert np.all(np.diff(uniq) == 100)

    def test_truncation(self):
        keys = step_data(250, step=100)
        assert len(keys) == 250
        assert np.sum(keys == 200.0) == 50


class TestAdversarial:
    def test_element_count_formula(self):
        for n_patterns, error in [(0, 10), (5, 10), (3, 100)]:
            keys = adversarial_keys(n_patterns, error)
            assert len(keys) == 3 + (error + 2) + n_patterns * (error + 2) + 1

    def test_sorted(self):
        keys = adversarial_keys(10, 50)
        assert np.all(np.diff(keys) >= 0)

    def test_n_for_elements_roundtrip(self):
        for target in (200, 1_000, 5_000):
            n = adversarial_n_for_elements(target, 100)
            assert len(adversarial_keys(n, 100)) <= target
            assert len(adversarial_keys(n + 1, 100)) > target

    def test_invalid_params(self):
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            adversarial_keys(-1, 100)
        with pytest.raises(InvalidParameterError):
            adversarial_keys(5, 1)

    def test_registry_pads_to_exact_n(self):
        keys = get("adversarial", n=777, seed=0)
        assert len(keys) == 777
        assert np.all(np.diff(keys) >= 0)
