"""Dense (full) B+ tree baseline: per-distinct-key entries, duplicates."""

import numpy as np
import pytest

from repro.baselines.full_index import FullIndex
from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    NotSortedError,
)


class TestBuild:
    def test_empty(self):
        idx = FullIndex()
        assert len(idx) == 0
        assert idx.get(1.0) is None
        idx.validate()

    def test_unsorted_rejected(self):
        with pytest.raises(NotSortedError):
            FullIndex([2.0, 1.0])

    def test_values_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            FullIndex([1.0, 2.0], [0])

    def test_entries_count_distinct_keys(self):
        keys = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0])
        idx = FullIndex(keys)
        assert idx.n_entries == 3
        assert len(idx) == 6


class TestLookups:
    def test_rowids(self, uniform_keys):
        idx = FullIndex(uniform_keys)
        for i in (0, 57, 9_999):
            assert idx.get(uniform_keys[i]) == i

    def test_duplicates_lookup_all(self):
        keys = np.array([1.0, 2.0, 2.0, 2.0, 3.0])
        idx = FullIndex(keys)
        assert idx.lookup_all(2.0) == [1, 2, 3]
        assert idx.get(2.0) == 1
        assert idx.lookup_all(9.0) == []

    def test_contains_getitem(self, uniform_keys):
        idx = FullIndex(uniform_keys)
        assert uniform_keys[3] in idx
        assert -1.0 not in idx
        with pytest.raises(KeyNotFoundError):
            idx[-1.0]

    def test_bulk_lookup(self, uniform_keys):
        idx = FullIndex(uniform_keys)
        out = idx.bulk_lookup([uniform_keys[5], -1.0], default=-7)
        assert out == [5, -7]


class TestRange:
    def test_range_flattens_duplicates(self):
        keys = np.array([1.0, 2.0, 2.0, 3.0, 4.0])
        idx = FullIndex(keys)
        items = list(idx.range_items(2.0, 3.0))
        assert items == [(2.0, 1), (2.0, 2), (3.0, 3)]

    def test_items_cover_everything(self, uniform_keys):
        idx = FullIndex(uniform_keys)
        assert len(list(idx.items())) == len(uniform_keys)


class TestMutation:
    def test_insert_new_key(self):
        idx = FullIndex([1.0, 2.0])
        idx.insert(5.0)
        assert idx.get(5.0) == 2  # auto rowid continues
        assert len(idx) == 3

    def test_insert_duplicate_promotes_to_multi(self):
        idx = FullIndex([1.0, 2.0])
        idx.insert(2.0, 99)
        assert idx.lookup_all(2.0) == [1, 99]
        assert idx.n_entries == 2
        idx.validate()

    def test_delete_single(self):
        idx = FullIndex([1.0, 2.0])
        assert idx.delete(1.0) == 0
        assert 1.0 not in idx
        idx.validate()

    def test_delete_one_of_duplicates(self):
        keys = np.array([2.0, 2.0, 2.0])
        idx = FullIndex(keys)
        assert idx.delete(2.0) == 0
        assert idx.lookup_all(2.0) == [1, 2]
        assert idx.delete(2.0) == 1
        assert idx.lookup_all(2.0) == [2]
        idx.validate()

    def test_delete_missing_raises(self):
        with pytest.raises(KeyNotFoundError):
            FullIndex([1.0]).delete(2.0)


class TestSize:
    def test_model_bytes_linear_in_distinct_keys(self):
        small = FullIndex(np.arange(1_000, dtype=np.float64))
        large = FullIndex(np.arange(10_000, dtype=np.float64))
        assert large.model_bytes() > 8 * small.model_bytes()

    def test_duplicates_do_not_grow_entries(self):
        uniq = FullIndex(np.arange(100, dtype=np.float64))
        dup = FullIndex(np.repeat(np.arange(100.0), 10))
        assert dup.n_entries == uniq.n_entries
