"""Fixed-page and binary-search baselines."""

import numpy as np
import pytest

from repro.baselines import BinarySearchIndex, FixedPageIndex
from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    NotSortedError,
)


class TestFixedPageIndex:
    def test_page_count(self):
        idx = FixedPageIndex(np.arange(1000.0), page_size=100, buffer_capacity=0)
        assert idx.n_pages == 10

    def test_uneven_pages_balanced(self):
        idx = FixedPageIndex(np.arange(1050.0), page_size=100, buffer_capacity=0)
        lengths = [p.n_data for p in idx.pages()]
        assert sum(lengths) == 1050
        assert max(lengths) - min(lengths) <= 1

    def test_invalid_page_size(self):
        with pytest.raises(InvalidParameterError):
            FixedPageIndex([1.0], page_size=0)

    def test_lookups(self, uniform_keys):
        idx = FixedPageIndex(uniform_keys, page_size=64)
        for i in (0, 123, 9_999):
            assert idx.get(uniform_keys[i]) == i
        assert idx.get(-5.0) is None

    def test_default_buffer_is_half_page(self):
        idx = FixedPageIndex([1.0, 2.0], page_size=100)
        assert idx.buffer_capacity == 50

    def test_insert_splits_full_page(self):
        keys = np.arange(0.0, 1000.0, 1.0)
        idx = FixedPageIndex(keys, page_size=50, buffer_capacity=5)
        pages_before = idx.n_pages
        for i in range(200):
            idx.insert(500.0 + i / 1000.0, 5_000 + i)
        idx.validate()
        assert idx.n_pages > pages_before
        assert len(idx) == 1200
        assert idx.get(500.05) == 5_050

    def test_split_produces_bounded_pages(self):
        keys = np.arange(0.0, 300.0)
        idx = FixedPageIndex(keys, page_size=20, buffer_capacity=4)
        for i in range(100):
            idx.insert(150.0 + i / 200.0)
        # Pages never exceed page_size after rebuilds.
        assert all(p.n_data <= 20 for p in idx.pages())
        idx.validate()

    def test_no_interpolation_search(self):
        # The fixed baseline must find keys even where interpolation would
        # mispredict badly (skewed page contents).
        keys = np.sort(np.concatenate([np.zeros(50) + 1e-9 * np.arange(50),
                                       np.array([1e9])]))
        idx = FixedPageIndex(keys, page_size=51, buffer_capacity=0)
        assert idx.get(1e9) == 50

    def test_deletes(self, uniform_keys):
        idx = FixedPageIndex(uniform_keys, page_size=64)
        assert idx.delete(uniform_keys[3]) == 3
        assert uniform_keys[3] not in idx
        idx.validate()

    def test_model_bytes_scales_inverse_page_size(self, uniform_keys):
        fine = FixedPageIndex(uniform_keys, page_size=16, buffer_capacity=0)
        coarse = FixedPageIndex(uniform_keys, page_size=1024, buffer_capacity=0)
        assert fine.model_bytes() > 10 * coarse.model_bytes()

    def test_stats_has_page_size(self, uniform_keys):
        idx = FixedPageIndex(uniform_keys, page_size=64)
        assert idx.stats()["page_size"] == 64


class TestBinarySearchIndex:
    def test_zero_index_size(self, uniform_keys):
        assert BinarySearchIndex(uniform_keys).model_bytes() == 0

    def test_lookups(self, uniform_keys):
        idx = BinarySearchIndex(uniform_keys)
        assert idx.get(uniform_keys[77]) == 77
        assert idx.get(-1.0) is None
        with pytest.raises(KeyNotFoundError):
            idx[-1.0]

    def test_lookup_all_duplicates(self):
        idx = BinarySearchIndex(np.array([1.0, 2.0, 2.0, 3.0]))
        assert idx.lookup_all(2.0) == [1, 2]

    def test_unsorted_rejected(self):
        with pytest.raises(NotSortedError):
            BinarySearchIndex([3.0, 1.0])

    def test_range(self, uniform_keys):
        idx = BinarySearchIndex(uniform_keys)
        lo, hi = uniform_keys[10], uniform_keys[20]
        got = [k for k, _ in idx.range_items(lo, hi)]
        assert len(got) == 11

    def test_range_exclusive(self):
        idx = BinarySearchIndex(np.arange(10.0))
        got = [k for k, _ in idx.range_items(2, 5, include_lo=False,
                                             include_hi=False)]
        assert got == [3.0, 4.0]

    def test_insert_delete(self):
        idx = BinarySearchIndex(np.array([1.0, 3.0]))
        idx.insert(2.0)
        assert idx.get(2.0) == 2  # auto rowid
        assert [k for k, _ in idx.items()] == [1.0, 2.0, 3.0]
        assert idx.delete(2.0) == 2
        with pytest.raises(KeyNotFoundError):
            idx.delete(2.0)
        idx.validate()

    def test_bulk_lookup(self, uniform_keys):
        idx = BinarySearchIndex(uniform_keys)
        out = idx.bulk_lookup([uniform_keys[4], -9.0], default="miss")
        assert out[0] == 4
        assert out[1] == "miss"

    def test_counter_charges_log_n(self, uniform_keys):
        from repro.memsim import AccessCounter, binary_search_probes

        counter = AccessCounter()
        idx = BinarySearchIndex(uniform_keys, counter=counter)
        idx.get(uniform_keys[0])
        assert counter.segment_probes == binary_search_probes(len(uniform_keys))
