"""Cross-structure equivalence: every index answers queries identically.

The paper's comparison only makes sense if all four structures implement
the same logical (multi)map; these tests pin that equivalence on shared
workloads, including a hypothesis sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BinarySearchIndex, FixedPageIndex, FullIndex
from repro.core.fiting_tree import FITingTree


def build_all(keys):
    return {
        "fiting": FITingTree(keys, error=32, buffer_capacity=8),
        "fixed": FixedPageIndex(keys, page_size=32, buffer_capacity=8),
        "full": FullIndex(keys),
        "binary": BinarySearchIndex(keys),
    }


@pytest.fixture
def keys(rng):
    base = rng.uniform(0, 1e5, 3_000)
    dups = rng.choice(base, 300)
    return np.sort(np.concatenate([base, dups]))


class TestPointEquivalence:
    def test_hits_agree(self, keys, rng):
        indexes = build_all(keys)
        queries = rng.choice(keys, 300)
        for q in queries:
            results = {name: idx.get(q, None) for name, idx in indexes.items()}
            values = set(results.values())
            # Duplicates may surface different occurrences, but never a miss.
            assert None not in values, results
            row_positions = set(np.flatnonzero(keys == q).tolist())
            assert values <= row_positions

    def test_misses_agree(self, keys, rng):
        indexes = build_all(keys)
        for q in rng.uniform(-1e4, -1.0, 100):
            for name, idx in indexes.items():
                assert idx.get(q, "miss") == "miss", name

    def test_lookup_all_agree(self, keys, rng):
        indexes = build_all(keys)
        for q in rng.choice(keys, 100):
            expected = sorted(np.flatnonzero(keys == q).tolist())
            for name, idx in indexes.items():
                if hasattr(idx, "lookup_all"):
                    assert sorted(idx.lookup_all(q)) == expected, name


class TestRangeEquivalence:
    def test_ranges_agree(self, keys, rng):
        indexes = build_all(keys)
        for _ in range(20):
            lo, hi = np.sort(rng.uniform(keys[0], keys[-1], 2))
            reference = None
            for name, idx in indexes.items():
                got = sorted(k for k, _ in idx.range_items(lo, hi))
                if reference is None:
                    reference = got
                else:
                    assert np.allclose(got, reference), name


class TestMutationEquivalence:
    def test_inserts_then_queries(self, keys, rng):
        indexes = build_all(keys)
        new_keys = rng.uniform(0, 1e5, 200)
        for i, k in enumerate(new_keys):
            for idx in indexes.values():
                idx.insert(k, 1_000_000 + i)
        for i, k in enumerate(new_keys):
            for name, idx in indexes.items():
                assert 1_000_000 + i in idx.lookup_all(k), name

    def test_deletes_then_queries(self, keys):
        indexes = build_all(keys)
        victims = np.unique(keys)[::37]
        for k in victims:
            expected = None
            for name, idx in indexes.items():
                count_before = len(idx.lookup_all(k))
                idx.delete(k)
                assert len(idx.lookup_all(k)) == count_before - 1, name


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=500).map(float),
        min_size=1,
        max_size=120,
    ).map(sorted),
    queries=st.lists(
        st.integers(min_value=-10, max_value=510).map(float), max_size=30
    ),
)
@settings(max_examples=80, deadline=None)
def test_property_all_structures_agree(keys, queries):
    arr = np.asarray(keys)
    indexes = build_all(arr)
    for q in queries:
        hits = {name: (q in idx) for name, idx in indexes.items()}
        assert len(set(hits.values())) == 1, hits
        counts = {
            name: len(idx.lookup_all(q))
            for name, idx in indexes.items()
            if hasattr(idx, "lookup_all")
        }
        assert len(set(counts.values())) == 1, counts
