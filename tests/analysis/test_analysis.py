"""Non-linearity ratio and sweep helpers."""

import numpy as np
import pytest

from repro.analysis import (
    crossover,
    geometric_grid,
    log_error_grid,
    nonlinearity_profile,
    nonlinearity_ratio,
    sweep,
)
from repro.core.errors import InvalidParameterError
from repro.datasets import step_data


class TestNonlinearityRatio:
    def test_step_data_is_maximally_nonlinear_below_step(self):
        keys = step_data(20_000, step=100)
        # At error < step the data is the worst case: ratio near 1.
        assert nonlinearity_ratio(keys, 10) > 0.8

    def test_step_data_linear_above_step(self):
        keys = step_data(20_000, step=100)
        assert nonlinearity_ratio(keys, 500) < 0.05

    def test_linear_data_near_zero(self):
        keys = np.arange(50_000, dtype=np.float64)
        assert nonlinearity_ratio(keys, 100) < 0.01

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            nonlinearity_ratio(np.empty(0), 10)

    def test_profile_skips_oversized_errors(self, periodic_keys):
        profile = nonlinearity_profile(periodic_keys, [10.0, 1e9])
        assert 10.0 in profile
        assert 1e9 not in profile

    def test_profile_default_grid(self, periodic_keys):
        profile = nonlinearity_profile(periodic_keys)
        assert len(profile) >= 3
        assert all(0 < v <= 1.5 for v in profile.values())


class TestGrids:
    def test_log_error_grid(self):
        grid = log_error_grid(1, 3, 1)
        assert grid == pytest.approx([10.0, 100.0, 1000.0])

    def test_log_error_grid_density(self):
        grid = log_error_grid(1, 2, 4)
        assert len(grid) == 5

    def test_log_error_grid_invalid(self):
        with pytest.raises(InvalidParameterError):
            log_error_grid(3, 1)

    def test_geometric_grid(self):
        grid = geometric_grid(1.0, 1000.0, per_decade=1)
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(1000.0)

    def test_geometric_grid_invalid(self):
        with pytest.raises(InvalidParameterError):
            geometric_grid(0.0, 10.0)
        with pytest.raises(InvalidParameterError):
            geometric_grid(10.0, 1.0)


class TestSweep:
    def test_sweep_rows(self):
        rows = sweep(lambda x: {"sq": x * x}, [1, 2, 3], param_name="x")
        assert rows == [
            {"sq": 1, "x": 1},
            {"sq": 4, "x": 2},
            {"sq": 9, "x": 3},
        ]

    def test_crossover_found(self):
        xs = [1, 2, 3, 4]
        assert crossover(xs, [10, 8, 3, 1], [5, 5, 5, 5]) == 3

    def test_crossover_none(self):
        assert crossover([1, 2], [10, 9], [1, 1]) is None

    def test_crossover_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            crossover([1], [1, 2], [1, 2])
