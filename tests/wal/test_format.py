"""WAL record codec: round-trips, CRC detection, torn-tail tolerance."""

import struct

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.wal.format import (
    FILE_HEADER,
    OP_COMMIT,
    OP_DELETE,
    OP_DELETE_VALUE,
    OP_INSERT,
    check_file_header,
    encode_commit,
    encode_delete,
    encode_delete_value,
    encode_insert,
    file_header,
    scan_records,
)


def _log(*chunks):
    return file_header() + b"".join(chunks)


def test_insert_round_trip():
    keys = np.array([1.5, 2.5, 3.5])
    values = np.array([10, 20, 30], dtype=np.int64)
    buf = _log(encode_insert(0, 3, keys, values))
    records, end = scan_records(buf)
    assert end == len(buf)
    (rec,) = records
    assert rec.op == OP_INSERT
    assert rec.lsn == 0
    assert rec.shard == 3
    assert np.array_equal(rec.keys, keys)
    assert np.array_equal(rec.values, values)
    assert rec.values.dtype == np.int64


def test_insert_preserves_value_dtype():
    keys = np.array([1.0])
    values = np.array([2.75], dtype=np.float32)
    buf = _log(encode_insert(7, 0, keys, values))
    (rec,), _ = scan_records(buf)
    assert rec.values.dtype == np.float32
    assert rec.values[0] == np.float32(2.75)


def test_delete_round_trip_both_missing_modes():
    keys = np.array([9.0, 8.0])
    for missing in ("raise", "ignore"):
        buf = _log(encode_delete(1, 2, keys, missing))
        (rec,), _ = scan_records(buf)
        assert rec.op == OP_DELETE
        assert rec.missing == missing
        assert np.array_equal(rec.keys, keys)


def test_delete_value_round_trip():
    buf = _log(encode_delete_value(4, 1, 3.25, np.int64(42)))
    (rec,), _ = scan_records(buf)
    assert rec.op == OP_DELETE_VALUE
    assert rec.keys[0] == 3.25
    assert rec.values[0] == 42


def test_commit_round_trip():
    buf = _log(encode_commit(5, 1234))
    (rec,), _ = scan_records(buf)
    assert rec.op == OP_COMMIT
    assert rec.next_rowid == 1234


def test_object_values_are_rejected():
    with pytest.raises(InvalidParameterError):
        encode_insert(0, 0, np.array([1.0]), np.array(["x"], dtype=object))


def test_crc_corruption_stops_the_scan():
    good = encode_insert(0, 0, np.array([1.0]), np.array([1], dtype=np.int64))
    later = encode_commit(1, 1)
    buf = bytearray(_log(good, later))
    # Flip one payload byte of the first record.
    buf[len(file_header()) + len(good) - 1] ^= 0xFF
    records, end = scan_records(bytes(buf))
    assert records == []
    assert end == len(file_header())


def test_truncated_tail_is_ignored():
    good = encode_insert(0, 0, np.array([1.0]), np.array([1], dtype=np.int64))
    torn = encode_commit(1, 1)[:-3]
    buf = _log(good, torn)
    records, end = scan_records(buf)
    assert len(records) == 1
    assert end == len(file_header()) + len(good)


def test_bad_magic_is_rejected():
    buf = b"NOTAWAL!" + b"\x00" * 8
    with pytest.raises(InvalidParameterError):
        check_file_header(buf)
    # Wrong format version with the right magic must also be rejected.
    magic = FILE_HEADER.unpack_from(file_header())[0]
    bad = FILE_HEADER.pack(magic, 999, 0)
    with pytest.raises(InvalidParameterError):
        check_file_header(bad)


def test_header_is_fixed_width():
    # The record header layout is on-disk ABI; changing it silently
    # would orphan every existing log.
    from repro.wal.format import RECORD_HEADER

    assert RECORD_HEADER.size == struct.calcsize("<IIQBBh")
