"""Background snapshots: off-path rotation with a crash-safe handoff.

The contract: with ``background_snapshots=True``, generation rotation's
disk work happens on a worker thread between two safe points; the
manifest flips only once the new generation (snapshot + byte-copied
committed WAL suffix) is complete. A SIGKILL at *any* moment therefore
recovers a state bit-identical to a never-crashed twin that applied the
same committed prefix.
"""

import multiprocessing
import os
import signal
import time

import numpy as np

from repro.api import open_engine
from repro.engine import ShardedEngine
from repro.wal import WalStore, load_manifest

BASE = np.sort(np.random.default_rng(17).uniform(0, 1e6, 3_000))


def _assert_states_match(a, b):
    assert a["next_rowid"] == b["next_rowid"]
    assert np.array_equal(a["cuts"], b["cuts"])
    assert len(a["shards"]) == len(b["shards"])
    for sa, sb in zip(a["shards"], b["shards"]):
        for field in sa:
            va = sa[field]
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, sb[field], equal_nan=True), field


def _open_bg(data_dir, keys=BASE, **kw):
    return open_engine(
        keys, executor="sharded", n_shards=2, error=64.0,
        durability="wal+snapshot", data_dir=data_dir,
        background_snapshots=True, **kw,
    )


def test_rotation_happens_across_safe_points(tmp_path):
    engine = _open_bg(str(tmp_path), snapshot_interval_bytes=4_000)
    store = engine._wal
    rng = np.random.default_rng(1)
    try:
        # First crossing of the interval only *starts* the job…
        while store.generation == 1 and not store.stats()["snapshot_in_flight"]:
            engine.insert_batch(rng.uniform(0, 1e6, 64))
        assert store.generation == 1
        # …and a later safe point finalizes it.
        deadline = time.time() + 60
        while store.generation == 1:
            assert time.time() < deadline, "rotation never finalized"
            engine.insert_batch(rng.uniform(0, 1e6, 8))
            time.sleep(0.005)
        assert store.generation >= 2
        assert store.snapshots_taken >= 1
    finally:
        engine.close()


def test_carried_wal_suffix_survives_the_flip(tmp_path):
    """Writes committed while the snapshot thread runs must be replayable
    from the new generation alone."""
    engine = _open_bg(str(tmp_path), snapshot_interval_bytes=2_000)
    twin = ShardedEngine(BASE, n_shards=2, error=64.0)
    rng = np.random.default_rng(2)
    try:
        for _ in range(60):
            keys = rng.uniform(0, 1e6, 64)
            values = rng.integers(0, 1 << 30, 64)
            engine.insert_batch(keys, values)
            twin.insert_batch(keys, values)
        doomed = BASE[100:130].copy()
        assert list(engine.delete_batch(doomed)) == list(
            twin.delete_batch(doomed)
        )
    finally:
        engine.close()
    reopened = _open_bg(str(tmp_path), keys=None)
    try:
        _assert_states_match(reopened.to_states(), twin.to_states())
    finally:
        reopened.close()


def test_close_finalizes_a_finished_job(tmp_path):
    engine = _open_bg(str(tmp_path), snapshot_interval_bytes=1_000)
    store = engine._wal
    rng = np.random.default_rng(3)
    engine.insert_batch(rng.uniform(0, 1e6, 256))  # starts the job
    if store.stats()["snapshot_in_flight"]:
        store._bg_job.thread.join()  # finished, not yet finalized
        gen_before = store.generation
        engine.close()
        assert load_manifest(str(tmp_path))["generation"] > gen_before
    else:
        engine.close()
    reopened = _open_bg(str(tmp_path), keys=None)
    reopened.close()


def _crash_loop(data_dir, ready):
    """Child: insert forever with tiny snapshot intervals (parent kills)."""
    engine = open_engine(
        BASE, executor="sharded", n_shards=2, error=64.0,
        durability="wal+snapshot", data_dir=data_dir,
        background_snapshots=True, snapshot_interval_bytes=2_000,
    )
    ready.set()
    i = 0
    while True:
        engine.insert_batch(
            np.asarray([2e6 + i], dtype=np.float64),
            np.asarray([i], dtype=np.int64),
        )
        i += 1


def test_sigkill_during_background_rotation_recovers_bit_identical(tmp_path):
    """The crash test pinning the safe-point handoff: kill the process
    while rotations are continuously starting/finalizing, then recover
    and compare against a twin that applied the committed prefix."""
    ctx = multiprocessing.get_context("fork")
    ready = ctx.Event()
    child = ctx.Process(target=_crash_loop, args=(str(tmp_path), ready))
    child.start()
    try:
        assert ready.wait(60), "child never initialized its engine"
        deadline = time.time() + 60
        # Let it churn through at least one full rotation before killing.
        while load_manifest(str(tmp_path))["generation"] < 3:
            assert time.time() < deadline, "child never rotated"
            time.sleep(0.01)
    finally:
        os.kill(child.pid, signal.SIGKILL)
        child.join(10)

    probe = WalStore(str(tmp_path), durability="wal+snapshot")
    probe.recover()  # the manifest + tail must parse cleanly post-kill
    probe.close()
    # The manifest's generation is complete: snapshot state + tail replay
    # must equal a twin that applied every committed insert in order.
    recovered = open_engine(
        executor="sharded", n_shards=2, error=64.0,
        durability="wal+snapshot", data_dir=str(tmp_path),
        background_snapshots=True,
    )
    try:
        n = len(recovered) - BASE.size  # committed inserts (unique keys)
        assert n > 0
        twin = ShardedEngine(BASE, n_shards=2, error=64.0)
        for i in range(n):
            twin.insert_batch(
                np.asarray([2e6 + i], dtype=np.float64),
                np.asarray([i], dtype=np.int64),
            )
        _assert_states_match(recovered.to_states(), twin.to_states())
        assert recovered.get(2e6 + (n - 1)) == n - 1
    finally:
        recovered.close()
