"""The disabled-path cost guard: durability off must be ~free.

Runs the ``wal`` bench experiment at smoke size and asserts the claim
the docs make: an engine opened with ``durability="off"`` pays <= 2% on
the ``insert_batch`` hot loop relative to the un-instrumented
implementation (matched-pair minima, same shape as the obs guard).
"""

from repro.bench.exp_wal import OFF_OVERHEAD_LIMIT_PCT, wal


def test_disabled_durability_overhead_within_guard():
    result = wal(n=20_000, n_inserts=20_000, repeats=5, out=None)
    rows = {r["mode"]: r for r in result.rows if r["kind"] == "insert_throughput"}
    assert set(rows) == {"baseline", "off", "wal", "wal+snapshot"}
    assert rows["baseline"]["overhead_pct"] == 0.0
    off_pct = rows["off"]["overhead_pct"]
    if off_pct > OFF_OVERHEAD_LIMIT_PCT:
        # Timing on a loaded CI box is noisy at smoke size; one retry at
        # higher repeat count separates a real regression from a blip.
        retry = wal(n=20_000, n_inserts=20_000, repeats=15, out=None)
        off_pct = min(
            off_pct,
            next(
                r["overhead_pct"]
                for r in retry.rows
                if r.get("mode") == "off"
            ),
        )
    assert off_pct <= OFF_OVERHEAD_LIMIT_PCT, rows["off"]
    # Durable modes must still move data (the point of recording them is
    # the trajectory, not a bar) and recovery rows must be present.
    for mode in ("wal", "wal+snapshot"):
        assert rows[mode]["ops_per_second"] > 0
    recovery = [r for r in result.rows if r["kind"] == "recovery"]
    assert recovery and all(r["recovery_ms"] > 0 for r in recovery)
    assert all(r["n_recovered"] == r["n"] + r["tail_ops"] for r in recovery)


def test_experiment_registered_with_harness():
    from repro.bench import experiment_names

    assert "wal" in experiment_names()
