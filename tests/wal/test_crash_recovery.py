"""Crash recovery end-to-end: SIGKILLed workers and whole processes.

The durability contract under test: after a hard kill (worker process or
the whole engine process) mid-write, restarting from snapshot + committed
WAL tail yields a state **bit-identical** to an in-process twin that
applied the same committed operations and never crashed.
"""

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.api import open_engine
from repro.cluster import ClusterEngine
from repro.engine import ShardedEngine
from repro.wal import WalStore, load_manifest

BASE = np.sort(np.random.default_rng(7).uniform(0, 1e6, 3_000))


def _assert_states_match(a, b):
    """Bit-identical data arrays (version stamps may differ: replay and
    restore bump a recovered engine's counters independently)."""
    assert a["next_rowid"] == b["next_rowid"]
    assert np.array_equal(a["cuts"], b["cuts"])
    assert len(a["shards"]) == len(b["shards"])
    for sa, sb in zip(a["shards"], b["shards"]):
        for field in sa:
            va = sa[field]
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, sb[field], equal_nan=True), field


def _kill_worker(engine, sid):
    pid = engine._workers[sid].process.pid
    os.kill(pid, signal.SIGKILL)
    engine._workers[sid].process.join(10)


def _durable_cluster(tmp, **kw):
    engine = ClusterEngine(BASE, n_shards=2, error=64.0)
    store = WalStore(str(tmp), **kw)
    store.initialize(engine._pull_states())
    engine.attach_wal(store)
    return engine


def test_worker_sigkill_mid_insert_recovers_bit_identical(tmp_path):
    engine = _durable_cluster(tmp_path, durability="wal")
    twin = ShardedEngine(BASE, n_shards=2, error=64.0)
    rng = np.random.default_rng(8)
    try:
        for round_no in range(4):
            keys = rng.uniform(0, 1e6, 64)
            values = rng.integers(0, 1 << 30, 64)
            if round_no % 2 == 0:
                # The worker is dead when the chunk is dispatched: the
                # send/recv fails mid-round and the engine must restore
                # from snapshot + tail, re-applying the logged chunk.
                _kill_worker(engine, round_no % 2)
            engine.insert_batch(keys, values)
            twin.insert_batch(keys, values)
            assert len(engine) == len(twin)
        engine.validate()
        _assert_states_match(engine._pull_states(), twin.to_states())
    finally:
        engine.close()


def test_worker_sigkill_mid_delete_recovers_values_or_types(tmp_path):
    engine = _durable_cluster(tmp_path, durability="wal")
    twin = ShardedEngine(BASE, n_shards=2, error=64.0)
    try:
        _kill_worker(engine, 0)
        doomed = BASE[:10].copy()
        got = engine.delete_batch(doomed)
        want = twin.delete_batch(doomed)
        assert list(got) == list(want)
        assert len(engine) == len(twin)
        _assert_states_match(engine._pull_states(), twin.to_states())
    finally:
        engine.close()


def test_worker_sigkill_mid_snapshot_keeps_old_generation(tmp_path):
    engine = _durable_cluster(
        tmp_path, durability="wal+snapshot", snapshot_interval_bytes=1
    )
    twin = ShardedEngine(BASE, n_shards=2, error=64.0)
    store = engine._wal
    real_provider = engine._pull_states

    def dying_provider():
        # The snapshot pull finds a freshly-killed worker: the pull
        # raises ClusterError mid-snapshot and must leave the previous
        # generation's manifest fully intact.
        _kill_worker(engine, 0)
        return real_provider()

    store.bind(dying_provider)
    keys = np.array([123.25, 456.75])
    values = np.array([1, 2])
    engine.insert_batch(keys, values)  # crosses interval -> snapshot dies
    twin.insert_batch(keys, values)
    assert store.generation == 1
    assert load_manifest(str(tmp_path))["generation"] == 1

    # The engine is still fully usable: the next op restores the worker,
    # and with the real provider back, the snapshot completes.
    store.bind(real_provider)
    engine.insert_batch(np.array([789.5]), np.array([3]))
    twin.insert_batch(np.array([789.5]), np.array([3]))
    assert store.generation > 1
    _assert_states_match(engine._pull_states(), twin.to_states())
    engine.close()

    # And recovery from the post-crash generation matches the twin too.
    reopened = open_engine(
        executor="sharded", n_shards=2, error=64.0,
        durability="wal+snapshot", data_dir=str(tmp_path),
    )
    try:
        _assert_states_match(reopened.to_states(), twin.to_states())
    finally:
        reopened.close()


def _crash_loop(data_dir, ready):
    """Child: open a durable engine and insert forever (parent SIGKILLs)."""
    engine = open_engine(
        BASE, executor="sharded", n_shards=1, error=64.0,
        durability="wal", data_dir=data_dir,
    )
    ready.set()
    i = 0
    while True:
        engine.insert_batch(
            np.asarray([2e6 + i], dtype=np.float64),
            np.asarray([i], dtype=np.int64),
        )
        i += 1


def test_whole_process_sigkill_recovers_committed_prefix(tmp_path):
    ctx = multiprocessing.get_context("fork")
    ready = ctx.Event()
    child = ctx.Process(target=_crash_loop, args=(str(tmp_path), ready))
    child.start()
    try:
        assert ready.wait(60), "child never initialized its engine"
        wal_rel = load_manifest(str(tmp_path))["wal"]
        wal_path = os.path.join(str(tmp_path), wal_rel)
        deadline = time.time() + 60
        while os.path.getsize(wal_path) < 4096:  # let some commits land
            assert time.time() < deadline, "child made no progress"
            time.sleep(0.01)
    finally:
        os.kill(child.pid, signal.SIGKILL)
        child.join(10)

    # Count the committed inserts, then check recovery equals the twin
    # that applied exactly that prefix and never crashed.
    probe = WalStore(str(tmp_path))
    ops = probe.recover().ops
    probe.close()
    k = len(ops)
    assert k > 0

    recovered = open_engine(
        executor="sharded", n_shards=1, error=64.0,
        durability="wal", data_dir=str(tmp_path),
    )
    try:
        twin = ShardedEngine(BASE, n_shards=1, error=64.0)
        for i in range(k):
            twin.insert_batch(
                np.asarray([2e6 + i], dtype=np.float64),
                np.asarray([i], dtype=np.int64),
            )
        _assert_states_match(recovered.to_states(), twin.to_states())
        assert recovered.get(2e6 + (k - 1)) == k - 1
        if k < len(ops) + 1:  # the torn (k+1)-th insert must be absent
            assert (2e6 + k) not in recovered
    finally:
        recovered.close()


def test_poisoned_worker_is_restored_on_durable_engine(tmp_path):
    engine = _durable_cluster(tmp_path, durability="wal")
    try:
        # Simulate a timed-out worker: poisoned shards are fenced off on
        # non-durable engines, but a durable engine kills + restores.
        engine._poisoned.add(0)
        with pytest.raises(Exception):
            # Directly exercise the transport guard for coverage.
            engine._send(0, ("stats",))
        out = engine.get_batch(BASE[:32])
        assert list(out) == list(range(32))
        assert 0 not in engine._poisoned
    finally:
        engine.close()
