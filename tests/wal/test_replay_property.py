"""Property: replaying any committed prefix of a random CRUD history
through the WAL equals applying that prefix directly.

This is the recovery contract stated operationally: a crash after the
k-th group commit must recover to exactly the state a never-crashed
engine reaches after the k-th verb — for every k and every history. The
test materializes the crash by truncating a copy of the log at each
commit boundary and recovering from it.
"""

import os
import shutil
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import open_engine
from repro.engine import ShardedEngine
from repro.wal import OP_COMMIT, load_manifest
from repro.wal.format import check_file_header, iter_records

BASE = np.sort(np.random.default_rng(3).uniform(0, 1000.0, 400))

_key = st.integers(0, 127).map(lambda i: float(i) * 9.7)
_batch = st.lists(_key, min_size=1, max_size=8, unique=True)


@st.composite
def _histories(draw):
    n_ops = draw(st.integers(1, 6))
    out = []
    for _ in range(n_ops):
        if draw(st.booleans()):
            keys = draw(_batch)
            values = draw(
                st.lists(
                    st.integers(-(2**40), 2**40),
                    min_size=len(keys),
                    max_size=len(keys),
                )
            )
            out.append(("insert", keys, values))
        else:
            out.append(("delete", draw(_batch), None))
    return out


def _apply(engine, history):
    for verb, keys, values in history:
        if verb == "insert":
            engine.insert_batch(
                np.asarray(keys), np.asarray(values, dtype=np.int64)
            )
        else:
            engine.delete_batch(np.asarray(keys), missing="ignore")


def _commit_boundaries(wal_path):
    """Byte offsets of every committed-prefix end (0 commits included)."""
    with open(wal_path, "rb") as fh:
        buf = fh.read()
    check_file_header(buf)
    from repro.wal.format import FILE_HEADER

    boundaries = [FILE_HEADER.size]
    for rec, end in iter_records(buf):
        if rec.op == OP_COMMIT:
            boundaries.append(end)
    return boundaries


@given(history=_histories(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_replay_of_any_commit_prefix_equals_direct(history, data):
    tmp = tempfile.mkdtemp(prefix="repro-wal-prop-")
    crash = tempfile.mkdtemp(prefix="repro-wal-prop-crash-")
    try:
        engine = open_engine(
            BASE, executor="sharded", n_shards=2, error=64.0,
            durability="wal", data_dir=tmp, wal_sync=False,
        )
        _apply(engine, history)
        engine.close()

        wal_name = load_manifest(tmp)["wal"]
        boundaries = _commit_boundaries(os.path.join(tmp, wal_name))
        # One group commit per verb: the boundary list indexes histories.
        assert len(boundaries) == len(history) + 1
        k = data.draw(
            st.integers(0, len(history)), label="commits survived"
        )

        shutil.rmtree(crash)
        shutil.copytree(tmp, crash)
        with open(os.path.join(crash, wal_name), "r+b") as fh:
            fh.truncate(boundaries[k])
        recovered = open_engine(
            executor="sharded", n_shards=2, error=64.0,
            durability="wal", data_dir=crash, wal_sync=False,
        )
        try:
            twin = ShardedEngine(BASE, n_shards=2, error=64.0)
            _apply(twin, history[:k])
            a, b = recovered.to_states(), twin.to_states()
            assert a["next_rowid"] == b["next_rowid"]
            assert np.array_equal(a["cuts"], b["cuts"])
            for sa, sb in zip(a["shards"], b["shards"]):
                assert set(sa) == set(sb)
                for field in sa:
                    va, vb = sa[field], sb[field]
                    if isinstance(va, np.ndarray):
                        assert np.array_equal(va, vb, equal_nan=True), field
                    else:
                        assert va == vb, field
            probe = np.unique(np.concatenate([BASE, np.arange(128) * 9.7]))
            miss = object()
            assert list(recovered.get_batch(probe, miss)) == list(
                twin.get_batch(probe, miss)
            )
        finally:
            recovered.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
        shutil.rmtree(crash, ignore_errors=True)
