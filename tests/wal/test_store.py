"""WalStore lifecycle: initialize/recover, rotation, tail handling."""

import os

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.engine import ShardedEngine
from repro.wal import WalStore, load_manifest, replay_ops

KEYS = np.sort(np.random.default_rng(0).uniform(0, 1e6, 4_000))


def _engine():
    return ShardedEngine(KEYS, n_shards=2, error=64.0)


def _fresh(tmp_path, engine, durability="wal", **kw):
    store = WalStore(str(tmp_path), durability=durability, **kw)
    store.initialize(engine.to_states())
    return store


def test_initialize_creates_generation_one(tmp_path):
    engine = _engine()
    store = WalStore(str(tmp_path))
    assert not store.exists
    store.initialize(engine.to_states())
    assert store.exists
    assert store.generation == 1
    manifest = load_manifest(str(tmp_path))
    assert manifest["generation"] == 1
    assert len(manifest["snapshots"]) == 2
    for name in manifest["snapshots"] + [manifest["wal"]]:
        assert os.path.exists(os.path.join(str(tmp_path), name))
    store.close()


def test_double_initialize_is_rejected(tmp_path):
    engine = _engine()
    store = _fresh(tmp_path, engine)
    store.close()
    with pytest.raises(InvalidParameterError):
        WalStore(str(tmp_path)).initialize(engine.to_states())


def test_invalid_durability_mode_is_rejected(tmp_path):
    for mode in ("off", "nope"):
        with pytest.raises(InvalidParameterError):
            WalStore(str(tmp_path), durability=mode)


def test_log_commit_recover_round_trip(tmp_path):
    engine = _engine()
    store = _fresh(tmp_path, engine)
    store.log_insert(0, np.array([1.5]), np.array([7], dtype=np.int64))
    store.log_delete(1, np.array([float(KEYS[-1])]), "raise")
    assert store.commit(next_rowid=4001)
    store.close()

    reopened = WalStore(str(tmp_path))
    rec = reopened.recover()
    assert rec.next_rowid == 4001
    assert [r.op for r in rec.ops] == [1, 2]
    twin = ShardedEngine.from_states(rec.states)
    replay_ops(twin, rec.ops)
    assert twin.get(1.5) == 7
    assert float(KEYS[-1]) not in twin
    reopened.close()


def test_commit_without_pending_is_a_noop(tmp_path):
    store = _fresh(tmp_path, _engine())
    bytes_before = store.stats()["wal_bytes"]
    assert not store.commit(next_rowid=0)
    assert store.stats()["wal_bytes"] == bytes_before
    store.close()


def test_recovery_truncates_torn_tail(tmp_path):
    engine = _engine()
    store = _fresh(tmp_path, engine)
    store.log_insert(0, np.array([1.5]), np.array([7], dtype=np.int64))
    store.commit(next_rowid=4001)
    wal_path = os.path.join(str(tmp_path), load_manifest(str(tmp_path))["wal"])
    store.close()

    committed = os.path.getsize(wal_path)
    with open(wal_path, "ab") as fh:
        fh.write(b"\x13\x37" * 40)  # a torn, garbage tail

    reopened = WalStore(str(tmp_path))
    rec = reopened.recover()
    assert len(rec.ops) == 1
    assert os.path.getsize(wal_path) == committed  # tail cut in place
    # New appends must extend the committed prefix, not the garbage.
    reopened.log_insert(0, np.array([2.5]), np.array([8], dtype=np.int64))
    reopened.commit(next_rowid=4002)
    reopened.close()
    rec2 = WalStore(str(tmp_path)).recover()
    assert [float(r.keys[0]) for r in rec2.ops] == [1.5, 2.5]
    assert rec2.next_rowid == 4002


def test_uncommitted_records_do_not_replay(tmp_path):
    engine = _engine()
    store = _fresh(tmp_path, engine)
    store.log_insert(0, np.array([1.5]), np.array([7], dtype=np.int64))
    store.commit(next_rowid=4001)
    # Logged but never committed: must not survive recovery.
    store.log_insert(0, np.array([2.5]), np.array([8], dtype=np.int64))
    store._writer._fh.flush()
    store.close()
    rec = WalStore(str(tmp_path)).recover()
    assert [float(r.keys[0]) for r in rec.ops] == [1.5]
    assert rec.next_rowid == 4001


def test_snapshot_rotates_generation_and_prunes(tmp_path):
    engine = _engine()
    store = _fresh(tmp_path, engine)
    engine.attach_wal(store)
    engine.insert_batch(np.array([1.5, 2.5]), None)
    old = set(os.listdir(str(tmp_path)))
    store.snapshot(engine.to_states())
    assert store.generation == 2
    manifest = load_manifest(str(tmp_path))
    assert manifest["generation"] == 2
    new = set(os.listdir(str(tmp_path)))
    assert not (old & new) - {"MANIFEST.json"}  # old generation pruned
    engine.close()

    # Recovery from the new generation alone reproduces the dataset.
    rec = WalStore(str(tmp_path)).recover()
    assert rec.ops == []
    twin = ShardedEngine.from_states(rec.states)
    assert twin.get(1.5) is not None
    assert len(twin) == len(KEYS) + 2


def test_snapshot_with_pending_records_is_rejected(tmp_path):
    engine = _engine()
    store = _fresh(tmp_path, engine)
    store.log_insert(0, np.array([1.5]), np.array([7], dtype=np.int64))
    with pytest.raises(InvalidParameterError):
        store.snapshot(engine.to_states())
    store.close()


def test_maybe_snapshot_honors_interval_and_mode(tmp_path):
    engine = _engine()
    # Plain "wal" mode never auto-snapshots.
    store = _fresh(tmp_path, engine, durability="wal",
                   snapshot_interval_bytes=1)
    engine.attach_wal(store)
    engine.insert_batch(np.array([1.5]), None)
    assert store.generation == 1
    assert store.stats()["snapshots"] == 0
    engine.close()

    other = tmp_path / "snap"
    engine2 = _engine()
    store2 = WalStore(str(other), durability="wal+snapshot",
                      snapshot_interval_bytes=1)
    store2.initialize(engine2.to_states())
    engine2.attach_wal(store2)
    engine2.insert_batch(np.array([1.5]), None)  # crosses the 1-byte interval
    assert store2.generation == 2
    assert store2.stats()["snapshots"] == 1
    engine2.close()


def test_stats_schema(tmp_path):
    store = _fresh(tmp_path, _engine())
    stats = store.stats()
    assert {
        "durability", "generation", "records", "commits", "fsyncs",
        "wal_bytes", "snapshots", "tail_ops",
    } <= set(stats)
    store.close()
