"""Unit tests for the asyncio admin endpoint."""

import asyncio
import json

import numpy as np
import pytest

from repro.obs import MetricsRegistry, Telemetry
from repro.obs.http import AdminServer, serve


async def _fetch(port, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split(b" ")[1])
    headers = head.decode().lower()
    return status, headers, body


def _full_telemetry():
    tel = Telemetry(mode="full")
    tel.registry.counter("demo_total", "Demo counter.").labels().inc(3)
    tel.ensure_workload([100.0])
    tel.workload.record("get", np.array([1.0, 2.0, 150.0]))
    return tel


def test_metrics_route_serves_prometheus_text():
    async def run():
        admin = await AdminServer(_full_telemetry()).start()
        try:
            status, headers, body = await _fetch(admin.port, "/metrics")
            assert status == 200
            assert "text/plain" in headers
            assert b"demo_total 3" in body
        finally:
            await admin.close()

    asyncio.run(run())


def test_stats_route_returns_snapshot_json():
    async def run():
        admin = await AdminServer(_full_telemetry()).start()
        try:
            status, headers, body = await _fetch(admin.port, "/stats")
            assert status == 200 and "application/json" in headers
            snap = json.loads(body)
            assert snap["mode"] == "full"
            assert snap["workload"]["total_keys"] == 3
        finally:
            await admin.close()

    asyncio.run(run())


def test_workload_and_slow_routes_parse():
    async def run():
        admin = await AdminServer(_full_telemetry()).start()
        try:
            _, _, body = await _fetch(admin.port, "/workload")
            wl = json.loads(body)
            assert wl["workload"]["n_shards"] == 2
            assert wl["skew"]["hottest_shard"] == 0
            _, _, body = await _fetch(admin.port, "/slow")
            slow = json.loads(body)
            assert slow["summary"]["count"] == 0
            assert slow["records"] == []
        finally:
            await admin.close()

    asyncio.run(run())


def test_unknown_path_404_and_non_get_405():
    async def run():
        admin = await AdminServer(_full_telemetry()).start()
        try:
            status, _, _ = await _fetch(admin.port, "/nope")
            assert status == 404
            status, _, _ = await _fetch(admin.port, "/metrics", method="POST")
            assert status == 405
        finally:
            await admin.close()

    asyncio.run(run())


def test_serve_wraps_bare_registry_with_shim():
    async def run():
        reg = MetricsRegistry()
        reg.counter("bare_total", "Bare registry counter.").labels().inc()
        admin = await serve(reg)
        try:
            status, _, body = await _fetch(admin.port, "/metrics")
            assert status == 200 and b"bare_total 1" in body
            _, _, body = await _fetch(admin.port, "/workload")
            assert json.loads(body) == {"workload": None, "skew": None}
            _, _, body = await _fetch(admin.port, "/slow")
            assert json.loads(body)["summary"] is None
        finally:
            await admin.close()

    asyncio.run(run())


def test_json_dumps_handles_numpy_and_nonfinite():
    from repro.obs.http import _dumps

    payload = {
        "a": np.int64(3),
        "b": np.float64("inf"),
        "c": np.arange(3),
    }
    out = json.loads(_dumps(payload))
    assert out == {"a": 3, "b": None, "c": [0, 1, 2]}


def test_server_admin_port_requires_telemetry():
    from repro.core.errors import InvalidParameterError
    from repro.engine import ShardedEngine
    from repro.serve.server import Server

    eng = ShardedEngine(np.sort(np.random.default_rng(0).uniform(0, 1, 100)))
    with pytest.raises(InvalidParameterError):
        Server(eng, admin_port=0)
