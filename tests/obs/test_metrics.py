"""Unit tests for the metrics registry: families, labels, exporters."""

import json

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.obs import MetricsRegistry, Telemetry
from repro.obs.export import snapshot, to_prometheus


def test_counter_family_labels_and_samples():
    reg = MetricsRegistry()
    fam = reg.counter("ops_total", help="Ops.", labels=("op",))
    fam.labels("get").inc()
    fam.labels("get").inc(2)
    fam.labels("insert").inc(5)
    samples = {lv: child.value for lv, child in fam.samples()}
    assert samples[("get",)] == 3.0
    assert samples[("insert",)] == 5.0


def test_family_is_idempotent_and_kind_checked():
    reg = MetricsRegistry()
    a = reg.counter("x_total")
    assert reg.counter("x_total") is a
    with pytest.raises(InvalidParameterError):
        reg.gauge("x_total")


def test_labels_arity_checked():
    reg = MetricsRegistry()
    fam = reg.counter("y_total", labels=("a", "b"))
    with pytest.raises(InvalidParameterError):
        fam.labels("only-one")


def test_gauge_set_and_inc():
    reg = MetricsRegistry()
    g = reg.gauge("depth").labels()
    g.set(10)
    g.inc(-3)
    assert g.value == 7.0


def test_histogram_buckets_cumulative_and_overflow():
    reg = MetricsRegistry()
    fam = reg.histogram("lat_us", buckets=(1.0, 10.0, 100.0))
    h = fam.labels()
    for v in (0.5, 5.0, 50.0, 500.0):
        h.observe(v)
    h.observe_many(np.asarray([2.0, 20.0]))
    assert h.count == 6
    assert h.sum == pytest.approx(577.5)
    # Cumulative counts per upper bound, overflow excluded.
    assert h.cumulative() == [1, 3, 5]


def test_histogram_bucket_validation():
    reg = MetricsRegistry()
    with pytest.raises(InvalidParameterError):
        reg.histogram("bad", buckets=(3.0, 2.0))
    with pytest.raises(InvalidParameterError):
        reg.histogram("bad2", buckets=(1.0, float("inf")))


def test_callback_scalar_and_dict_sources():
    reg = MetricsRegistry()
    reg.register_callback("pending", lambda: 4)
    reg.register_callback(
        "events", lambda: {"hit": 2, "miss": 1}, labels=("kind",)
    )
    snap = snapshot(reg)
    assert snap["metrics"]["pending"]["samples"][0]["value"] == 4.0
    events = {
        s["labels"]["kind"]: s["value"]
        for s in snap["metrics"]["events"]["samples"]
    }
    assert events == {"hit": 2.0, "miss": 1.0}


def test_callback_exception_is_swallowed():
    reg = MetricsRegistry()

    def boom():
        raise RuntimeError("collector died")

    reg.register_callback("flaky", boom)
    assert snapshot(reg)["metrics"]["flaky"]["samples"] == []


def test_snapshot_is_json_serializable():
    reg = MetricsRegistry()
    reg.counter("c_total", labels=("op",)).labels("get").inc()
    reg.histogram("h_us", buckets=(1.0, 2.0)).labels().observe(1.5)
    text = json.dumps(snapshot(reg))
    assert "c_total" in text and "h_us" in text


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("ops_total", help="Ops.", labels=("op",)).labels("get").inc(3)
    h = reg.histogram("lat_us", buckets=(10.0, 100.0)).labels()
    h.observe(5.0)
    h.observe(500.0)
    text = to_prometheus(reg)
    assert "# TYPE ops_total counter" in text
    assert 'ops_total{op="get"} 3' in text
    assert 'lat_us_bucket{le="10"} 1' in text
    assert 'lat_us_bucket{le="+Inf"} 2' in text
    assert "lat_us_sum 505" in text
    assert "lat_us_count 2" in text


def test_telemetry_from_mode_mapping():
    assert Telemetry.from_mode(None) is None
    assert Telemetry.from_mode("off") is None
    tel = Telemetry.from_mode("metrics")
    assert tel.mode == "metrics" and tel.tracer is None
    assert Telemetry.from_mode(tel) is tel
    full = Telemetry.from_mode("full")
    assert full.tracer is not None and full.tracing
    with pytest.raises(InvalidParameterError):
        Telemetry.from_mode("verbose")
    with pytest.raises(InvalidParameterError):
        Telemetry(mode="off")
