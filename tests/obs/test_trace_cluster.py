"""Acceptance: one traced ``get_batch`` yields a span tree that crosses
the shm/worker process boundary with matching trace ids on both sides.

This pins the PR's headline behaviour: submit → flush (with reason) →
per-shard dispatch → worker compute (in another process) → gather, all
under one ``trace_id``, with the worker-side spans stitched back through
the control-pipe reply by ``Tracer.ingest``.
"""

import asyncio
import os

import numpy as np

from repro import Telemetry, open_engine, open_server

KEYS = np.sort(np.random.default_rng(7).uniform(0, 1e6, 20_000))
#: Queries drawn from both ends of the key space so both shards compute.
SPREAD = np.concatenate([KEYS[:64], KEYS[-64:]])


def test_cluster_get_batch_span_tree_crosses_worker_boundary():
    engine = open_engine(KEYS, executor="cluster", n_shards=2, telemetry="full")
    try:
        engine.get_batch(SPREAD)
        tracer = engine.telemetry.tracer

        roots = tracer.find("cluster.get_batch")
        assert len(roots) == 1
        root = roots[0]
        assert root.parent_id is None  # no serve layer above it here
        assert root.attrs["n"] == SPREAD.size

        workers = tracer.find("worker.compute")
        assert len(workers) == 2  # both shards computed
        assert {w.attrs["shard"] for w in workers} == {0, 1}
        for w in workers:
            # Same trace on both sides of the shm boundary...
            assert w.trace_id == root.trace_id
            # ...parented by the parent-side dispatch span...
            assert w.parent_id == root.span_id
            # ...but recorded in a different process.
            assert w.attrs["pid"] != os.getpid()
            assert w.attrs["n"] == 64
            assert w.duration > 0.0

        gathers = tracer.find("cluster.gather")
        assert len(gathers) == 1
        assert gathers[0].parent_id == root.span_id
        assert gathers[0].attrs["shards"] == 2

        # The whole trace hangs off one root in the adjacency tree.
        tree = tracer.tree(root.trace_id)
        assert [sp.name for sp in tree[""]] == ["cluster.get_batch"]
        child_names = sorted(sp.name for sp in tree[root.span_id])
        assert child_names == [
            "cluster.gather", "worker.compute", "worker.compute",
        ]
    finally:
        engine.close()


def test_untraced_cluster_wire_format_unchanged():
    # telemetry off: frames/replies keep their 3-tuple shape and no spans
    # appear anywhere (nothing to ingest, no tracer to ingest into).
    engine = open_engine(KEYS, executor="cluster", n_shards=2)
    try:
        assert engine.telemetry is None
        out = engine.get_batch(SPREAD)
        assert out.size == SPREAD.size
    finally:
        engine.close()


def test_server_over_cluster_end_to_end_chain():
    async def drive():
        server = open_server(
            KEYS,
            executor="cluster",
            n_shards=2,
            telemetry="full",
            max_batch=128,
            max_delay=0.05,
        )
        engine = server.engine
        try:
            async with server:
                await asyncio.gather(
                    *(server.get(float(k)) for k in SPREAD)
                )
            return server
        finally:
            engine.close()

    server = asyncio.run(drive())
    tracer = server.telemetry.tracer

    flushes = tracer.find("serve.flush")
    assert flushes, "no flush span recorded"
    flush = flushes[0]
    assert flush.parent_id is None
    assert flush.attrs["reason"] in ("size", "timer", "idle", "drain")
    assert flush.attrs["queue_wait_us"] >= 0.0

    # The full chain shares the flush's trace id at every stage.
    chain = ("serve.dispatch", "cluster.get_batch", "worker.compute")
    by_name = {name: tracer.find(name) for name in chain}
    for name in chain:
        assert by_name[name], f"no {name} span"
        assert all(sp.trace_id == flush.trace_id for sp in by_name[name])

    # Parent links: dispatch under flush, engine under dispatch, worker
    # under the engine span — one unbroken path across the process gap.
    dispatch = by_name["serve.dispatch"][0]
    assert dispatch.parent_id == flush.span_id
    cluster_spans = by_name["cluster.get_batch"]
    assert all(sp.parent_id == dispatch.span_id for sp in cluster_spans)
    cluster_ids = {sp.span_id for sp in cluster_spans}
    workers = by_name["worker.compute"]
    assert {w.attrs["shard"] for w in workers} == {0, 1}
    for w in workers:
        assert w.parent_id in cluster_ids
        assert w.attrs["pid"] != os.getpid()

    # The flush reason counted in the batcher's stats matches the span.
    stats = server.stats()
    reasons = stats["batcher"]["flush_reasons"]
    assert reasons[flush.attrs["reason"]] >= 1
    assert sum(reasons.values()) == stats["batcher"]["flushes"]
    # And the shared registry saw traffic from both layers.
    tel = stats["telemetry"]
    assert tel["mode"] == "full"
    ops = {
        s["labels"]["op"]: s["value"]
        for s in tel["metrics"]["repro_engine_keys_total"]["samples"]
    }
    assert ops["get_batch"] == SPREAD.size


def test_shared_telemetry_instance_across_engines():
    tel = Telemetry(mode="metrics")
    a = open_engine(KEYS[:1000], executor="sharded", n_shards=2, telemetry=tel)
    b = open_engine(KEYS[:1000], executor="single", telemetry=tel)
    a.get_batch(KEYS[:16])
    b.get_batch(KEYS[:16])
    fam = tel.registry.get("repro_engine_keys_total")
    samples = {lv: child.value for lv, child in fam.samples()}
    assert samples[("get_batch",)] == 32.0
