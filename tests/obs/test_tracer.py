"""Unit tests for the span tracer: nesting, ring bounds, ingest."""

import pytest

from repro.obs import Telemetry, Tracer, span_record


def test_nested_spans_share_trace_and_parent():
    tr = Tracer()
    with tr.span("outer") as outer:
        with tr.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
        with tr.span("sibling") as sib:
            assert sib.parent_id == outer.span_id
    assert outer.parent_id is None
    # Inner spans close (and record) before the outer one.
    assert [sp.name for sp in tr.spans()] == ["inner", "sibling", "outer"]
    tree = tr.tree(outer.trace_id)
    assert {sp.name for sp in tree[outer.span_id]} == {"inner", "sibling"}
    assert tree[""][0].name == "outer"


def test_ctx_reflects_innermost_open_span():
    tr = Tracer()
    assert tr.ctx() is None
    with tr.span("a") as a:
        assert tr.ctx() == (a.trace_id, a.span_id)
    assert tr.ctx() is None


def test_duration_stamped_on_exception_path():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        with tr.span("broken"):
            raise RuntimeError("boom")
    (sp,) = tr.spans()
    assert sp.name == "broken" and sp.duration >= 0.0


def test_ring_capacity_and_dropped_counter():
    tr = Tracer(capacity=4)
    for i in range(7):
        with tr.span(f"s{i}"):
            pass
    assert len(tr.spans()) == 4
    assert tr.dropped == 3
    assert [sp.name for sp in tr.spans()] == ["s3", "s4", "s5", "s6"]
    tr.clear()
    assert tr.spans() == [] and tr.dropped == 3


def test_ingest_stitches_foreign_records():
    tr = Tracer()
    with tr.span("root") as root:
        ctx = (root.trace_id, root.span_id)
    rec = span_record("worker.compute", ctx, 1.0, 0.5, shard=3, pid=999)
    tr.ingest([rec])
    spans = tr.find("worker.compute")
    assert len(spans) == 1
    sp = spans[0]
    assert sp.trace_id == root.trace_id
    assert sp.parent_id == root.span_id
    assert sp.attrs == {"shard": 3, "pid": 999}
    assert sp.duration == 0.5


def test_ingest_drops_malformed_records():
    tr = Tracer()
    tr.ingest([{"no": "ids"}, None, {"trace_id": "t"}])
    assert tr.spans() == []
    assert tr.dropped == 3


def test_dropped_splits_ring_evictions_from_malformed_ingest():
    tr = Tracer(capacity=2)
    for i in range(5):
        with tr.span(f"s{i}"):
            pass
    tr.ingest([None])
    # Ring overflow and bad ingest are distinct failure modes; the
    # aggregate `dropped` stays as the back-compat sum.
    assert tr.dropped_spans == 3
    assert tr.dropped_malformed == 1
    assert tr.dropped == 4


def test_snapshot_surfaces_dropped_span_counters():
    from repro.obs import snapshot
    from repro.obs.metrics import MetricsRegistry

    tr = Tracer(capacity=1)
    for i in range(3):
        with tr.span(f"s{i}"):
            pass
    out = snapshot(MetricsRegistry(), tr)
    assert out["trace"]["dropped_spans"] == 2
    assert out["trace"]["dropped_malformed"] == 0
    assert out["trace"]["dropped"] == 2


def test_span_ids_are_pid_prefixed_and_unique():
    import os

    tr = Tracer()
    with tr.span("a") as a:
        pass
    with tr.span("b") as b:
        pass
    prefix = f"{os.getpid():x}-"
    assert a.span_id.startswith(prefix) and b.span_id.startswith(prefix)
    assert a.span_id != b.span_id


def test_telemetry_span_helper_modes():
    tel = Telemetry(mode="metrics")
    with tel.span("x") as sp:
        assert sp is None  # metrics mode: no tracer, no-op block
    full = Telemetry(mode="full")
    with full.span("y") as sp:
        assert sp is not None
        assert full.ctx() == (sp.trace_id, sp.span_id)
    snap = full.snapshot()
    assert snap["mode"] == "full"
    assert [s["name"] for s in snap["trace"]["spans"]] == ["y"]
