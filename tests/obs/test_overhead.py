"""The disabled-path cost guard: telemetry off must be ~free.

Runs the ``obs`` bench experiment at smoke size and asserts the claim the
docs make: an engine opened with ``telemetry="off"`` pays <= 2% on the
``get_batch`` hot loop relative to the un-instrumented implementation
(the experiment measures matched pairs and keeps per-mode minima, so the
comparison is robust to scheduler noise).
"""

from repro.bench.exp_obs import OFF_OVERHEAD_LIMIT_PCT, obs


def test_disabled_telemetry_overhead_within_guard():
    result = obs(n=20_000, n_queries=20_000, repeats=9, out=None)
    rows = {r["mode"]: r for r in result.rows}
    assert set(rows) == {"baseline", "off", "metrics", "full"}
    assert rows["baseline"]["overhead_pct"] == 0.0
    off_pct = rows["off"]["overhead_pct"]
    if off_pct > OFF_OVERHEAD_LIMIT_PCT:
        # Timing on a loaded CI box is noisy at smoke size; one retry at
        # higher repeat count separates a real regression from a blip.
        retry = obs(n=20_000, n_queries=20_000, repeats=21, out=None)
        off_pct = min(
            off_pct,
            next(r["overhead_pct"] for r in retry.rows if r["mode"] == "off"),
        )
    assert off_pct <= OFF_OVERHEAD_LIMIT_PCT, rows["off"]
    # Enabled modes must still answer correctly-sized throughput numbers
    # (the point of recording them is the trajectory, not a bar).
    for mode in ("metrics", "full"):
        assert rows[mode]["ops_per_second"] > 0


def test_experiment_registered_with_harness():
    from repro.bench import experiment_names

    assert "obs" in experiment_names()
