"""The telemetry cost guards: off must be ~free, the profiler cheap.

Runs the ``obs`` bench experiment at smoke size and asserts the claims
the docs make: an engine opened with ``telemetry="off"`` pays <= 2% on
the ``get_batch`` hot loop relative to the un-instrumented
implementation, and the workload profiler's increment — the
``"workload"`` row minus the ``"metrics"`` row, both in percentage
points of baseline — stays <= 5%. Both guards are differentials between
rows measured in the same matched-pair rounds, so common-mode timing
drift cancels instead of failing the build.
"""

from repro.bench.exp_obs import (
    OFF_OVERHEAD_LIMIT_PCT,
    WORKLOAD_OVERHEAD_LIMIT_PCT,
    obs,
)

ALL_MODES = {
    "baseline", "off", "metrics", "workload", "full", "full+workload",
}


def _mode_pct(result, mode):
    return next(r["overhead_pct"] for r in result.rows if r["mode"] == mode)


def test_disabled_telemetry_overhead_within_guard():
    result = obs(n=20_000, n_queries=20_000, repeats=9, out=None)
    rows = {r["mode"]: r for r in result.rows}
    assert set(rows) == ALL_MODES
    assert rows["baseline"]["overhead_pct"] == 0.0
    off_pct = rows["off"]["overhead_pct"]
    if off_pct > OFF_OVERHEAD_LIMIT_PCT:
        # Timing on a loaded CI box is noisy at smoke size; one retry at
        # higher repeat count separates a real regression from a blip.
        retry = obs(n=20_000, n_queries=20_000, repeats=21, out=None)
        off_pct = min(off_pct, _mode_pct(retry, "off"))
    assert off_pct <= OFF_OVERHEAD_LIMIT_PCT, rows["off"]
    # Enabled modes must still answer correctly-sized throughput numbers
    # (the point of recording them is the trajectory, not a bar).
    for mode in ("metrics", "workload", "full", "full+workload"):
        assert rows[mode]["ops_per_second"] > 0


def _profiler_increment(result):
    return _mode_pct(result, "workload") - _mode_pct(result, "metrics")


def test_workload_profiler_increment_within_guard():
    result = obs(n=20_000, n_queries=20_000, repeats=9, out=None)
    inc_pct = _profiler_increment(result)
    if inc_pct > WORKLOAD_OVERHEAD_LIMIT_PCT:
        retry = obs(n=20_000, n_queries=20_000, repeats=21, out=None)
        inc_pct = min(inc_pct, _profiler_increment(retry))
    assert inc_pct <= WORKLOAD_OVERHEAD_LIMIT_PCT, inc_pct


def test_experiment_registered_with_harness():
    from repro.bench import experiment_names

    assert "obs" in experiment_names()
