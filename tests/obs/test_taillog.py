"""Unit tests for the slow-op log: threshold, marks, attribution."""

import numpy as np

from repro.obs import SlowOpLog, Tracer, span_record


def _feed_uniform(log, n=512, value=100.0):
    log.observe("get", np.full(n, value))


def test_threshold_stays_infinite_until_min_samples():
    log = SlowOpLog(min_samples=64, refresh=16)
    log.observe("get", np.full(8, 100.0))
    assert log.summary()["threshold_us"] is None
    _feed_uniform(log)
    assert log.summary()["threshold_us"] is not None


def test_slow_ops_marked_and_finalized_without_tracer():
    log = SlowOpLog(min_samples=32, refresh=32)
    _feed_uniform(log)  # threshold settles near 100us
    log.observe("get", np.array([100.0, 5000.0, 90.0]),
                keys=np.array([1.0, 42.0, 3.0]))
    made = log.finalize()
    assert made == 1
    (rec,) = log.records()
    assert rec["kind"] == "get"
    assert rec["latency_us"] == 5000.0
    assert rec["key"] == 42.0
    assert rec["key_lo"] == 1.0 and rec["key_hi"] == 42.0
    assert rec["spans"] == []
    assert set(rec["stages_us"]) == {
        "queue_wait_us", "route_us", "worker_compute_us", "gather_us",
    }


def test_marks_capped_per_cycle_keep_the_worst():
    log = SlowOpLog(min_samples=32, refresh=32, max_marks_per_cycle=2)
    _feed_uniform(log)
    lat = np.array([100.0, 9000.0, 8000.0, 7000.0, 6000.0])
    log.observe("get", lat)
    log.finalize()
    kept = sorted(r["latency_us"] for r in log.records())
    assert kept == [8000.0, 9000.0]


def test_ring_eviction_increments_dropped():
    log = SlowOpLog(capacity=2, min_samples=32, refresh=32,
                    max_marks_per_cycle=8)
    _feed_uniform(log)
    for _ in range(3):
        log.observe("get", np.array([9000.0]))
        log.finalize()
    assert len(log.records()) == 2
    assert log.summary()["dropped"] == 1


def test_finalize_attaches_span_tree_and_stage_breakdown():
    tr = Tracer()
    with tr.span("serve.flush", queue_wait_us=120.0) as root:
        trace_id = root.trace_id
        with tr.span("cluster.get_batch"):
            ctx = tr.ctx()
            pass
    # A foreign worker's compute span stitched into the same trace.
    tr.ingest([span_record("worker.compute", ctx, 0.0, 0.004, pid=999)])

    log = SlowOpLog(min_samples=32, refresh=32)
    _feed_uniform(log)
    log.observe("get", np.array([9000.0]), trace_id=trace_id)
    assert log.finalize(tr) == 1
    (rec,) = log.records()
    names = {sp["name"] for sp in rec["spans"]}
    assert {"serve.flush", "cluster.get_batch", "worker.compute"} <= names
    stages = rec["stages_us"]
    assert stages["queue_wait_us"] == 120.0
    assert stages["worker_compute_us"] == 4000.0
    assert stages["route_us"] >= 0.0


def test_clear_drops_records_but_keeps_threshold():
    log = SlowOpLog(min_samples=32, refresh=32)
    _feed_uniform(log)
    before = log.summary()["threshold_us"]
    log.observe("get", np.array([9000.0]))
    log.finalize()
    log.clear()
    assert log.records() == []
    assert log.summary()["threshold_us"] == before


def test_unroutable_keys_fall_back_to_keyless_marks():
    log = SlowOpLog(min_samples=32, refresh=32)
    _feed_uniform(log)
    log.observe("get", np.array([9000.0]), keys=["not-a-key"])
    log.finalize()
    (rec,) = log.records()
    assert rec["key"] is None and rec["key_lo"] is None
