"""Unit tests for the workload profiler: sketches, merges, skew."""

import numpy as np
import pytest

from repro.obs import ShardWorkloadProfiler, SpaceSaving, Telemetry, WorkloadProfiler


# ---------------------------------------------------------------------------
# SpaceSaving sketch
# ---------------------------------------------------------------------------

def test_space_saving_tracks_heavy_hitters_exactly_when_under_capacity():
    ss = SpaceSaving(capacity=8)
    for _ in range(5):
        ss.offer(1.0)
    ss.offer(2.0, count=3)
    top = ss.top(2)
    assert top[0] == (1.0, 5, 0)
    assert top[1] == (2.0, 3, 0)
    assert len(ss) == 2
    assert ss.total == 8


def test_space_saving_eviction_inherits_floor_as_error():
    ss = SpaceSaving(capacity=2)
    ss.offer(1.0, count=10)
    ss.offer(2.0, count=3)
    ss.offer(3.0)  # evicts key 2.0 (the min), inherits its count
    (k, count, err) = ss.top(3)[-1]
    assert k == 3.0
    assert count == 4  # floor 3 + 1
    assert err == 3
    assert len(ss) == 2


def test_space_saving_guarantees_frequent_keys_survive():
    rng = np.random.default_rng(0)
    ss = SpaceSaving(capacity=32)
    noise = rng.uniform(0, 1e6, 2_000)
    for k in noise:
        ss.offer(float(k))
    for _ in range(500):
        ss.offer(42.0)
    top_keys = [k for k, _, _ in ss.top(5)]
    assert 42.0 in top_keys


# ---------------------------------------------------------------------------
# WorkloadProfiler binning
# ---------------------------------------------------------------------------

def test_profiler_bins_keys_into_owning_shard_rows():
    # 3 shards: (-inf, 10), [10, 20), [20, inf) with adopted open edges.
    prof = WorkloadProfiler(cuts=[10.0, 20.0], n_bins=4, sample=1,
                            batch_sample=1)
    prof.record("get", np.array([0.0, 5.0, 9.0]))       # shard 0
    prof.record("get", np.array([12.0, 15.0, 19.0]))    # shard 1
    prof.record("get", np.array([25.0, 30.0]))          # shard 2
    snap = prof.snapshot()
    per_shard = [sum(row["counts"]) for row in snap["heatmap"]]
    assert per_shard == [3, 3, 2]
    assert snap["total_keys"] == 8


def test_profiler_inner_shard_middle_bins_receive_counts():
    # Regression guard: inner shards (both edges from cuts) must spread
    # keys across their bins, not collapse everything into bin 0.
    prof = WorkloadProfiler(cuts=[0.0, 100.0], n_bins=10, sample=1)
    prof.record("get", np.array([5.0, 55.0, 95.0]))  # all shard 1
    row = prof.snapshot()["heatmap"][1]["counts"]
    assert row[0] == 1 and row[5] == 1 and row[9] == 1


def test_profiler_open_edges_adopt_and_widen_from_observed_keys():
    prof = WorkloadProfiler(cuts=[100.0], n_bins=4, sample=1,
                            batch_sample=1)
    prof.record("get", np.array([10.0, 50.0, 90.0]))
    snap = prof.snapshot()
    assert snap["heatmap"][0]["lo"] == 10.0
    assert snap["heatmap"][0]["hi"] == 100.0  # inner edge stays the cut
    prof.record("get", np.array([0.0]))  # widens shard 0's lo edge
    assert prof.snapshot()["heatmap"][0]["lo"] == 0.0


def test_profiler_strided_sampling_scales_counts_back_up():
    prof = WorkloadProfiler(cuts=[], n_bins=4, sample=4)
    prof.record("get", np.linspace(0.0, 1.0, 64))
    snap = prof.snapshot()
    assert snap["total_keys"] == 64  # exact (per-call n, not sampled)
    assert sum(snap["heatmap"][0]["counts"]) == 64  # 16 sampled * 4


def test_profiler_batch_stride_folds_skipped_calls_into_next_binned():
    # batch_sample=4: calls 2-4 only bump totals/pending; call 5 bins and
    # scales its sample so the skipped batches' keys are represented.
    prof = WorkloadProfiler(cuts=[], n_bins=4, sample=1, batch_sample=4)
    batch = np.linspace(0.0, 1.0, 32)
    prof.record("get", batch)  # call 1: always binned (32 counted)
    for _ in range(3):
        prof.record("get", batch)  # skipped, 96 keys pending
    snap = prof.snapshot()
    assert snap["batch_sample"] == 4
    assert snap["total_keys"] == 128  # exact despite skips
    assert sum(snap["verbs"]["get"]) == 32  # pending not yet binned
    prof.record("get", batch)  # call 5: bins, factor = 128 // 32
    snap = prof.snapshot()
    assert snap["total_keys"] == 160
    assert sum(snap["verbs"]["get"]) == 160  # 32 + 32 * 4
    # A different verb's first call is binned immediately: single-burst
    # traffic on a rare verb is never invisible in the mix.
    prof.record("insert", batch[:8])
    assert sum(prof.snapshot()["verbs"]["insert"]) == 8


def test_profiler_verb_mix_and_read_fraction():
    prof = WorkloadProfiler(cuts=[], n_bins=4, sample=1)
    prof.record("get", np.arange(8.0))
    prof.record("insert", np.arange(4.0))
    prof.record("range", np.arange(4.0))
    snap = prof.snapshot()
    assert sum(snap["verbs"]["get"]) == 8
    assert sum(snap["verbs"]["insert"]) == 4
    assert sum(snap["verbs"]["range"]) == 4
    assert snap["read_fraction"] == pytest.approx(12 / 16)


def test_profiler_hot_keys_recovered_from_skewed_stream():
    rng = np.random.default_rng(3)
    prof = WorkloadProfiler(cuts=[5e5], sample=1, batch_sample=1,
                            hot_sample=1, flush_keys=512)
    hot = np.asarray([float(k) for k in rng.uniform(0, 1e6, 10)])
    for _ in range(40):
        batch = np.concatenate([rng.uniform(0, 1e6, 64), np.repeat(hot, 4)])
        rng.shuffle(batch)
        prof.record("get", batch)
    reported = {h["key"] for h in prof.snapshot()["hot_keys"]}
    assert len(reported & set(hot.tolist())) >= 8


def test_skew_report_identifies_hot_shard():
    prof = WorkloadProfiler(cuts=[100.0], n_bins=8, sample=1,
                            batch_sample=1)
    prof.record("get", np.random.default_rng(4).uniform(0, 100, 1000))
    prof.record("get", np.random.default_rng(5).uniform(100, 200, 50))
    skew = prof.skew_report()
    assert skew["hottest_shard"] == 0
    assert skew["per_shard"][0]["share"] > 0.9
    assert skew["shard_gini"] > 0.4


# ---------------------------------------------------------------------------
# Shard profiler deltas + merge
# ---------------------------------------------------------------------------

def test_shard_delta_merges_into_parent_schema():
    parent = WorkloadProfiler(cuts=[100.0], n_bins=8, sample=1)
    worker = ShardWorkloadProfiler(lo=None, hi=100.0, n_bins=8, sample=1)
    delta = worker.record("get", np.array([10.0, 20.0, 90.0]))
    assert delta["v"] == "get" and delta["n"] == 3
    parent.merge_delta(0, delta)
    snap = parent.snapshot()
    assert snap["merged_deltas"] == 1
    assert snap["total_keys"] == 3
    assert sum(snap["verbs"]["get"]) == 3
    assert sum(snap["heatmap"][0]["counts"]) == 3
    assert sum(snap["heatmap"][1]["counts"]) == 0


def test_shard_delta_hot_candidates_reach_parent_sketch():
    parent = WorkloadProfiler(cuts=[], n_bins=4, sample=1)
    worker = ShardWorkloadProfiler(sample=1, flush_keys=64)
    hot_key = 7.0
    for _ in range(4):
        delta = worker.record(
            "get", np.concatenate([np.full(24, hot_key), np.arange(8.0)])
        )
        parent.merge_delta(0, delta)
    top = {h["key"] for h in parent.snapshot()["hot_keys"]}
    assert hot_key in top


def test_empty_batch_delta_is_a_noop():
    parent = WorkloadProfiler(cuts=[], n_bins=4)
    worker = ShardWorkloadProfiler()
    parent.merge_delta(0, worker.record("get", np.empty(0)))
    assert parent.snapshot()["total_keys"] == 0
    assert parent.snapshot()["merged_deltas"] == 0


# ---------------------------------------------------------------------------
# Telemetry integration
# ---------------------------------------------------------------------------

def test_telemetry_workload_modes_resolve():
    assert Telemetry.from_mode("off") is None
    metrics = Telemetry.from_mode("metrics")
    assert metrics.workload_enabled is False and metrics.taillog is None
    wl = Telemetry.from_mode("workload")
    assert wl.workload_enabled is True and wl.tracer is None
    full = Telemetry.from_mode("full")
    assert full.workload_enabled is True and full.taillog is not None
    fw = Telemetry.from_mode("full+workload")
    assert fw.workload_enabled is True and fw.tracer is not None


def test_ensure_workload_is_lazy_and_shared():
    tel = Telemetry(mode="metrics", workload=True)
    assert tel.workload is None
    prof = tel.ensure_workload([10.0])
    assert prof is tel.workload
    assert tel.ensure_workload([10.0]) is prof  # second engine reuses it
    off = Telemetry(mode="metrics", workload=False)
    assert off.ensure_workload([10.0]) is None


def test_snapshot_carries_workload_and_slow_ops_blocks():
    tel = Telemetry(mode="full")
    tel.ensure_workload([10.0])
    tel.workload.record("get", np.array([1.0, 2.0]))
    snap = tel.snapshot()
    assert snap["workload"]["total_keys"] == 2
    assert "skew" in snap["workload"]
    assert snap["slow_ops"]["count"] == 0
