"""Every registered experiment runs end-to-end at toy sizes.

These are regression guards for the benchmark harness: each experiment must
produce rows and notes, and its headline shape property must hold even at
small n.
"""

import json

import pytest

from repro.bench import experiment_names, format_table, run_experiment
from repro.core.errors import InvalidParameterError

TOY = {"n": 4_000, "seed": 0}


def rows_of(name, **kwargs):
    result = run_experiment(name, **kwargs)
    assert result.rows, f"{name} produced no rows"
    assert result.notes, f"{name} produced no notes"
    assert format_table(result.rows)  # renders without crashing
    return result


def test_experiment_registry_complete():
    assert set(experiment_names()) >= {
        "table1",
        "fig1",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "a3",
        "abl_cone",
        "abl_branching",
        "cluster",
        "engine",
        "serve",
    }


def test_unknown_experiment_raises():
    with pytest.raises(InvalidParameterError):
        run_experiment("fig99")


def test_table1():
    result = rows_of(
        "table1", n=2_000, endpoint_n=800, errors=(10, 100),
        datasets=("weblogs", "iot"),
    )
    for row in result.rows:
        assert row["greedy"] >= row["optimal"]
        assert row["ratio"] >= 1.0


def test_fig1():
    result = rows_of("fig1", **TOY)
    events = [r["events_this_hour"] for r in result.rows]
    assert max(events) > 0


def test_fig6():
    result = rows_of("fig6", n=4_000, n_queries=500, grid=(16, 256),
                     datasets=("weblogs", "maps"))
    structures = {r["structure"] for r in result.rows}
    assert structures == {"fiting", "fixed", "full", "binary"}
    for row in result.rows:
        assert row["hit_rate"] == 1.0


def test_fig7():
    result = rows_of("fig7", n=4_000, n_inserts=500, errors=(16, 64),
                     datasets=("weblogs",))
    full_rows = [r for r in result.rows if r["structure"] == "full"]
    assert all(r["splits"] == 0 for r in full_rows)


def test_fig8():
    result = rows_of("fig8", n=4_000, datasets=("weblogs", "iot"))
    for row in result.rows:
        for name in ("weblogs", "iot"):
            if row[name] != "":
                assert 0 < row[name] <= 1.5


def test_fig9():
    result = rows_of("fig9", n=4_000, errors=(10, 99, 1000))
    by_error = {r["error"]: r for r in result.rows}
    assert by_error[99]["fiting_segments"] == 1
    assert by_error[10]["fiting_segments"] > 100


def test_fig10():
    result = rows_of("fig10", n=4_000, n_queries=300, errors=(16, 64))
    for row in result.rows:
        assert row["size_est/act"] >= 1.0


def test_fig11():
    result = rows_of("fig11", n=2_000, n_queries=300, scale_factors=(1, 2, 4))
    assert len(result.rows) == 3


def test_fig12():
    result = rows_of("fig12", n=4_000, n_inserts=400, error=2_000,
                     buffers=(10, 100))
    splits = [r["splits"] for r in result.rows]
    assert splits[0] > splits[1]  # smaller buffer -> more splits


def test_fig13():
    result = rows_of("fig13", n=4_000, n_queries=300, grid=(10, 100))
    for row in result.rows:
        assert row["pct_tree"] + row["pct_page"] <= 100.01


def test_a3():
    result = rows_of("a3", pattern_counts=(5, 20))
    assert result.rows[0]["greedy"] == result.rows[0]["greedy_expected"]
    assert result.rows[-1]["ratio"] > result.rows[0]["ratio"]


def test_engine(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    result = rows_of(
        "engine", n=4_000, n_queries=1_000, batch_size=256,
        datasets=("uniform", "iot"), out=str(out),
    )
    modes = {r["mode"] for r in result.rows}
    assert modes == {
        "scalar", "batch", "sharded-batch", "insert-per-key", "insert-batch",
        "delete-per-key", "delete-batch",
    }
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "engine"
    assert len(payload["rows"]) == len(result.rows)
    for row in payload["rows"]:
        assert row["wall_ns_per_op"] > 0
    # The write experiment records the flat-view residency model per
    # dataset: pages + combined view == ~2x table data once views warm —
    # including the post-delete report of the surviving bulk engine.
    assert set(payload["residency"]) == {"uniform", "iot"}
    for report in payload["residency"].values():
        assert report["page_bytes"] > 0
        assert 1.0 <= report["residency_ratio"] <= 2.5
    # Write modes exercise the bulk paths end to end even at toy n; their
    # speedups are normalized to their per-key apply paths, not scalar
    # gets.
    for bulk_mode, per_key_mode in (
        ("insert-batch", "insert-per-key"),
        ("delete-batch", "delete-per-key"),
    ):
        bulk_rows = [r for r in payload["rows"] if r["mode"] == bulk_mode]
        assert len(bulk_rows) == 2
        for row in bulk_rows:
            assert row["baseline"] == per_key_mode
            assert row["speedup_vs_baseline"] > 0
    for report in payload["residency"].values():
        assert report["post_delete"]["page_bytes"] > 0


def test_engine_modes_filter(tmp_path):
    """--modes restricts both the measurements and the emitted rows."""
    out = tmp_path / "BENCH_engine.json"
    result = rows_of(
        "engine", n=2_000, datasets=("uniform",),
        modes="delete-per-key,delete-batch", out=str(out),
    )
    assert {r["mode"] for r in result.rows} == {
        "delete-per-key", "delete-batch",
    }
    payload = json.loads(out.read_text())
    assert payload["params"]["modes"] == ["delete-per-key", "delete-batch"]
    assert {r["mode"] for r in payload["rows"]} == {
        "delete-per-key", "delete-batch",
    }
    with pytest.raises(ValueError):
        rows_of("engine", n=2_000, modes="warp-drive", out=None)


def test_cluster(tmp_path):
    out = tmp_path / "BENCH_cluster.json"
    result = rows_of(
        "cluster", n=4_000, n_queries=1_000, batch_size=512,
        workers=(1, 2), repeats=1, out=str(out),
    )
    assert {r["workload"] for r in result.rows} == {
        "uniform-read", "skewed-read", "mixed",
    }
    assert {r["workers"] for r in result.rows} == {1, 2}
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "cluster"
    assert payload["params"]["cpu_count"] >= 1
    for row in payload["rows"]:
        # Correctness is the CI-checkable claim: every row was verified
        # bit-identical before being recorded (the throughput bar is a
        # bench-box property, meaningless at toy sizes / low core counts).
        assert row["identical"] is True
        assert row["ops_per_second"] > 0
        if row["mode"] == "cluster":
            assert row["speedup_vs_inproc"] > 0


def test_engine_insert_params_respected(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    result = rows_of(
        "engine", n=2_000, n_queries=500, n_inserts=750, batch_size=128,
        insert_error=64.0, insert_buffer=32, datasets=("uniform",),
        out=str(out),
    )
    payload = json.loads(out.read_text())
    assert payload["params"]["n_inserts"] == 750
    assert payload["params"]["insert_buffer"] == 32
    assert any("insert-batch" == r["mode"] for r in payload["rows"])


def test_serve(tmp_path):
    out = tmp_path / "BENCH_serve.json"
    result = rows_of(
        "serve", n=4_000, n_requests=800, concurrencies=(8, 16),
        repeats=1, open_loop_rate=20_000.0, out=str(out),
    )
    closed = [r for r in result.rows if r["load"] == "closed-loop"]
    assert {r["mode"] for r in closed} == {"scalar-await", "batched"}
    assert {r["concurrency"] for r in closed} == {8, 16}
    open_rows = [r for r in result.rows if r["load"].startswith("open-loop")]
    assert len(open_rows) == 2
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "serve"
    assert payload["params"]["repeats"] == 1
    for row in payload["rows"]:
        assert row["ops_per_second"] > 0
        assert row["p99_us"] >= row["p50_us"]
    # Results are checked bit-identical inside the experiment itself; at
    # toy sizes we only pin the report shape, not the speedup.


def test_abl_cone():
    result = rows_of("abl_cone", n=4_000, errors=(10,),
                     datasets=("weblogs", "iot"))
    for row in result.rows:
        assert row["exact_test"] <= row["paper_test"]


def test_abl_branching():
    result = rows_of("abl_branching", n=4_000, branchings=(4, 64))
    heights = [r["height"] for r in result.rows]
    assert heights[0] >= heights[-1]
