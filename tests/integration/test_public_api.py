"""Public API surface: exports, docstring examples, examples/, and the CLI."""

import doctest
import pathlib
import py_compile
import subprocess
import sys

import pytest

import repro
import repro.core
import repro.memsim

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]


class TestExports:
    @pytest.mark.parametrize("module", [repro, repro.core, repro.memsim])
    def test_all_exports_resolve(self, module):
        for name in module.__all__:
            assert getattr(module, name, None) is not None, name

    def test_headline_classes_importable_from_top(self):
        from repro import (  # noqa: F401
            AccessCounter,
            BinarySearchIndex,
            CostModel,
            FITingTree,
            FixedPageIndex,
            FullIndex,
            LatencyModel,
            SecondaryFITingTree,
            load_index,
            save_index,
            shrinking_cone,
        )

    def test_version(self):
        assert repro.__version__

    def test_every_public_item_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestDoctests:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core.fiting_tree",
            "repro.memsim.latency",
        ],
    )
    def test_docstring_examples_run(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"{module_name}: {results.failed} failures"


class TestExamples:
    def test_examples_compile(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 5
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_worst_case_example_runs(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "examples" / "worst_case_and_adversarial.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "cliff" in proc.stdout


class TestCLI:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.bench", *args],
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_list(self):
        proc = self.run_cli("list")
        assert proc.returncode == 0
        for name in ("table1", "fig6", "a3", "abl_cachesim"):
            assert name in proc.stdout

    def test_single_experiment(self):
        proc = self.run_cli("fig9", "--n", "3000")
        assert proc.returncode == 0
        assert "size cliff" in proc.stdout

    def test_unknown_experiment_fails(self):
        proc = self.run_cli("fig99")
        assert proc.returncode != 0
