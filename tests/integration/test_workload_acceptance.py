"""End-to-end workload analytics acceptance: the ISSUE's bar.

Drives a deliberately skewed workload through the full stack — asyncio
``Server`` over a multi-process ``ClusterEngine`` with
``telemetry="full"`` and a live admin endpoint — then asserts the
analytics surface tells the truth about it:

(a) ``/workload`` identifies the injected hot shard and recovers at
    least 8 of the 10 planted hot keys from the worker-side sketches.
(b) ``/slow`` holds span trees whose ``worker.compute`` spans carry
    *foreign* pids — compute really happened in worker processes.
(c) The committed ``BENCH_obs.json`` off-mode guard still passes.
"""

import asyncio
import json
import math
import os
from pathlib import Path

import numpy as np

from repro import open_server

N = 8_192
RNG = np.random.default_rng(77)
KEYS = np.sort(RNG.uniform(0.0, 1e6, N))

#: Ten planted hot keys, all inside the lower half so one shard runs hot.
HOT_KEYS = KEYS[np.linspace(100, N // 2 - 100, 10, dtype=np.int64)]

N_QUERIES = 12_288
HOT_FRACTION = 0.6  # of queries, aimed at the 10 planted keys
LOW_FRACTION = 0.25  # uniform over the hot shard's half


def _query_stream():
    """A shuffled skewed stream: hot keys + hot-shard noise + background."""
    n_hot = int(N_QUERIES * HOT_FRACTION)
    n_low = int(N_QUERIES * LOW_FRACTION)
    n_bg = N_QUERIES - n_hot - n_low
    parts = [
        RNG.choice(HOT_KEYS, n_hot),
        RNG.choice(KEYS[: N // 2], n_low),
        RNG.choice(KEYS, n_bg),
    ]
    stream = np.concatenate(parts)
    RNG.shuffle(stream)
    return stream


async def _fetch_json(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    assert head.split(b" ")[1] == b"200", head
    return json.loads(body)


def test_skewed_cluster_workload_is_attributed_end_to_end():
    async def drive():
        server = open_server(
            KEYS,
            executor="cluster",
            n_shards=2,
            telemetry="full",
            admin_port=0,
            max_batch=512,
        )
        async with server:
            port = server.admin.port
            stream = _query_stream()
            for start in range(0, stream.size, 1024):
                chunk = stream[start:start + 1024]
                await asyncio.gather(*(server.get(float(k)) for k in chunk))
            workload = await _fetch_json(port, "/workload")
            slow = await _fetch_json(port, "/slow")
        server.engine.close()
        return workload, slow

    workload, slow = asyncio.run(drive())

    # (a) Hot shard: the heatmap and skew report both name shard 0.
    snap = workload["workload"]
    assert snap["n_shards"] == 2
    assert snap["merged_deltas"] > 0, "workers never shipped deltas"
    per_shard = [sum(row["counts"]) for row in snap["heatmap"]]
    assert per_shard[0] > 2 * per_shard[1], per_shard
    skew = workload["skew"]
    assert skew["hottest_shard"] == 0
    assert skew["per_shard"][0]["share"] > 0.6

    # (a) Hot keys: >= 8 of the 10 planted keys surface in the sketch.
    reported = {h["key"] for h in snap["hot_keys"]}
    recovered = reported & set(HOT_KEYS.tolist())
    assert len(recovered) >= 8, (
        f"only {len(recovered)}/10 planted hot keys recovered: "
        f"{sorted(recovered)}"
    )

    # (b) Slow ops carry span trees with foreign worker.compute pids.
    records = slow["records"]
    assert slow["summary"]["count"] == len(records) > 0
    my_pid = os.getpid()
    foreign = [
        sp
        for rec in records
        for sp in rec["spans"]
        if sp["name"] == "worker.compute"
        and sp.get("attrs", {}).get("pid") not in (None, my_pid)
    ]
    assert foreign, "no worker.compute spans from worker processes in /slow"
    with_tree = [rec for rec in records if rec["spans"]]
    assert any(
        rec["stages_us"]["worker_compute_us"] > 0.0 for rec in with_tree
    )


def test_committed_bench_obs_off_mode_guard_still_passes():
    path = Path(__file__).resolve().parents[2] / "BENCH_obs.json"
    doc = json.loads(path.read_text())
    limit = doc["params"]["off_overhead_limit_pct"]
    off = next(r for r in doc["rows"] if r["mode"] == "off")
    assert math.isfinite(off["overhead_pct"])
    assert off["overhead_pct"] <= limit, (
        f"off-mode overhead {off['overhead_pct']}% exceeds {limit}% guard"
    )
