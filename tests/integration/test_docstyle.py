"""The docstring style gate passes (same check CI runs as its own step).

Keeping it in the suite means a local ``pytest`` run catches a docstring
regression before CI does, and pins the checker's own behaviour.
"""

import ast
import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO / "tools" / "check_docstyle.py"


def load_checker():
    spec = importlib.util.spec_from_file_location("check_docstyle", CHECKER)
    mod = importlib.util.module_from_spec(spec)
    sys.modules["check_docstyle"] = mod
    spec.loader.exec_module(mod)
    return mod


def test_target_api_passes_docstyle(capsys):
    mod = load_checker()
    assert mod.main() == 0, capsys.readouterr().out


def test_checker_flags_missing_docstring(tmp_path):
    mod = load_checker()
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Module doc."""\n\n\ndef public_fn():\n    return 1\n'
    )
    violations = mod.check_file(bad)
    assert any("missing docstring" in msg for _, _, msg in violations)


def test_checker_flags_missing_sections(tmp_path):
    mod = load_checker()
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Module doc."""\n\n\n'
        "def get_batch(queries):\n"
        '    """Do lookups without the required sections."""\n'
        "    return queries\n"
    )
    violations = mod.check_file(bad)
    assert any("'Parameters' section" in msg for _, _, msg in violations)
    assert any("'Returns' section" in msg for _, _, msg in violations)


def test_every_target_file_is_parseable_and_checked():
    mod = load_checker()
    files = list(mod.iter_target_files())
    assert len(files) >= 8  # engine (4) + serve (5) + paged_index
    for path in files:
        ast.parse(path.read_text())
