"""End-to-end scenarios across the whole stack."""

import numpy as np
import pytest

from repro import (
    BinarySearchIndex,
    CostModel,
    CostModelParams,
    FITingTree,
    FixedPageIndex,
    FullIndex,
    LatencyModel,
    SecondaryFITingTree,
)
from repro.datasets import get
from repro.workloads import (
    insert_stream,
    mixed_lookups,
    run_inserts,
    run_lookups,
    uniform_lookups,
)


class TestClusteredPipeline:
    """Dataset -> index -> workload -> measurements, as the paper runs it."""

    @pytest.fixture(scope="class")
    def keys(self):
        return get("weblogs", n=30_000, seed=0)

    def test_space_savings_headline_claim(self, keys):
        """The paper's headline: comparable lookups at a fraction of the
        space of a dense index."""
        fiting = FITingTree(keys, error=128, buffer_capacity=0)
        full = FullIndex(keys)
        assert fiting.model_bytes() * 20 < full.model_bytes()

        queries = uniform_lookups(keys, 2_000, seed=1)
        model = LatencyModel()
        fit_res = run_lookups(fiting, queries, latency_model=model, use_bulk=True)
        full_res = run_lookups(full, queries, latency_model=model, use_bulk=True)
        assert fit_res.hits == full_res.hits == 2_000
        # Within an order of magnitude of the dense index's modeled latency.
        assert fit_res.modeled_ns_per_op < 10 * full_res.modeled_ns_per_op

    def test_fiting_dominates_fixed_at_matched_size(self, keys):
        """Paper Figure 6's ordering: at a similar (or smaller) index size
        the FITing-Tree is at least as fast as fixed-size paging."""
        model = LatencyModel()
        queries = uniform_lookups(keys, 2_000, seed=2)
        fixed = FixedPageIndex(keys, page_size=64, buffer_capacity=0)
        fixed_res = run_lookups(fixed, queries, latency_model=model, use_bulk=True)
        # Pick the fiting error whose size is below fixed's.
        for error in (16, 32, 64, 128, 256):
            fiting = FITingTree(keys, error=error, buffer_capacity=0)
            if fiting.model_bytes() <= fixed.model_bytes():
                res = run_lookups(fiting, queries, latency_model=model,
                                  use_bulk=True)
                assert res.modeled_ns_per_op <= fixed_res.modeled_ns_per_op * 1.6
                return
        pytest.fail("no fiting configuration under the fixed index size")

    def test_mixed_workload_correctness(self, keys):
        index = FITingTree(keys, error=64)
        queries = mixed_lookups(keys, 3_000, hit_ratio=0.8, seed=3)
        res = run_lookups(index, queries)
        assert abs(res.hits - 2_400) <= 30

    def test_insert_heavy_session(self, keys):
        index = FITingTree(keys, error=64)
        stream = insert_stream(5_000, float(keys[0]), float(keys[-1]), seed=4)
        run_inserts(index, stream)
        index.validate()
        assert len(index) == 35_000
        # All original keys still found after the churn.
        for i in range(0, 30_000, 977):
            assert index.get(keys[i]) == i

    def test_binary_baseline_is_size_floor(self, keys):
        binary = BinarySearchIndex(keys)
        assert binary.model_bytes() == 0
        res = run_lookups(binary, uniform_lookups(keys, 500, 5), use_bulk=True)
        assert res.hits == 500


class TestCostModelLoop:
    def test_sla_workflow(self):
        """The Section 6 story: DBA picks an error from an SLA, builds the
        index, and the simulated system honours it."""
        keys = get("iot", n=30_000, seed=0)
        c = 50.0
        cost = CostModel.learned(keys, params=CostModelParams(c_ns=c))
        error = cost.pick_error_for_latency(1_200.0, candidates=(16, 64, 256, 1024))
        index = FITingTree(keys, error=error, buffer_capacity=int(error) // 2)
        res = run_lookups(
            index,
            uniform_lookups(keys, 1_000, 1),
            latency_model=LatencyModel(c=c),
        )
        assert res.modeled_ns_per_op <= 1_200.0

    def test_budget_workflow(self):
        keys = get("maps", n=30_000, seed=0)
        cost = CostModel.learned(keys)
        budget = 64 * 1024  # 64 KB
        error = cost.pick_error_for_size(budget, candidates=(16, 64, 256, 1024))
        index = FITingTree(keys, error=error, buffer_capacity=int(error) // 2)
        assert index.model_bytes() <= budget


class TestSecondaryPipeline:
    def test_secondary_index_scenario(self):
        """Maps-style scenario: secondary index over an unsorted column."""
        rng = np.random.default_rng(0)
        column = get("maps", n=20_000, seed=0)[rng.permutation(20_000)]
        index = SecondaryFITingTree(column, error=64)
        value = column[123]
        assert 123 in index.lookup(value)
        in_band = sorted(index.range_rowids(0.0, 10.0))
        expected = sorted(np.flatnonzero((column >= 0.0) & (column <= 10.0)).tolist())
        assert in_band == expected

    def test_secondary_size_advantage(self):
        rng = np.random.default_rng(1)
        column = get("maps", n=20_000, seed=1)[rng.permutation(20_000)]
        fiting = SecondaryFITingTree(column, error=256, buffer_capacity=0)
        dense = FullIndex(np.sort(column))
        assert fiting.model_bytes() * 10 < dense.model_bytes()


class TestWorstCase:
    def test_step_cliff(self):
        """Figure 9b: the size cliff at error = step size."""
        keys = get("step", n=20_000, seed=0)
        below = FITingTree(keys, error=50, buffer_capacity=0)
        above = FITingTree(keys, error=120, buffer_capacity=0)
        assert above.n_segments == 1
        assert below.n_segments > 100
        assert below.model_bytes() > 50 * above.model_bytes()

    def test_worst_case_still_correct(self):
        keys = get("step", n=20_000, seed=0)
        index = FITingTree(keys, error=50, buffer_capacity=10)
        assert len(index.lookup_all(100.0)) == 100
        index.insert(100.0, 999_999)
        assert len(index.lookup_all(100.0)) == 101
