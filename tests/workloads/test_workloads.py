"""Workload generators and the runner."""

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.memsim import LatencyModel
from repro.workloads import (
    insert_stream,
    missing_lookups,
    mixed_lookups,
    run_inserts,
    run_lookups,
    run_range_scans,
    uniform_lookups,
    zipf_lookups,
)


@pytest.fixture
def keys(rng):
    return np.sort(rng.uniform(0, 1e5, 5_000))


class TestLookupGenerators:
    def test_uniform_all_present(self, keys):
        queries = uniform_lookups(keys, 500, seed=0)
        assert len(queries) == 500
        assert np.all(np.isin(queries, keys))

    def test_uniform_deterministic(self, keys):
        assert np.array_equal(
            uniform_lookups(keys, 100, seed=5), uniform_lookups(keys, 100, seed=5)
        )

    def test_uniform_empty_keys_rejected(self):
        with pytest.raises(InvalidParameterError):
            uniform_lookups(np.empty(0), 10)

    def test_zipf_skews_popularity(self, keys):
        queries = zipf_lookups(keys, 20_000, seed=0, a=1.2)
        _, counts = np.unique(queries, return_counts=True)
        # The hottest key must receive far more than the mean share.
        assert counts.max() > 20 * counts.mean()
        assert np.all(np.isin(queries, keys))

    def test_zipf_requires_a_above_one(self, keys):
        with pytest.raises(InvalidParameterError):
            zipf_lookups(keys, 10, a=1.0)

    def test_missing_never_hit(self, keys):
        queries = missing_lookups(keys, 1_000, seed=0)
        assert not np.any(np.isin(queries, keys))

    def test_missing_needs_two_distinct(self):
        with pytest.raises(InvalidParameterError):
            missing_lookups(np.array([5.0, 5.0]), 10)

    def test_mixed_hit_ratio(self, keys):
        queries = mixed_lookups(keys, 2_000, hit_ratio=0.75, seed=0)
        hits = np.sum(np.isin(queries, keys))
        assert abs(hits - 1_500) <= 20

    def test_mixed_invalid_ratio(self, keys):
        with pytest.raises(InvalidParameterError):
            mixed_lookups(keys, 10, hit_ratio=1.5)


class TestInsertStream:
    def test_uniform_in_range(self):
        stream = insert_stream(1_000, 10.0, 20.0, seed=0)
        assert np.all((stream >= 10.0) & (stream < 20.0))

    def test_sequential_monotone_beyond_hi(self):
        stream = insert_stream(1_000, 0.0, 100.0, seed=0, pattern="sequential")
        assert np.all(np.diff(stream) >= 0)
        assert stream[0] >= 100.0

    def test_hotspot_concentration(self):
        stream = insert_stream(10_000, 0.0, 1000.0, seed=0, pattern="hotspot")
        hist, _ = np.histogram(stream, bins=10, range=(0.0, 1000.0))
        assert hist.max() > 0.5 * len(stream)

    def test_unknown_pattern(self):
        with pytest.raises(InvalidParameterError):
            insert_stream(10, 0.0, 1.0, pattern="spiral")

    def test_bad_range(self):
        with pytest.raises(InvalidParameterError):
            insert_stream(10, 5.0, 5.0)


class TestRunner:
    def test_run_lookups_counts_hits(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=0)
        queries = np.concatenate(
            [uniform_lookups(keys, 200, 0), missing_lookups(keys, 100, 1)]
        )
        res = run_lookups(index, queries)
        assert res.ops == 300
        assert res.hits == 200
        assert res.modeled_ns_per_op > 0
        assert res.counter.ops == 300
        assert res.wall_seconds > 0

    def test_bulk_matches_single(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=0)
        queries = uniform_lookups(keys, 200, 0)
        single = run_lookups(index, queries, use_bulk=False)
        bulk = run_lookups(index, queries, use_bulk=True)
        assert single.hits == bulk.hits == 200

    def test_flat_model_pricing(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=0)
        queries = uniform_lookups(keys, 100, 0)
        res = run_lookups(index, queries, latency_model=LatencyModel(c=50.0))
        per_op_accesses = res.counter.tree_nodes + res.counter.data_line_misses
        assert res.modeled_ns_per_op == pytest.approx(
            50.0 * per_op_accesses / res.ops
        )

    def test_empty_queries_rejected(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=0)
        with pytest.raises(InvalidParameterError):
            run_lookups(index, np.empty(0))

    def test_run_inserts(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=8)
        stream = insert_stream(500, float(keys[0]), float(keys[-1]), 0)
        res = run_inserts(index, stream)
        assert res.ops == 500
        assert len(index) == 5_500
        assert res.ops_per_second > 0
        assert "splits" in res.extra
        index.validate()

    def test_run_range_scans(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=0)
        bounds = np.array([[keys[0], keys[100]], [keys[200], keys[300]]])
        res = run_range_scans(index, bounds)
        assert res.ops == 2
        assert res.extra["tuples_scanned"] == 202

    def test_range_scan_bad_bounds(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=0)
        with pytest.raises(InvalidParameterError):
            run_range_scans(index, np.array([1.0, 2.0, 3.0]))

    def test_result_row_format(self, keys):
        index = FITingTree(keys, error=32, buffer_capacity=0)
        res = run_lookups(index, uniform_lookups(keys, 50, 0))
        row = res.row()
        assert set(row) >= {
            "ops",
            "wall_ns_per_op",
            "modeled_ns_per_op",
            "ops_per_second",
            "accesses_per_op",
        }
