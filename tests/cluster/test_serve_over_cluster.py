"""The serve layer runs over a ClusterEngine unchanged.

The point of keeping the exact ShardedEngine API: ``repro.serve.Server``
(batching, read-your-writes fences, failure isolation, drain-on-close)
must work over the multi-process engine with no adapter — and with
``shard_concurrency`` set, get flushes split into per-shard tasks answered
by different worker processes.
"""

import asyncio

import numpy as np
import pytest

from helpers import cluster
from repro.serve import Server


@pytest.fixture
def keys():
    return np.sort(np.random.default_rng(0).uniform(0, 1e6, 10_000))


def run(coro):
    return asyncio.run(coro)


class TestServerOverCluster:
    def test_gets_match_row_ids(self, keys):
        async def main(engine):
            async with Server(engine) as server:
                await server.warm()
                values = await asyncio.gather(
                    *[server.get(k) for k in keys[:300]]
                )
                assert values == list(range(300))
                assert server.stats()["batcher"]["batches"]["get"] >= 1

        with cluster(keys, n_shards=4, error=64) as engine:
            run(main(engine))

    def test_read_your_writes_across_the_process_hop(self, keys):
        async def scenario(engine):
            async with Server(engine, max_batch=256) as server:
                async def write_then_read(k, v):
                    await server.insert(k, None)
                    return await server.get(k)

                fresh = np.random.default_rng(1).uniform(0, 1e6, 32)
                results = await asyncio.gather(
                    *[write_then_read(float(k), None) for k in fresh]
                )
                assert all(r is not None for r in results)
                barrier = server.stats()["batcher"]["barrier_version"]
                assert barrier == engine.version

        with cluster(keys, n_shards=3, error=64, buffer_capacity=16) as engine:
            run(scenario(engine))

    def test_shard_concurrency_dispatch(self, keys):
        async def main(engine):
            async with Server(engine, shard_concurrency=4) as server:
                await server.warm()
                values = await asyncio.gather(
                    *[server.get(k) for k in keys[:400]]
                )
                assert values == list(range(400))
                stats = server.stats()["batcher"]
                assert stats["shard_dispatches"] >= 1
                assert stats["scalar_fallbacks"] == 0

        with cluster(keys, n_shards=4, error=64) as engine:
            run(main(engine))

    def test_failure_isolation_per_request(self, keys):
        """A poisoned batch-mate (uncoercible key) fails alone; the rest
        of the batch still answers from the worker processes."""

        async def main(engine):
            async with Server(engine) as server:
                futures = [server.get(k) for k in keys[:10]]
                bad = server.get("not-a-key")
                results = await asyncio.gather(
                    *futures, bad, return_exceptions=True
                )
                assert results[:10] == list(range(10))
                assert isinstance(results[10], Exception)

        with cluster(keys, n_shards=2, error=64) as engine:
            run(main(engine))

    def test_drain_on_close(self, keys):
        async def main(engine):
            server = Server(engine, max_delay=5.0, eager_flush=False)
            futures = [server.get(k) for k in keys[:50]]
            await server.close()  # drain must resolve everything pending
            assert [f.result() for f in futures] == list(range(50))

        with cluster(keys, n_shards=2, error=64) as engine:
            run(main(engine))
