"""Regression tests for the cluster-lifecycle bugfix sweep.

Three previously-silent failure modes, now pinned:

* ``len(engine)`` desyncing when a fenced write round fails partway (the
  old recount did an all-shards round a single dead worker would veto);
* worker-spawn failure during ``__init__`` leaking already-started
  processes and shared-memory lanes;
* teardown failures being swallowed by blanket ``except: pass`` blocks
  with no trace (now narrowed and counted).
"""

import multiprocessing
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.cluster.engine as cluster_engine
from repro.cluster import ClusterEngine, ClusterError, teardown_errors
from repro.cluster.shm import ShmLane

KEYS = np.sort(np.random.default_rng(5).uniform(0, 1e6, 4_000))


def _kill_worker(engine, sid):
    os.kill(engine._workers[sid].process.pid, signal.SIGKILL)
    engine._workers[sid].process.join(10)


# ----------------------------------------------------------------------
# Satellite 1: _n resync after a partially-applied round
# ----------------------------------------------------------------------


def test_len_resyncs_after_crash_mid_insert_round():
    engine = ClusterEngine(KEYS, n_shards=2, error=64.0)
    try:
        cut = float(engine.cuts[0])
        _kill_worker(engine, 1)
        batch = np.asarray([cut / 2, cut / 3, cut * 2, cut * 3])
        values = np.asarray([1, 2, 3, 4])
        with pytest.raises(ClusterError):
            engine.insert_batch(batch, values)
        # Shard 0's chunk applied before shard 1's send failed; the old
        # recount raised on the dead worker and left len() stale at the
        # pre-insert count.
        applied = int((batch < cut).sum())
        assert len(engine) == len(KEYS) + applied
        assert engine.get(cut / 2) == 1
    finally:
        engine.close()


def test_len_resyncs_after_crash_mid_delete_round():
    engine = ClusterEngine(KEYS, n_shards=2, error=64.0)
    try:
        cut = float(engine.cuts[0])
        _kill_worker(engine, 1)
        low = KEYS[KEYS < cut][:3]  # shard 0 (applies)
        high = KEYS[KEYS >= cut][:3]  # shard 1 (dead)
        with pytest.raises(ClusterError):
            engine.delete_batch(np.concatenate([low, high]))
        assert len(engine) == len(KEYS) - low.size
        assert float(low[0]) not in engine
    finally:
        engine.close()


def test_stats_refreshes_per_shard_counts():
    engine = ClusterEngine(KEYS, n_shards=2, error=64.0)
    try:
        engine.insert_batch(np.asarray([1.0]), np.asarray([1]))
        stats = engine.stats()
        assert stats["n"] == len(KEYS) + 1
        assert engine._shard_ns == [s["n"] for s in stats["shards"]]
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Satellite 2: failed __init__ must not leak processes or shm lanes
# ----------------------------------------------------------------------


def test_failed_spawn_leaks_no_processes_or_lanes(monkeypatch):
    created = []
    real_lane = cluster_engine.ShmLane
    calls = {"n": 0}

    def flaky_lane(capacity):
        calls["n"] += 1
        if calls["n"] == 4:  # second worker's response lane
            raise OSError("synthetic shm exhaustion")
        lane = real_lane(capacity)
        created.append(lane.name)
        return lane

    monkeypatch.setattr(cluster_engine, "ShmLane", flaky_lane)
    with pytest.raises(OSError, match="synthetic shm exhaustion"):
        ClusterEngine(KEYS, n_shards=2, error=64.0)

    assert created  # the first worker's lanes really were allocated
    for name in created:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    leaked = [
        p
        for p in multiprocessing.active_children()
        if p.name.startswith("repro-shard-")
    ]
    for p in leaked:  # pragma: no cover - cleanup before failing loudly
        p.terminate()
        p.join(5)
    assert leaked == []


def test_failed_worker_start_cleans_up_partial_spawn(monkeypatch):
    engine = ClusterEngine(KEYS, n_shards=1, error=64.0)
    try:
        created = []
        real_lane = cluster_engine.ShmLane

        def tracking_lane(capacity):
            lane = real_lane(capacity)
            created.append(lane.name)
            return lane

        class ExplodingProcess:
            def __init__(self, *a, **kw):
                raise RuntimeError("no more processes")

        monkeypatch.setattr(cluster_engine, "ShmLane", tracking_lane)
        monkeypatch.setattr(engine._ctx, "Process", ExplodingProcess)
        with pytest.raises(RuntimeError, match="no more processes"):
            engine._spawn_worker(0, {"index_cls": "unused"})
        assert len(created) == 2
        for name in created:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Satellite 3: teardown failures are counted, not silently swallowed
# ----------------------------------------------------------------------


def test_teardown_errors_counted_on_close_with_dead_worker():
    engine = ClusterEngine(KEYS, n_shards=2, error=64.0)
    before = teardown_errors()
    _kill_worker(engine, 0)
    engine.close()
    after = teardown_errors()
    # The shutdown send to the SIGKILLed worker hits a broken pipe; the
    # old code swallowed it with a bare ``except: pass``.
    assert after > before


def test_teardown_errors_surface_in_stats():
    engine = ClusterEngine(KEYS, n_shards=1, error=64.0)
    try:
        stats = engine.stats()
        assert stats["ipc"]["teardown_errors"] == teardown_errors()
    finally:
        engine.close()
