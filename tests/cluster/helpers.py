"""Shared helpers for the cluster suite.

Every ClusterEngine here is created through the ``cluster`` context helper
so worker processes are always joined, even on assertion failures —
leaked daemons would distort later tests' timings.
"""

from contextlib import contextmanager

import numpy as np

from repro.cluster import ClusterEngine


@contextmanager
def cluster(*args, **kwargs):
    engine = ClusterEngine(*args, **kwargs)
    try:
        yield engine
    finally:
        engine.close()


def assert_batches_equal(got, want, context=""):
    """Bit-identical batch results: same dtype, same per-slot values
    (object slots compared by equality, identity for sentinels).

    Empty batches skip the dtype check: the in-process engine's empty
    result dtype depends on cache state (combined vs grouped read path),
    which is not a contract worth pinning.
    """
    got = np.asarray(got)
    want = np.asarray(want)
    if len(got) == 0 and len(want) == 0:
        return
    assert got.dtype == want.dtype, f"{context}: dtype {got.dtype} != {want.dtype}"
    assert len(got) == len(want), f"{context}: length {len(got)} != {len(want)}"
    for i, (g, w) in enumerate(zip(got, want)):
        assert (g is w) or g == w, f"{context}: slot {i}: {g!r} != {w!r}"
