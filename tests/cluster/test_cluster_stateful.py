"""Stateful lock-step testing: ClusterEngine vs its ShardedEngine twin.

Hypothesis drives arbitrary interleavings of ``insert_batch`` /
``get_batch`` / ``range_batch`` (plus scalar mirrors) against *both*
engines at once — the strongest form of the cluster's contract: after any
operation sequence, batch results, version stamps and element counts are
bit-identical to the in-process engine. The key domain is small so batches
routinely carry duplicates and straddle shard cuts; empty batches are
generated explicitly (the strict-no-op contract). Example counts are kept
modest because every machine run spawns real worker processes.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from helpers import assert_batches_equal
from repro.cluster import ClusterEngine
from repro.engine import ShardedEngine

KEYS = st.integers(min_value=0, max_value=120).map(float)
BATCHES = st.lists(KEYS, min_size=0, max_size=25)


class ClusterLockstepMachine(RuleBasedStateMachine):
    @initialize(
        build_keys=st.lists(KEYS, max_size=80).map(sorted),
        n_shards=st.integers(min_value=1, max_value=3),
        error=st.integers(min_value=8, max_value=40),
    )
    def build(self, build_keys, n_shards, error):
        self.twin = ShardedEngine(
            np.asarray(build_keys, dtype=np.float64),
            n_shards=n_shards,
            error=error,
            buffer_capacity=max(1, error // 3),
        )
        self.engine = ClusterEngine.from_engine(self.twin)

    @rule(batch=BATCHES)
    def insert_batch(self, batch):
        keys = np.asarray(batch, dtype=np.float64)
        versions = self.engine.shard_versions()
        self.twin.insert_batch(keys)
        self.engine.insert_batch(keys)
        if not batch:
            assert self.engine.shard_versions() == versions
        assert self.engine.version == self.twin.version

    @rule(batch=BATCHES)
    def insert_batch_boundary_keys(self, batch):
        """Batches biased onto the shard cuts (and one key to either
        side), the routing edge the partition contract pins."""
        cuts = self.engine.cuts
        if cuts.size == 0 or not batch:
            return
        keys = np.asarray(
            [
                float(cuts[i % cuts.size]) + (i % 3 - 1)
                for i in range(len(batch))
            ],
            dtype=np.float64,
        )
        self.twin.insert_batch(keys)
        self.engine.insert_batch(keys)

    @rule(queries=st.lists(KEYS, min_size=0, max_size=20))
    def get_batch_agrees(self, queries):
        q = np.asarray(queries, dtype=np.float64)
        assert_batches_equal(
            self.engine.get_batch(q, default=-1),
            self.twin.get_batch(q, default=-1),
        )

    @rule(key=KEYS)
    def scalar_get_agrees(self, key):
        assert (key in self.engine) == (key in self.twin)

    @rule(lo=KEYS, span=st.integers(min_value=0, max_value=40))
    def range_agrees(self, lo, span):
        got = self.engine.range_batch(np.asarray([[lo, lo + span]]))
        want = self.twin.range_batch(np.asarray([[lo, lo + span]]))
        assert got[0][0].tolist() == want[0][0].tolist()
        assert got[0][1].tolist() == want[0][1].tolist()

    @invariant()
    def sizes_and_versions_agree(self):
        if hasattr(self, "engine"):
            assert len(self.engine) == len(self.twin)
            assert self.engine.version == self.twin.version

    def teardown(self):
        if hasattr(self, "engine"):
            try:
                self.engine.validate()
                self.twin.validate()
            finally:
                self.engine.close()


TestClusterLockstep = ClusterLockstepMachine.TestCase
TestClusterLockstep.settings = settings(
    max_examples=8, stateful_step_count=15, deadline=None
)
