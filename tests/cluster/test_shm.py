"""Shared-memory lane mechanics: layout, growth, attachment, lifetime."""

import numpy as np
import pytest

from repro.cluster import ShmLane, attach_lane


@pytest.fixture
def lane():
    lane = ShmLane(capacity=4096)
    yield lane
    lane.close()


class TestWriteRead:
    def test_round_trip_single_array(self, lane):
        arr = np.arange(100, dtype=np.float64)
        descrs = lane.write([arr])
        (back,) = lane.read(descrs)
        assert back.dtype == np.float64
        assert back.tolist() == arr.tolist()

    def test_round_trip_mixed_dtypes_alignment(self, lane):
        arrays = [
            np.arange(7, dtype=np.int64),
            np.arange(5, dtype=np.float64) / 3.0,
            np.asarray([1, 0, 1, 1], dtype=np.uint8),
            np.arange(3, dtype=np.int32),
        ]
        descrs = lane.write(arrays)
        for descr, want in zip(descrs, arrays):
            assert descr[2] % 16 == 0  # every array 16-byte aligned
        back = lane.read(descrs)
        for got, want in zip(back, arrays):
            assert got.dtype == want.dtype
            assert got.tolist() == want.tolist()

    def test_reads_are_views_not_copies(self, lane):
        descrs = lane.write([np.asarray([1.0, 2.0])])
        first = lane.read(descrs)[0]
        lane.write([np.asarray([9.0, 8.0])])
        assert first.tolist() == [9.0, 8.0]  # same memory, by design

    def test_object_dtype_rejected(self, lane):
        bad = np.empty(2, dtype=object)
        with pytest.raises(ValueError, match="object"):
            lane.write([bad])

    def test_overflow_raises(self, lane):
        with pytest.raises(ValueError, match="overflow"):
            lane.write([np.zeros(4096, dtype=np.float64)])

    def test_required_bytes_accounts_alignment(self):
        arrays = [np.zeros(1, dtype=np.uint8), np.zeros(1, dtype=np.float64)]
        need = ShmLane.required_bytes(arrays)
        assert need == 16 + 8  # second array starts at the next 16B boundary


class TestGrowth:
    def test_ensure_grows_and_renames(self):
        lane = ShmLane(capacity=1024)
        try:
            old_name = lane.name
            assert lane.ensure(512) is False
            assert lane.name == old_name
            assert lane.ensure(100_000) is True
            assert lane.name != old_name
            assert lane.capacity >= 100_000
            big = np.arange(12_000, dtype=np.float64)
            (back,) = lane.read(lane.write([big]))
            assert back.tolist() == big.tolist()
        finally:
            lane.close()

    def test_only_owner_may_grow(self):
        lane = ShmLane(capacity=1024)
        try:
            peer = attach_lane(lane.name)
            with pytest.raises(ValueError, match="owning"):
                peer.ensure(10_000)
            peer.close()
        finally:
            lane.close()


class TestAttachment:
    def test_peer_sees_owner_writes(self):
        lane = ShmLane(capacity=2048)
        try:
            descrs = lane.write([np.asarray([3.0, 1.0, 4.0])])
            peer = attach_lane(lane.name)
            (back,) = peer.read(descrs)
            assert back.tolist() == [3.0, 1.0, 4.0]
            peer.close()  # non-owner close must not unlink...
            again = attach_lane(lane.name)  # ...so re-attach still works
            again.close()
        finally:
            lane.close()

    def test_close_idempotent_and_unlinks(self):
        lane = ShmLane(capacity=1024)
        name = lane.name
        lane.close()
        lane.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            attach_lane(name)
