"""The CI smoke: a 2-worker cluster serves correctly, quickly, and exits.

This file is what the CI workflow runs under its own step timeout — it
must stay fast (a couple of engine builds, small batches) while touching
the whole lifecycle: spawn, reads, writes with the fence, bit-identical
verification against the in-process twin, stats, clean shutdown.
"""

import numpy as np

from repro.cluster import ClusterEngine
from repro.engine import ShardedEngine


def test_two_worker_smoke():
    keys = np.sort(np.random.default_rng(0).uniform(0, 1e6, 20_000))
    twin = ShardedEngine(keys, n_shards=2, error=64, buffer_capacity=32)
    engine = ClusterEngine.from_engine(twin)
    try:
        assert engine.n_shards == 2
        engine.warm()

        rng = np.random.default_rng(1)
        queries = np.concatenate([
            keys[rng.integers(0, len(keys), 2_000)],
            rng.uniform(-100, 1e6 + 100, 500),
        ])
        got = engine.get_batch(queries, default=None)
        want = twin.get_batch(queries, default=None)
        assert got.dtype == want.dtype
        assert all((g is None and w is None) or g == w
                   for g, w in zip(got, want))

        inserts = rng.uniform(0, 1e6, 1_000)
        twin.insert_batch(inserts)
        engine.insert_batch(inserts)
        assert engine.version == twin.version
        assert engine.get_batch(inserts).tolist() == twin.get_batch(
            inserts
        ).tolist()

        stats = engine.stats()
        assert stats["n"] == len(keys) + 1_000
        assert all(w["alive"] for w in stats["workers"])
        engine.validate()
    finally:
        engine.close()
    assert all(not w.process.is_alive() for w in engine._workers)
