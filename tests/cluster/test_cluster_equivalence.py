"""ClusterEngine results are bit-identical to the in-process ShardedEngine.

The acceptance contract of the cluster layer: the same workload driven
through a ClusterEngine and a ShardedEngine twin (identical build, same
operations in the same order) must produce identical batch results and
identical engine-wide version stamps — including mid-batch page splits,
duplicates straddling nothing (cuts), and read-your-writes immediately
after ``insert_batch``. Failure-path behavior (dead workers, use after
close) must surface as typed ``ClusterError``s.
"""

import os
import signal
import time

import numpy as np
import pytest

from helpers import assert_batches_equal, cluster
from repro.cluster import ClusterEngine, ClusterError, WorkerCrashedError
from repro.core.errors import InvalidParameterError
from repro.datasets import get
from repro.engine import ShardedEngine


def twin_pair(keys, **kwargs):
    inproc = ShardedEngine(keys, **kwargs)
    return inproc, ClusterEngine.from_engine(inproc)


@pytest.mark.parametrize("dataset", ["uniform", "iot", "adversarial"])
@pytest.mark.parametrize("n_shards", [1, 3])
class TestReadEquivalence:
    def test_build_only(self, dataset, n_shards):
        keys = get(dataset, n=6_000, seed=0)
        inproc, clustered = twin_pair(keys, n_shards=n_shards, error=64)
        with clustered:
            rng = np.random.default_rng(1)
            queries = np.concatenate([
                keys[rng.integers(0, len(keys), 500)],
                rng.uniform(keys.min() - 10, keys.max() + 10, 300),
                [np.nan, np.inf, -np.inf],
            ])
            assert_batches_equal(
                clustered.get_batch(queries, default=-1),
                inproc.get_batch(queries, default=-1),
                dataset,
            )
            assert clustered.version == inproc.version
            assert len(clustered) == len(inproc)

    def test_post_insert_buffered_state(self, dataset, n_shards):
        keys = get(dataset, n=6_000, seed=0)
        inproc, clustered = twin_pair(
            keys, n_shards=n_shards, error=128, buffer_capacity=32
        )
        with clustered:
            rng = np.random.default_rng(2)
            inserts = rng.uniform(keys.min(), keys.max(), 400)
            inproc.insert_batch(inserts)
            clustered.insert_batch(inserts)
            assert len(clustered) == len(inproc) == len(keys) + 400
            queries = np.concatenate(
                [inserts, keys[rng.integers(0, len(keys), 300)]]
            )
            assert_batches_equal(
                clustered.get_batch(queries),
                inproc.get_batch(queries),
                dataset,
            )
            assert clustered.version == inproc.version
            assert clustered.shard_versions() == inproc.shard_versions()


class TestWriteSemantics:
    def test_mid_batch_splits_match(self):
        """A batch big enough to overflow buffers repeatedly mid-apply
        must leave both engines in the same (re-segmented) state."""
        keys = np.sort(np.random.default_rng(3).uniform(0, 1e4, 3_000))
        inproc, clustered = twin_pair(keys, n_shards=3, error=24,
                                      buffer_capacity=4)
        with clustered:
            stream = np.random.default_rng(4).uniform(0, 1e4, 1_200)
            inproc.insert_batch(stream)
            clustered.insert_batch(stream)
            assert clustered.version == inproc.version
            s_in = inproc.stats()
            s_cl = clustered.stats()
            assert s_cl["n_pages"] == s_in["n_pages"]
            assert s_cl["buffered_elements"] == s_in["buffered_elements"]
            probe = np.concatenate([stream, keys[::5]])
            assert_batches_equal(
                clustered.get_batch(probe), inproc.get_batch(probe)
            )
            clustered.validate()

    def test_read_your_writes_immediately_after_insert_batch(self):
        keys = np.sort(np.random.default_rng(5).uniform(0, 1e6, 4_000))
        with cluster(keys, n_shards=4, error=64, buffer_capacity=16) as eng:
            before = eng.version
            fresh = np.random.default_rng(6).uniform(0, 1e6, 64)
            eng.insert_batch(fresh)
            assert eng.version > before  # the fence moved the barrier stamp
            got = eng.get_batch(fresh)
            assert got.dtype != object  # every single write is visible
            assert got.tolist() == list(
                range(len(keys), len(keys) + len(fresh))
            )

    def test_empty_batch_strict_noop(self):
        keys = np.arange(500, dtype=np.float64)
        with cluster(keys, n_shards=2, error=32) as eng:
            versions = eng.shard_versions()
            rowid = eng._next_rowid
            eng.insert_batch(np.empty(0))
            assert eng.shard_versions() == versions
            assert eng._next_rowid == rowid

    def test_scalar_mirrors(self):
        keys = np.arange(0, 1000, dtype=np.float64)
        inproc, clustered = twin_pair(keys, n_shards=2, error=32,
                                      buffer_capacity=8)
        with clustered:
            inproc.insert(1500.5)
            clustered.insert(1500.5)
            assert clustered.get(1500.5) == inproc.get(1500.5) == 1000
            assert clustered.get(-5.0, "miss") == "miss"
            assert (500.0 in clustered) == (500.0 in inproc) is True
            assert (1e9 in clustered) is False

    def test_duplicate_heavy(self):
        rng = np.random.default_rng(7)
        keys = np.sort(rng.integers(0, 80, 4_000).astype(np.float64))
        inproc, clustered = twin_pair(keys, n_shards=4, error=48,
                                      buffer_capacity=16)
        with clustered:
            extra = rng.integers(0, 80, 150).astype(np.float64)
            inproc.insert_batch(extra)
            clustered.insert_batch(extra)
            queries = np.arange(-5.0, 90.0)
            assert_batches_equal(
                clustered.get_batch(queries, default=None),
                inproc.get_batch(queries, default=None),
            )

    def test_object_payloads_survive_the_hop_untouched(self):
        """Buffered object payloads on a numeric shard — including the
        numeric-parsable string '123' — must come back as exactly what
        the in-process engine stores, never silently coerced to a number
        on either side of the pipe."""
        keys = np.arange(100, dtype=np.float64)
        inproc, clustered = twin_pair(keys, n_shards=2, error=32,
                                      buffer_capacity=8)
        payload = np.empty(3, dtype=object)
        payload[:] = ["123", "4.5", ("a", "b")]
        with clustered:
            inproc.insert_batch(np.asarray([1.5, 2.5, 3.5]), payload)
            clustered.insert_batch(np.asarray([1.5, 2.5, 3.5]), payload)
            probe = np.asarray([1.5, 2.5, 3.5, 10.0, 999.0])
            got = clustered.get_batch(probe, default=None)
            want = inproc.get_batch(probe, default=None)
            for g, w in zip(got, want):
                assert type(g) is type(w), (g, w)
                assert (g is w) or g == w
            assert got[0] == "123" and type(got[0]) is str
            assert got[2] == ("a", "b")

    def test_explicit_values_and_error_parity(self):
        keys = np.asarray([1.0, 2.0, 3.0])
        values = np.asarray([10, 20, 30])
        inproc = ShardedEngine(keys, values=values, n_shards=2)
        with ClusterEngine.from_engine(inproc) as clustered:
            assert clustered.get(2.0) == 20
            with pytest.raises(InvalidParameterError):
                clustered.insert_batch(np.asarray([4.0]))
            with pytest.raises(InvalidParameterError):
                clustered.insert(4.0)
            clustered.insert(4.0, 40)
            assert clustered.get(4.0) == 40


class TestRangeEquivalence:
    @pytest.mark.parametrize("dataset", ["uniform", "iot"])
    def test_range_batch_matches(self, dataset):
        keys = get(dataset, n=5_000, seed=0)
        inproc, clustered = twin_pair(keys, n_shards=4, error=64,
                                      buffer_capacity=16)
        with clustered:
            inserts = np.random.default_rng(8).uniform(
                keys.min(), keys.max(), 200
            )
            inproc.insert_batch(inserts)
            clustered.insert_batch(inserts)
            rng = np.random.default_rng(9)
            los = rng.uniform(keys.min(), keys.max(), 12)
            bounds = np.stack(
                [los, los + (keys.max() - keys.min()) * 0.2], axis=1
            )
            got = clustered.range_batch(bounds)
            want = inproc.range_batch(bounds)
            assert len(got) == len(want) == len(bounds)
            for (gk, gv), (wk, wv) in zip(got, want):
                assert gk.tolist() == wk.tolist()
                assert gv.tolist() == wv.tolist()

    def test_wide_range_grows_lane_out_of_pickle_fallback(self):
        """A range reply that outgrows the response lane pickles once,
        then the lane is grown so the repeat takes the zero-copy path."""
        keys = np.arange(40_000, dtype=np.float64)
        with cluster(keys, n_shards=2, error=64, lane_capacity=4096) as eng:
            bounds = np.asarray([[0.0, 30_000.0]])
            first = eng.range_batch(bounds)
            fallbacks = eng.stats()["ipc"]["pickle_fallbacks"]
            assert fallbacks >= 1
            second = eng.range_batch(bounds)
            assert eng.stats()["ipc"]["pickle_fallbacks"] == fallbacks
            assert first[0][0].tolist() == second[0][0].tolist()
            assert first[0][1].tolist() == second[0][1].tolist()
            assert first[0][0].size == 30_001

    def test_range_arrays_and_items_with_open_bounds(self):
        keys = np.arange(1000, dtype=np.float64)
        inproc, clustered = twin_pair(keys, n_shards=4, error=32)
        with clustered:
            for lo, hi, ilo, ihi in [
                (100.0, 900.0, True, True),
                (100.0, 900.0, False, False),
                (None, 50.0, True, True),
                (950.0, None, True, True),
                (None, None, True, True),
            ]:
                gk, gv = clustered.range_arrays(lo, hi, ilo, ihi)
                wk, wv = inproc.range_arrays(lo, hi, ilo, ihi)
                assert gk.tolist() == wk.tolist()
                assert gv.tolist() == wv.tolist()
            assert list(clustered.range_items(10.0, 13.0)) == list(
                inproc.range_items(10.0, 13.0)
            )


class TestShardDispatchVerbs:
    def test_get_batch_shard_matches_get_batch(self):
        keys = np.sort(np.random.default_rng(10).uniform(0, 1e6, 8_000))
        with cluster(keys, n_shards=4, error=64) as eng:
            q = keys[np.random.default_rng(11).integers(0, len(keys), 512)]
            whole = eng.get_batch(q, default=-1)
            sid = eng.route_shards(q)
            out = np.empty(len(q), dtype=object)
            for s in np.unique(sid):
                idx = np.flatnonzero(sid == s)
                out[idx] = eng.get_batch_shard(int(s), q[idx], default=-1)
            for got, want in zip(out, whole):
                assert got == want


class TestFailureAndLifecycle:
    def test_crashed_worker_raises_typed_error(self):
        keys = np.arange(2_000, dtype=np.float64)
        eng = ClusterEngine(keys, n_shards=2, error=32, op_timeout=20.0)
        try:
            pid = eng.stats()["workers"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            deadline = time.time() + 10.0
            with pytest.raises(ClusterError):
                while time.time() < deadline:
                    eng.get_batch(keys[:16])
        finally:
            eng.close()

    def test_worker_crash_error_names_shard(self):
        keys = np.arange(2_000, dtype=np.float64)
        eng = ClusterEngine(keys, n_shards=2, error=32, op_timeout=20.0)
        try:
            pid = eng.stats()["workers"][1]["pid"]
            os.kill(pid, signal.SIGKILL)
            time.sleep(0.3)
            with pytest.raises(WorkerCrashedError) as info:
                for _ in range(5):
                    eng.get_batch(keys)  # spans both shards
                    time.sleep(0.1)
            assert info.value.shard == 1
        finally:
            eng.close()

    def test_surviving_shards_stay_in_step_after_crash(self):
        """A failed round must drain every in-flight reply: after shard 0
        dies mid-round, shard 1's pipe may not be left one reply behind —
        subsequent shard-1 reads must still return correct values."""
        keys = np.arange(2_000, dtype=np.float64)
        eng = ClusterEngine(keys, n_shards=2, error=32, op_timeout=20.0)
        try:
            cut = float(eng.cuts[0])
            pid = eng.stats()["workers"][0]["pid"]
            os.kill(pid, signal.SIGKILL)
            time.sleep(0.3)
            with pytest.raises(ClusterError):
                for _ in range(5):
                    eng.get_batch(keys)  # spans both; shard 0 errors first
                    time.sleep(0.1)
            upper = keys[keys >= cut][:100]
            out = eng.get_batch(upper)
            assert out.tolist() == [int(k) for k in upper]
        finally:
            eng.close()

    def test_closed_engine_raises(self):
        keys = np.arange(500, dtype=np.float64)
        eng = ClusterEngine(keys, n_shards=2, error=32)
        eng.close()
        eng.close()  # idempotent
        assert eng.closed
        with pytest.raises(ClusterError, match="closed"):
            eng.get_batch(keys[:4])
        with pytest.raises(ClusterError, match="closed"):
            eng.insert_batch(np.asarray([1.5]))

    def test_close_joins_workers(self):
        keys = np.arange(500, dtype=np.float64)
        eng = ClusterEngine(keys, n_shards=2, error=32)
        processes = [w.process for w in eng._workers]
        eng.close()
        for p in processes:
            assert not p.is_alive()
            assert p.exitcode == 0  # clean shutdown, not terminate()

    def test_from_engine_leaves_source_usable(self):
        keys = np.arange(1_000, dtype=np.float64)
        inproc = ShardedEngine(keys, n_shards=2, error=32, buffer_capacity=8)
        with ClusterEngine.from_engine(inproc) as clustered:
            clustered.insert(5000.5)
            assert 5000.5 in clustered
            assert 5000.5 not in inproc  # twins diverge after the snapshot
        assert inproc.get(500.0) == 500  # and the source outlives the cluster

    def test_worker_error_does_not_kill_worker(self):
        """A per-op failure is pickled back; the worker stays serviceable
        (the serve batcher's per-key fallback relies on this)."""
        keys = np.arange(1_000, dtype=np.float64)
        with cluster(keys, n_shards=2, error=32, buffer_capacity=8) as eng:
            with pytest.raises(InvalidParameterError):
                eng.range_batch(np.zeros((2, 3)))  # bad bounds shape
            assert eng.get(10.0) == 10  # still alive

    def test_stats_shape_and_warm(self):
        keys = np.sort(np.random.default_rng(12).uniform(0, 1e5, 5_000))
        with cluster(keys, n_shards=3, error=64, buffer_capacity=8) as eng:
            eng.warm()
            stats = eng.stats()
            assert stats["n"] == 5_000
            assert stats["n_shards"] == 3 == len(stats["shards"])
            assert stats["n_pages"] == sum(
                s["n_pages"] for s in stats["shards"]
            )
            assert all(w["alive"] for w in stats["workers"])
            assert stats["ipc"]["batches"] >= 0
            twin = ShardedEngine(keys, n_shards=3, error=64, buffer_capacity=8)
            assert stats["model_bytes"] == twin.model_bytes()

    def test_empty_engine_grows_by_inserts(self):
        with cluster(n_shards=4, error=64, buffer_capacity=8) as eng:
            assert len(eng) == 0
            out = eng.get_batch(np.asarray([1.0]), default=-7)
            assert out.tolist() == [-7]
            eng.insert_batch(np.asarray([5.0, 1.0, 9.0]))
            assert len(eng) == 3
            assert eng.get_batch(np.asarray([1.0, 5.0, 9.0])).tolist() == [1, 0, 2]
