"""The worker's dispatch machinery, driven in-process.

The subprocess suites prove the end-to-end behavior; this file exercises
``_ShardServer`` / ``_dispatch`` directly (no fork) so the protocol's
branches — shm replies, pickle fallbacks, lane re-attachment, per-verb
errors — are pinned at unit granularity.
"""

import numpy as np
import pytest

from repro.cluster.shm import ShmLane
from repro.cluster.worker import _MISS, _dispatch, _ShardServer
from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree


@pytest.fixture
def lanes():
    req, resp = ShmLane(capacity=1 << 16), ShmLane(capacity=1 << 16)
    yield req, resp
    req.close()
    resp.close()


def make_server(keys=None, lo=None, hi=None, **kwargs):
    kwargs.setdefault("error", 32)
    kwargs.setdefault("buffer_capacity", 8)
    index = FITingTree(keys, **kwargs)
    return _ShardServer(index.to_state(), lo, hi)


class TestVerbs:
    def test_get_batch_all_hits_skips_mask(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(100, dtype=np.float64))
        q_descr = req.write([np.asarray([3.0, 7.0])])[0]
        frame = ("get_batch", (req.name, resp.name), q_descr)
        kind, version, payload = _dispatch(server, frame)
        assert kind == "ok" and version == server.index.version
        mode, value_descrs, mask_descr = payload
        assert mode == "shm" and mask_descr is None  # all-hit fast shape
        assert resp.read(value_descrs)[0].tolist() == [3, 7]

    def test_get_batch_misses_carry_mask(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(100, dtype=np.float64))
        q_descr = req.write([np.asarray([3.0, 1e9])])[0]
        _, _, payload = _dispatch(
            server, ("get_batch", (req.name, resp.name), q_descr)
        )
        mode, value_descrs, mask_descr = payload
        assert mode == "shm" and mask_descr is not None
        mask = resp.read([mask_descr])[0].view(np.bool_)
        assert mask.tolist() == [True, False]

    def test_get_batch_object_payload_pickle_fallback(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(20, dtype=np.float64))
        server.index.insert(3.5, ("not", "numeric"))  # buffered object
        q_descr = req.write([np.asarray([3.5, 4.0, 99.0])])[0]
        _, _, payload = _dispatch(
            server, ("get_batch", (req.name, resp.name), q_descr)
        )
        mode, values, mask = payload
        assert mode == "pickle"
        assert values[0] == ("not", "numeric") and values[1] == 4
        assert mask.tolist() == [True, True, False]

    def test_insert_then_read_roundtrip(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(10, dtype=np.float64))
        keys = np.asarray([2.5, 7.5])
        values = np.asarray([100, 101], dtype=np.int64)
        k_descr, v_descr = req.write([keys, values])
        kind, version, _ = _dispatch(
            server,
            ("insert_batch", (req.name, resp.name), k_descr, v_descr, None),
        )
        assert kind == "ok" and version == server.index.version
        assert server.index.get(2.5) == 100

    def test_insert_pickled_values(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(10, dtype=np.float64))
        k_descr = req.write([np.asarray([4.25])])[0]
        _dispatch(
            server,
            ("insert_batch", (req.name, resp.name), k_descr, None, [123]),
        )
        assert server.index.get(4.25) == 123

    def test_range_batch_shm_and_counts(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(100, dtype=np.float64))
        los = np.asarray([10.0, 90.0])
        his = np.asarray([12.0, 200.0])
        descrs = req.write([los, his])
        _, _, payload = _dispatch(
            server, ("range_batch", (req.name, resp.name), descrs, True, True)
        )
        mode, reply_descrs, _dtype = payload
        assert mode == "shm"
        counts, all_keys, _values = resp.read(reply_descrs)
        assert counts.tolist() == [3, 10]
        assert all_keys[:3].tolist() == [10.0, 11.0, 12.0]

    def test_range_overflow_pickle_fallback(self):
        req = ShmLane(capacity=1 << 16)
        resp = ShmLane(capacity=256)  # too small for the reply rows
        try:
            server = make_server(np.arange(2_000, dtype=np.float64))
            descrs = req.write([np.asarray([0.0]), np.asarray([1_999.0])])
            _, _, payload = _dispatch(
                server,
                ("range_batch", (req.name, resp.name), descrs, True, True),
            )
            assert payload[0] == "pickle"
            (keys, values), = payload[1]
            assert keys.size == 2_000
        finally:
            req.close()
            resp.close()

    def test_stats_warm_and_unknown_verb(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(50, dtype=np.float64))
        kind, _, stats = _dispatch(server, ("stats",))
        assert kind == "ok" and stats["n"] == 50
        kind, _, payload = _dispatch(server, ("warm",))
        assert kind == "ok" and payload is None
        with pytest.raises(ValueError, match="unknown verb"):
            _dispatch(server, ("explode",))

    def test_validate_checks_cut_range(self):
        server = make_server(np.arange(50, dtype=np.float64), lo=0.0, hi=40.0)
        with pytest.raises(InvalidParameterError, match="at/above cut"):
            server.validate()
        ok = make_server(np.arange(50, dtype=np.float64), lo=0.0, hi=60.0)
        ok.validate()

    def test_lane_reattach_on_rename(self, lanes):
        req, resp = lanes
        server = make_server(np.arange(10, dtype=np.float64))
        first = server.lane("req", req.name)
        assert server.lane("req", req.name) is first  # cached by name
        replacement = ShmLane(capacity=4096)
        try:
            second = server.lane("req", replacement.name)
            assert second is not first
        finally:
            replacement.close()
        server.close_lanes()

    def test_miss_sentinel_is_private(self):
        server = make_server(np.arange(5, dtype=np.float64))
        result, found = server.get_batch(np.asarray([0.0, 77.0]))
        assert found.tolist() == [True, False]
        assert result[1] is _MISS  # never leaves the worker
