"""Snapshot contract: to_state/from_state round trips are bit-identical."""

import numpy as np
import pytest

from repro.baselines import FixedPageIndex
from repro.cluster import engine_to_states, index_from_state
from repro.cluster.snapshot import register_index_class
from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.engine import ShardedEngine


def assert_same_structure(a, b):
    """Contents, page geometry, buffers, counters — all identical."""
    assert len(a) == len(b)
    assert list(a.items()) == list(b.items())
    pages_a = list(a._tree.items())
    pages_b = list(b._tree.items())
    assert len(pages_a) == len(pages_b)
    for (key_a, page_a), (key_b, page_b) in zip(pages_a, pages_b):
        assert key_a == key_b  # (start, seq) tree keys survive
        assert page_a.slope == page_b.slope
        assert page_a.deletions == page_b.deletions
        assert page_a.keys.tolist() == page_b.keys.tolist()
        assert page_a.values.tolist() == page_b.values.tolist()
        assert page_a.buf_keys == page_b.buf_keys
        assert page_a.buf_values == page_b.buf_values
    assert a.version == b.version
    assert a._next_rowid == b._next_rowid
    assert a._auto_rowid == b._auto_rowid
    assert a._values_dtype == b._values_dtype


class TestIndexRoundTrip:
    def test_fiting_tree_with_buffered_inserts_and_deletes(self, uniform_keys, rng):
        index = FITingTree(uniform_keys, error=48, buffer_capacity=12)
        for k in rng.uniform(0, 1e6, 400):
            index.insert(k)
        for k in uniform_keys[::400]:
            index.delete(k)
        rebuilt = index_from_state(index.to_state())
        rebuilt.validate()
        assert isinstance(rebuilt, FITingTree)
        assert_same_structure(index, rebuilt)

    def test_fixed_page_index_dispatch(self, uniform_keys):
        index = FixedPageIndex(uniform_keys, page_size=96, buffer_capacity=16)
        index.insert(17.5, 9)
        rebuilt = index_from_state(index.to_state())
        rebuilt.validate()
        assert isinstance(rebuilt, FixedPageIndex)
        assert_same_structure(index, rebuilt)

    def test_rebuilt_index_is_independent(self, uniform_keys):
        index = FITingTree(uniform_keys, error=32, buffer_capacity=8)
        rebuilt = FITingTree.from_state(index.to_state())
        rebuilt.insert(2e6, 777)
        assert 2e6 in rebuilt
        assert 2e6 not in index
        assert len(index) == len(uniform_keys)

    def test_no_resegmentation_on_rebuild(self, uniform_keys, monkeypatch):
        """from_state must bulk-load the stored pages, never re-segment."""
        index = FITingTree(uniform_keys, error=64, buffer_capacity=8)
        state = index.to_state()

        def boom(self, keys, values):  # pragma: no cover - would fail test
            if len(keys):
                raise AssertionError("re-segmentation ran during from_state")
            return []

        monkeypatch.setattr(FITingTree, "_make_pages", boom)
        rebuilt = FITingTree.from_state(state)
        assert rebuilt.n_pages == index.n_pages

    def test_version_and_rowid_survive(self, uniform_keys):
        index = FITingTree(uniform_keys, error=64, buffer_capacity=8)
        index.insert(5.0)
        index.insert(6.0)
        rebuilt = FITingTree.from_state(index.to_state())
        assert rebuilt.version == index.version
        rebuilt.insert(7.0)
        assert rebuilt.get(7.0) == len(uniform_keys) + 2

    def test_object_values_rejected(self):
        index = FITingTree(
            np.arange(2.0), np.array(["a", "b"], dtype=object), error=4
        )
        with pytest.raises(InvalidParameterError):
            index.to_state()

    def test_unknown_class_rejected(self, uniform_keys):
        state = FITingTree(uniform_keys[:100], error=16).to_state()
        state["index_cls"] = "NotAnIndex"
        with pytest.raises(InvalidParameterError, match="NotAnIndex"):
            index_from_state(state)

    def test_builtin_classes_load_after_downstream_registration(
        self, uniform_keys, monkeypatch
    ):
        """Registering a downstream class before the first load must not
        suppress the lazy seeding of the built-in classes."""
        from repro.core import serialize

        class EagerIndex(FITingTree):
            pass

        with monkeypatch.context() as m:
            m.setattr(serialize, "_REGISTRY", {})
            register_index_class(EagerIndex)  # registry now non-empty
            state = FITingTree(uniform_keys[:200], error=16).to_state()
            rebuilt = index_from_state(state)
            assert type(rebuilt) is FITingTree

    def test_register_custom_class(self, uniform_keys, tmp_path):
        class TaggedTree(FITingTree):
            pass

        register_index_class(TaggedTree)
        index = TaggedTree(uniform_keys[:200], error=16)
        state = index.to_state()
        assert state["index_cls"] == "TaggedTree"
        assert isinstance(index_from_state(state), TaggedTree)
        # One registry serves both transports: the same registration must
        # also cover the on-disk round trip.
        from repro.core.serialize import load_index, save_index

        path = str(tmp_path / "tagged.npz")
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, TaggedTree)
        assert list(loaded.items()) == list(index.items())


class SpawnableTree(FITingTree):
    """Module-level so spawn children can unpickle it (test below)."""


class TestSpawnRegistry:
    def test_custom_class_reaches_spawn_workers(self, uniform_keys):
        """A spawned child re-imports with a fresh registry; the parent
        must ship the resolved index class with each shard snapshot."""
        register_index_class(SpawnableTree)
        engine = ShardedEngine(
            uniform_keys[:2_000],
            n_shards=2,
            index_factory=lambda k, v: SpawnableTree(k, v, error=32),
        )
        from repro.cluster import ClusterEngine

        with ClusterEngine.from_engine(engine, mp_context="spawn") as eng:
            out = eng.get_batch(uniform_keys[:20])
            assert out.tolist() == list(range(20))


class TestEngineStates:
    def test_engine_to_states_shape(self, uniform_keys):
        engine = ShardedEngine(uniform_keys, n_shards=3, error=64)
        states = engine_to_states(engine)
        assert states["cuts"].tolist() == engine.cuts.tolist()
        assert states["next_rowid"] == len(uniform_keys)
        assert states["auto_rowid"] is True
        assert len(states["shards"]) == engine.n_shards
        assert sum(s["n"] for s in states["shards"]) == len(uniform_keys)

    def test_states_are_value_copies(self, uniform_keys):
        engine = ShardedEngine(uniform_keys, n_shards=2, error=64,
                               buffer_capacity=8)
        states = engine_to_states(engine)
        engine.insert(3.25)
        rebuilt = [index_from_state(s) for s in states["shards"]]
        assert sum(len(s) for s in rebuilt) == len(uniform_keys)  # pre-insert
