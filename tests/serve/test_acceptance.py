"""Serving-layer acceptance: batched serving beats per-request awaits.

The committed benchmark run (``python -m repro.bench serve`` ->
``BENCH_serve.json``) pins the >= 3x headline at 64+ concurrent clients;
this test re-checks the same shape at CI-friendly sizes with a
conservative floor so scheduler noise cannot flake the suite, plus the
bit-identical-results guarantee that makes the speedup meaningful.
"""

import asyncio

import numpy as np

from repro.datasets import get
from repro.engine import ShardedEngine
from repro.serve import Server
from repro.workloads import run_closed_loop, uniform_lookups

#: CI floor; the committed bench run shows >= 3x (typically ~4x) as the
#: median of matched-pair repeats.
_FLOOR = 2.5


class TestAcceptanceServing:
    def test_batched_serving_beats_scalar_awaits(self):
        keys = get("uniform", n=100_000, seed=0)
        engine = ShardedEngine(keys, n_shards=4, error=64.0, buffer_capacity=0)
        queries = uniform_lookups(keys, 16_384, seed=1)
        expected = np.asarray([engine.get(k) for k in queries])

        async def drive(mode):
            server = Server(
                engine,
                max_batch=1 if mode == "naive" else 1024,
                max_delay=0.0 if mode == "naive" else 0.001,
            )
            async with server:
                await server.warm()
                return await run_closed_loop(server, queries, concurrency=128)

        # Best-of-3 alternating pairs to keep CI timing noise out of the
        # ratio (same pattern as the engine acceptance tests).
        ratios = []
        for _ in range(3):
            naive = asyncio.run(drive("naive"))
            batched = asyncio.run(drive("batched"))
            assert naive.errors == 0 and batched.errors == 0
            # Bit-identical to the scalar path on both sides.
            assert np.array_equal(np.asarray(naive.results), expected)
            assert np.array_equal(np.asarray(batched.results), expected)
            ratios.append(batched.ops_per_second / naive.ops_per_second)

        best = max(ratios)
        assert best >= _FLOOR, (
            f"batched serving speedup {best:.2f}x below the {_FLOOR}x CI "
            f"floor (bench bar is 3x)"
        )
