"""RequestBatcher mechanics: flush triggers, chunking, fences, drain.

These tests drive the batcher directly (no Server facade) with
``eager_flush`` disabled where the size/delay semantics themselves are
under test — the idle-flush optimization would otherwise fire first.
"""

import asyncio

import pytest

from repro.core.errors import InvalidParameterError
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.serve import RequestBatcher


def run(coro):
    return asyncio.run(coro)


def build_engine(n=5_000, seed=0):
    keys = get("uniform", n=n, seed=seed)
    return ShardedEngine(keys, n_shards=2, error=128.0, buffer_capacity=64), keys


class TestFlushTriggers:
    def test_flush_on_timeout_single_pending_request(self):
        """A lone request is never stranded: the max_delay timer fires
        even with nothing else arriving (the satellite edge case)."""
        engine, keys = build_engine()
        expected = engine.get(keys[7])

        async def main():
            batcher = RequestBatcher(
                engine, max_batch=1024, max_delay=0.01, eager_flush=False
            )
            fut = batcher.submit_get(keys[7])
            assert batcher.pending == 1
            value = await asyncio.wait_for(fut, timeout=2.0)
            assert batcher.pending == 0
            return value, batcher.stats()

        value, stats = run(main())
        assert value == expected
        assert stats["flushes"] == 1
        assert stats["batches"]["get"] == 1

    def test_flush_on_max_batch_before_delay(self):
        engine, keys = build_engine()

        async def main():
            batcher = RequestBatcher(
                engine, max_batch=4, max_delay=30.0, eager_flush=False
            )
            futs = [batcher.submit_get(k) for k in keys[:4]]
            # The timer is half a minute out; only the size trigger can
            # flush this fast.
            await asyncio.wait_for(asyncio.gather(*futs), timeout=2.0)
            return batcher.stats()

        stats = run(main())
        assert stats["flushes"] >= 1
        assert stats["max_batch_observed"] == 4

    def test_idle_flush_coalesces_concurrent_clients(self):
        """With eager_flush on, N blocked clients form one N-sized batch
        without waiting for max_delay."""
        engine, keys = build_engine()

        async def main():
            batcher = RequestBatcher(
                engine, max_batch=1024, max_delay=30.0, eager_flush=True
            )
            futs = [batcher.submit_get(k) for k in keys[:32]]
            await asyncio.wait_for(asyncio.gather(*futs), timeout=2.0)
            return batcher.stats()

        stats = run(main())
        assert stats["max_batch_observed"] == 32
        assert stats["batches"]["get"] == 1

    def test_drain_flushes_everything(self):
        engine, keys = build_engine()
        expected = [engine.get(k) for k in keys[:10]]

        async def main():
            batcher = RequestBatcher(
                engine, max_batch=1024, max_delay=30.0, eager_flush=False
            )
            futs = [batcher.submit_get(k) for k in keys[:10]]
            ins = batcher.submit_insert(float(keys[3]) + 0.5, 1)
            await batcher.drain()
            assert batcher.pending == 0
            assert ins.result() is None
            return [f.result() for f in futs]

        assert run(main()) == expected

    def test_invalid_parameters(self):
        engine, _ = build_engine()
        with pytest.raises(InvalidParameterError):
            RequestBatcher(engine, max_batch=0)
        with pytest.raises(InvalidParameterError):
            RequestBatcher(engine, max_delay=-1.0)


class TestInsertFence:
    def test_fence_tracks_min_max_of_pending_inserts(self):
        engine, _ = build_engine()

        async def main():
            batcher = RequestBatcher(engine, eager_flush=False, max_delay=30.0)
            batcher.submit_insert(100.0, 1)
            batcher.submit_insert(200.0, 2)
            # Inside [100, 200]: held. Outside: not held.
            batcher.submit_get(150.0)
            batcher.submit_get(99.0)
            batcher.submit_get(201.0)
            held = batcher.stats()["barrier_held"]
            await batcher.drain()
            return held

        assert run(main()) == 1

    def test_unroutable_insert_widens_fence_to_everything(self):
        engine, keys = build_engine()

        async def main():
            batcher = RequestBatcher(engine, eager_flush=False, max_delay=30.0)
            batcher.submit_insert("bogus", 1)  # cannot float(): full fence
            batcher.submit_get(float(keys[0]))
            held = batcher.stats()["barrier_held"]
            await batcher.drain()
            return held

        assert run(main()) == 1

    def test_held_reads_resolve_in_same_cycle(self):
        engine, _ = build_engine()

        async def main():
            batcher = RequestBatcher(engine, eager_flush=False, max_delay=30.0)
            ins = batcher.submit_insert(500.0, 77)
            red = batcher.submit_get(500.0)
            await batcher.drain()
            assert ins.result() is None
            return red.result()

        assert run(main()) == 77


class TestSoloMode:
    """max_batch=1: one event-loop task per request, FIFO ordering."""

    def test_per_request_tasks_match_scalar(self):
        engine, keys = build_engine()
        expected = [engine.get(k) for k in keys[:20]]

        async def main():
            batcher = RequestBatcher(engine, max_batch=1, max_delay=0.0)
            futs = [batcher.submit_get(k) for k in keys[:20]]
            got = await asyncio.gather(*futs)
            stats = batcher.stats()
            return list(got), stats

        got, stats = run(main())
        assert got == expected
        assert stats["batches"]["get"] == 20
        assert stats["max_batch_observed"] == 1

    def test_solo_read_your_writes_fifo(self):
        engine, _ = build_engine()

        async def main():
            batcher = RequestBatcher(engine, max_batch=1, max_delay=0.0)
            ins = batcher.submit_insert(77.5, 5)
            red = batcher.submit_get(77.5)
            await asyncio.gather(ins, red)
            return red.result()

        assert run(main()) == 5

    def test_solo_drain_awaits_inflight_tasks(self):
        engine, keys = build_engine()
        expected = [engine.get(k) for k in keys[:8]]

        async def main():
            batcher = RequestBatcher(engine, max_batch=1, max_delay=0.0)
            futs = [batcher.submit_get(k) for k in keys[:8]]
            await batcher.drain()
            return [f.result() for f in futs]

        assert run(main()) == expected


class TestOffload:
    def test_offload_runs_inline_without_executor(self):
        engine, _ = build_engine()

        async def main():
            batcher = RequestBatcher(engine)
            return await batcher.offload(lambda: 41 + 1)

        assert run(main()) == 42
