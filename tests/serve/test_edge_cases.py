"""Serve edge cases: failure isolation, backpressure, clean shutdown.

The satellite checklist items: an exception in one request of a batch must
not poison its batch-mates, a full queue must behave per the configured
overload policy, and shutdown must drain in-flight requests while refusing
new ones.
"""

import asyncio

import numpy as np
import pytest

from repro.datasets import get
from repro.engine import ShardedEngine
from repro.serve import Server, ServerClosedError, ServerOverloadedError


def run(coro):
    return asyncio.run(coro)


def build_engine(n=5_000, seed=0, buffer_capacity=64):
    keys = get("uniform", n=n, seed=seed)
    return ShardedEngine(
        keys, n_shards=2, error=128.0, buffer_capacity=buffer_capacity
    ), keys


class TestFailureIsolation:
    def test_bad_get_does_not_poison_batch_mates(self):
        engine, keys = build_engine()
        good = [float(k) for k in keys[:8]]
        expected = [engine.get(k) for k in good]

        async def main():
            async with Server(engine) as server:
                futs = [asyncio.ensure_future(server.get(k)) for k in good]
                bad = asyncio.ensure_future(server.get("not-a-key"))
                results = await asyncio.gather(*futs)
                with pytest.raises(Exception):
                    await bad
                return results, server.stats()["batcher"]["scalar_fallbacks"]

        results, fallbacks = run(main())
        assert results == expected
        assert fallbacks >= 1

    def test_bad_insert_does_not_poison_batch_mates(self):
        engine, keys = build_engine()
        lo, hi = float(keys[0]), float(keys[-1])
        good = list(np.linspace(lo + 0.123, hi - 0.123, 6))

        async def main():
            async with Server(engine) as server:
                futs = [
                    asyncio.ensure_future(server.insert(k, i))
                    for i, k in enumerate(good)
                ]
                bad = asyncio.ensure_future(server.insert(object(), 99))
                await asyncio.gather(*futs)
                with pytest.raises(Exception):
                    await bad
                checks = await asyncio.gather(*(server.get(k) for k in good))
                return checks

        checks = run(main())
        assert checks == list(range(6))

    def test_bad_range_does_not_poison_batch_mates(self):
        engine, keys = build_engine()
        lo, hi = float(keys[10]), float(keys[60])
        ek, ev = engine.range_arrays(lo, hi)

        async def main():
            async with Server(engine) as server:
                good = asyncio.ensure_future(server.range(lo, hi))
                bad = asyncio.ensure_future(server.range("x", "y"))
                gk, gv = await good
                with pytest.raises(Exception):
                    await bad
                return gk, gv

        gk, gv = run(main())
        assert np.array_equal(gk, ek)
        assert np.array_equal(gv, ev)

    def test_mixed_value_inserts_apply_per_item(self):
        # None (auto row id) and explicit payloads in one batch cannot go
        # through a single insert_batch; the batcher splits them per item
        # and both semantics hold.
        engine, keys = build_engine()
        auto_key = float(keys[-1]) + 10.0
        expl_key = float(keys[-1]) + 20.0

        async def main():
            async with Server(engine) as server:
                a = asyncio.ensure_future(server.insert(auto_key))
                b = asyncio.ensure_future(server.insert(expl_key, "payload"))
                await asyncio.gather(a, b)
                return (
                    await server.get(auto_key),
                    await server.get(expl_key),
                )

        auto_val, expl_val = run(main())
        assert auto_val == len(keys)  # next auto row id
        assert expl_val == "payload"


class TestBackpressure:
    def test_reject_mode_raises_when_queue_full(self):
        engine, keys = build_engine()

        async def main():
            # eager_flush off + huge delay: submissions pile up unflushed,
            # so the queue genuinely fills.
            server = Server(
                engine, max_pending=4, overload="reject",
                eager_flush=False, max_delay=30.0,
            )
            admitted = [
                asyncio.ensure_future(server.get(k)) for k in keys[:4]
            ]
            await asyncio.sleep(0)  # let the four tasks submit
            with pytest.raises(ServerOverloadedError):
                await server.get(float(keys[4]))
            rejected = server.stats()["rejected"]
            await server.close()  # drains the four admitted requests
            return [await f for f in admitted], rejected

        results, rejected = run(main())
        assert results == [engine.get(k) for k in keys[:4]]
        assert rejected == 1

    def test_wait_mode_bounds_in_flight_and_completes(self):
        engine, keys = build_engine()
        queries = [float(k) for k in keys[:32]]
        expected = [engine.get(k) for k in queries]

        async def main():
            async with Server(engine, max_pending=4, overload="wait") as server:
                seen = []

                async def one(k):
                    value = await server.get(k)
                    seen.append(server.stats()["in_flight"])
                    return value

                results = await asyncio.gather(*(one(k) for k in queries))
                return results, max(seen)

        results, max_in_flight = run(main())
        assert results == expected
        assert max_in_flight <= 4


class TestShutdown:
    def test_close_drains_in_flight_requests(self):
        engine, keys = build_engine()
        queries = [float(k) for k in keys[:16]]

        async def main():
            server = Server(engine, eager_flush=False, max_delay=30.0)
            futs = [asyncio.ensure_future(server.get(k)) for k in queries]
            await asyncio.sleep(0)  # requests are now pending, unflushed
            await server.close()
            return await asyncio.gather(*futs)

        results = run(main())
        assert results == [engine.get(k) for k in queries]

    def test_submit_after_close_raises(self):
        engine, keys = build_engine()

        async def main():
            server = Server(engine)
            await server.close()
            with pytest.raises(ServerClosedError):
                await server.get(keys[0])
            with pytest.raises(ServerClosedError):
                await server.insert(1.0, 1)
            with pytest.raises(ServerClosedError):
                await server.range(0.0, 1.0)

        run(main())

    def test_close_is_idempotent(self):
        engine, _keys = build_engine()

        async def main():
            server = Server(engine, executor="thread")
            await server.close()
            await server.close()
            assert server.closed

        run(main())

    def test_context_manager_closes(self):
        engine, keys = build_engine()

        async def main():
            async with Server(engine) as server:
                await server.get(keys[0])
            assert server.closed
            with pytest.raises(ServerClosedError):
                await server.get(keys[1])

        run(main())
