"""The serving layer's delete verb: batching, fencing, failure isolation.

Pins the PR's serve-level delete contract:

* ``await server.delete(key)`` resolves to the deleted value, coalesced
  through one ``engine.delete_batch`` dispatch per flush;
* deletes share the inserts' read-your-writes fence: a read submitted
  after an overlapping delete never sees the removed occurrence, and
  writes of both kinds apply in submission order;
* an absent key rejects only its own future with ``KeyNotFoundError`` —
  batch-mates still succeed;
* ``max_batch=1`` (solo mode) dispatches scalar deletes per request.
"""

import asyncio

import numpy as np
import pytest

from repro.core.errors import KeyNotFoundError
from repro.engine import ShardedEngine
from repro.serve import RequestBatcher, Server


def make_engine(n=2_000, seed=0, **kwargs):
    keys = np.sort(np.random.default_rng(seed).uniform(0, 1e6, n))
    kwargs.setdefault("n_shards", 2)
    kwargs.setdefault("error", 64)
    kwargs.setdefault("buffer_capacity", 16)
    return keys, ShardedEngine(keys, **kwargs)


class TestDeleteDispatch:
    def test_concurrent_deletes_coalesce_into_one_batch(self):
        keys, engine = make_engine()

        async def main():
            async with Server(engine) as server:
                values = await asyncio.gather(
                    *[server.delete(k) for k in keys[:64]]
                )
                assert values == list(range(64))
                stats = server.stats()["batcher"]
                assert stats["ops"]["delete"] == 64
                assert stats["batches"]["delete"] <= 2  # coalesced, not 64
                sentinel = object()
                misses = await asyncio.gather(
                    *[server.get(k, sentinel) for k in keys[:64]]
                )
                assert all(v is sentinel for v in misses)

        asyncio.run(main())

    def test_absent_key_rejects_only_its_future(self):
        keys, engine = make_engine()

        async def main():
            async with Server(engine) as server:
                results = await asyncio.gather(
                    server.delete(keys[0]),
                    server.delete(-123.0),
                    server.delete(keys[1]),
                    return_exceptions=True,
                )
                assert results[0] == 0 and results[2] == 1
                assert isinstance(results[1], KeyNotFoundError)

        asyncio.run(main())

    def test_solo_mode_scalar_deletes(self):
        keys, engine = make_engine()

        async def main():
            async with Server(engine, max_batch=1) as server:
                assert await server.delete(keys[3]) == 3
                with pytest.raises(KeyNotFoundError):
                    await server.delete(keys[3])

        asyncio.run(main())


class TestWriteFence:
    def test_read_after_delete_misses(self):
        keys, engine = make_engine()

        async def main():
            async with Server(engine) as server:
                deleted, read = await asyncio.gather(
                    server.delete(keys[10]), server.get(keys[10], "MISS")
                )
                assert deleted == 10 and read == "MISS"
                held = server.stats()["batcher"]["barrier_held"]
                assert held >= 1  # the read really crossed the fence

        asyncio.run(main())

    def test_insert_then_delete_same_key_in_one_cycle(self):
        keys, engine = make_engine()

        async def main():
            async with Server(engine) as server:
                new_key = 123.456
                _, deleted, read = await asyncio.gather(
                    server.insert(new_key, 999),
                    server.delete(new_key),
                    server.get(new_key, "MISS"),
                )
                assert deleted == 999  # submission order: insert first
                assert read == "MISS"

        asyncio.run(main())

    def test_delete_then_insert_same_key_in_one_cycle(self):
        keys, engine = make_engine()

        async def main():
            async with Server(engine) as server:
                k = float(keys[20])
                deleted, _, read = await asyncio.gather(
                    server.delete(k),
                    server.insert(k, 555),
                    server.get(k),
                )
                assert deleted == 20
                assert read == 555  # the re-insert is visible afterwards

        asyncio.run(main())

    def test_range_after_delete_excludes_removed_rows(self):
        keys, engine = make_engine()

        async def main():
            async with Server(engine) as server:
                lo, hi = float(keys[30]), float(keys[40])
                _, (rkeys, _rvals) = await asyncio.gather(
                    server.delete(float(keys[35])), server.range(lo, hi)
                )
                assert keys[35] not in rkeys
                assert rkeys.size == 10  # 11 keys in [30, 40] minus one

        asyncio.run(main())


class TestBatcherDirect:
    def test_delete_stats_and_drain(self):
        keys, engine = make_engine()

        async def main():
            batcher = RequestBatcher(engine, max_batch=8, max_delay=0.001)
            futures = [batcher.submit_delete(k) for k in keys[:8]]
            values = await asyncio.gather(*futures)
            assert values == list(range(8))
            stats = batcher.stats()
            assert stats["ops"]["delete"] == 8
            assert stats["batches"]["delete"] == 1
            assert stats["barrier_version"] == engine.version
            await batcher.drain()

        asyncio.run(main())

    def test_whole_batch_failure_falls_back_per_key(self):
        keys, engine = make_engine()

        class ExplodingBatch:
            """delete_batch always fails; scalar delete works."""

            def __getattr__(self, name):
                return getattr(engine, name)

            def delete_batch(self, *a, **kw):
                raise RuntimeError("boom")

        async def main():
            batcher = RequestBatcher(ExplodingBatch(), max_batch=8)
            results = await asyncio.gather(
                *[batcher.submit_delete(k) for k in keys[:4]],
                return_exceptions=True,
            )
            assert results == [0, 1, 2, 3]  # per-key fallback succeeded
            assert batcher.stats()["scalar_fallbacks"] >= 1

        asyncio.run(main())
