"""Per-shard concurrent dispatch: shards answered as overlapping tasks.

The ROADMAP follow-on the cluster PR lands: a get flush no longer has to
serialize shard sub-batches — with ``shard_concurrency`` set and a
shard-dispatch-capable engine, each shard's slice is dispatched as its own
task under the same fence. The key assertion here is *temporal*: two
shards' sub-batches must actually overlap in time.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.engine import ShardedEngine
from repro.serve import Server

#: Sleep long enough that scheduling jitter cannot fake an overlap.
_SHARD_SLEEP = 0.08


class TwoShardEcho:
    """A fake two-shard engine whose per-shard reads sleep and timestamp.

    Keys < 100 live on shard 0, the rest on shard 1; every verb echoes
    the key back so results stay checkable.
    """

    shard_dispatch_safe = True
    version = 0

    def __init__(self, fail_shard_dispatch=False):
        self.intervals = []
        self.fail_shard_dispatch = fail_shard_dispatch
        self.whole_batches = 0

    def route_shards(self, queries):
        return (np.asarray(queries, dtype=np.float64) >= 100).astype(np.int64)

    def get_batch_shard(self, sid, queries, default=None):
        if self.fail_shard_dispatch:
            raise RuntimeError("shard transport down")
        start = time.perf_counter()
        time.sleep(_SHARD_SLEEP)
        self.intervals.append((sid, start, time.perf_counter()))
        return np.asarray(queries, dtype=np.float64)

    def get_batch(self, queries, default=None):
        self.whole_batches += 1
        return np.asarray(queries, dtype=np.float64)

    def get(self, key, default=None):
        return float(key)


async def _submit_both_shards(server, n_per_shard=4):
    low = [server.get(float(k)) for k in range(n_per_shard)]
    high = [server.get(float(200 + k)) for k in range(n_per_shard)]
    return await asyncio.gather(*low, *high)


class TestOverlap:
    def test_two_shards_overlap_in_time(self):
        engine = TwoShardEcho()

        async def main():
            async with Server(engine, shard_concurrency=2) as server:
                results = await _submit_both_shards(server)
                assert results == [float(k) for k in range(4)] + [
                    float(200 + k) for k in range(4)
                ]
                return server.stats()["batcher"]

        stats = asyncio.run(main())
        assert stats["shard_dispatches"] >= 1
        spans = {sid: (s, e) for sid, s, e in engine.intervals}
        assert set(spans) == {0, 1}, engine.intervals
        (s0, e0), (s1, e1) = spans[0], spans[1]
        assert s0 < e1 and s1 < e0, (
            f"shard sub-batches did not overlap: {spans}"
        )

    def test_without_shard_concurrency_no_overlap_machinery(self):
        engine = TwoShardEcho()

        async def main():
            async with Server(engine) as server:  # shard_concurrency=0
                await _submit_both_shards(server)
                return server.stats()["batcher"]

        stats = asyncio.run(main())
        assert stats["shard_dispatches"] == 0
        assert engine.intervals == []
        assert engine.whole_batches >= 1

    def test_failure_falls_back_to_whole_batch(self):
        engine = TwoShardEcho(fail_shard_dispatch=True)

        async def main():
            async with Server(engine, shard_concurrency=2) as server:
                results = await _submit_both_shards(server)
                assert results == [float(k) for k in range(4)] + [
                    float(200 + k) for k in range(4)
                ]
                return server.stats()["batcher"]

        stats = asyncio.run(main())
        assert stats["shard_dispatches"] == 0
        assert engine.whole_batches >= 1  # reads are idempotent: retried whole

    def test_sharded_engine_opts_out(self):
        """ShardedEngine declares shard_dispatch_safe=False (shared caches);
        the batcher must respect the flag even with a pool configured."""
        keys = np.sort(np.random.default_rng(0).uniform(0, 1e6, 5_000))
        engine = ShardedEngine(keys, n_shards=4, error=64)

        async def main():
            async with Server(engine, shard_concurrency=4) as server:
                values = await asyncio.gather(
                    *[server.get(k) for k in keys[:64]]
                )
                assert values == list(range(64))
                return server.stats()["batcher"]

        stats = asyncio.run(main())
        assert stats["shard_dispatches"] == 0


class TestValidation:
    def test_negative_shard_concurrency_rejected(self):
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            Server(TwoShardEcho(), shard_concurrency=-1)
