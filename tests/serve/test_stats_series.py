"""LatencySeries: percentile-key consistency and window-eviction properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.stats import _PERCENTILES, LatencySeries


def test_summary_keys_derive_from_percentile_set():
    expected = (
        {"count", "window", "mean_us", "max_us"}
        | {f"p{p:g}_us" for p in _PERCENTILES}
    )
    empty = LatencySeries(8).summary()
    assert set(empty) == expected
    series = LatencySeries(8)
    series.record(0.001)
    assert set(series.summary()) == expected
    # The documented defaults are present under their canonical names.
    assert {"p50_us", "p95_us", "p99_us"} <= expected


def test_empty_summary_reports_zeroes():
    s = LatencySeries(4).summary()
    assert s["count"] == 0 and s["window"] == 0
    assert s["mean_us"] == s["p95_us"] == s["max_us"] == 0.0


@settings(max_examples=60, deadline=None)
@given(
    window=st.integers(min_value=1, max_value=50),
    chunks=st.lists(
        st.lists(
            st.floats(
                min_value=1e-7, max_value=1.0,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=20,
        ),
        max_size=12,
    ),
)
def test_extend_evicts_oldest_beyond_window(window, chunks):
    series = LatencySeries(window)
    flat = []
    for chunk in chunks:
        series.extend(chunk)
        flat.extend(chunk)
    summary = series.summary()
    # Lifetime count never truncates; the window is bounded.
    assert summary["count"] == len(flat)
    assert summary["window"] == min(len(flat), window)
    if not flat:
        return
    survivors = flat[-window:]
    # Eviction is strictly oldest-first: the summarized max/mean are the
    # last `window` samples', not the lifetime stream's.
    assert summary["max_us"] == round(max(survivors) * 1e6, 2)
    assert abs(
        summary["mean_us"] - sum(survivors) * 1e6 / len(survivors)
    ) <= 0.011  # round-to-2-decimals slack
