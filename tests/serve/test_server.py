"""Server facade: equivalence with the scalar path, ordering, stats.

The serving layer is an execution strategy, not a semantic change: every
test here pins "what a client awaits" against what scalar ``engine.get`` /
``range_items`` / ``insert`` would have produced.
"""

import asyncio

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.serve import Server
from repro.workloads import run_closed_loop, run_open_loop, uniform_lookups


def run(coro):
    return asyncio.run(coro)


def build_engine(n=20_000, seed=0, buffer_capacity=64, error=128.0):
    keys = get("uniform", n=n, seed=seed)
    return ShardedEngine(
        keys, n_shards=4, error=error, buffer_capacity=buffer_capacity
    ), keys


class TestEquivalence:
    def test_concurrent_gets_match_scalar(self):
        engine, keys = build_engine()
        queries = uniform_lookups(keys, 2_000, seed=1)
        expected = [engine.get(k) for k in queries]

        async def main():
            async with Server(engine) as server:
                return await asyncio.gather(*(server.get(k) for k in queries))

        got = run(main())
        assert list(got) == expected

    def test_missing_keys_get_defaults(self):
        engine, keys = build_engine()
        miss = float(keys[-1]) + 1000.0

        async def main():
            async with Server(engine) as server:
                return (
                    await server.get(miss),
                    await server.get(miss, default="sentinel"),
                )

        assert run(main()) == (None, "sentinel")

    def test_range_matches_scalar_iteration(self):
        engine, keys = build_engine()
        lo, hi = float(keys[100]), float(keys[400])
        expected = list(engine.range_items(lo, hi))

        async def main():
            async with Server(engine) as server:
                return await server.range(lo, hi)

        rk, rv = run(main())
        assert [(float(k), v) for k, v in zip(rk, rv)] == expected

    def test_concurrent_ranges_batch_together(self):
        engine, keys = build_engine()
        bounds = [
            (float(keys[i]), float(keys[i + 50])) for i in range(0, 500, 100)
        ]
        expected = [engine.range_arrays(lo, hi) for lo, hi in bounds]

        async def main():
            async with Server(engine) as server:
                return await asyncio.gather(
                    *(server.range(lo, hi) for lo, hi in bounds)
                )

        got = run(main())
        for (gk, gv), (ek, ev) in zip(got, expected):
            assert np.array_equal(gk, ek)
            assert np.array_equal(gv, ev)

    def test_closed_loop_matches_scalar(self):
        engine, keys = build_engine(buffer_capacity=0)
        queries = uniform_lookups(keys, 3_000, seed=2)
        expected = np.asarray([engine.get(k) for k in queries])

        async def main():
            async with Server(engine) as server:
                return await run_closed_loop(server, queries, concurrency=32)

        res = run(main())
        assert res.errors == 0
        assert np.array_equal(np.asarray(res.results), expected)

    def test_open_loop_matches_scalar(self):
        engine, keys = build_engine(buffer_capacity=0)
        queries = uniform_lookups(keys, 500, seed=3)
        expected = np.asarray([engine.get(k) for k in queries])

        async def main():
            async with Server(engine) as server:
                return await run_open_loop(
                    server, queries, rate=50_000.0, seed=4
                )

        res = run(main())
        assert res.errors == 0
        assert np.array_equal(np.asarray(res.results), expected)


class TestReadYourWrites:
    def test_insert_then_get_same_key(self):
        engine, keys = build_engine()

        async def main():
            async with Server(engine) as server:
                await server.insert(123.25, 777)
                return await server.get(123.25)

        assert run(main()) == 777

    def test_overlapping_read_waits_for_insert_in_same_cycle(self):
        engine, _keys = build_engine()

        async def main():
            async with Server(engine) as server:
                # Submitted back-to-back without yielding: both land in the
                # same flush cycle, and the read overlaps the insert fence.
                ins = asyncio.ensure_future(server.insert(55.5, 42))
                red = asyncio.ensure_future(server.get(55.5))
                await asyncio.gather(ins, red)
                assert server.stats()["batcher"]["barrier_held"] == 1
                return red.result()

        assert run(main()) == 42

    def test_non_overlapping_read_not_held(self):
        engine, keys = build_engine()
        far_key = float(keys[10])  # far below the inserted key

        async def main():
            async with Server(engine) as server:
                ins = asyncio.ensure_future(server.insert(1e12, 1))
                red = asyncio.ensure_future(server.get(far_key))
                await asyncio.gather(ins, red)
                return server.stats()["batcher"]["barrier_held"]

        assert run(main()) == 0

    def test_overlapping_range_waits_for_insert(self):
        engine, _keys = build_engine()

        async def main():
            async with Server(engine) as server:
                ins = asyncio.ensure_future(server.insert(500.5, 9))
                rng = asyncio.ensure_future(server.range(400.0, 600.0))
                await asyncio.gather(ins, rng)
                rk, rv = rng.result()
                return [(float(k), v) for k, v in zip(rk, rv)]

        items = run(main())
        assert (500.5, 9) in items

    def test_insert_batch_equivalent_to_scalar_loop(self):
        engine_a, keys = build_engine(seed=5)
        engine_b, _ = build_engine(seed=5)
        rng = np.random.default_rng(6)
        new_keys = rng.uniform(keys[0], keys[-1], 500)

        async def main():
            async with Server(engine_a) as server:
                await asyncio.gather(
                    *(server.insert(k) for k in new_keys)
                )

        run(main())
        # The scalar reference applies the same stream in arrival order.
        for k in new_keys:
            engine_b.insert(k)
        sample = new_keys[::7]
        assert np.array_equal(
            engine_a.get_batch(sample), engine_b.get_batch(sample)
        )

    def test_barrier_version_recorded(self):
        engine, _keys = build_engine()

        async def main():
            async with Server(engine) as server:
                pre = server.stats()["batcher"]["barrier_version"]
                await server.insert(3.5, 1)
                post = server.stats()["batcher"]["barrier_version"]
                return pre, post, engine.version

        pre, post, version = run(main())
        assert pre is None
        assert post == version


class TestStatsAndKnobs:
    def test_stats_shape(self):
        engine, keys = build_engine()

        async def main():
            async with Server(engine) as server:
                await asyncio.gather(*(server.get(k) for k in keys[:64]))
                await server.insert(1.5, 2)
                return server.stats()

        st = run(main())
        assert st["completed"] == 65
        assert st["latency"]["get"]["count"] == 64
        assert st["latency"]["get"]["p99_us"] >= st["latency"]["get"]["p50_us"]
        assert st["batcher"]["ops"]["get"] == 64
        assert st["batcher"]["flushes"] >= 1
        assert st["batcher"]["max_batch_observed"] >= 2
        assert st["engine_version"] == engine.version
        assert st["throughput_ops_per_s"] > 0

    def test_engine_version_monotonic(self):
        engine, _keys = build_engine()
        v0 = engine.version
        engine.insert(9.25, 0)
        assert engine.version > v0

    def test_max_batch_chunks_dispatch(self):
        engine, keys = build_engine()

        async def main():
            async with Server(engine, max_batch=8) as server:
                await asyncio.gather(*(server.get(k) for k in keys[:64]))
                return server.stats()["batcher"]

        st = run(main())
        assert st["max_batch_observed"] <= 8
        assert st["batches"]["get"] >= 8

    def test_warm_builds_views(self):
        engine, _keys = build_engine(buffer_capacity=0)

        async def main():
            async with Server(engine, executor="thread") as server:
                await server.warm()
                return engine.stats()["view_builds"]

        assert run(main()) >= 1

    def test_invalid_parameters_rejected(self):
        engine, _keys = build_engine()
        with pytest.raises(InvalidParameterError):
            Server(engine, overload="bogus")
        with pytest.raises(InvalidParameterError):
            Server(engine, max_pending=0)
        with pytest.raises(InvalidParameterError):
            Server(engine, executor="process")

    def test_executor_mode_equivalent(self):
        engine, keys = build_engine()
        queries = uniform_lookups(keys, 512, seed=7)
        expected = [engine.get(k) for k in queries]

        async def main():
            async with Server(engine, executor="thread") as server:
                got = await asyncio.gather(*(server.get(k) for k in queries))
                await server.insert(77.75, 11)
                val = await server.get(77.75)
                return list(got), val

        got, val = run(main())
        assert got == expected
        assert val == 11
