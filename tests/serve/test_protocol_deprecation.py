"""The ``repro.serve.protocol`` shim: warns once, re-exports identically."""

import importlib
import sys
import warnings


def _fresh_import():
    sys.modules.pop("repro.serve.protocol", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        module = importlib.import_module("repro.serve.protocol")
    return module, caught


def test_import_raises_deprecation_warning():
    _, caught = _fresh_import()
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert dep, "importing repro.serve.protocol must warn"
    assert "repro.api.protocol" in str(dep[0].message)


def test_symbols_identical_to_canonical_module():
    import repro.api.protocol as canonical

    shim, _ = _fresh_import()
    for name in ("BatchEngine", "EngineProtocol", "ShardDispatchEngine"):
        assert getattr(shim, name) is getattr(canonical, name)
    assert set(shim.__all__) == {
        "BatchEngine", "EngineProtocol", "ShardDispatchEngine",
    }
