"""Cross-socket tracing: one span tree spanning client and backend pids."""

import asyncio
import os

import numpy as np

from repro.net import AsyncNetClient, TcpCluster, serve_tcp
from repro.obs import Telemetry

KEYS = np.sort(np.random.default_rng(4).uniform(0, 1e9, 8_000))


def _spans(tree):
    """Flatten a tracer tree dict into a list of span records."""
    out = []
    for children in tree.values():
        out.extend(children)
    return out


def test_single_server_span_tree_crosses_the_socket():
    async def scenario():
        tel = Telemetry.from_mode("full")
        net = await serve_tcp(KEYS, n_shards=2, telemetry="full")
        c = AsyncNetClient(*net.address, telemetry=tel)
        await c.connect()
        try:
            with tel.tracer.span("client.request") as root:
                await c.get(KEYS[10])
            spans = _spans(tel.tracer.tree(root.trace_id))
            names = {s.name for s in spans}
            assert {"client.request", "net.call", "net.request"} <= names
            req = [s for s in spans if s.name == "net.request"]
            # The server-side span executed in this same process here,
            # but was shipped back through the reply frame and ingested —
            # its parent is the client's net.call span.
            call_ids = {s.span_id for s in spans if s.name == "net.call"}
            assert all(s.parent_id in call_ids for s in req)
            assert all(s.attrs.get("pid") for s in req)
        finally:
            await c.close()
            await net.close()

    asyncio.run(scenario())


def test_router_span_tree_carries_foreign_backend_pids():
    with TcpCluster(KEYS, backends=2, n_shards=1) as fleet:
        async def scenario():
            tel = Telemetry.from_mode("full")
            async with fleet.router(telemetry=tel, health_interval=0) as r:
                with tel.tracer.span("client.request") as root:
                    await r.get(KEYS[10])     # backend 0
                    await r.get(KEYS[-10])    # backend 1
                spans = _spans(tel.tracer.tree(root.trace_id))
                req = [s for s in spans if s.name == "net.request"]
                assert len(req) == 2
                pids = {s.attrs["pid"] for s in req}
                # End to end: both backend worker pids appear in the
                # client-side tree, and neither is the local pid.
                assert pids == set(fleet.pids)
                assert os.getpid() not in pids
                # All spans share the root's trace id.
                assert {s.trace_id for s in spans} == {root.trace_id}

        asyncio.run(scenario())
