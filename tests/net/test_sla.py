"""SLA-driven batching: the controller steers ``max_delay`` to the target."""

import asyncio

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.net import AsyncNetClient, serve_tcp
from repro.serve.server import Server
from repro.serve.sla import SlaController

KEYS = np.sort(np.random.default_rng(2).uniform(0, 1e9, 30_000))


class _FakeBatcher:
    def __init__(self, max_delay):
        self.max_delay = max_delay


def test_decrease_converges_in_one_step_when_p99_blown():
    b = _FakeBatcher(0.05)
    ctl = SlaController(b, target_p99_us=2000.0, min_samples=4)
    # 50ms latencies: p99 wildly over a 2ms target.
    ctl.observe([0.05] * 32)
    assert ctl.tick() == "decrease"
    # One step lands at half the target, not at delay/2 (which would
    # still be 12x over target).
    assert b.max_delay == pytest.approx(0.001)
    assert ctl.last_p99_us == pytest.approx(50_000.0)


def test_increase_recovers_headroom_under_light_load():
    b = _FakeBatcher(0.0002)
    ctl = SlaController(b, target_p99_us=2000.0, min_samples=4,
                        ceiling=0.002)
    ctl.observe([0.0001] * 32)  # p99 100us << 50% of 2000us target
    assert ctl.tick() == "increase"
    assert b.max_delay > 0.0002
    for _ in range(50):
        ctl.observe([0.0001] * 32)
        ctl.tick()
    assert b.max_delay == pytest.approx(0.002)  # parked at the ceiling


def test_hysteresis_band_holds():
    b = _FakeBatcher(0.001)
    ctl = SlaController(b, target_p99_us=2000.0, min_samples=4, slack=0.5)
    ctl.observe([0.0015] * 32)  # p99 1500us: between 1000 and 2000
    assert ctl.tick() == "hold"
    assert b.max_delay == 0.001


def test_small_windows_do_not_decide():
    b = _FakeBatcher(0.001)
    ctl = SlaController(b, target_p99_us=2000.0, min_samples=16)
    ctl.observe([0.5] * 8)
    assert ctl.tick() is None
    assert b.max_delay == 0.001


def test_invalid_parameters_rejected():
    with pytest.raises(InvalidParameterError):
        SlaController(_FakeBatcher(0.001), target_p99_us=0.0)
    with pytest.raises(InvalidParameterError):
        SlaController(_FakeBatcher(0.001), target_p99_us=100.0, interval=0)


def test_load_step_brings_p99_back_under_target():
    """The acceptance scenario: a load step blows p99 past the target;
    the adapted ``max_delay`` brings the next window's p99 back under."""

    async def scenario():
        net = await serve_tcp(
            KEYS,
            n_shards=2,
            eager_flush=False,
            max_delay=0.05,  # 50ms batch timer: p99 starts ~50000us
            sla_target_p99_us=5000.0,
            sla_interval=10.0,  # ticks driven manually below
        )
        srv = net.server
        ctl = srv._sla
        assert ctl is not None
        c = AsyncNetClient(*net.address, timeout=30.0)
        await c.connect()
        try:
            async def burst(n):
                for _ in range(n):
                    await asyncio.gather(
                        *[c.get(float(k)) for k in KEYS[:32]]
                    )

            await burst(3)  # load step at the 50ms delay
            assert ctl.tick() == "decrease"
            assert ctl.last_p99_us > 5000.0
            assert srv._batcher.max_delay <= 0.0025
            await burst(3)  # same load at the adapted delay
            ctl.tick()
            assert ctl.last_p99_us < 5000.0
            st = await c.server_stats()
            assert st["sla"]["decreases"] >= 1
            assert st["net"]["max_delay"] == srv._batcher.max_delay
        finally:
            await c.close()
            await net.close()

    asyncio.run(scenario())


def test_sla_task_runs_inside_server_lifecycle():
    async def scenario():
        srv = Server(
            __import__("repro.api", fromlist=["open_engine"]).open_engine(
                KEYS[:1000]
            ),
            sla_target_p99_us=1000.0,
            sla_interval=0.01,
        )
        async with srv:
            assert srv._sla.stats()["running"] is True
            await asyncio.gather(*[srv.get(float(k)) for k in KEYS[:64]])
            await asyncio.sleep(0.05)
            assert srv._sla.ticks >= 1
        assert srv._sla.stats()["running"] is False
        assert srv.stats()["sla"]["target_p99_us"] == 1000.0

    asyncio.run(scenario())
