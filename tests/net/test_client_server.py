"""TCP server + client end-to-end: CRUD, batches, pipelining, admin."""

import asyncio
import json
import urllib.request

import numpy as np
import pytest

from repro.core.errors import KeyNotFoundError
from repro.net import AsyncNetClient, NetClient, serve_tcp

KEYS = np.sort(np.random.default_rng(11).uniform(0, 1e9, 20_000))
VALUES = np.arange(KEYS.size, dtype=np.int64) * 10


def run(coro):
    return asyncio.run(coro)


async def _open(**overrides):
    net = await serve_tcp(KEYS, VALUES, n_shards=2, error=64.0, **overrides)
    client = AsyncNetClient(*net.address)
    await client.connect()
    return net, client


def test_crud_roundtrip():
    async def scenario():
        net, c = await _open()
        try:
            assert (await c.ping())["pong"] is True
            assert await c.get(KEYS[123]) == VALUES[123]
            assert await c.get(-1.0, default=-7) == -7
            await c.insert(KEYS[0] + 0.5, 999)
            assert await c.get(KEYS[0] + 0.5) == 999
            assert await c.delete(KEYS[0] + 0.5) == 999
            with pytest.raises(KeyNotFoundError):
                await c.delete(KEYS[0] + 0.5)
            k, v = await c.range(KEYS[100], KEYS[160])
            assert k.size == 61
            assert np.array_equal(v, VALUES[100:161])
        finally:
            await c.close()
            await net.close()

    run(scenario())


def test_batch_verbs_match_engine():
    async def scenario():
        net, c = await _open()
        try:
            out = await c.get_batch(KEYS[:256])
            assert np.array_equal(out, VALUES[:256])
            rows = np.array([[KEYS[0], KEYS[50]], [KEYS[60], KEYS[70]]])
            pairs = await c.range_batch(rows)
            assert [p[0].size for p in pairs] == [51, 11]
            await c.insert_batch([1.0, 2.0, 3.0], [-1, -2, -3])
            assert list(await c.get_batch([1.0, 2.0, 3.0])) == [-1, -2, -3]
            assert list(await c.delete_batch([1.0, 2.0, 3.0])) == [-1, -2, -3]
        finally:
            await c.close()
            await net.close()

    run(scenario())


def test_pipelined_requests_share_one_connection():
    async def scenario():
        net, c = await _open()
        try:
            out = await asyncio.gather(
                *[c.get(float(k)) for k in KEYS[:128]]
            )
            assert list(out) == list(VALUES[:128])
            st = c.stats()
            assert st["reconnects"] == 0
            # all 128 requests multiplexed over the eagerly-dialed slot
            assert net.net_stats()["connections_opened"] == 1
        finally:
            await c.close()
            await net.close()

    run(scenario())


def test_typed_error_crosses_the_wire_and_connection_survives():
    async def scenario():
        net, c = await _open()
        try:
            with pytest.raises(KeyNotFoundError):
                await c.delete(-123.0)
            # the same connection keeps serving after the error reply
            assert await c.get(KEYS[7]) == VALUES[7]
            assert net.net_stats()["errors"] == 1
        finally:
            await c.close()
            await net.close()

    run(scenario())


def test_server_stats_exposes_net_block():
    async def scenario():
        net, c = await _open()
        try:
            await c.get(KEYS[0])
            st = await c.server_stats()
            assert st["net"]["connections_active"] == 1
            assert st["net"]["frames_in"] >= 2
            assert st["net"]["listen"].startswith("127.0.0.1:")
            assert "max_delay" in st["net"]
        finally:
            await c.close()
            await net.close()

    run(scenario())


def test_sync_client_from_plain_code():
    # The sync client owns a private loop thread; it must work from code
    # with no ambient event loop (here: an executor thread, while the
    # server runs on the main loop).
    async def serve_and_probe():
        net = await serve_tcp(KEYS, VALUES, n_shards=2)

        def probe():
            with NetClient(*net.address) as sc:
                assert sc.ping()["pong"] is True
                assert sc.get(KEYS[42]) == VALUES[42]
                sc.insert(0.25, 5)
                assert sc.delete(0.25) == 5
                assert list(sc.get_batch(KEYS[:4])) == list(VALUES[:4])

        await asyncio.get_running_loop().run_in_executor(None, probe)
        await net.close()

    run(serve_and_probe())


def test_graceful_drain_completes_inflight_requests():
    async def scenario():
        net, c = await _open(max_delay=0.05, eager_flush=False)
        try:
            # Launch gets that ride the 50ms batch timer, then close the
            # server while they are in flight: drain must answer them.
            gets = [
                asyncio.ensure_future(c.get(float(k))) for k in KEYS[:8]
            ]
            await asyncio.sleep(0.01)
            await net.close()
            out = await asyncio.gather(*gets)
            assert list(out) == list(VALUES[:8])
        finally:
            await c.close()

    run(scenario())


def test_admin_endpoint_rides_along():
    async def scenario():
        net = await serve_tcp(
            KEYS, VALUES, n_shards=2, telemetry="metrics", admin_port=0
        )
        c = AsyncNetClient(*net.address)
        await c.connect()
        try:
            await c.get(KEYS[0])
            admin = net.server.admin
            assert admin is not None
            loop = asyncio.get_running_loop()

            def fetch(path):
                url = f"http://{admin.host}:{admin.port}{path}"
                return urllib.request.urlopen(url, timeout=10).read()

            doc = json.loads(await loop.run_in_executor(
                None, fetch, "/stats"
            ))
            assert doc["net"]["connections_active"] == 1
            metrics = (await loop.run_in_executor(
                None, fetch, "/metrics"
            )).decode()
            assert "repro_net_frames_total" in metrics
            assert "repro_net_connections" in metrics
        finally:
            await c.close()
            await net.close()

    run(scenario())
