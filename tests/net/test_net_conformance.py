"""Conformance: the net path is bit-identical to the in-process server.

The same mixed scenario (batch reads, range scans, inserts, deletes)
runs against the in-process :class:`~repro.serve.Server`, a TCP client
against one :func:`serve_tcp` server, and a :class:`~repro.net.Router`
over a two-backend :class:`~repro.net.TcpCluster`. Every result array
must match bit for bit — framing, scatter/gather and the wire codecs
must be invisible to correctness.
"""

import asyncio

import numpy as np

from repro.api import open_engine
from repro.net import AsyncNetClient, TcpCluster, serve_tcp
from repro.serve.server import Server

RNG = np.random.default_rng(42)
N = 3_000
BUILD_KEYS = np.sort(RNG.uniform(0.0, 1e6, N))
BUILD_VALUES = RNG.integers(0, 1 << 40, N).astype(np.int64)
PROBES = RNG.permutation(BUILD_KEYS)[:500]
MISSES = RNG.uniform(2e6, 3e6, 50)
INS_KEYS = np.sort(RNG.uniform(0.0, 1e6, 200))
INS_VALUES = RNG.integers(0, 1 << 40, 200).astype(np.int64)
DEL_KEYS = RNG.permutation(BUILD_KEYS)[:150]
BOUNDS = np.sort(RNG.uniform(0.0, 1e6, (4, 2)), axis=1)


async def _scenario(api):
    """Drive the mixed workload; returns a flat list of result arrays."""
    out = []
    out.append(np.asarray(await api.get_batch(PROBES)))
    out.append(np.asarray(await api.get_batch(MISSES, -1)))
    for k, v in await api.range_batch(BOUNDS):
        out.append(np.asarray(k))
        out.append(np.asarray(v))
    await api.insert_batch(INS_KEYS, INS_VALUES)
    out.append(np.asarray(await api.get_batch(INS_KEYS)))
    out.append(np.asarray(await api.delete_batch(DEL_KEYS)))
    out.append(np.asarray(await api.get_batch(BUILD_KEYS[:400], -1)))
    k, v = await api.range(float(BOUNDS[0, 0]), float(BOUNDS[0, 1]))
    out.append(np.asarray(k))
    out.append(np.asarray(v))
    return out


def _inproc():
    async def run():
        engine = open_engine(BUILD_KEYS, BUILD_VALUES, n_shards=2,
                             error=64.0)
        async with Server(engine) as srv:
            class _Api:
                get_batch = staticmethod(srv.get_batch)
                range_batch = staticmethod(srv.range_batch)
                insert_batch = staticmethod(srv.insert_batch)
                delete_batch = staticmethod(srv.delete_batch)
                range = staticmethod(srv.range)

            return await _scenario(_Api)

    return asyncio.run(run())


def _tcp_single():
    async def run():
        net = await serve_tcp(BUILD_KEYS, BUILD_VALUES, n_shards=2,
                              error=64.0)
        c = AsyncNetClient(*net.address)
        await c.connect()
        try:
            return await _scenario(c)
        finally:
            await c.close()
            await net.close()

    return asyncio.run(run())


def _tcp_routed():
    with TcpCluster(BUILD_KEYS, BUILD_VALUES, backends=2, n_shards=1,
                    error=64.0) as fleet:
        async def run():
            async with fleet.router(health_interval=0) as router:
                return await _scenario(router)

        return asyncio.run(run())


def _assert_identical(a, b, label):
    assert len(a) == len(b), label
    for i, (x, y) in enumerate(zip(a, b)):
        assert x.dtype == y.dtype, f"{label}[{i}] dtype {x.dtype}!={y.dtype}"
        if x.dtype == object:  # mixed hit/miss results (None defaults)
            assert list(x) == list(y), f"{label}[{i}]"
        else:
            assert np.array_equal(x, y, equal_nan=True), f"{label}[{i}]"


def test_net_paths_bit_identical_to_inprocess_server():
    reference = _inproc()
    _assert_identical(_tcp_single(), reference, "tcp-single")
    _assert_identical(_tcp_routed(), reference, "tcp-routed")
