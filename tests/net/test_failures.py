"""Failure matrix: torn frames, dead peers, timeouts, killed backends."""

import asyncio
import struct
import zlib

import numpy as np
import pytest

from repro.net import (
    AsyncNetClient,
    BackendDownError,
    RequestTimeoutError,
    TcpCluster,
    serve_tcp,
)
from repro.net import frame as wire

KEYS = np.sort(np.random.default_rng(3).uniform(0, 1e9, 10_000))


def run(coro):
    return asyncio.run(coro)


def test_mid_frame_disconnect_leaves_server_serving():
    async def scenario():
        net = await serve_tcp(KEYS, n_shards=2)
        try:
            # A raw peer sends half a frame and vanishes.
            reader, writer = await asyncio.open_connection(*net.address)
            buf = wire.encode_frame(wire.OP_GET, 1, meta={"key": 1.0})
            writer.write(buf[: len(buf) // 2])
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            stats = net.net_stats()
            assert stats["connections_active"] == 0
            # The server took no damage: a real client works fine.
            c = AsyncNetClient(*net.address)
            await c.connect()
            assert await c.get(KEYS[5]) is not None
            await c.close()
        finally:
            await net.close()

    run(scenario())


def test_corrupt_frame_rejected_but_connection_survives():
    async def scenario():
        net = await serve_tcp(KEYS, n_shards=2)
        try:
            reader, writer = await asyncio.open_connection(*net.address)
            good = wire.encode_frame(wire.OP_PING, 7)
            bad = bytearray(good)
            bad[-1] ^= 0xFF  # payload bit flip; CRC must reject
            writer.write(bytes(bad))
            await writer.drain()
            err = await wire.read_frame(reader)
            assert err.kind == wire.REPLY_ERR
            assert "FrameCorruptError" in err.meta["error"]
            # Same TCP connection, next frame is clean: still served.
            writer.write(good)
            await writer.drain()
            ok = await wire.read_frame(reader)
            assert ok.kind == wire.REPLY_OK and ok.request_id == 7
            assert net.net_stats()["frames_corrupt"] == 1
            writer.close()
            await writer.wait_closed()
        finally:
            await net.close()

    run(scenario())


def test_desynchronized_stream_is_hung_up_on():
    async def scenario():
        net = await serve_tcp(KEYS, n_shards=2)
        try:
            reader, writer = await asyncio.open_connection(*net.address)
            writer.write(b"GET / HTTP/1.1\r\n\r\n" + b"\x00" * 16)
            await writer.drain()
            err = await wire.read_frame(reader)
            assert err.kind == wire.REPLY_ERR
            assert await reader.read() == b""  # server closed the stream
            assert net.net_stats()["frames_bad"] == 1
        finally:
            await net.close()

    run(scenario())


def test_client_timeout_retries_reads_and_drops_late_replies():
    async def scenario():
        net = await serve_tcp(KEYS, n_shards=2, max_delay=0.2,
                              eager_flush=False)
        # Timeout far below the 200ms batch timer: every attempt of this
        # read times out, so the client retries (reads are idempotent)
        # and finally surfaces the timeout.
        c = AsyncNetClient(*net.address, timeout=0.03, retries=2,
                           backoff=0.01)
        await c.connect()
        try:
            with pytest.raises(RequestTimeoutError):
                await c.get(KEYS[11])
            assert c.stats()["timeouts"] >= 3  # initial + 2 retries
            assert c.stats()["retries"] == 2
            # The server still executed those reads; their late replies
            # must be dropped, not matched to the next request. Give the
            # next request room to succeed and check it is correct.
            c.timeout = 5.0
            assert await c.get(KEYS[11]) is not None
            assert await c.get(-1.0, default=-3) == -3
        finally:
            await c.close()
            await net.close()

    run(scenario())


def test_reconnect_with_backoff_after_server_restart():
    async def scenario():
        net = await serve_tcp(KEYS, n_shards=2)
        port = net.port
        c = AsyncNetClient("127.0.0.1", port, retries=20, backoff=0.05)
        await c.connect()
        first = await c.get(KEYS[9])
        await net.close()  # connection dies under the client

        async def revive():
            await asyncio.sleep(0.2)
            return await serve_tcp(
                KEYS, n_shards=2, listen=f"127.0.0.1:{port}"
            )

        revival = asyncio.ensure_future(revive())
        # The idempotent read rides retry-with-backoff across the gap.
        again = await c.get(KEYS[9])
        assert again == first
        assert c.stats()["reconnects"] >= 1
        await c.close()
        await (await revival).close()

    run(scenario())


def test_writes_are_not_silently_retried():
    async def scenario():
        net = await serve_tcp(KEYS, n_shards=2, max_delay=0.2,
                              eager_flush=False)
        c = AsyncNetClient(*net.address, timeout=0.02, retries=5,
                           backoff=0.01)
        await c.connect()
        try:
            with pytest.raises(RequestTimeoutError):
                await c.insert(0.125, 1)  # not idempotent: no retry
            assert c.stats()["retries"] == 0
        finally:
            await c.close()
            await net.close()

    run(scenario())


def test_router_ejects_sigkilled_backend_and_readmits_after_restart():
    with TcpCluster(KEYS, backends=2, n_shards=1) as fleet:
        async def scenario():
            async with fleet.router(
                health_interval=0.1, timeout=2.0, retries=1, backoff=0.01
            ) as router:
                low, high = KEYS[10], KEYS[-10]
                assert await router.get(high) is not None
                fleet.kill(1)
                # In-flight/new requests on the dead range fail typed...
                with pytest.raises(BackendDownError) as info:
                    await router.get(high)
                assert info.value.backend == 1
                # ...while the living range keeps serving.
                assert await router.get(low) is not None
                up = await router.check_health()
                assert up == [True, False]
                assert router.stats()["ejections"] >= 1

                fleet.restart(1)
                deadline = asyncio.get_running_loop().time() + 30
                while not (await router.check_health())[1]:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.1)
                assert router.stats()["readmissions"] >= 1
                assert await router.get(high) is not None

        run(scenario())


def test_scatter_gather_correct_across_the_cut():
    rng = np.random.default_rng(5)
    values = np.arange(KEYS.size, dtype=np.int64)
    with TcpCluster(KEYS, values, backends=2, n_shards=1) as fleet:
        async def scenario():
            async with fleet.router(health_interval=0) as router:
                # A shuffled batch spanning both backends comes back in
                # caller order.
                idx = rng.permutation(KEYS.size)[:512]
                out = await router.get_batch(KEYS[idx])
                assert np.array_equal(out, values[idx])
                # A range straddling the cut is stitched sorted.
                cut = float(fleet.cuts[0])
                pos = int(np.searchsorted(KEYS, cut))
                lo, hi = KEYS[pos - 20], KEYS[pos + 20]
                k, v = await router.range(lo, hi)
                assert k.size == 41
                assert np.all(np.diff(k) > 0)
                pairs = await router.range_batch(
                    [[KEYS[0], KEYS[30]], [lo, hi]]
                )
                assert [p[0].size for p in pairs] == [31, 41]

        run(scenario())
