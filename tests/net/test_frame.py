"""Wire framing: round trips, codec fallbacks, corruption detection."""

import asyncio
import struct
import zlib

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError, KeyNotFoundError
from repro.net import frame as wire
from repro.net.errors import FrameCorruptError, FrameError, RemoteError
from repro.serve.server import ServerClosedError


def _roundtrip(buf):
    """Decode one encoded frame the way the stream reader would."""
    magic, body_len, crc = wire._PREFIX.unpack(buf[: wire._PREFIX.size])
    assert magic == 0xF17E
    body = buf[wire._PREFIX.size:]
    assert len(body) == body_len
    assert zlib.crc32(body) == crc
    return wire.decode_frame(body)


def test_json_meta_roundtrip():
    buf = wire.encode_frame(wire.OP_PING, 7, meta={"a": 1, "b": "x"})
    f = _roundtrip(buf)
    assert (f.kind, f.request_id) == (wire.OP_PING, 7)
    assert f.meta == {"a": 1, "b": "x"}
    assert f.arrays == []
    assert f.codec == wire.CODEC_JSON


def test_array_payload_roundtrip_multiple_dtypes():
    arrays = [
        np.arange(100, dtype=np.float64),
        np.arange(5, dtype=np.int64) * -3,
        np.array([1.5, 2.5], dtype=np.float32),
    ]
    buf = wire.encode_frame(
        wire.OP_GET_BATCH, 9, meta={"n": 3}, arrays=arrays
    )
    f = _roundtrip(buf)
    assert f.codec == wire.CODEC_ARRAYS
    assert f.meta == {"n": 3}
    assert len(f.arrays) == 3
    for sent, got in zip(arrays, f.arrays):
        assert got.dtype == sent.dtype
        assert np.array_equal(got, sent)
        assert not got.flags.writeable  # zero-copy view over the body


def test_object_arrays_fall_back_to_pickle():
    arr = np.array([None, "x", 3], dtype=object)
    buf = wire.encode_frame(wire.REPLY_OK, 1, arrays=[arr])
    f = _roundtrip(buf)
    assert f.codec == wire.CODEC_PICKLE
    assert list(f.arrays[0]) == [None, "x", 3]


def test_unjsonable_meta_falls_back_to_pickle():
    meta = {"v": {1, 2, 3}}  # sets are not JSON
    buf = wire.encode_frame(wire.REPLY_OK, 1, meta=meta)
    f = _roundtrip(buf)
    assert f.codec == wire.CODEC_PICKLE
    assert f.meta == meta


def test_bad_version_rejected():
    buf = wire.encode_frame(wire.OP_PING, 1)
    body = bytearray(buf[wire._PREFIX.size:])
    body[0] = 99  # version byte
    with pytest.raises(FrameError, match="version"):
        wire.decode_frame(bytes(body))


async def _read_from(buf, **kw):
    reader = asyncio.StreamReader()
    reader.feed_data(buf)
    reader.feed_eof()
    return await wire.read_frame(reader, **kw)


def test_read_frame_crc_mismatch_is_recoverable():
    buf = bytearray(wire.encode_frame(wire.OP_PING, 3))
    buf[-1] ^= 0xFF  # flip one payload bit: CRC must catch it

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(bytes(buf))
        # A clean frame right behind the corrupt one must still decode:
        # CRC failure consumes exactly one frame, not the stream.
        reader.feed_data(wire.encode_frame(wire.OP_PING, 4))
        reader.feed_eof()
        with pytest.raises(FrameCorruptError):
            await wire.read_frame(reader)
        nxt = await wire.read_frame(reader)
        assert nxt.request_id == 4

    asyncio.run(scenario())


def test_read_frame_bad_magic_is_fatal():
    buf = b"\x00\x00" + wire.encode_frame(wire.OP_PING, 3)[2:]
    with pytest.raises(FrameError, match="magic"):
        asyncio.run(_read_from(buf))


def test_read_frame_rejects_oversized_body():
    buf = wire.encode_frame(
        wire.OP_GET_BATCH, 1, arrays=[np.zeros(4096)]
    )
    with pytest.raises(FrameError, match="length"):
        asyncio.run(_read_from(buf, max_bytes=1024))


def test_read_frame_eof_mid_frame():
    buf = wire.encode_frame(wire.OP_PING, 3)
    with pytest.raises(asyncio.IncompleteReadError):
        asyncio.run(_read_from(buf[: len(buf) - 2]))


def test_read_frame_records_wire_bytes():
    buf = wire.encode_frame(wire.OP_PING, 3)
    f = asyncio.run(_read_from(buf))
    assert f.wire_bytes == len(buf)


@pytest.mark.parametrize(
    "value",
    [
        None,
        42,
        1.5,
        "hello",
        np.arange(10, dtype=np.int64),
        (np.arange(4.0), np.arange(4, dtype=np.int64)),
        [
            (np.arange(3.0), np.arange(3, dtype=np.int64)),
            (np.array([]), np.array([], dtype=np.int64)),
        ],
        {"backend": "sharded", "n": 3},
    ],
)
def test_result_shapes_roundtrip(value):
    meta, arrays = wire.encode_result(value)
    buf = wire.encode_frame(wire.REPLY_OK, 1, meta=meta, arrays=arrays)
    got = wire.decode_result(_roundtrip(buf))
    if isinstance(value, np.ndarray):
        assert np.array_equal(got, value)
    elif isinstance(value, tuple):
        assert np.array_equal(got[0], value[0])
        assert np.array_equal(got[1], value[1])
    elif isinstance(value, list):
        assert len(got) == len(value)
        for (gk, gv), (vk, vv) in zip(got, value):
            assert np.array_equal(gk, vk)
            assert np.array_equal(gv, vv)
    else:
        assert got == value


@pytest.mark.parametrize(
    "exc",
    [
        KeyNotFoundError("key 3.5 not found"),
        InvalidParameterError("bad param"),
        ServerClosedError("server is closed"),
    ],
)
def test_typed_errors_reconstruct(exc):
    buf = wire.encode_error(5, exc)
    f = _roundtrip(buf)
    assert f.kind == wire.REPLY_ERR
    remote = wire.decode_error(f)
    assert type(remote) is type(exc)
    assert str(exc) in str(remote)


def test_unknown_error_type_becomes_remote_error():
    class WeirdError(Exception):
        pass

    remote = wire.decode_error(_roundtrip(wire.encode_error(1, WeirdError("boom"))))
    assert isinstance(remote, RemoteError)
    assert remote.remote_type == "WeirdError"
    assert "boom" in str(remote)


def test_worker_errors_carry_attrs():
    from repro.cluster.errors import WorkerCrashedError

    exc = WorkerCrashedError(shard=2, exitcode=-9)
    remote = wire.decode_error(_roundtrip(wire.encode_error(1, exc)))
    assert isinstance(remote, WorkerCrashedError)
    assert remote.shard == 2
    assert remote.exitcode == -9
