"""Atomic manifest tying a snapshot generation to its WAL file.

The manifest is the single source of truth for recovery: it names the
current generation's per-shard snapshot files and the WAL file whose
committed tail must be replayed on top of them. It is replaced atomically
(temp file + ``fsync`` + ``os.replace``) and only *after* the new
generation's snapshot and WAL files are safely on disk — so a crash at
any point during a snapshot rotation leaves either the old manifest
(old snapshot + old WAL, both intact) or the new one (likewise intact),
never a mix.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

#: Manifest file name inside a durability directory.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest schema version.
MANIFEST_VERSION = 1


def manifest_path(root: str) -> str:
    """Path of the manifest file under durability directory ``root``."""
    return os.path.join(root, MANIFEST_NAME)


def load_manifest(root: str) -> Optional[Dict[str, Any]]:
    """Read the manifest under ``root``, or ``None`` when absent.

    Returns
    -------
    dict or None
        The parsed manifest dict, or ``None`` if no manifest exists
        (a fresh, never-initialized durability directory).
    """
    path = manifest_path(root)
    if not os.path.exists(path):
        return None
    with open(path, "r") as fh:
        return json.load(fh)


def write_manifest(root: str, manifest: Dict[str, Any]) -> None:
    """Atomically replace the manifest under ``root``.

    Writes to a temp file in the same directory, ``fsync``\\ s it,
    ``os.replace``\\ s it over the manifest name, then ``fsync``\\ s the
    directory so the rename itself is durable.
    """
    path = manifest_path(root)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=2)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(root, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
