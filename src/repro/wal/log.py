"""Append-only WAL file writer and committed-prefix reader.

:class:`WalWriter` implements group commit: data records accumulate in a
process-local buffer and :meth:`WalWriter.commit` flushes them plus one
``OP_COMMIT`` seal with a *single* ``write`` + ``fsync``. Engines call
``commit`` once per batch verb, and the serve layer's write fence already
coalesces queued mutations into one engine batch per micro-batch — so
durability costs one fsync per micro-batch, not one per request.

:func:`read_committed` is the recovery-side inverse: it returns only the
records sealed by a trailing commit, tolerating any torn tail the crash
left behind (see :mod:`repro.wal.format` for the exact rules).
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.wal import format as wf
from repro.wal.format import WalRecord


class WalWriter:
    """Buffered append writer over one WAL file.

    Parameters
    ----------
    path : str
        File to append to. Created (with a file header) if missing or
        empty; otherwise records continue after the existing contents.
    start_lsn : int
        LSN assigned to the next appended record.
    sync : bool
        When True (default) every :meth:`commit` ends with ``fsync``;
        False trades crash durability for speed (tests, benchmarks).
    """

    def __init__(self, path: str, *, start_lsn: int = 0, sync: bool = True):
        self.path = path
        self._sync = bool(sync)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._fh = open(path, "ab")
        if fresh:
            self._fh.write(wf.file_header())
            self._fh.flush()
            if self._sync:
                os.fsync(self._fh.fileno())
        self._lsn = int(start_lsn)
        self._pending: List[bytes] = []
        self.records = 0
        self.commits = 0
        self.fsyncs = 0
        self.bytes_written = self._fh.tell()

    @property
    def next_lsn(self) -> int:
        """LSN the next appended record will carry."""
        return self._lsn

    @property
    def pending(self) -> int:
        """Number of buffered records awaiting the next commit."""
        return len(self._pending)

    def _append(self, encoded: bytes) -> int:
        lsn = self._lsn
        self._pending.append(encoded)
        self._lsn += 1
        self.records += 1
        return lsn

    def append_insert(self, shard: int, keys: np.ndarray, values: Any) -> int:
        """Buffer an insert record; returns its LSN."""
        return self._append(wf.encode_insert(self._lsn, shard, keys, values))

    def append_delete(self, shard: int, keys: np.ndarray, missing: str) -> int:
        """Buffer a delete record; returns its LSN."""
        return self._append(wf.encode_delete(self._lsn, shard, keys, missing))

    def append_delete_value(self, shard: int, key: float, value: Any) -> int:
        """Buffer a delete-value record; returns its LSN."""
        return self._append(wf.encode_delete_value(self._lsn, shard, key, value))

    def commit(self, next_rowid: int) -> bool:
        """Seal and persist every buffered record (group commit).

        Writes the buffered records plus one ``OP_COMMIT`` with a single
        ``write`` call, then ``flush`` + ``fsync`` (when ``sync``). A
        no-op returning False when nothing is buffered, so callers may
        commit unconditionally in a ``finally`` block.

        Parameters
        ----------
        next_rowid : int
            Engine rowid watermark recorded in the commit, restored on
            recovery so auto-assigned rowids never repeat.
        """
        if not self._pending:
            return False
        commit = wf.encode_commit(self._lsn, next_rowid)
        self._lsn += 1
        blob = b"".join(self._pending) + commit
        self._pending.clear()
        self._fh.write(blob)
        self._fh.flush()
        if self._sync:
            os.fsync(self._fh.fileno())
            self.fsyncs += 1
        self.commits += 1
        self.bytes_written += len(blob)
        return True

    def discard_pending(self) -> int:
        """Drop buffered-but-uncommitted records; returns how many."""
        n = len(self._pending)
        self._pending.clear()
        return n

    def close(self) -> None:
        """Close the underlying file (pending records are discarded)."""
        self._pending.clear()
        if not self._fh.closed:
            self._fh.close()


def read_committed(path: str) -> Tuple[List[WalRecord], Optional[int], int, int]:
    """Read the committed prefix of a WAL file.

    Parameters
    ----------
    path : str
        WAL file to scan.

    Returns
    -------
    tuple
        ``(ops, next_rowid, next_lsn, committed_end)`` where ``ops`` are
        the data records sealed by a commit (commit records themselves
        are folded into ``next_rowid``), ``next_rowid`` is the watermark
        from the last commit (``None`` if no commit exists), ``next_lsn``
        continues the sequence after the last committed record, and
        ``committed_end`` is the byte offset of the committed prefix —
        the truncation point that discards any torn or unsealed tail.
    """
    with open(path, "rb") as fh:
        buf = fh.read()
    ops: List[WalRecord] = []
    group: List[WalRecord] = []
    next_rowid: Optional[int] = None
    next_lsn = 0
    committed_end = wf.FILE_HEADER.size
    for rec, end in wf.iter_records(buf):
        if rec.op == wf.OP_COMMIT:
            ops.extend(group)
            group = []
            next_rowid = rec.next_rowid
            next_lsn = rec.lsn + 1
            committed_end = end
        else:
            group.append(rec)
    return ops, next_rowid, next_lsn, committed_end
