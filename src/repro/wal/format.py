"""Binary record codec for the write-ahead log.

On-disk layout (little-endian throughout)::

    file   := file_header record*
    file_header := magic:8s  version:u32  reserved:u32          (16 bytes)
    record := header payload
    header := crc:u32  length:u32  lsn:u64  op:u8  flags:u8  shard:i16
                                                              (20 bytes)

``crc`` is ``zlib.crc32`` over the header *tail* (everything after the
crc field) concatenated with the payload, so a single flipped bit in
either region invalidates the record. ``length`` is the payload byte
count; ``lsn`` is a monotonically increasing log sequence number; ``op``
selects the payload schema below; ``shard`` is the target shard id (or
``-1`` for engine-scoped records such as commits).

Payload schemas per op:

* ``OP_INSERT`` — ``n:u32  dlen:u8  dtype:ascii[dlen]  keys:f64[n]
  values:dtype[n]``
* ``OP_DELETE`` — ``n:u32  keys:f64[n]`` with header flag bit 0 set when
  ``missing="ignore"``
* ``OP_DELETE_VALUE`` — ``dlen:u8  dtype:ascii[dlen]  key:f64
  value:dtype[1]``
* ``OP_COMMIT`` — ``next_rowid:i64``; a commit seals every record that
  precedes it since the previous commit (the group-commit boundary).

Readers treat the file as valid up to the last record whose CRC checks
out; a torn tail (partial header, short payload, or CRC mismatch) simply
ends the log. Only records covered by a trailing ``OP_COMMIT`` are ever
replayed, so a crash between the data write and the commit write cannot
surface a half-applied batch.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError

#: Magic bytes opening every WAL file.
MAGIC = b"RWAL\x00\x01\x00\x00"

#: On-disk format version stamped into the file header.
FORMAT_VERSION = 1

#: File header: magic, version, reserved.
FILE_HEADER = struct.Struct("<8sII")

#: Record header: crc, payload length, lsn, op, flags, shard.
RECORD_HEADER = struct.Struct("<IIQBBh")

OP_INSERT = 1
OP_DELETE = 2
OP_DELETE_VALUE = 3
OP_COMMIT = 4

#: Header flag bit set on ``OP_DELETE`` records when ``missing="ignore"``.
FLAG_MISSING_IGNORE = 0x01

_U32 = struct.Struct("<I")
_U8 = struct.Struct("<B")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


@dataclass
class WalRecord:
    """One decoded log record.

    Returns
    -------
    WalRecord
        ``lsn``/``op``/``shard`` mirror the header; ``keys``/``values``
        are numpy arrays for data ops (``values`` / ``missing`` /
        ``next_rowid`` are populated per the op's schema and ``None``
        otherwise).
    """

    lsn: int
    op: int
    shard: int
    keys: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None
    missing: str = "raise"
    next_rowid: Optional[int] = None


def _coerce_values(values: Any) -> np.ndarray:
    """Validate and contiguify a value payload (numeric/bool dtypes only)."""
    arr = np.ascontiguousarray(values)
    if arr.dtype == object or arr.dtype.hasobject:
        raise InvalidParameterError(
            "durability requires a fixed-width numeric values dtype; "
            "object payloads cannot be logged"
        )
    return arr


def _pack(op: int, shard: int, lsn: int, payload: bytes, flags: int = 0) -> bytes:
    tail = struct.pack("<IQBBh", len(payload), lsn, op, flags, shard)
    crc = zlib.crc32(tail + payload) & 0xFFFFFFFF
    return _U32.pack(crc) + tail + payload


def encode_insert(lsn: int, shard: int, keys: np.ndarray, values: Any) -> bytes:
    """Encode an ``OP_INSERT`` record for ``(keys, values)`` on ``shard``."""
    k = np.ascontiguousarray(keys, dtype=np.float64)
    v = _coerce_values(values)
    dt = v.dtype.str.encode("ascii")
    payload = (
        _U32.pack(k.size) + _U8.pack(len(dt)) + dt + k.tobytes() + v.tobytes()
    )
    return _pack(OP_INSERT, shard, lsn, payload)


def encode_delete(lsn: int, shard: int, keys: np.ndarray, missing: str) -> bytes:
    """Encode an ``OP_DELETE`` record; ``missing`` rides a header flag."""
    k = np.ascontiguousarray(keys, dtype=np.float64)
    flags = FLAG_MISSING_IGNORE if missing == "ignore" else 0
    payload = _U32.pack(k.size) + k.tobytes()
    return _pack(OP_DELETE, shard, lsn, payload, flags=flags)


def encode_delete_value(lsn: int, shard: int, key: float, value: Any) -> bytes:
    """Encode an ``OP_DELETE_VALUE`` record for one ``(key, value)`` pair."""
    v = _coerce_values(np.asarray([value]))
    dt = v.dtype.str.encode("ascii")
    payload = _U8.pack(len(dt)) + dt + _F64.pack(float(key)) + v.tobytes()
    return _pack(OP_DELETE_VALUE, shard, lsn, payload)


def encode_commit(lsn: int, next_rowid: int) -> bytes:
    """Encode an ``OP_COMMIT`` record sealing the records before it."""
    return _pack(OP_COMMIT, -1, lsn, _I64.pack(int(next_rowid)))


def decode_record(header: bytes, payload: bytes) -> WalRecord:
    """Decode one record whose CRC has already been verified."""
    _, _, lsn, op, flags, shard = RECORD_HEADER.unpack(header)
    if op == OP_INSERT:
        (n,) = _U32.unpack_from(payload, 0)
        (dlen,) = _U8.unpack_from(payload, 4)
        dtype = np.dtype(payload[5 : 5 + dlen].decode("ascii"))
        off = 5 + dlen
        keys = np.frombuffer(payload, dtype=np.float64, count=n, offset=off)
        off += 8 * n
        values = np.frombuffer(payload, dtype=dtype, count=n, offset=off)
        return WalRecord(lsn, op, shard, keys=keys.copy(), values=values.copy())
    if op == OP_DELETE:
        (n,) = _U32.unpack_from(payload, 0)
        keys = np.frombuffer(payload, dtype=np.float64, count=n, offset=4)
        missing = "ignore" if flags & FLAG_MISSING_IGNORE else "raise"
        return WalRecord(lsn, op, shard, keys=keys.copy(), missing=missing)
    if op == OP_DELETE_VALUE:
        (dlen,) = _U8.unpack_from(payload, 0)
        dtype = np.dtype(payload[1 : 1 + dlen].decode("ascii"))
        off = 1 + dlen
        (key,) = _F64.unpack_from(payload, off)
        values = np.frombuffer(payload, dtype=dtype, count=1, offset=off + 8)
        return WalRecord(
            lsn, op, shard, keys=np.asarray([key]), values=values.copy()
        )
    if op == OP_COMMIT:
        (next_rowid,) = _I64.unpack(payload)
        return WalRecord(lsn, op, shard, next_rowid=next_rowid)
    raise InvalidParameterError(f"unknown WAL op {op}")


def file_header() -> bytes:
    """The 16-byte header every WAL file starts with."""
    return FILE_HEADER.pack(MAGIC, FORMAT_VERSION, 0)


def check_file_header(buf: bytes) -> None:
    """Validate a WAL file header, raising ``InvalidParameterError`` if bad."""
    if len(buf) < FILE_HEADER.size:
        raise InvalidParameterError("WAL file too short for header")
    magic, version, _ = FILE_HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise InvalidParameterError("not a WAL file (bad magic)")
    if version != FORMAT_VERSION:
        raise InvalidParameterError(
            f"unsupported WAL format version {version}"
        )


def iter_records(buf: bytes):
    """Yield ``(record, end_offset)`` for every intact record in ``buf``.

    Iteration stops silently at the first truncated or corrupt record —
    that is the torn tail a crash may legitimately leave behind.
    ``end_offset`` is the byte offset just past the yielded record.
    """
    check_file_header(buf)
    off = FILE_HEADER.size
    hsize = RECORD_HEADER.size
    while off + hsize <= len(buf):
        header = buf[off : off + hsize]
        crc, length = struct.unpack_from("<II", header, 0)
        end = off + hsize + length
        if end > len(buf):
            return
        payload = buf[off + hsize : end]
        if zlib.crc32(header[4:] + payload) & 0xFFFFFFFF != crc:
            return
        yield decode_record(header, payload), end
        off = end


def scan_records(buf: bytes) -> Tuple[List[WalRecord], int]:
    """Decode every intact record in ``buf`` (past the file header).

    Parameters
    ----------
    buf : bytes
        Full contents of a WAL file, including the file header.

    Returns
    -------
    tuple of (list of WalRecord, int)
        The records whose CRCs verify, in log order, and the byte offset
        just past the last intact record.
    """
    records: List[WalRecord] = []
    off = FILE_HEADER.size
    for rec, end in iter_records(buf):
        records.append(rec)
        off = end
    return records, off
