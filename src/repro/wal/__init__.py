"""Crash-safe durability: write-ahead log, snapshots, and recovery.

The package follows the classic log-then-absorb design that FITing-Tree's
delta buffers make natural: every mutation is encoded as a CRC32-checked
binary record (:mod:`repro.wal.format`), group-committed with one fsync
per engine batch verb (:mod:`repro.wal.log`), and periodically absorbed
into per-shard ``.npz`` snapshots tied together by an atomic manifest
(:mod:`repro.wal.manifest`). :class:`repro.wal.store.WalStore` owns the
whole lifecycle for one durability directory; recovery is "load the
manifest's snapshots, replay the committed WAL tail".

Engines opt in via ``EngineConfig(durability=..., data_dir=...)`` /
``open_engine`` — see :mod:`repro.api.factory`.
"""

from repro.wal.format import (
    OP_COMMIT,
    OP_DELETE,
    OP_DELETE_VALUE,
    OP_INSERT,
    WalRecord,
)
from repro.wal.log import WalWriter, read_committed
from repro.wal.manifest import load_manifest, manifest_path, write_manifest
from repro.wal.store import (
    DEFAULT_SNAPSHOT_INTERVAL_BYTES,
    DURABILITY_MODES,
    RecoveredState,
    WalStore,
    replay_ops,
)

__all__ = [
    "DEFAULT_SNAPSHOT_INTERVAL_BYTES",
    "DURABILITY_MODES",
    "OP_COMMIT",
    "OP_DELETE",
    "OP_DELETE_VALUE",
    "OP_INSERT",
    "RecoveredState",
    "WalRecord",
    "WalStore",
    "WalWriter",
    "load_manifest",
    "manifest_path",
    "read_committed",
    "replay_ops",
    "write_manifest",
]
