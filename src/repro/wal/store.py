"""Durability store: snapshot generations + WAL lifecycle for one engine.

A :class:`WalStore` owns one durability directory::

    MANIFEST.json            # atomic pointer to the current generation
    wal-000001.log           # WAL for generation 1
    shard-000001-000.npz     # per-shard snapshot, generation 1
    shard-000001-001.npz
    ...

Recovery = load the manifest's snapshots + replay the committed tail of
its WAL file. Snapshot rotation writes the *new* generation's files
first (snapshots ``fsync``\\ ed, fresh WAL created), flips the manifest
atomically last, then best-effort deletes the old generation — so a
crash at any point recovers from a complete generation.

The store also keeps the committed tail *in memory* (when asked to via
:meth:`WalStore.set_retain_tail`): the cluster engine replays it into a
freshly respawned worker to restore a crashed shard without touching
disk, and excludes the in-flight record's LSN when the crashed round
itself will be re-sent.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.errors import InvalidParameterError, KeyNotFoundError
from repro.core.serialize import load_state, save_state
from repro.wal import format as wf
from repro.wal.format import WalRecord
from repro.wal.log import WalWriter, read_committed
from repro.wal.manifest import (
    MANIFEST_VERSION,
    load_manifest,
    manifest_path,
    write_manifest,
)

#: Durability modes accepted by :class:`WalStore` and ``EngineConfig``.
DURABILITY_MODES = ("off", "wal", "wal+snapshot")

#: Default WAL growth (bytes) that triggers a snapshot rotation in
#: ``wal+snapshot`` mode.
DEFAULT_SNAPSHOT_INTERVAL_BYTES = 4 << 20


@dataclass
class RecoveredState:
    """What :meth:`WalStore.recover` hands back to the engine factory.

    Returns
    -------
    RecoveredState
        ``states`` is the snapshot-generation engine state (the
        ``engine_to_states`` shape: cuts, auto_rowid, next_rowid, one
        ``to_state`` dict per shard); ``ops`` is the committed WAL tail
        to replay on top; ``next_rowid`` is the post-replay rowid
        watermark from the last commit record (or the manifest when the
        tail is empty).
    """

    states: Dict[str, Any]
    ops: List[WalRecord] = field(default_factory=list)
    next_rowid: int = 0


class _SnapshotJob:
    """One in-flight background snapshot: capture point + worker thread.

    Captured at a safe point (no uncommitted records buffered):
    ``start_lsn`` is the first LSN *not* covered by the snapshot states
    and ``copy_from`` the WAL byte offset of that same point, so
    finalization can byte-copy exactly the records logged while the
    thread was serializing.
    """

    __slots__ = (
        "generation", "start_lsn", "copy_from", "meta", "snaps", "thread",
        "error",
    )

    def __init__(self, generation: int, start_lsn: int, copy_from: int,
                 meta: Dict[str, Any]):
        self.generation = generation
        self.start_lsn = start_lsn
        self.copy_from = copy_from
        self.meta = meta
        self.snaps: List[str] = []
        self.thread: Optional[threading.Thread] = None
        self.error: Optional[BaseException] = None


class _ShardSink:
    """Per-shard logging facade handed to ``PagedIndexBase.wal_sink``."""

    __slots__ = ("_store", "_sid")

    def __init__(self, store: "WalStore", sid: int):
        self._store = store
        self._sid = sid

    def log_insert(self, keys: np.ndarray, values: Any) -> int:
        """Log an insert against this sink's shard; returns the LSN."""
        return self._store.log_insert(self._sid, keys, values)

    def log_delete(self, keys: np.ndarray, missing: str) -> int:
        """Log a delete against this sink's shard; returns the LSN."""
        return self._store.log_delete(self._sid, keys, missing)

    def log_delete_value(self, key: float, value: Any) -> int:
        """Log a delete-value against this sink's shard; returns the LSN."""
        return self._store.log_delete_value(self._sid, key, value)


class WalStore:
    """Write-ahead log + snapshot lifecycle over one directory.

    Parameters
    ----------
    root : str
        Durability directory (created if missing).
    durability : str
        ``"wal"`` (log only, snapshot on demand) or ``"wal+snapshot"``
        (rotate a fresh snapshot generation whenever the WAL outgrows
        ``snapshot_interval_bytes``). ``"off"`` is rejected — an engine
        with durability off simply has no store.
    snapshot_interval_bytes : int
        WAL size that arms :meth:`maybe_snapshot` in ``wal+snapshot``
        mode.
    sync : bool
        Fsync on every commit/snapshot (default). Disable only for
        tests and benchmarks.
    background_snapshots : bool
        When True (``"wal+snapshot"`` only), :meth:`maybe_snapshot`
        captures engine states inline (a cheap array copy) but moves the
        expensive part of rotation — serializing and fsyncing every
        shard snapshot — onto a background thread. The generation flip
        happens at the *next* safe point after the thread finishes: the
        committed WAL records logged while it ran are byte-copied into
        the new generation's WAL before the manifest flips, so no
        acknowledged write is ever outside the current generation. A
        crash at any point before the flip recovers from the old
        (complete) generation.
    """

    def __init__(
        self,
        root: str,
        *,
        durability: str = "wal",
        snapshot_interval_bytes: int = DEFAULT_SNAPSHOT_INTERVAL_BYTES,
        sync: bool = True,
        background_snapshots: bool = False,
    ):
        if durability not in ("wal", "wal+snapshot"):
            raise InvalidParameterError(
                f"durability must be 'wal' or 'wal+snapshot', got "
                f"{durability!r}"
            )
        if snapshot_interval_bytes <= 0:
            raise InvalidParameterError(
                "snapshot_interval_bytes must be positive"
            )
        self.root = root
        self.durability = durability
        self._interval = int(snapshot_interval_bytes)
        self._sync = bool(sync)
        os.makedirs(root, exist_ok=True)
        self._writer: Optional[WalWriter] = None
        self._manifest: Optional[Dict[str, Any]] = None
        self._generation = 0
        self._retain_tail = False
        self._tail: List[WalRecord] = []
        self._pending_records: List[WalRecord] = []
        self._state_provider: Optional[Callable[[], Dict[str, Any]]] = None
        self.snapshots_taken = 0
        self.background = bool(background_snapshots)
        self._bg_job: Optional[_SnapshotJob] = None

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def exists(self) -> bool:
        """True when the directory already holds an initialized manifest."""
        return os.path.exists(manifest_path(self.root))

    @property
    def generation(self) -> int:
        """Current snapshot generation (0 before initialize/recover)."""
        return self._generation

    def initialize(self, states: Dict[str, Any]) -> None:
        """Write generation 1 (snapshots + empty WAL + manifest).

        Parameters
        ----------
        states:
            Engine state in the ``engine_to_states`` shape.
        """
        if self.exists:
            raise InvalidParameterError(
                f"durability directory {self.root!r} is already initialized"
            )
        self._write_generation(states, generation=1, start_lsn=0)

    def recover(self) -> RecoveredState:
        """Load the current generation and its committed WAL tail.

        Truncates any torn (uncommitted) WAL tail in place so subsequent
        appends extend the committed prefix, then reopens the writer.

        Returns
        -------
        RecoveredState
            Snapshot states + committed tail ops + rowid watermark.
        """
        manifest = load_manifest(self.root)
        if manifest is None:
            raise InvalidParameterError(
                f"no manifest in durability directory {self.root!r}"
            )
        states = {
            "cuts": np.asarray(manifest["cuts"], dtype=np.float64),
            "auto_rowid": bool(manifest["auto_rowid"]),
            "next_rowid": int(manifest["next_rowid"]),
            "shards": [
                load_state(os.path.join(self.root, name))
                for name in manifest["snapshots"]
            ],
        }
        wal_path = os.path.join(self.root, manifest["wal"])
        ops, next_rowid, next_lsn, committed_end = read_committed(wal_path)
        if next_rowid is None:
            next_rowid = int(manifest["next_rowid"])
            next_lsn = int(manifest["start_lsn"])
        if os.path.getsize(wal_path) > committed_end:
            with open(wal_path, "r+b") as fh:
                fh.truncate(committed_end)
                fh.flush()
                if self._sync:
                    os.fsync(fh.fileno())
        self._manifest = manifest
        self._generation = int(manifest["generation"])
        if self._writer is not None:
            self._writer.close()
        self._writer = WalWriter(wal_path, start_lsn=next_lsn, sync=self._sync)
        self._tail = list(ops)
        self._pending_records = []
        return RecoveredState(states=states, ops=ops, next_rowid=next_rowid)

    def bind(self, state_provider: Callable[[], Dict[str, Any]]) -> None:
        """Register the callable that produces snapshot states on demand."""
        self._state_provider = state_provider

    def set_retain_tail(self, flag: bool) -> None:
        """Keep (or drop) the committed tail in memory for worker restores."""
        self._retain_tail = bool(flag)
        if not flag:
            self._tail = []

    def sink(self, sid: int) -> _ShardSink:
        """A per-shard logging facade bound to shard ``sid``."""
        return _ShardSink(self, sid)

    def close(self) -> None:
        """Close the WAL writer (discarding any uncommitted records).

        A finished background snapshot job is finalized first (its work
        is already on disk — flipping the manifest is cheap and makes the
        next recovery replay a shorter tail); an unfinished or failed one
        is discarded, leaving the old generation authoritative.
        """
        if self._bg_job is not None:
            job = self._bg_job
            if job.thread is not None:
                job.thread.join()
            self._bg_job = None
            if (
                job.error is None
                and self._writer is not None
                and not self._writer.pending
            ):
                self._finalize_job(job)
            else:
                self._discard_job_files(job)
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # ------------------------------------------------------------------
    # logging

    def _require_writer(self) -> WalWriter:
        if self._writer is None:
            raise InvalidParameterError(
                "WalStore is not open; call initialize() or recover() first"
            )
        return self._writer

    def log_insert(self, sid: int, keys: np.ndarray, values: Any) -> int:
        """Buffer an insert record for shard ``sid``; returns its LSN."""
        writer = self._require_writer()
        lsn = writer.append_insert(sid, keys, values)
        if self._retain_tail:
            self._pending_records.append(
                WalRecord(
                    lsn,
                    wf.OP_INSERT,
                    sid,
                    keys=np.ascontiguousarray(keys, dtype=np.float64),
                    values=np.ascontiguousarray(values),
                )
            )
        return lsn

    def log_delete(self, sid: int, keys: np.ndarray, missing: str) -> int:
        """Buffer a delete record for shard ``sid``; returns its LSN."""
        writer = self._require_writer()
        lsn = writer.append_delete(sid, keys, missing)
        if self._retain_tail:
            self._pending_records.append(
                WalRecord(
                    lsn,
                    wf.OP_DELETE,
                    sid,
                    keys=np.ascontiguousarray(keys, dtype=np.float64),
                    missing=missing,
                )
            )
        return lsn

    def log_delete_value(self, sid: int, key: float, value: Any) -> int:
        """Buffer a delete-value record for shard ``sid``; returns its LSN."""
        writer = self._require_writer()
        lsn = writer.append_delete_value(sid, key, value)
        if self._retain_tail:
            self._pending_records.append(
                WalRecord(
                    lsn,
                    wf.OP_DELETE_VALUE,
                    sid,
                    keys=np.asarray([float(key)]),
                    values=np.asarray([value]),
                )
            )
        return lsn

    def commit(self, next_rowid: int) -> bool:
        """Group-commit all buffered records with one write + fsync.

        No-op (returns False) when nothing is buffered, so engines call
        it unconditionally in a ``finally`` block.
        """
        writer = self._require_writer()
        wrote = writer.commit(int(next_rowid))
        if wrote and self._retain_tail:
            self._tail.extend(self._pending_records)
        self._pending_records = []
        return wrote

    def discard_pending(self) -> int:
        """Drop buffered-but-uncommitted records; returns how many."""
        self._pending_records = []
        if self._writer is None:
            return 0
        return self._writer.discard_pending()

    def tail_ops(
        self, sid: int, *, skip_lsn: Optional[int] = None
    ) -> List[WalRecord]:
        """Committed tail records for shard ``sid``, oldest first.

        Parameters
        ----------
        sid:
            Shard id to filter on.
        skip_lsn:
            Exclude the record with this LSN — the in-flight record of a
            crashed round that the caller will re-send itself.

        Returns
        -------
        list of WalRecord
            The records to replay into a restored worker.
        """
        return [
            r
            for r in self._tail
            if r.shard == sid and (skip_lsn is None or r.lsn != skip_lsn)
        ]

    # ------------------------------------------------------------------
    # snapshots

    def load_shard_state(self, sid: int) -> Dict[str, Any]:
        """Load shard ``sid``'s snapshot state from the current generation."""
        if self._manifest is None:
            raise InvalidParameterError("WalStore has no loaded manifest")
        name = self._manifest["snapshots"][sid]
        return load_state(os.path.join(self.root, name))

    def maybe_snapshot(self) -> bool:
        """Rotate a snapshot if the WAL outgrew the configured interval.

        Only armed in ``wal+snapshot`` mode, with a bound state provider
        and no uncommitted records buffered. Returns True when a
        rotation happened (with ``background_snapshots``, when one was
        *finalized* — starting the thread returns False, since the
        generation has not flipped yet).
        """
        if (
            self.durability != "wal+snapshot"
            or self._state_provider is None
            or self._writer is None
            or self._writer.pending
        ):
            return False
        if self.background:
            return self._bg_step()
        if self._writer.bytes_written < self._interval:
            return False
        self.snapshot()
        return True

    def _bg_step(self) -> bool:
        """One safe-point decision for the background-snapshot lifecycle:
        finalize a finished job, keep waiting on a live one, or start a
        new one when the WAL has outgrown the interval."""
        job = self._bg_job
        if job is not None:
            if job.thread is not None and job.thread.is_alive():
                return False
            self._bg_job = None
            if job.error is not None:
                self._discard_job_files(job)
                raise job.error
            self._finalize_job(job)
            return True
        if self._writer.bytes_written < self._interval:
            return False
        self._start_job()
        return False

    def _start_job(self) -> None:
        """Capture a safe point and serialize its snapshots off-thread."""
        states = self._state_provider()
        job = _SnapshotJob(
            generation=self._generation + 1,
            start_lsn=self._writer.next_lsn,
            copy_from=self._writer.bytes_written,
            meta={
                "cuts": [float(c) for c in states["cuts"]],
                "auto_rowid": bool(states["auto_rowid"]),
                "next_rowid": int(states["next_rowid"]),
            },
        )

        def work() -> None:
            try:
                for sid, shard_state in enumerate(states["shards"]):
                    name = f"shard-{job.generation:06d}-{sid:03d}.npz"
                    save_state(
                        shard_state,
                        os.path.join(self.root, name),
                        sync=self._sync,
                    )
                    job.snaps.append(name)
            except BaseException as exc:  # surfaced at the next safe point
                job.error = exc

        job.thread = threading.Thread(
            target=work, name="repro-wal-snapshot", daemon=True
        )
        job.thread.start()
        self._bg_job = job

    def _finalize_job(self, job: _SnapshotJob) -> None:
        """Flip to the background-written generation at a safe point.

        The snapshot covers state up to ``job.start_lsn``; everything
        committed since lives in the old WAL at bytes
        ``[job.copy_from:]``. WAL records are position-independent, so
        that committed suffix is byte-copied after the new file's header
        before the manifest flips — the new generation is complete
        (snapshot + carried tail) the instant it becomes authoritative.
        """
        writer = self._require_writer()
        wal_name = f"wal-{job.generation:06d}.log"
        new_path = os.path.join(self.root, wal_name)
        with open(writer.path, "rb") as src:
            src.seek(job.copy_from)
            carried = src.read(writer.bytes_written - job.copy_from)
        with open(new_path, "wb") as dst:
            dst.write(wf.file_header())
            dst.write(carried)
            dst.flush()
            if self._sync:
                os.fsync(dst.fileno())
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "generation": job.generation,
            "wal": wal_name,
            "snapshots": list(job.snaps),
            "cuts": job.meta["cuts"],
            "auto_rowid": job.meta["auto_rowid"],
            "next_rowid": job.meta["next_rowid"],
            "start_lsn": int(job.start_lsn),
            "durability": self.durability,
        }
        write_manifest(self.root, manifest)
        old = self._manifest
        new_writer = WalWriter(
            new_path, start_lsn=writer.next_lsn, sync=self._sync
        )
        writer.close()
        self._writer = new_writer
        self._manifest = manifest
        self._generation = job.generation
        # Records the snapshot already covers leave the restore tail;
        # the carried suffix (lsn >= start_lsn) must stay replayable.
        self._tail = [r for r in self._tail if r.lsn >= job.start_lsn]
        self.snapshots_taken += 1
        if old is not None:
            for name in [old["wal"]] + list(old["snapshots"]):
                try:
                    os.unlink(os.path.join(self.root, name))
                except OSError:
                    pass  # retired files are garbage, not state

    def _discard_job_files(self, job: _SnapshotJob) -> None:
        """Best-effort removal of an abandoned job's snapshot files."""
        for name in job.snaps:
            try:
                os.unlink(os.path.join(self.root, name))
            except OSError:
                pass

    def snapshot(self, states: Optional[Dict[str, Any]] = None) -> None:
        """Write a new snapshot generation and rotate the WAL.

        Parameters
        ----------
        states:
            Engine states to snapshot; defaults to calling the bound
            state provider. Must be called at a quiesced point — no
            uncommitted records may be buffered.
        """
        writer = self._require_writer()
        if writer.pending:
            raise InvalidParameterError(
                "snapshot with uncommitted WAL records buffered"
            )
        if self._bg_job is not None:
            # A direct snapshot supersedes an in-flight background job:
            # it will capture strictly newer state, so the job's files
            # are stale the moment they finish.
            job = self._bg_job
            self._bg_job = None
            if job.thread is not None:
                job.thread.join()
            self._discard_job_files(job)
        if states is None:
            if self._state_provider is None:
                raise InvalidParameterError(
                    "snapshot needs states or a bound state provider"
                )
            states = self._state_provider()
        self._write_generation(
            states,
            generation=self._generation + 1,
            start_lsn=writer.next_lsn,
        )
        self.snapshots_taken += 1

    def _write_generation(
        self, states: Dict[str, Any], *, generation: int, start_lsn: int
    ) -> None:
        """Write gen files, flip the manifest, retire the old generation."""
        snaps = []
        for sid, shard_state in enumerate(states["shards"]):
            name = f"shard-{generation:06d}-{sid:03d}.npz"
            save_state(
                shard_state, os.path.join(self.root, name), sync=self._sync
            )
            snaps.append(name)
        wal_name = f"wal-{generation:06d}.log"
        new_writer = WalWriter(
            os.path.join(self.root, wal_name),
            start_lsn=start_lsn,
            sync=self._sync,
        )
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "generation": generation,
            "wal": wal_name,
            "snapshots": snaps,
            "cuts": [float(c) for c in states["cuts"]],
            "auto_rowid": bool(states["auto_rowid"]),
            "next_rowid": int(states["next_rowid"]),
            "start_lsn": int(start_lsn),
            "durability": self.durability,
        }
        write_manifest(self.root, manifest)
        old = self._manifest
        if self._writer is not None:
            self._writer.close()
        self._writer = new_writer
        self._manifest = manifest
        self._generation = generation
        self._tail = []
        self._pending_records = []
        if old is not None:
            for name in [old["wal"]] + list(old["snapshots"]):
                try:
                    os.unlink(os.path.join(self.root, name))
                except OSError:
                    pass  # retired files are garbage, not state

    # ------------------------------------------------------------------
    # introspection

    def stats(self) -> Dict[str, Any]:
        """Counters for the ``stats()["wal"]`` engine field.

        Returns
        -------
        dict
            Durability mode, generation, record/commit/fsync counters,
            WAL size, snapshot count and retained-tail length.
        """
        w = self._writer
        return {
            "durability": self.durability,
            "generation": self._generation,
            "records": 0 if w is None else w.records,
            "commits": 0 if w is None else w.commits,
            "fsyncs": 0 if w is None else w.fsyncs,
            "wal_bytes": 0 if w is None else w.bytes_written,
            "snapshots": self.snapshots_taken,
            "tail_ops": len(self._tail),
            "background": self.background,
            "snapshot_in_flight": self._bg_job is not None,
        }


def replay_ops(engine: Any, ops: List[WalRecord]) -> None:
    """Replay committed WAL records into a freshly rebuilt engine.

    Applies each record directly to its target shard (routing was fixed
    when the record was logged), with all shard WAL sinks masked so the
    replay does not re-log itself. Deletes that miss are swallowed —
    a committed delete record may legitimately have failed partway when
    originally applied (``missing="raise"``), and replay reproduces that
    same partial application.
    """
    shards = engine.shards
    saved = [s.wal_sink for s in shards]
    for s in shards:
        s.wal_sink = None
    try:
        for rec in ops:
            shard = shards[rec.shard]
            if rec.op == wf.OP_INSERT:
                shard.insert_batch(rec.keys, rec.values)
            elif rec.op == wf.OP_DELETE:
                try:
                    shard.delete_batch(rec.keys, missing=rec.missing)
                except KeyNotFoundError:
                    pass  # replaying a partially-applied strict delete
            elif rec.op == wf.OP_DELETE_VALUE:
                shard.delete_value(float(rec.keys[0]), rec.values[0])
            else:
                raise InvalidParameterError(
                    f"cannot replay WAL op {rec.op}"
                )
    finally:
        for s, sink in zip(shards, saved):
            s.wal_sink = sink
