"""Declarative construction: one config, every backend.

Before this module, every bench, example and test hand-rolled its own
backend construction — ``ShardedEngine(keys, n_shards=..., error=...)``
here, ``ClusterEngine(...)`` there, ``Server(engine, max_batch=...)`` on
top — and switching executors meant editing call sites. The factory
replaces that with one declarative :class:`EngineConfig` plus two entry
points:

* :func:`open_engine` — build the index backend the config names
  (``executor="single" | "sharded" | "cluster"``) over one dataset;
* :func:`open_server` — the same, wrapped in a
  :class:`~repro.serve.Server` configured from the serve knobs.

Every returned engine satisfies :class:`repro.api.protocol.EngineProtocol`
(the cross-backend conformance suite constructs all its backends through
here), so application code written against the protocol runs unchanged on
any executor::

    from repro import EngineConfig, open_engine

    engine = open_engine(keys, config=EngineConfig(executor="cluster",
                                                   n_shards=4, error=128))
    values = engine.get_batch(queries)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.obs import MODES as _TELEMETRY_MODES
from repro.obs import Telemetry
from repro.wal.store import DURABILITY_MODES as _DURABILITY_MODES

__all__ = ["EngineConfig", "open_engine", "open_server"]

_EXECUTORS = ("single", "sharded", "cluster")
_INDEXES = ("fiting", "fixed")

#: Named starting points for :meth:`EngineConfig.preset`. Values are plain
#: field dicts so presets serialize exactly like hand-written configs.
_PRESETS: Dict[str, Dict[str, Any]] = {
    "read_optimized": {
        "error": 32.0,
        "buffer_capacity": 16,
        "max_batch": 4096,
        "max_delay": 0.001,
        "eager_flush": True,
        "latency_window": 100_000,
    },
    "write_optimized": {
        "error": 256.0,
        "buffer_capacity": 128,
        "max_batch": 1024,
        "max_delay": 0.004,
        "eager_flush": False,
    },
    "durable": {
        "durability": "wal+snapshot",
        "wal_sync": True,
        "background_snapshots": True,
    },
}


@dataclass
class EngineConfig:
    """Declarative description of an engine (and optional server) to open.

    Index knobs (``index``, ``error``, ``page_size``, ``buffer_capacity``,
    ``index_kwargs``) describe the per-shard paged index; executor knobs
    (``executor``, ``n_shards``, plus the cluster transport settings)
    pick how shards run; serve knobs configure the
    :class:`~repro.serve.Server` that :func:`open_server` wraps around the
    engine. Unused knobs are ignored by backends they do not apply to,
    so one config can describe every deployment of the same dataset.

    Attributes
    ----------
    executor:
        ``"single"`` (one in-process index behind the engine API),
        ``"sharded"`` (range-partitioned in-process
        :class:`~repro.engine.ShardedEngine`) or ``"cluster"``
        (one worker process per shard,
        :class:`~repro.cluster.ClusterEngine`).
    n_shards:
        Requested shard count (forced to 1 by ``executor="single"``).
    index:
        Per-shard index kind: ``"fiting"`` (error-bounded segments) or
        ``"fixed"`` (the fixed-size-page baseline).
    error:
        FITing-Tree error bound ``E`` (``index="fiting"`` only).
    page_size:
        Elements per fixed page (``index="fixed"`` only).
    buffer_capacity:
        Per-page insert buffer; ``None`` keeps the index's default
        (``error // 2`` / ``page_size // 2``); ``0`` builds read-only.
    index_kwargs:
        Extra keyword arguments forwarded to the index constructor
        (e.g. ``search="linear"``, ``branching=...``).
    mp_context, lane_capacity, op_timeout:
        Cluster transport knobs (``executor="cluster"`` only); ``None``
        keeps the cluster defaults.
    durability:
        ``"off"`` (default — purely in-memory), ``"wal"`` (every write
        group-committed to a write-ahead log before it is acknowledged)
        or ``"wal+snapshot"`` (the WAL plus periodic snapshots that
        truncate it). Durable engines recover their dataset from
        ``data_dir`` when reopened, and a durable cluster *restarts*
        crashed workers from snapshot + WAL instead of failing.
    data_dir:
        Directory holding the WAL, snapshots and manifest; required when
        ``durability != "off"``. Reopening an existing ``data_dir``
        recovers the persisted dataset (build keys must be omitted).
    wal_sync:
        Whether each group commit fsyncs (default True). ``False`` trades
        power-loss safety for speed (process crashes stay safe).
    snapshot_interval_bytes:
        WAL bytes between automatic snapshots (``"wal+snapshot"`` only).
    max_batch, max_delay, eager_flush, max_pending, overload,
    serve_executor, shard_concurrency, latency_window:
        Serve-layer knobs applied by :func:`open_server`; see
        :class:`~repro.serve.Server`.
    telemetry:
        ``"off"`` (default), ``"metrics"``, ``"workload"``, ``"full"``,
        ``"full+workload"``, or a :class:`repro.obs.Telemetry` instance
        to share a registry across engines. Resolved once per
        :func:`open_engine` call; the server built by :func:`open_server`
        adopts the engine's bundle, so both layers report into the same
        registry.
    admin_port:
        When set (requires telemetry), the server built by
        :func:`open_server` starts a live admin HTTP endpoint on this
        port when entered (``0`` = pick a free port); see
        :class:`repro.obs.http.AdminServer`.
    listen:
        When set (``"host:port"``; empty host = loopback, port ``0`` =
        auto-assign), :func:`open_server` wraps the server in a
        :class:`~repro.net.NetServer` TCP adapter bound there instead of
        returning the in-process facade.
    sla_target_p99_us:
        When set, the server runs an
        :class:`~repro.serve.sla.SlaController` that adapts the
        batcher's ``max_delay`` online to keep windowed p99 latency at
        or under this many microseconds.
    sla_interval:
        Seconds between SLA control decisions.
    background_snapshots:
        When True (``durability="wal+snapshot"`` only), generation
        rotation happens on a background thread instead of riding a
        write's latency; see :class:`~repro.wal.store.WalStore`.
    """

    executor: str = "sharded"
    n_shards: int = 4
    index: str = "fiting"
    error: float = 64.0
    page_size: int = 256
    buffer_capacity: Optional[int] = None
    index_kwargs: Dict[str, Any] = field(default_factory=dict)
    # -- cluster transport --
    mp_context: Any = None
    lane_capacity: Optional[int] = None
    op_timeout: float = 120.0
    # -- durability --
    durability: str = "off"
    data_dir: Optional[str] = None
    wal_sync: bool = True
    snapshot_interval_bytes: int = 4 << 20
    # -- serve layer --
    max_batch: int = 1024
    max_delay: float = 0.002
    eager_flush: bool = True
    max_pending: Optional[int] = None
    overload: str = "wait"
    serve_executor: Any = None
    shard_concurrency: int = 0
    latency_window: int = 100_000
    # -- observability --
    telemetry: Any = "off"
    admin_port: Optional[int] = None
    # -- network tier --
    listen: Optional[str] = None
    sla_target_p99_us: Optional[float] = None
    sla_interval: float = 0.05
    # -- durability tuning --
    background_snapshots: bool = False

    def validate(self) -> None:
        """Reject unknown executor/index/telemetry kinds with a typed error."""
        if self.executor not in _EXECUTORS:
            raise InvalidParameterError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.index not in _INDEXES:
            raise InvalidParameterError(
                f"index must be one of {_INDEXES}, got {self.index!r}"
            )
        if not isinstance(self.telemetry, Telemetry) and self.telemetry not in (
            None,
            *_TELEMETRY_MODES,
        ):
            raise InvalidParameterError(
                f"telemetry must be one of {_TELEMETRY_MODES} or a Telemetry "
                f"instance, got {self.telemetry!r}"
            )
        if self.durability not in _DURABILITY_MODES:
            raise InvalidParameterError(
                f"durability must be one of {_DURABILITY_MODES}, "
                f"got {self.durability!r}"
            )
        if self.durability != "off" and not self.data_dir:
            raise InvalidParameterError(
                f"durability={self.durability!r} requires data_dir"
            )
        if self.sla_target_p99_us is not None and self.sla_target_p99_us <= 0:
            raise InvalidParameterError(
                f"sla_target_p99_us must be > 0, got {self.sla_target_p99_us}"
            )
        if self.listen is not None and ":" not in self.listen:
            raise InvalidParameterError(
                f'listen must be "host:port", got {self.listen!r}'
            )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """This config as a plain JSON-able dict (see :meth:`to_json`).

        Returns
        -------
        dict
            One entry per dataclass field. A live :class:`Telemetry`
            instance collapses to its mode string (the registry itself is
            runtime state, not configuration).

        Raises
        ------
        InvalidParameterError
            When an opaque runtime object was set on ``mp_context`` or
            ``serve_executor`` (only ``None`` or string settings of those
            fields serialize).
        """
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["index_kwargs"] = dict(self.index_kwargs)
        if isinstance(out["telemetry"], Telemetry):
            out["telemetry"] = out["telemetry"].mode
        for name in ("mp_context", "serve_executor"):
            value = out[name]
            if value is not None and not isinstance(value, str):
                raise InvalidParameterError(
                    f"{name}={value!r} is a runtime object and does not "
                    "serialize; set it on the config after from_json()"
                )
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EngineConfig":
        """Rebuild a validated config from :meth:`to_dict` output.

        Parameters
        ----------
        data:
            A mapping of field names to values; unknown keys are rejected
            (they would otherwise be silently dropped — a typo in a config
            file must fail loudly).

        Returns
        -------
        EngineConfig
            The validated config.
        """
        if not isinstance(data, dict):
            raise InvalidParameterError(
                f"config data must be a dict, got {type(data).__name__}"
            )
        names = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise InvalidParameterError(
                f"unknown EngineConfig field(s): {', '.join(unknown)}"
            )
        config = cls(**data)
        config.validate()
        return config

    def to_json(self) -> str:
        """Serialize this config as a JSON object string.

        ``EngineConfig.from_json(cfg.to_json())`` round-trips every field
        (telemetry instances collapse to their mode string).
        """
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EngineConfig":
        """Rebuild a validated config from a :meth:`to_json` string."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise InvalidParameterError(f"invalid config JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def preset(cls, name: str, **overrides: Any) -> "EngineConfig":
        """A named starting-point config for a common deployment shape.

        Presets are plain configs — they serialize, round-trip through
        JSON, and accept the same field overrides as the constructor
        (overrides win over the preset's choices).

        Parameters
        ----------
        name:
            ``"read_optimized"`` — tight error bound and small insert
            buffers (fewer keys scanned per lookup), large read batches
            with a short batching timer;
            ``"write_optimized"`` — loose error bound and large insert
            buffers (fewer splits per insert), lazier flushing so writes
            coalesce;
            ``"durable"`` — ``"wal+snapshot"`` durability with
            background snapshot rotation (pass ``data_dir=...``).
        **overrides:
            Individual fields to override on top of the preset.

        Returns
        -------
        EngineConfig
            A validated config. ``"durable"`` requires a ``data_dir``
            override (validation rejects the preset without one).
        """
        try:
            base = dict(_PRESETS[name])
        except KeyError:
            raise InvalidParameterError(
                f"unknown preset {name!r}; choose from "
                f"{tuple(sorted(_PRESETS))}"
            ) from None
        base.update(overrides)
        config = cls(**base)
        config.validate()
        return config

    def index_factory(self):
        """The per-shard ``f(keys, values) -> PagedIndexBase`` this config
        describes (what the engine builds each shard with)."""
        self.validate()
        if self.index == "fixed":
            from repro.baselines import FixedPageIndex

            def factory(k, v):
                return FixedPageIndex(
                    k,
                    v,
                    page_size=self.page_size,
                    buffer_capacity=self.buffer_capacity,
                    **self.index_kwargs,
                )

        else:
            from repro.core.fiting_tree import FITingTree

            def factory(k, v):
                return FITingTree(
                    k,
                    v,
                    error=self.error,
                    buffer_capacity=self.buffer_capacity,
                    **self.index_kwargs,
                )

        return factory


def _resolved(config: Optional[EngineConfig], overrides: Dict[str, Any]) -> EngineConfig:
    """One immutable config from the optional base plus keyword overrides."""
    config = config if config is not None else EngineConfig()
    if overrides:
        config = replace(config, **overrides)
    config.validate()
    return config


def open_engine(keys=None, values=None, *, config: Optional[EngineConfig] = None,
                **overrides: Any):
    """Open the engine backend a config describes, over one dataset.

    Parameters
    ----------
    keys:
        Sorted (ascending) build keys; ``None``/empty starts an empty
        engine that grows via inserts.
    values:
        Optional payloads aligned with ``keys`` (``None`` = auto row ids).
    config:
        The :class:`EngineConfig` to follow (default-constructed when
        omitted).
    **overrides:
        Individual config fields to override without mutating ``config``
        (e.g. ``open_engine(keys, executor="cluster", n_shards=2)``).

    Returns
    -------
    EngineProtocol
        A :class:`~repro.engine.ShardedEngine` (``"single"`` /
        ``"sharded"``) or :class:`~repro.cluster.ClusterEngine`
        (``"cluster"``). Cluster engines own worker processes — close
        them (``with`` / ``.close()``) when done.
    """
    config = _resolved(config, overrides)
    n_shards = 1 if config.executor == "single" else config.n_shards
    telemetry = Telemetry.from_mode(config.telemetry)
    if config.durability != "off":
        return _open_durable(keys, values, config, n_shards, telemetry)
    if config.executor == "cluster":
        return _open_cluster(keys, values, config, n_shards, telemetry)
    from repro.engine import ShardedEngine

    return ShardedEngine(
        keys,
        values,
        n_shards=n_shards,
        index_factory=config.index_factory(),
        telemetry=telemetry,
    )


def _open_cluster(keys, values, config, n_shards, telemetry):
    """The plain (non-durable) cluster branch of :func:`open_engine`."""
    from repro.cluster import ClusterEngine
    from repro.cluster.shm import DEFAULT_LANE_CAPACITY

    return ClusterEngine(
        keys,
        values,
        n_shards=n_shards,
        error=config.error,
        buffer_capacity=config.buffer_capacity,
        mp_context=config.mp_context,
        lane_capacity=config.lane_capacity or DEFAULT_LANE_CAPACITY,
        op_timeout=config.op_timeout,
        index_factory=config.index_factory(),
        telemetry=telemetry,
    )


def _cluster_from_states(states, config, telemetry):
    """Boot a :class:`~repro.cluster.ClusterEngine` from recovered states."""
    from repro.cluster import ClusterEngine
    from repro.cluster.shm import DEFAULT_LANE_CAPACITY

    return ClusterEngine.from_states(
        states,
        mp_context=config.mp_context,
        lane_capacity=config.lane_capacity or DEFAULT_LANE_CAPACITY,
        op_timeout=config.op_timeout,
        telemetry=telemetry,
    )


def _open_durable(keys, values, config, n_shards, telemetry):
    """The durable branch of :func:`open_engine`: open (or create) the
    WAL store in ``config.data_dir``, recover or initialize, attach.

    A fresh ``data_dir`` seeds a new store from the engine built over
    ``keys``/``values``; an existing one recovers the persisted dataset
    (snapshot + committed WAL tail) and rejects build keys — silently
    merging a build dataset into recovered state would hide data loss.
    """
    from repro.engine import ShardedEngine
    from repro.wal import WalStore, replay_ops

    store = WalStore(
        config.data_dir,
        durability=config.durability,
        snapshot_interval_bytes=config.snapshot_interval_bytes,
        sync=config.wal_sync,
        background_snapshots=config.background_snapshots,
    )
    engine = None
    try:
        if store.exists:
            if keys is not None and np.asarray(keys).size:
                raise InvalidParameterError(
                    "data_dir already holds a durable engine; open it "
                    "without build keys (recovery restores the persisted "
                    "dataset)"
                )
            rec = store.recover()
            if config.executor == "cluster":
                # Replay the tail into an in-process twin first: workers
                # boot from fully-recovered states, and the store's
                # retained tail stays aligned with what they hold.
                proto = ShardedEngine.from_states(rec.states)
                replay_ops(proto, rec.ops)
                proto._next_rowid = rec.next_rowid
                engine = _cluster_from_states(proto.to_states(), config,
                                              telemetry)
            else:
                engine = ShardedEngine.from_states(
                    rec.states, telemetry=telemetry
                )
                replay_ops(engine, rec.ops)
                engine._next_rowid = rec.next_rowid
        else:
            if config.executor == "cluster":
                engine = _open_cluster(keys, values, config, n_shards,
                                       telemetry)
                store.initialize(engine._pull_states())
            else:
                engine = ShardedEngine(
                    keys,
                    values,
                    n_shards=n_shards,
                    index_factory=config.index_factory(),
                    telemetry=telemetry,
                )
                store.initialize(engine.to_states())
        engine.attach_wal(store)
        return engine
    except BaseException:
        if engine is not None:
            engine.close()
        store.close()
        raise


def open_server(keys=None, values=None, *, config: Optional[EngineConfig] = None,
                **overrides: Any):
    """Open an engine per the config and wrap it in a configured Server.

    Parameters
    ----------
    keys, values, config, **overrides:
        As for :func:`open_engine`; the serve knobs of the resolved
        config shape the :class:`~repro.serve.Server`.

    Returns
    -------
    Server or NetServer
        With ``listen`` unset: an unstarted asyncio server facade over
        the opened engine (``async with open_server(...) as s:
        await s.get(k)``). With ``listen="host:port"`` set: an unstarted
        :class:`~repro.net.NetServer` TCP adapter wrapping that facade
        (``await net.start()`` binds the socket; the facade stays
        reachable as ``net.server``). Closing either does not close a
        cluster engine — callers own the engine's lifecycle via
        ``server.engine`` (but see :func:`~repro.net.serve_tcp`).
    """
    config = _resolved(config, overrides)
    from repro.serve.server import Server

    engine = open_engine(keys, values, config=config)
    server = Server(
        engine,
        max_batch=config.max_batch,
        max_delay=config.max_delay,
        eager_flush=config.eager_flush,
        max_pending=config.max_pending,
        overload=config.overload,
        executor=config.serve_executor,
        shard_concurrency=config.shard_concurrency,
        latency_window=config.latency_window,
        admin_port=config.admin_port,
        sla_target_p99_us=config.sla_target_p99_us,
        sla_interval=config.sla_interval,
    )
    if config.listen is None:
        return server
    from repro.net.server import NetServer

    host, _, port = config.listen.rpartition(":")
    return NetServer(server, host=host or "127.0.0.1", port=int(port or 0))
