"""The public API layer: one engine protocol, one factory, every backend.

This package is the front door of the reproduction's serving stack. It
holds no execution machinery of its own — just the two things every
caller needs:

* :mod:`repro.api.protocol` — the structural engine contracts.
  :class:`EngineProtocol` is the complete CRUD surface (``get_batch`` /
  ``range_batch`` / ``insert_batch`` / ``delete_batch``, scalar mirrors,
  ``version``, ``stats()``, ``warm()``, ``validate()``);
  :class:`BatchEngine` is the minimal subset the serving layer dispatches
  on; :class:`ShardDispatchEngine` adds safe concurrent per-shard reads.
* :mod:`repro.api.factory` — declarative construction.
  :class:`EngineConfig` names an executor (``single`` / ``sharded`` /
  ``cluster``), an index kind and the serve knobs; :func:`open_engine` /
  :func:`open_server` build the matching backend, so application code is
  written once against the protocol and deployed on any executor::

      from repro import EngineConfig, open_engine

      engine = open_engine(keys, executor="sharded", n_shards=4)
      values = engine.get_batch(queries)
      engine.delete_batch(expired)

The cross-backend conformance suite (``tests/api``) pins that every
backend opened here answers the same scenario bit-identically.
"""

from repro.api.factory import EngineConfig, open_engine, open_server
from repro.api.protocol import BatchEngine, EngineProtocol, ShardDispatchEngine

__all__ = [
    "BatchEngine",
    "EngineConfig",
    "EngineProtocol",
    "ShardDispatchEngine",
    "open_engine",
    "open_server",
]
