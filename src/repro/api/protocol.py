"""The engine protocols: one contract, every backend.

FITing-Tree's index contract — bounded-error lookup, range scan, buffered
insert, widening delete — does not care how segments are stored or
executed. This module writes that contract down once, as structural
``typing.Protocol`` classes (``isinstance``-checkable at runtime, checkable
statically by any structural type checker), so the three executors of it —
the in-process :class:`~repro.engine.ShardedEngine`, the multi-process
:class:`~repro.cluster.ClusterEngine`, and any future backend opened
through :func:`repro.api.open_engine` — are interchangeable behind the
same verbs, and the serving layer (:mod:`repro.serve`) dispatches on the
protocol rather than on a concrete class.

Three protocols, smallest first:

* :class:`BatchEngine` — what the serving layer strictly requires: the
  scalar verbs (per-request fallback paths), the batch read/write verbs
  (the micro-batched hot path), and the monotonic ``version`` stamp the
  read-your-writes barrier records;
* :class:`EngineProtocol` — the complete CRUD surface: everything above
  plus ``delete`` / ``delete_batch``, ``stats()``, ``warm()`` and
  ``validate()``. Both shipped engines satisfy it; new backends should
  target it;
* :class:`ShardDispatchEngine` — a :class:`BatchEngine` whose shards can
  answer reads concurrently (``route_shards`` / ``get_batch_shard``),
  letting the batcher overlap per-shard sub-batches in time.

``warm()`` and per-shard dispatch remain feature-detected by the serve
layer, so a minimal :class:`BatchEngine` still serves.

This module was promoted from ``repro.serve.protocol`` (which re-exports
it with a :class:`DeprecationWarning` for one release).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = ["BatchEngine", "EngineProtocol", "ShardDispatchEngine"]


@runtime_checkable
class BatchEngine(Protocol):
    """Structural interface the :class:`~repro.serve.Server` dispatches on.

    Scalar verbs serve the per-request fallback paths; batch verbs serve
    the micro-batched hot path; ``version`` is the monotonic mutation
    stamp the read-your-writes barrier records.
    """

    def get(self, key: Any, default: Any = None) -> Any:
        """Scalar point lookup returning the value or ``default``."""
        ...

    def insert(self, key: float, value: Any = None) -> None:
        """Scalar insert of ``key -> value``."""
        ...

    def range_arrays(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One range scan as ``(keys, values)`` arrays."""
        ...

    def get_batch(self, queries, default: Any = None) -> np.ndarray:
        """Vectorized point lookups, one slot per query in request order.

        Parameters
        ----------
        queries:
            Key batch (float64-coercible); ``default`` fills miss slots.

        Returns
        -------
        numpy.ndarray
            One value per query.
        """
        ...

    def range_batch(
        self, bounds, include_lo: bool = True, include_hi: bool = True
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One ``(keys, values)`` pair per ``[lo, hi]`` bounds row.

        Parameters
        ----------
        bounds:
            ``(n, 2)`` array of inclusive key bounds.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            Matching rows per bounds row, in key order.
        """
        ...

    def insert_batch(self, keys, values=None) -> None:
        """Bulk insert; returns once every key is applied (the fence).

        Parameters
        ----------
        keys:
            Keys to insert; ``values`` are aligned payloads (``None`` =
            engine-assigned row ids).
        """
        ...

    @property
    def version(self) -> int:
        """Monotonic engine-wide mutation stamp (the flush barrier)."""
        ...


@runtime_checkable
class EngineProtocol(BatchEngine, Protocol):
    """The complete CRUD engine contract every shipped backend satisfies.

    Extends :class:`BatchEngine` with the delete verbs (completing the
    create/read/update/delete batch surface the paper's Section 4.3
    delete discussion calls for), plus the operational verbs —
    ``stats()``, ``warm()``, ``validate()`` — that production harnesses
    (benches, the serve layer, the conformance suite) rely on.
    """

    def delete(self, key: float) -> Any:
        """Scalar delete of one occurrence of ``key``; returns its value."""
        ...

    def delete_batch(
        self, keys, *, missing: str = "raise", default: Any = None
    ) -> np.ndarray:
        """Bulk delete; returns once every removal is applied (the fence).

        Parameters
        ----------
        keys:
            Keys to delete (one occurrence removed per element);
            ``missing`` selects raise-vs-ignore for absent keys and
            ``default`` fills ignored miss slots.

        Returns
        -------
        numpy.ndarray
            One deleted value per request, in request order.
        """
        ...

    def stats(self) -> Dict[str, Any]:
        """Engine-level statistics (sizes, shard breakdown, cache rates)."""
        ...

    def warm(self) -> None:
        """Pre-build the read-path snapshots before taking traffic."""
        ...

    def validate(self) -> None:
        """Check every structural invariant; raise on violation."""
        ...


@runtime_checkable
class ShardDispatchEngine(BatchEngine, Protocol):
    """A :class:`BatchEngine` whose shards answer reads independently.

    ``shard_dispatch_safe`` being True asserts that concurrent
    ``get_batch_shard`` calls for *different* shards are safe (each shard
    has its own state/transport) — the property that lets
    :class:`~repro.serve.batcher.RequestBatcher` overlap shards in time.
    """

    #: Whether concurrent per-shard reads are safe (see class docstring).
    shard_dispatch_safe: bool

    def route_shards(self, queries) -> np.ndarray:
        """Owning shard id per query key."""
        ...

    def get_batch_shard(self, sid: int, queries, default: Any = None) -> np.ndarray:
        """Answer one shard's sub-batch (all queries must route to ``sid``).

        Parameters
        ----------
        sid:
            Shard id; ``queries`` is that shard's key sub-batch and
            ``default`` fills miss slots.

        Returns
        -------
        numpy.ndarray
            One value per query, as :meth:`BatchEngine.get_batch` would
            fill those slots.
        """
        ...
