"""Async traffic generators driving the serving front-end.

Two canonical load models from the serving-systems literature:

* **closed-loop** (:func:`run_closed_loop`) — N clients, each with at most
  one request outstanding: a client awaits its response before issuing the
  next request. Throughput is concurrency-limited; this is the model that
  shows what micro-batching buys (with N blocked clients the batcher sees
  batches of exactly N).
* **open-loop** (:func:`run_open_loop`) — requests arrive on a Poisson
  process at a configured rate, independent of completions. Latency here
  includes *queueing delay* (measured from the scheduled arrival time), so
  driving the rate past capacity shows the hockey-stick the closed loop
  hides.

Both return a :class:`TrafficResult` carrying per-request latencies, the
responses in request order (so callers can check bit-identical equivalence
against the scalar path), and throughput; both are plain coroutines, run
them with ``asyncio.run(...)``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["TrafficResult", "run_closed_loop", "run_open_loop"]


@dataclass
class TrafficResult:
    """Outcome of one async traffic run.

    ``latencies_s`` and ``results`` are aligned with the input key stream
    (request order), regardless of completion order; ``errors`` counts
    requests that raised instead of returning.
    """

    ops: int
    wall_seconds: float
    latencies_s: np.ndarray
    results: List[Any] = field(default_factory=list)
    errors: int = 0

    @property
    def ops_per_second(self) -> float:
        """Completed requests per wall-clock second."""
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def percentile_us(self, q: float) -> float:
        """The ``q``-th percentile of request latency, in microseconds."""
        if self.latencies_s.size == 0:
            return 0.0
        return float(np.percentile(self.latencies_s, q) * 1e6)

    def summary(self) -> Dict[str, float]:
        """Flat dict of throughput + latency percentiles for reporting."""
        return {
            "ops": self.ops,
            "ops_per_second": round(self.ops_per_second, 1),
            "p50_us": round(self.percentile_us(50), 2),
            "p95_us": round(self.percentile_us(95), 2),
            "p99_us": round(self.percentile_us(99), 2),
            "errors": self.errors,
        }


async def run_closed_loop(
    server: Any,
    keys,
    concurrency: int = 16,
) -> TrafficResult:
    """Drive ``server.get`` with N closed-loop clients.

    Parameters
    ----------
    server:
        Anything with ``async get(key)`` — a :class:`repro.serve.Server`.
    keys:
        The request stream; client ``i`` issues keys ``i, i+N, i+2N, ...``
        back-to-back (one outstanding request per client).
    concurrency:
        Number of concurrent clients (N above).

    Returns
    -------
    TrafficResult
        Latencies measured around each individual ``await`` and the
        responses aligned with ``keys``.
    """
    keys_list = [float(k) for k in np.asarray(keys, dtype=np.float64)]
    n = len(keys_list)
    if n == 0:
        raise InvalidParameterError("empty key stream")
    if concurrency < 1:
        raise InvalidParameterError(
            f"concurrency must be >= 1, got {concurrency}"
        )
    latencies: List[float] = [0.0] * n
    results: List[Any] = [None] * n
    errors = 0
    clock = time.perf_counter

    async def client(offset: int) -> None:
        nonlocal errors
        get = server.get
        for i in range(offset, n, concurrency):
            t0 = clock()
            try:
                results[i] = await get(keys_list[i])
            except Exception as exc:  # keep the run going; report at the end
                results[i] = exc
                errors += 1
            latencies[i] = clock() - t0

    start = clock()
    await asyncio.gather(*(client(c) for c in range(min(concurrency, n))))
    wall = clock() - start
    return TrafficResult(
        ops=n, wall_seconds=wall,
        latencies_s=np.asarray(latencies, dtype=np.float64),
        results=results, errors=errors,
    )


async def run_open_loop(
    server: Any,
    keys,
    rate: float,
    seed: int = 0,
) -> TrafficResult:
    """Drive ``server.get`` with Poisson arrivals at ``rate`` requests/s.

    Each request is its own task released at its scheduled arrival time;
    latency is measured *from that scheduled time*, so a server that
    cannot keep up shows its queueing delay instead of silently throttling
    the generator (the open-loop property).

    Parameters
    ----------
    server:
        Anything with ``async get(key)``.
    keys:
        The request stream, one request per key, in arrival order.
    rate:
        Mean arrival rate in requests per second (Poisson process).
    seed:
        Seed for the exponential inter-arrival draws.

    Returns
    -------
    TrafficResult
        ``wall_seconds`` spans first arrival to last completion; latencies
        include time spent waiting for admission under backpressure.
    """
    keys = np.ascontiguousarray(keys, dtype=np.float64)
    n = keys.size
    if n == 0:
        raise InvalidParameterError("empty key stream")
    if rate <= 0:
        raise InvalidParameterError(f"rate must be > 0, got {rate}")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
    latencies = np.zeros(n, dtype=np.float64)
    results: List[Any] = [None] * n
    errors = 0
    clock = time.perf_counter

    start = clock()

    async def one(i: int) -> None:
        nonlocal errors
        delay = arrivals[i] - (clock() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        t0 = clock()
        try:
            results[i] = await server.get(keys[i])
        except Exception as exc:
            results[i] = exc
            errors += 1
        # From scheduled arrival, not dispatch: queueing delay included.
        latencies[i] = clock() - start - arrivals[i]

    await asyncio.gather(*(one(i) for i in range(n)))
    wall = clock() - start
    return TrafficResult(
        ops=n, wall_seconds=wall, latencies_s=latencies, results=results,
        errors=errors,
    )
