"""Workload runner: executes query/insert streams and reports both clocks.

Every result carries two views of cost:

* **wall-clock** seconds (CPython time; only meaningful relatively), and
* **modeled latency** in ns from the access counters priced by a
  :class:`repro.memsim.LatencyModel` — the paper-comparable number (see
  DESIGN.md substitution 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.memsim import AccessCounter, LatencyModel

__all__ = [
    "WorkloadResult",
    "run_batch_lookups",
    "run_inserts",
    "run_lookups",
    "run_range_scans",
]


@dataclass
class WorkloadResult:
    """Outcome of one workload execution."""

    ops: int
    wall_seconds: float
    counter: AccessCounter
    modeled_ns_per_op: float
    hits: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_ns_per_op(self) -> float:
        return self.wall_seconds * 1e9 / self.ops if self.ops else 0.0

    @property
    def ops_per_second(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def row(self) -> Dict[str, Any]:
        """Flat dict for table printing."""
        out = {
            "ops": self.ops,
            "wall_ns_per_op": round(self.wall_ns_per_op, 1),
            "modeled_ns_per_op": round(self.modeled_ns_per_op, 1),
            "ops_per_second": round(self.ops_per_second, 1),
            "accesses_per_op": (
                round(self.counter.random_accesses / self.ops, 2) if self.ops else 0.0
            ),
        }
        out.update(self.extra)
        return out


def _working_set(index: Any) -> int:
    return int(index.model_bytes()) if hasattr(index, "model_bytes") else 0


#: Bytes per table element (8-byte key + 8-byte payload), for pricing the
#: data-touching part of an operation.
_DATA_ENTRY_BYTES = 16


def _data_bytes(index: Any) -> int:
    return _DATA_ENTRY_BYTES * len(index)


def _modeled_ns(index: Any, counter: AccessCounter, model: LatencyModel) -> float:
    """Structure-aware modeled latency for one run (see LatencyModel)."""
    tree = getattr(index, "_tree", None)
    if tree is None:
        inner = getattr(index, "_index", None)
        tree = getattr(inner, "_tree", None) if inner is not None else None
    height = tree.height if tree is not None else None
    branching = tree.branching if tree is not None else None
    return model.op_latency_split_ns(
        counter, _working_set(index), _data_bytes(index), height, branching
    )


def _swap_counter(index: Any) -> AccessCounter:
    """Attach a fresh counter to the index (and its tree) for one run."""
    counter = AccessCounter()
    index.counter = counter
    tree = getattr(index, "_tree", None)
    if tree is not None:
        tree.counter = counter
    inner = getattr(index, "_index", None)
    if inner is not None:  # SecondaryFITingTree delegates
        inner.counter = counter
        inner._tree.counter = counter
    return counter


def run_lookups(
    index: Any,
    queries: np.ndarray,
    latency_model: Optional[LatencyModel] = None,
    use_bulk: bool = False,
) -> WorkloadResult:
    """Execute point lookups; count hits; price accesses with the model."""
    if len(queries) == 0:
        raise InvalidParameterError("empty query stream")
    latency_model = latency_model or LatencyModel()
    counter = _swap_counter(index)
    sentinel = object()

    start = time.perf_counter()
    if use_bulk and hasattr(index, "bulk_lookup"):
        results = index.bulk_lookup(queries, sentinel)
        hits = sum(1 for r in results if r is not sentinel)
    else:
        get = index.get
        hits = 0
        for q in queries:
            if get(q, sentinel) is not sentinel:
                hits += 1
    wall = time.perf_counter() - start

    modeled = _modeled_ns(index, counter, latency_model)
    return WorkloadResult(
        ops=len(queries),
        wall_seconds=wall,
        counter=counter.snapshot(),
        modeled_ns_per_op=modeled,
        hits=hits,
    )


def run_batch_lookups(
    index: Any,
    queries: np.ndarray,
    batch_size: int = 1024,
    latency_model: Optional[LatencyModel] = None,
) -> WorkloadResult:
    """Batched execution mode: point lookups in ``batch_size`` chunks.

    ``index`` is anything exposing ``get_batch`` — a single paged index
    (vectorized flattened-array path) or a
    :class:`~repro.engine.ShardedEngine` (routing + per-shard vectorized
    path). Results and hit counts match :func:`run_lookups` on the same
    stream; wall-clock shows the batch amortization, and modeled costs are
    charged in bulk by the batch path itself.
    """
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    if len(queries) == 0:
        raise InvalidParameterError("empty query stream")
    if batch_size < 1:
        raise InvalidParameterError(f"batch_size must be >= 1, got {batch_size}")
    latency_model = latency_model or LatencyModel()
    counter = _swap_counter(index)
    sentinel = object()

    start = time.perf_counter()
    hits = 0
    get_batch = index.get_batch
    for i in range(0, len(queries), batch_size):
        results = get_batch(queries[i : i + batch_size], sentinel)
        if results.dtype == object:
            hits += int(np.sum(results != sentinel))
        else:
            hits += len(results)
    wall = time.perf_counter() - start

    modeled = _modeled_ns(index, counter, latency_model)
    return WorkloadResult(
        ops=len(queries),
        wall_seconds=wall,
        counter=counter.snapshot(),
        modeled_ns_per_op=modeled,
        hits=hits,
        extra={"batch_size": batch_size},
    )


def run_inserts(
    index: Any,
    stream: np.ndarray,
    latency_model: Optional[LatencyModel] = None,
) -> WorkloadResult:
    """Execute inserts; reports throughput plus modeled per-insert cost.

    The modeled cost adds sequential work (buffer shifts, merge copies) at
    1 ns/element to the random-access cost, mirroring the cost model's
    insert variant.
    """
    if len(stream) == 0:
        raise InvalidParameterError("empty insert stream")
    latency_model = latency_model or LatencyModel()
    counter = _swap_counter(index)

    start = time.perf_counter()
    insert = index.insert
    for k in stream:
        insert(k)
    wall = time.perf_counter() - start

    random_part = _modeled_ns(index, counter, latency_model)
    seq_part = counter.data_moves / counter.ops if counter.ops else 0.0
    return WorkloadResult(
        ops=len(stream),
        wall_seconds=wall,
        counter=counter.snapshot(),
        modeled_ns_per_op=random_part + seq_part,
        extra={"splits": counter.splits},
    )


def run_range_scans(
    index: Any,
    bounds: np.ndarray,
    latency_model: Optional[LatencyModel] = None,
) -> WorkloadResult:
    """Execute range scans given an ``(n, 2)`` array of [lo, hi] bounds."""
    bounds = np.asarray(bounds, dtype=np.float64)
    if bounds.ndim != 2 or bounds.shape[1] != 2:
        raise InvalidParameterError("bounds must be an (n, 2) array")
    latency_model = latency_model or LatencyModel()
    counter = _swap_counter(index)

    start = time.perf_counter()
    scanned = 0
    for lo, hi in bounds:
        for _ in index.range_items(lo, hi):
            scanned += 1
    wall = time.perf_counter() - start

    modeled = _modeled_ns(index, counter, latency_model)
    return WorkloadResult(
        ops=len(bounds),
        wall_seconds=wall,
        counter=counter.snapshot(),
        modeled_ns_per_op=modeled,
        extra={"tuples_scanned": scanned},
    )
