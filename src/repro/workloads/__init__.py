"""Workload generation and execution for the evaluation harness.

Three families: seeded stream generators (:mod:`~repro.workloads.generators`),
the synchronous scalar/batched runners (:mod:`~repro.workloads.runner`), and
async closed-/open-loop traffic drivers for the serving layer
(:mod:`~repro.workloads.async_traffic`).
"""

from repro.workloads.async_traffic import (
    TrafficResult,
    run_closed_loop,
    run_open_loop,
)
from repro.workloads.generators import (
    insert_stream,
    missing_lookups,
    mixed_lookups,
    uniform_lookups,
    zipf_lookups,
)
from repro.workloads.runner import (
    WorkloadResult,
    run_batch_lookups,
    run_inserts,
    run_lookups,
    run_range_scans,
)

__all__ = [
    "TrafficResult",
    "WorkloadResult",
    "insert_stream",
    "missing_lookups",
    "mixed_lookups",
    "run_batch_lookups",
    "run_closed_loop",
    "run_inserts",
    "run_lookups",
    "run_open_loop",
    "run_range_scans",
    "uniform_lookups",
    "zipf_lookups",
]
