"""Workload generation and execution for the evaluation harness."""

from repro.workloads.generators import (
    insert_stream,
    missing_lookups,
    mixed_lookups,
    uniform_lookups,
    zipf_lookups,
)
from repro.workloads.runner import (
    WorkloadResult,
    run_batch_lookups,
    run_inserts,
    run_lookups,
    run_range_scans,
)

__all__ = [
    "WorkloadResult",
    "insert_stream",
    "missing_lookups",
    "mixed_lookups",
    "run_batch_lookups",
    "run_inserts",
    "run_lookups",
    "run_range_scans",
    "uniform_lookups",
    "zipf_lookups",
]
