"""Workload generators: lookup query streams and insert streams.

The paper's evaluation measures per-thread lookup latency over random
point queries and insert throughput over random insert streams. These
helpers produce seeded, reproducible streams with the access patterns a
database evaluation typically needs: uniform over existing keys, skewed
(Zipf) toward hot keys, guaranteed misses, mixes, and several insert-order
patterns.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = [
    "uniform_lookups",
    "zipf_lookups",
    "missing_lookups",
    "mixed_lookups",
    "insert_stream",
]


def uniform_lookups(keys: np.ndarray, n_queries: int, seed: int = 0) -> np.ndarray:
    """Existing keys sampled uniformly at random (with replacement)."""
    rng = np.random.default_rng(seed)
    if len(keys) == 0:
        raise InvalidParameterError("cannot sample lookups from empty keys")
    idx = rng.integers(0, len(keys), size=n_queries)
    return np.asarray(keys, dtype=np.float64)[idx]


def zipf_lookups(
    keys: np.ndarray, n_queries: int, seed: int = 0, a: float = 1.3
) -> np.ndarray:
    """Existing keys sampled with Zipfian skew (rank 1 = hottest).

    Hot ranks are scattered over the key space with a seeded permutation so
    the skew is in popularity, not in key locality.
    """
    rng = np.random.default_rng(seed)
    n = len(keys)
    if n == 0:
        raise InvalidParameterError("cannot sample lookups from empty keys")
    if a <= 1.0:
        raise InvalidParameterError(f"zipf exponent must be > 1, got {a}")
    ranks = rng.zipf(a, size=n_queries)
    perm = rng.permutation(n)
    idx = perm[(ranks - 1) % n]
    return np.asarray(keys, dtype=np.float64)[idx]


def missing_lookups(keys: np.ndarray, n_queries: int, seed: int = 0) -> np.ndarray:
    """Queries guaranteed absent: midpoints between adjacent distinct keys."""
    rng = np.random.default_rng(seed)
    keys = np.asarray(keys, dtype=np.float64)
    uniq = np.unique(keys)
    if len(uniq) < 2:
        raise InvalidParameterError("need >= 2 distinct keys for misses")
    gaps = np.flatnonzero(np.diff(uniq) > 0)
    pick = rng.integers(0, len(gaps), size=n_queries)
    left = uniq[gaps[pick]]
    right = uniq[gaps[pick] + 1]
    mids = left + (right - left) * 0.5
    # Guard against degenerate float midpoints colliding with an endpoint.
    bad = (mids <= left) | (mids >= right)
    mids[bad] = left[bad]  # will still be a "hit"; vanishingly rare
    return mids


def mixed_lookups(
    keys: np.ndarray, n_queries: int, hit_ratio: float = 0.9, seed: int = 0
) -> np.ndarray:
    """Shuffled mix of present and absent queries with the given hit ratio."""
    if not (0.0 <= hit_ratio <= 1.0):
        raise InvalidParameterError(f"hit_ratio must be in [0,1], got {hit_ratio}")
    rng = np.random.default_rng(seed)
    n_hits = int(round(n_queries * hit_ratio))
    hits = uniform_lookups(keys, n_hits, seed + 1)
    misses = missing_lookups(keys, n_queries - n_hits, seed + 2)
    out = np.concatenate([hits, misses])
    rng.shuffle(out)
    return out


def insert_stream(
    n: int,
    lo: float,
    hi: float,
    seed: int = 0,
    pattern: str = "uniform",
) -> np.ndarray:
    """Keys to insert, drawn from ``[lo, hi)``.

    Patterns
    --------
    ``uniform``
        Independent uniform draws (the paper's insert benchmark).
    ``sequential``
        Monotonically increasing keys appended past ``hi`` (log-style).
    ``hotspot``
        90% of inserts land in a random 10% sub-range (splits concentrate).
    """
    rng = np.random.default_rng(seed)
    if hi <= lo:
        raise InvalidParameterError(f"need hi > lo, got [{lo}, {hi})")
    if pattern == "uniform":
        return rng.uniform(lo, hi, size=n)
    if pattern == "sequential":
        steps = rng.uniform(0.0, (hi - lo) / max(n, 1), size=n)
        return hi + np.cumsum(steps)
    if pattern == "hotspot":
        width = (hi - lo) * 0.1
        start = rng.uniform(lo, hi - width)
        hot = rng.uniform(start, start + width, size=n)
        cold = rng.uniform(lo, hi, size=n)
        take_hot = rng.random(n) < 0.9
        return np.where(take_hot, hot, cold)
    raise InvalidParameterError(
        f"unknown insert pattern {pattern!r}; "
        f"use uniform | sequential | hotspot"
    )
