"""ClusterEngine: the ShardedEngine API over multi-process shard workers.

The in-process :class:`~repro.engine.ShardedEngine` is bound by the GIL:
every shard's ``searchsorted``/merge work serializes on one core. The
cluster engine keeps the exact same surface — ``get_batch`` /
``range_batch`` / ``insert_batch`` / ``stats`` / ``warm`` / ``version``
plus the scalar mirrors, so :class:`repro.serve.Server` works over it
unchanged — but each range shard lives in its own worker process
(:mod:`repro.cluster.worker`), rebuilt from a
:meth:`~repro.core.paged_index.PagedIndexBase.to_state` snapshot without
re-segmentation. Batch keys and numeric results cross the process boundary
through shared-memory lanes (:mod:`repro.cluster.shm`); the pipes carry
only small control frames.

Consistency across the process hop:

* **Per-batch fences** — every dispatch is a strict request/reply round:
  ``insert_batch`` does not return until every owning worker has applied
  its chunk, so a read submitted after an insert returns sees the write
  (read-your-writes, the same guarantee the serve batcher builds on).
* **Version barrier** — every worker reply carries its shard's monotonic
  ``version`` stamp; the engine-wide :attr:`ClusterEngine.version` (their
  sum) therefore moves exactly as the in-process engine's would.
* **Bit-identical results** — workers answer through the same
  ``FlatView`` read path and ``insert_batch`` write path the in-process
  engine uses, so results and post-write state match ``ShardedEngine``
  exactly (pinned by ``tests/cluster``).

Failure model: a worker that exits or stops responding surfaces as a typed
:class:`~repro.cluster.errors.ClusterError`
(:class:`~repro.cluster.errors.WorkerCrashedError` names the shard);
errors *inside* a live worker — invalid parameters and friends — are
pickled back and re-raised as themselves. :meth:`close` shuts workers
down cleanly (shutdown frame, join, terminate stragglers) and releases
every shared-memory block.

With a :class:`repro.wal.WalStore` attached (:meth:`attach_wal`), the
failure model upgrades from fail-stop to **restart-on-crash**: every
write chunk is logged and group-committed *before* dispatch, so a dead
worker is respawned from the latest snapshot plus the committed WAL tail
and the round re-fences. Reads retry transparently; an insert whose
worker died is re-applied from the log; a delete whose reply died with
the worker raises :class:`~repro.cluster.errors.WorkerRecoveredError`
(the deletion is durably applied — only the returned values were lost).
A timed-out (poisoned) worker becomes recoverable the same way: its
process is killed and restored instead of being permanently fenced off.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.cluster.errors import (
    ClusterError,
    WorkerCrashedError,
    WorkerRecoveredError,
)
from repro.cluster.shm import (
    DEFAULT_LANE_CAPACITY,
    ShmLane,
    note_teardown_error,
    teardown_errors,
)
from repro.cluster.snapshot import engine_to_states
from repro.cluster.worker import shard_worker_main
from repro.core.errors import InvalidParameterError, KeyNotFoundError
from repro.core.page import aligned_value_array
from repro.core.serialize import _registry
from repro.engine.engine import ShardedEngine
from repro.engine.partition import route, shard_bounds
from repro.wal.format import OP_DELETE, OP_INSERT

__all__ = ["ClusterEngine"]


class _WorkerHandle:
    """Parent-side bookkeeping for one shard worker."""

    __slots__ = ("process", "conn", "req", "resp", "lock", "lo", "hi", "ipc")

    def __init__(self, process, conn, req: ShmLane, resp: ShmLane, lo, hi):
        self.process = process
        self.conn = conn
        self.req = req
        self.resp = resp
        self.lock = threading.Lock()
        self.lo = lo
        self.hi = hi
        #: Transport counters; only ever mutated under ``lock``, so
        #: concurrent shard-dispatch threads cannot lose increments
        #: (engine stats sum across workers).
        self.ipc = {"batches": 0, "pickle_fallbacks": 0, "lane_growths": 0}


class ClusterEngine:
    """Multi-process shard executors behind the ShardedEngine API.

    Parameters
    ----------
    keys, values, n_shards, error, buffer_capacity, index_factory,
    index_kwargs:
        As for :class:`~repro.engine.ShardedEngine`; the build happens
        in-process first (segmentation runs once), each shard is
        snapshotted into its worker, and the in-process copy is dropped.
        One worker per effective shard. A custom ``index_factory``'s
        class must be snapshot-capable and registered
        (``repro.cluster.snapshot.register_index_class``).
    mp_context:
        ``multiprocessing`` start method (``"fork"``/``"spawn"``/ a
        context object). Default: ``"fork"`` where available (cheap
        worker startup), else ``"spawn"``.
    lane_capacity:
        Initial bytes per shared-memory lane (two per worker); lanes
        grow geometrically on demand.
    op_timeout:
        Seconds to wait for a worker's reply before declaring it hung
        (raises :class:`~repro.cluster.errors.ClusterError`).
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle. ``None`` (default)
        keeps the wire protocol and hot paths exactly as before. In
        ``"full"`` mode, ``get_batch`` frames carry the trace context
        across the shm boundary and worker replies carry back
        ``worker.compute`` spans, stitched into the parent's tracer.

    Examples
    --------
    >>> import numpy as np
    >>> keys = np.sort(np.random.default_rng(0).uniform(0, 1e6, 100_000))
    >>> with ClusterEngine(keys, n_shards=2, error=128) as engine:
    ...     bool((engine.get_batch(keys[:512]) == np.arange(512)).all())
    True
    """

    #: Per-shard reads are safe to issue from concurrent threads (each
    #: worker has its own pipe, lanes and lock) — the serve layer's
    #: shard-dispatch path keys off this.
    shard_dispatch_safe = True

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        n_shards: int = 4,
        error: float = 64.0,
        buffer_capacity: Optional[int] = None,
        index_factory: Any = None,
        mp_context: Any = None,
        lane_capacity: int = DEFAULT_LANE_CAPACITY,
        op_timeout: float = 120.0,
        telemetry: Any = None,
        **index_kwargs: Any,
    ) -> None:
        proto = ShardedEngine(
            keys,
            values,
            n_shards=n_shards,
            index_factory=index_factory,
            error=error,
            buffer_capacity=buffer_capacity,
            **index_kwargs,
        )
        self._boot(
            engine_to_states(proto),
            mp_context=mp_context,
            lane_capacity=lane_capacity,
            op_timeout=op_timeout,
            telemetry=telemetry,
        )

    @classmethod
    def from_engine(
        cls,
        engine: ShardedEngine,
        *,
        mp_context: Any = None,
        lane_capacity: int = DEFAULT_LANE_CAPACITY,
        op_timeout: float = 120.0,
        telemetry: Any = None,
    ) -> "ClusterEngine":
        """Promote a live in-process engine to a multi-process cluster.

        The source engine is snapshotted, not adopted: it stays fully
        usable, and the two evolve independently afterwards.

        Parameters
        ----------
        engine:
            The :class:`~repro.engine.ShardedEngine` to snapshot.
        mp_context, lane_capacity, op_timeout, telemetry:
            As for the constructor (the source engine's own telemetry, if
            any, is not adopted).

        Returns
        -------
        ClusterEngine
            A cluster whose workers hold bit-identical shard states.
        """
        obj = cls.__new__(cls)
        obj._boot(
            engine_to_states(engine),
            mp_context=mp_context,
            lane_capacity=lane_capacity,
            op_timeout=op_timeout,
            telemetry=telemetry,
        )
        return obj

    @classmethod
    def from_states(
        cls,
        states: Dict[str, Any],
        *,
        mp_context: Any = None,
        lane_capacity: int = DEFAULT_LANE_CAPACITY,
        op_timeout: float = 120.0,
        telemetry: Any = None,
    ) -> "ClusterEngine":
        """Boot a cluster straight from a whole-engine states dict.

        This is the recovery entry point: ``open_engine`` feeds it the
        snapshot states a :class:`repro.wal.WalStore` recovered (after
        replaying the committed WAL tail in-process), skipping the
        segmentation pass the keyed constructor would run.

        Parameters
        ----------
        states:
            A whole-engine snapshot as produced by
            :func:`repro.cluster.engine_to_states` /
            :meth:`repro.engine.ShardedEngine.to_states` — ``cuts``,
            ``auto_rowid``, ``next_rowid`` and one ``to_state`` dict per
            shard.
        mp_context, lane_capacity, op_timeout, telemetry:
            As for the constructor.

        Returns
        -------
        ClusterEngine
            A cluster whose workers hold exactly the given shard states.
        """
        obj = cls.__new__(cls)
        obj._boot(
            states,
            mp_context=mp_context,
            lane_capacity=lane_capacity,
            op_timeout=op_timeout,
            telemetry=telemetry,
        )
        return obj

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _boot(self, states: Dict[str, Any], *, mp_context, lane_capacity,
              op_timeout, telemetry=None) -> None:
        self.telemetry = telemetry
        self._telemetry = telemetry
        self._obs_ops: Optional[Dict[str, Tuple[Any, Any]]] = None
        self._workload: Any = None
        if telemetry is not None:
            self._register_telemetry(telemetry)
        if isinstance(mp_context, str) or mp_context is None:
            method = mp_context or (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
            ctx = mp.get_context(method)
        else:
            ctx = mp_context
        self._ctx = ctx
        self._lane_capacity = int(lane_capacity)
        self.cuts: np.ndarray = states["cuts"]
        if telemetry is not None:
            # The parent-side profiler is the merge target for the
            # per-shard sketch deltas workers ship back in reply frames;
            # registration waits until here because it needs the cuts.
            ensure = getattr(telemetry, "ensure_workload", None)
            if ensure is not None:
                self._workload = ensure(self.cuts)
        self._auto_rowid: bool = states["auto_rowid"]
        self._next_rowid: int = states["next_rowid"]
        shard_states = states["shards"]
        self._values_dtype = (
            np.dtype(shard_states[0]["values_dtype"])
            if shard_states
            else np.dtype(np.int64)
        )
        #: Last-known element count per shard, refreshed from every
        #: worker ``stats`` reply and worker restore — lets a failed
        #: round resync ``_n`` per *live* shard instead of requiring a
        #: full all-shards round (which a single dead worker would veto).
        self._shard_ns: List[int] = [int(s["n"]) for s in shard_states]
        self._n = sum(self._shard_ns)
        self._op_timeout = float(op_timeout)
        self._closed = False
        #: Shards whose reply stream can no longer be trusted (a timed-out
        #: round may deliver its reply later); fenced off until a worker
        #: restore (durable engines) replaces the process outright.
        self._poisoned: set = set()
        self._versions: List[int] = [int(s["version"]) for s in shard_states]
        self._wal: Any = None
        self._workers: List[_WorkerHandle] = []
        try:
            for sid, state in enumerate(shard_states):
                self._workers.append(self._spawn_worker(sid, state))
            for sid in range(len(self._workers)):
                self._await_ready(sid)
        except BaseException:
            self.close()
            raise

    def _spawn_worker(self, sid: int, state: Dict[str, Any]) -> _WorkerHandle:
        """Create one shard worker (pipe, two lanes, process).

        On any failure every resource this call created — lanes, pipe
        ends, a started process — is released before re-raising, so a
        partial spawn can never leak (the caller's cleanup only covers
        fully-constructed handles).
        """
        cuts = self.cuts
        lo = float(cuts[sid - 1]) if sid > 0 else None
        hi = float(cuts[sid]) if sid < cuts.size else None
        parent_conn = child_conn = req = resp = process = None
        try:
            parent_conn, child_conn = self._ctx.Pipe()
            req = ShmLane(self._lane_capacity)
            resp = ShmLane(self._lane_capacity)
            # Resolve the shard's class here and ship it with the
            # snapshot: a spawn-context child re-imports with a fresh
            # registry, so parent-side register_index_class calls
            # would otherwise be invisible to it.
            index_cls = _registry().get(state["index_cls"])
            process = self._ctx.Process(
                target=shard_worker_main,
                args=(child_conn, state, sid, lo, hi, index_cls),
                daemon=True,
                name=f"repro-shard-{sid}",
            )
            process.start()
            child_conn.close()
            return _WorkerHandle(process, parent_conn, req, resp, lo, hi)
        except BaseException:
            for lane in (req, resp):
                if lane is not None:
                    lane.close()
            for conn in (parent_conn, child_conn):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        note_teardown_error()
            if process is not None and process.is_alive():
                process.terminate()
                process.join(1.0)
            raise

    def _await_ready(self, sid: int) -> None:
        """Block until shard ``sid``'s worker reports ready."""
        reply = self._recv(sid)
        if reply[0] != "ready":
            raise ClusterError(
                f"shard {sid} worker failed to start: {reply!r}"
            )
        self._versions[sid] = int(reply[1])

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def attach_wal(self, store: Any) -> None:
        """Attach a :class:`repro.wal.WalStore`; upgrade to restart-on-crash.

        Every write chunk is logged per shard and group-committed *before*
        dispatch, and the store retains the committed tail in memory so a
        crashed worker can be respawned from its snapshot state plus a
        replay of its tail records. Periodic snapshots are taken at safe
        points (after a verb completes, no locks held) by pulling
        ``to_state`` from every worker.

        Parameters
        ----------
        store:
            An open :class:`repro.wal.WalStore`, already ``initialize``-d
            or ``recover``-ed to match this engine's current state.
        """
        if self._values_dtype == np.dtype(object):
            raise InvalidParameterError(
                "durability requires a fixed-width values dtype; object "
                "payloads have no WAL encoding"
            )
        store.set_retain_tail(True)
        store.bind(self._pull_states)
        self._wal = store

    def _pull_states(self) -> Dict[str, Any]:
        """Whole-engine snapshot pulled live from the workers (the
        state provider a bound ``WalStore`` snapshots from)."""
        shard_states = self._broadcast(("to_state",))
        return {
            "cuts": self.cuts.copy(),
            "auto_rowid": self._auto_rowid,
            "next_rowid": self._next_rowid,
            "shards": shard_states,
        }

    def _maybe_snapshot(self) -> None:
        """Roll a snapshot when the WAL is due (called at safe points,
        after a verb completed and with no worker locks held)."""
        if self._wal is None:
            return
        try:
            self._wal.maybe_snapshot()
        except ClusterError:
            # A worker died mid-pull: the previous generation's manifest
            # is still intact and the next verb will surface (and, with
            # durability on, recover) the crash. Skipping the snapshot
            # is always safe — the tail just stays longer.
            pass

    def _reap_worker(self, sid: int) -> None:
        """Tear down shard ``sid``'s dead/poisoned worker's resources."""
        worker = self._workers[sid]
        process = worker.process
        if process.is_alive():
            process.terminate()
        process.join(5.0)
        try:
            worker.conn.close()
        except OSError:
            note_teardown_error()
        worker.req.close()
        worker.resp.close()

    def _restore_worker(self, sid: int, *, skip_lsn: Optional[int] = None) -> None:
        """Respawn shard ``sid``'s worker from snapshot + WAL tail.

        The caller holds the worker's lock (or all locks). The dead
        process and its lanes are reaped, a fresh worker is rebuilt from
        the store's snapshot state for this shard, and the committed tail
        records owned by the shard are replayed through the normal verb
        frames — after which the worker is exactly where the crashed one
        durably was.

        Parameters
        ----------
        sid:
            The shard whose worker died.
        skip_lsn:
            A tail record to *exclude* from replay because the caller
            will re-send it as a live frame instead (a delete whose
            reply payload is still wanted).
        """
        if self._wal is None:
            raise self._crash(
                sid, "no durability store attached; cannot restore"
            )
        old = self._workers[sid]
        self._reap_worker(sid)
        state = self._wal.load_shard_state(sid)
        # The snapshot's version stamp may trail the versions the parent
        # already acknowledged; keep the engine-wide barrier monotonic.
        state["version"] = max(int(state["version"]), self._versions[sid])
        handle = self._spawn_worker(sid, state)
        # Callers hold the *old* handle's lock across this restore; the
        # new handle must keep the same lock object so that hold (and
        # every queued waiter) stays meaningful.
        handle.lock = old.lock
        handle.ipc = old.ipc
        self._workers[sid] = handle
        self._poisoned.discard(sid)
        self._await_ready(sid)
        for rec in self._wal.tail_ops(sid, skip_lsn=skip_lsn):
            self._replay_record(sid, rec)
        self._send(sid, ("stats",))
        reply = self._recv(sid)
        self._shard_ns[sid] = int(reply[2]["n"])
        self._n = sum(self._shard_ns)

    def _replay_record(self, sid: int, rec: Any) -> None:
        """Re-apply one committed tail record to a restored worker."""
        if rec.op == OP_INSERT:
            # Replays must not profile: the original dispatch already
            # recorded this batch, and a crash-restore would double it.
            self._send_insert(sid, rec.keys, rec.values, profile=False)
            self._recv(sid)
        elif rec.op == OP_DELETE:
            self._send_delete(sid, rec.keys, rec.missing, profile=False)
            try:
                self._recv(sid)
            except KeyNotFoundError:
                # Deterministic replay of a strict delete that failed
                # the first time fails identically; state matches.
                pass
        else:
            raise ClusterError(
                f"shard {sid} WAL tail holds unreplayable op {rec.op}"
            )

    def _register_telemetry(self, telemetry: Any) -> None:
        """Wire the cluster's counters and pull-based sources into the
        telemetry registry (called once from ``_boot``)."""
        reg = telemetry.registry
        ops = reg.counter(
            "repro_engine_ops_total", "Engine batch-verb calls.",
            labels=("op",),
        )
        keys_fam = reg.counter(
            "repro_engine_keys_total",
            "Keys processed by engine batch verbs.", labels=("op",),
        )
        self._obs_ops = {
            op: (ops.labels(op), keys_fam.labels(op))
            for op in ("get_batch", "range_batch", "insert_batch",
                       "delete_batch")
        }
        reg.register_callback(
            "repro_cluster_ipc", self._collect_ipc,
            "Cluster transport counters summed across workers.",
            labels=("counter",),
        )
        reg.register_callback(
            "repro_cluster_size", self._collect_size,
            "Cluster size gauges from parent-side cached state "
            "(no worker round-trip at collection time).",
            labels=("field",),
        )

    def _collect_ipc(self) -> Dict[str, float]:
        out = {
            key: sum(w.ipc[key] for w in self._workers)
            for key in ("batches", "pickle_fallbacks", "lane_growths")
        }
        out["teardown_errors"] = teardown_errors()
        return out

    def _collect_size(self) -> Dict[str, float]:
        return {
            "n": self._n,
            "n_shards": self.n_shards,
            "version": self.version,
            "workers_alive": sum(
                1 for w in self._workers if w.process.is_alive()
            ),
        }

    def _obs_count(self, op: str, n_keys: int) -> None:
        """Bump the op/key counters for one batch verb call (telemetry on)."""
        c_ops, c_keys = self._obs_ops[op]
        c_ops.inc()
        c_keys.inc(n_keys)

    def _merge_deltas(self, replies: Dict[int, Tuple]) -> None:
        """Fold the workers' workload-sketch deltas out of a round's replies.

        Profiled replies are 5-tuples whose last slot is either ``None``
        or a compact delta dict (see
        :meth:`repro.obs.ShardWorkloadProfiler.record`); unprofiled and
        trace-only replies are shorter and skipped untouched.
        """
        if self._workload is None:
            return
        for sid, reply in replies.items():
            if len(reply) > 4 and reply[4] is not None:
                self._workload.merge_delta(sid, reply[4])

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down and release all IPC resources.

        Sends each worker a shutdown frame, joins it for up to
        ``timeout`` seconds, terminates stragglers, then closes pipes and
        closes+unlinks the shared-memory lanes. Idempotent; the engine is
        unusable afterwards (operations raise
        :class:`~repro.cluster.errors.ClusterError`).
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                # Expected for already-dead workers; recorded, not silent.
                note_teardown_error()
        for worker in self._workers:
            process = worker.process
            process.join(timeout)
            if process.is_alive():  # pragma: no cover - hung worker path
                process.terminate()
                process.join(timeout)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - already closed
                note_teardown_error()
            worker.req.close()
            worker.resp.close()
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close(timeout=1.0)
        except (OSError, FileNotFoundError, BufferError):
            note_teardown_error()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ClusterError("engine is closed")

    def _crash(self, sid: int, detail: str = "") -> WorkerCrashedError:
        process = self._workers[sid].process
        return WorkerCrashedError(sid, process.exitcode, detail)

    def _send(self, sid: int, frame: Tuple) -> None:
        if sid in self._poisoned:
            raise ClusterError(
                f"shard {sid} worker is in an unknown state after an "
                "earlier timeout; the request/reply protocol cannot resync"
            )
        try:
            self._workers[sid].conn.send(frame)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise self._crash(sid, str(exc)) from exc

    def _recv(self, sid: int) -> Tuple:
        if sid in self._poisoned:
            raise ClusterError(
                f"shard {sid} worker is in an unknown state after an "
                "earlier timeout; the request/reply protocol cannot resync"
            )
        conn = self._workers[sid].conn
        try:
            if not conn.poll(self._op_timeout):
                # The worker may still reply later; one unconsumed reply
                # would desync every subsequent round, so this worker is
                # permanently poisoned rather than half-trusted.
                self._poisoned.add(sid)
                raise ClusterError(
                    f"shard {sid} worker unresponsive after "
                    f"{self._op_timeout}s"
                )
            reply = conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise self._crash(sid, str(exc)) from exc
        if reply[0] == "err":
            self._versions[sid] = max(self._versions[sid], int(reply[1]))
            raise reply[2]
        if reply[0] == "ok":
            self._versions[sid] = int(reply[1])
        return reply

    def _gather(
        self, sids, errors: Optional[Dict[int, BaseException]] = None
    ) -> Dict[int, Tuple]:
        """Collect one reply per shard in ``sids``, draining every pipe.

        Never stops at the first failure: a reply left in flight would be
        mistaken for the *next* operation's answer (one round behind —
        worse than an exception, it acknowledges fences that did not
        happen). All pipes are drained, then the first failure re-raises —
        unless ``errors`` is given, in which case failures are recorded
        per shard there and nothing raises (the durable-round path, which
        recovers failed shards instead of propagating).
        """
        replies: Dict[int, Tuple] = {}
        first_exc: Optional[BaseException] = None
        for sid in sids:
            try:
                replies[sid] = self._recv(sid)
            except BaseException as exc:
                if errors is not None:
                    errors[sid] = exc
                elif first_exc is None:
                    first_exc = exc
        if errors is None and first_exc is not None:
            raise first_exc
        return replies

    def _round(
        self, jobs, errors: Optional[Dict[int, BaseException]] = None
    ) -> Dict[int, Tuple]:
        """One fenced dispatch round: run every send thunk, drain every
        reply.

        ``jobs`` is a list of ``(sid, send_thunk)`` pairs. A failure in
        any thunk stops further sends, but replies for frames already on
        the wire are still drained (:meth:`_gather`) before the first
        failure re-raises — the invariant that keeps every worker's pipe
        exactly one request/one reply in step.

        With an ``errors`` dict, the round never raises: every send is
        *attempted* (a crashed shard must not abort its siblings' sends —
        their chunks are already logged and will be fenced), every live
        reply is drained, and per-shard failures land in ``errors``.
        """
        sent: List[int] = []
        send_exc: Optional[BaseException] = None
        for sid, send in jobs:
            try:
                send()
                sent.append(sid)
            except BaseException as exc:
                if errors is not None:
                    errors[sid] = exc
                    continue
                send_exc = exc
                break
        try:
            replies = self._gather(sent, errors)
        except BaseException:
            if send_exc is None:
                raise
            replies = {}
        if send_exc is not None:
            raise send_exc
        return replies

    def _round_durable(self, thunks: Dict[int, Any]) -> Dict[int, Tuple]:
        """A read round that restores crashed workers and retries once.

        ``thunks`` maps shard id → send thunk. Without a WAL this is a
        plain :meth:`_round`. With one, transport failures
        (:class:`ClusterError`) trigger a worker restore from
        snapshot + tail, then the restored shards' thunks re-run in one
        plain retry round — a second failure propagates. Worker-side
        application errors re-raise as themselves either way.
        """
        jobs = sorted(thunks.items())
        if self._wal is None:
            return self._round(jobs)
        errors: Dict[int, BaseException] = {}
        replies = self._round(jobs, errors)
        if not errors:
            return replies
        retry: List[int] = []
        for sid in sorted(errors):
            exc = errors[sid]
            if isinstance(exc, ClusterError):
                self._restore_worker(sid)
                retry.append(sid)
            else:
                raise exc
        replies.update(self._round([(sid, thunks[sid]) for sid in retry]))
        return replies

    def _ensure_lanes(self, sid: int, req_bytes: int, resp_bytes: int) -> None:
        worker = self._workers[sid]
        if worker.req.ensure(req_bytes):
            worker.ipc["lane_growths"] += 1
        if worker.resp.ensure(resp_bytes):
            worker.ipc["lane_growths"] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shard workers (== effective shard count)."""
        return len(self._workers)

    @property
    def version(self) -> int:
        """Monotonic engine-wide mutation stamp (sum of shard versions).

        Maintained from the version stamp every worker reply carries, so
        it moves exactly as the in-process engine's
        :attr:`~repro.engine.ShardedEngine.version` would — the serve
        layer's flush barrier works unchanged across the process hop.
        """
        return sum(self._versions)

    def shard_versions(self) -> Tuple[int, ...]:
        """Last-known per-shard version stamps (one per worker)."""
        return tuple(self._versions)

    def __len__(self) -> int:
        return self._n

    def stats(self) -> Dict[str, Any]:
        """Engine-level stats composed from live per-worker shard stats.

        Returns
        -------
        dict
            The backend-independent :meth:`ShardedEngine.stats` schema —
            same top-level keys, pinned by the ``tests/api`` stats-schema
            conformance suite. Aggregates (``n``, ``n_pages``,
            ``buffered_elements``, ``model_bytes``, ``page_rebuilds``)
            sum live worker shard stats exactly as the in-process engine
            sums its shards; ``workers`` (pid/alive per shard) and
            ``ipc`` (batch, pickle-fallback and lane-growth counters)
            are live here instead of the in-process zeros. The flat-view
            cache lives worker-side in this backend, so the parent-level
            ``view_*`` counters report zero.
        """
        self._check_open()
        from repro.obs import stats_sections

        workload, slow_ops = stats_sections(self._telemetry)
        per_shard = self._broadcast(("stats",))
        self._shard_ns = [int(s["n"]) for s in per_shard]
        self._n = sum(self._shard_ns)
        return {
            "backend": "cluster",
            "n": self._n,
            "n_shards": self.n_shards,
            "cuts": self.cuts.tolist(),
            "model_bytes": sum(s["model_bytes"] for s in per_shard)
            + 8 * self.cuts.size,
            "n_pages": sum(s["n_pages"] for s in per_shard),
            "buffered_elements": sum(s["buffered_elements"] for s in per_shard),
            "page_rebuilds": sum(s["page_rebuilds"] for s in per_shard),
            "view_hits": 0,
            "view_builds": 0,
            "view_hit_rate": 0.0,
            "view_patches": 0,
            "view_full_rebuilds": 0,
            "shards": per_shard,
            "workers": [
                {"pid": w.process.pid, "alive": w.process.is_alive()}
                for w in self._workers
            ],
            "ipc": {
                **{
                    key: sum(w.ipc[key] for w in self._workers)
                    for key in ("batches", "pickle_fallbacks", "lane_growths")
                },
                "teardown_errors": teardown_errors(),
            },
            "wal": None if self._wal is None else self._wal.stats(),
            "workload": workload,
            "slow_ops": slow_ops,
        }

    def warm(self) -> None:
        """Pre-build every worker's flattened read snapshot."""
        self._check_open()
        self._broadcast(("warm",))

    def validate(self) -> None:
        """Validate every shard in its worker, plus the routing invariant
        (each worker checks its keys stay inside its cut range)."""
        self._check_open()
        self._broadcast(("validate",))

    def _broadcast(self, frame: Tuple) -> List[Any]:
        """Send one frame to every worker; gather payloads in shard order."""
        self._acquire_all()
        try:
            replies = self._round(
                [
                    (sid, lambda sid=sid: self._send(sid, frame))
                    for sid in range(self.n_shards)
                ]
            )
            return [replies[sid][2] for sid in range(self.n_shards)]
        finally:
            self._release_all()

    def _acquire_all(self) -> None:
        for worker in self._workers:
            worker.lock.acquire()

    def _release_all(self) -> None:
        for worker in self._workers:
            if worker.lock.locked():
                worker.lock.release()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def route_shards(self, queries) -> np.ndarray:
        """Owning shard id per query key (vectorized; the dispatch split
        the serve layer's per-shard tasks use)."""
        return route(self.cuts, np.asarray(queries, dtype=np.float64))

    def get(self, key: float, default: Any = None) -> Any:
        """Scalar point lookup (a one-key batch through the owning worker)."""
        out = self.get_batch(np.asarray([key], dtype=np.float64), default)
        return out[0]

    def __contains__(self, key: float) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def get_batch(self, queries, default: Any = None) -> np.ndarray:
        """Vectorized point lookups fanned out across the shard workers.

        The batch is routed with one ``searchsorted`` over the cuts; each
        owning worker receives its whole sub-batch through its
        shared-memory lane, every worker computes concurrently (separate
        interpreters — no GIL serialization), and results scatter back
        into request order. Results are bit-identical to
        :meth:`ShardedEngine.get_batch`.

        Parameters
        ----------
        queries:
            Key batch, any array-like coercible to float64; order is
            preserved in the result.
        default:
            Value stored in the slot of every query with no match
            (parent-side only — it never crosses the process boundary).

        Returns
        -------
        numpy.ndarray
            One value per query: the values dtype when every query hits,
            else an object array with ``default`` in the miss slots.
        """
        self._check_open()
        q = np.ascontiguousarray(queries, dtype=np.float64)
        tel = self._telemetry
        if tel is None:
            return self._get_batch_impl(q, default, None)
        if tel.tracer is None:
            out = self._get_batch_impl(q, default, None)
        else:
            with tel.tracer.span("cluster.get_batch", n=int(q.size)) as sp:
                out = self._get_batch_impl(
                    q, default, (tel.tracer, (sp.trace_id, sp.span_id))
                )
        self._obs_count("get_batch", int(q.size))
        return out

    def _get_batch_impl(
        self, q: np.ndarray, default: Any, trace: Optional[Tuple]
    ) -> np.ndarray:
        """The fenced dispatch round behind :meth:`get_batch`.

        ``trace`` is ``None`` (untraced — wire format unchanged) or
        ``(tracer, (trace_id, parent_span_id))``: the context rides each
        ``get_batch`` frame, worker replies carry back their
        ``worker.compute`` spans for stitching, and the parent-side
        decode/scatter is recorded as a ``cluster.gather`` child span.
        """
        if q.size == 0:
            # Matches the in-process engine's warm combined-view path: an
            # empty batch over a populated engine keeps the values dtype.
            return np.empty(0, dtype=self._values_dtype if self._n else object)
        sid = route(self.cuts, q)
        groups: List[Tuple[int, np.ndarray]] = []
        for i in range(self.n_shards):
            idx = np.flatnonzero(sid == i)
            if idx.size:
                groups.append((i, idx))
        ctx = trace[1] if trace is not None else None
        self._acquire_all()
        try:
            replies = self._round_durable(
                {
                    i: (lambda i=i, idx=idx: self._send_get(i, q[idx], ctx))
                    for i, idx in groups
                }
            )
            self._merge_deltas(replies)
            if trace is not None:
                tracer = trace[0]
                for i, _idx in groups:
                    reply = replies[i]
                    if len(reply) > 3 and reply[3]:
                        tracer.ingest(reply[3])
                with tracer.span("cluster.gather", shards=len(groups)):
                    parts = [
                        (idx, self._decode_get(i, replies[i][2]))
                        for i, idx in groups
                    ]
                    return self._scatter(q.size, parts, default)
            parts = [
                (idx, self._decode_get(i, replies[i][2])) for i, idx in groups
            ]
            # Scatter while the locks pin the response lanes (the parts
            # hold zero-copy lane views).
            return self._scatter(q.size, parts, default)
        finally:
            self._release_all()

    def get_batch_shard(self, sid: int, queries, default: Any = None) -> np.ndarray:
        """One shard's sub-batch, answered through its worker alone.

        Safe to call from concurrent threads for *different* shards (the
        serve layer's per-shard dispatch tasks); calls for the same shard
        serialize on that worker's lock.

        Parameters
        ----------
        sid:
            Shard id (``0 <= sid < n_shards``); every query must route
            here for results to be meaningful.
        queries:
            This shard's key sub-batch.
        default:
            Miss filler, as in :meth:`get_batch`.

        Returns
        -------
        numpy.ndarray
            One value per query, exactly as :meth:`get_batch` would fill
            those slots.
        """
        self._check_open()
        q = np.ascontiguousarray(queries, dtype=np.float64)
        if q.size == 0:
            return np.empty(0, dtype=object)
        tel = self._telemetry
        # Ambient trace context, when any: present on the inline serve
        # dispatch path; executor threads carry an empty context, so the
        # threaded path stays traced only down to its dispatch span.
        ctx = tel.ctx() if tel is not None else None
        worker = self._workers[sid]
        with worker.lock:
            try:
                self._send_get(sid, q, ctx)
                reply = self._recv(sid)
            except ClusterError:
                if self._wal is None:
                    raise
                # Reads are idempotent: restore the worker and re-ask.
                self._restore_worker(sid)
                self._send_get(sid, q, ctx)
                reply = self._recv(sid)
            if ctx is not None and len(reply) > 3 and reply[3]:
                tel.tracer.ingest(reply[3])
            if (
                self._workload is not None
                and len(reply) > 4
                and reply[4] is not None
            ):
                self._workload.merge_delta(sid, reply[4])
            values, found = self._decode_get(sid, reply[2])
            return self._scatter(
                q.size, [(np.arange(q.size), (values, found))], default
            )

    def _send_get(
        self, sid: int, q: np.ndarray, trace_ctx: Optional[Tuple] = None
    ) -> None:
        worker = self._workers[sid]
        resp_bytes = q.size * (self._values_dtype.itemsize + 1) + 64
        self._ensure_lanes(sid, q.nbytes, resp_bytes)
        descr = worker.req.write([q])[0]
        worker.ipc["batches"] += 1
        frame: Tuple = ("get_batch", (worker.req.name, worker.resp.name), descr)
        if self._workload is not None:
            # Profiled frames always carry the trace slot (None when
            # untraced) so the workload flag sits at a fixed index.
            frame = frame + (trace_ctx, True)
        elif trace_ctx is not None:
            frame = frame + (trace_ctx,)
        self._send(sid, frame)

    def _decode_get(self, sid: int, payload: Tuple) -> Tuple[Any, Optional[np.ndarray]]:
        # Returned arrays are zero-copy views of the response lane; the
        # scatter into the caller's output array is the one copy they get
        # and happens before the lane is ever reused (ops are strict
        # request/reply rounds under the worker's lock).
        worker = self._workers[sid]
        if payload[0] == "shm":
            _, value_descrs, mask_descr = payload
            values = worker.resp.read(value_descrs)[0]
            if mask_descr is None:
                return values, None
            found = worker.resp.read([mask_descr])[0].view(np.bool_)
            return values, found
        _, values_list, found = payload  # pickle fallback (object payloads)
        worker.ipc["pickle_fallbacks"] += 1
        return values_list, found

    def _scatter(
        self, n: int, parts: List[Tuple[np.ndarray, Tuple[Any, Any]]], default: Any
    ) -> np.ndarray:
        all_found = all(found is None for _, (_, found) in parts)
        if all_found:
            dtypes = {np.asarray(values).dtype for _, (values, _) in parts}
            dtype = dtypes.pop() if len(dtypes) == 1 else np.dtype(object)
            out = np.empty(n, dtype=dtype)
            for idx, (values, _) in parts:
                out[idx] = values
            return out
        out = np.empty(n, dtype=object)
        out[:] = default
        for idx, (values, found) in parts:
            if found is None:
                out[idx] = values
            else:
                hit = idx[np.asarray(found)]
                if isinstance(values, list):  # pickle fallback payload
                    vals = [v for v, f in zip(values, found) if f]
                    for slot, v in zip(hit, vals):
                        out[slot] = v
                else:
                    out[hit] = values[np.asarray(found)]
        return out

    # ------------------------------------------------------------------
    # Range scans
    # ------------------------------------------------------------------

    def range_items(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[float, Any]]:
        """Scalar-compatible range scan stitched across workers in key order."""
        keys, values = self.range_arrays(lo, hi, include_lo, include_hi)
        for k, v in zip(keys, values):
            yield float(k), v

    def range_arrays(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One range query, answered as ``(keys, values)`` arrays."""
        flo = -math.inf if lo is None else float(lo)
        fhi = math.inf if hi is None else float(hi)
        results = self.range_batch(
            np.asarray([[flo, fhi]]), include_lo, include_hi
        )
        return results[0]

    def range_batch(
        self,
        bounds,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One ``(keys, values)`` pair per ``[lo, hi]`` row of ``bounds``.

        Each worker receives only the bounds overlapping its cut range
        (through its request lane), scans them against its shard
        concurrently with the others, and replies with its contributions
        (concatenated rows + per-bound counts through the response lane);
        the parent stitches per-bound results in shard order, which is
        key order. Results match :meth:`ShardedEngine.range_batch`.

        Parameters
        ----------
        bounds:
            ``(n, 2)`` array-like of inclusive ``[lo, hi]`` key bounds.
        include_lo, include_hi:
            Bound inclusivity, applied to every scan in the batch.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            For each bounds row, the matching ``(keys, values)`` arrays
            in key order.
        """
        self._check_open()
        bounds = np.asarray(bounds, dtype=np.float64)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise InvalidParameterError("bounds must be an (n, 2) array")
        n_bounds = bounds.shape[0]
        if n_bounds == 0:
            return []
        first = route(self.cuts, bounds[:, 0])
        last = route(self.cuts, bounds[:, 1])
        jobs: List[Tuple[int, np.ndarray]] = []
        for sid in range(self.n_shards):
            idx = np.flatnonzero((first <= sid) & (sid <= last))
            if idx.size:
                jobs.append((sid, idx))
        self._acquire_all()
        try:
            raw = self._round_durable(
                {
                    sid: (
                        lambda sid=sid, idx=idx: self._send_ranges(
                            sid, bounds[idx], include_lo, include_hi
                        )
                    )
                    for sid, idx in jobs
                }
            )
            self._merge_deltas(raw)
            replies = [
                (sid, idx, self._decode_ranges(sid, raw[sid][2]))
                for sid, idx in jobs
            ]
        finally:
            self._release_all()
        parts: List[List[Tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(n_bounds)
        ]
        for _sid, idx, results in replies:  # shard order == key order
            for bound_pos, (k, v) in zip(idx, results):
                parts[bound_pos].append((k, v))
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for contributions in parts:
            if not contributions:
                out.append(
                    (
                        np.empty(0, dtype=np.float64),
                        np.empty(0, dtype=self._values_dtype),
                    )
                )
            elif len(contributions) == 1:
                out.append(contributions[0])
            else:
                out.append(
                    (
                        np.concatenate([k for k, _ in contributions]),
                        np.concatenate([v for _, v in contributions]),
                    )
                )
        if self._telemetry is not None:
            self._obs_count("range_batch", n_bounds)
        return out

    def _send_ranges(
        self, sid: int, sub_bounds: np.ndarray, include_lo: bool, include_hi: bool
    ) -> None:
        worker = self._workers[sid]
        los = np.ascontiguousarray(sub_bounds[:, 0])
        his = np.ascontiguousarray(sub_bounds[:, 1])
        self._ensure_lanes(sid, los.nbytes + his.nbytes + 64, 0)
        descr = worker.req.write([los, his])
        worker.ipc["batches"] += 1
        frame: Tuple = (
            "range_batch",
            (worker.req.name, worker.resp.name),
            descr,
            include_lo,
            include_hi,
        )
        if self._workload is not None:
            frame = frame + (True,)
        self._send(sid, frame)

    def _decode_ranges(
        self, sid: int, payload: Tuple
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        worker = self._workers[sid]
        if payload[0] == "pickle":
            worker.ipc["pickle_fallbacks"] += 1
            results = payload[1]
            # The worker fell back because the reply outgrew the response
            # lane (or carried object values). Numeric overflows are the
            # common case for wide scans: grow the lane now so the next
            # comparable reply takes the zero-copy path (the worker
            # re-attaches by name from the next frame).
            needed = 64 + 24 * len(results) + sum(
                k.nbytes + v.nbytes
                for k, v in results
                if v.dtype != np.dtype(object)
            )
            has_object = any(
                v.dtype == np.dtype(object) for _, v in results
            )
            if not has_object and worker.resp.ensure(needed):
                worker.ipc["lane_growths"] += 1
            return results
        _, descrs, _values_dtype = payload
        counts, all_keys, all_values = worker.resp.read(descrs)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        out = []
        for i in range(counts.size):
            a, b = int(offsets[i]), int(offsets[i + 1])
            out.append((np.array(all_keys[a:b]), np.array(all_values[a:b])))
        return out

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _resolve_batch_values(self, keys: np.ndarray, values) -> np.ndarray:
        if values is None:
            if not self._auto_rowid:
                raise InvalidParameterError(
                    "this engine stores explicit values; insert_batch "
                    "requires aligned values"
                )
            out = np.arange(
                self._next_rowid, self._next_rowid + keys.size, dtype=np.int64
            )
            self._next_rowid += keys.size
            return out
        return aligned_value_array(keys.size, values)

    def insert(self, key: float, value: Any = None) -> None:
        """Scalar insert (engine-level row id when built without values)."""
        if value is None:
            if not self._auto_rowid:
                raise InvalidParameterError(
                    "this engine stores typed values; insert(key, value) "
                    "requires an explicit value"
                )
            value = self._next_rowid
            self._next_rowid += 1
        self._insert_sorted(
            np.asarray([float(key)], dtype=np.float64),
            aligned_value_array(1, [value]),
        )

    def insert_batch(self, keys, values=None) -> None:
        """Bulk batch insert: route once, apply per worker under one fence.

        The batch is stable-sorted and cut into one contiguous sub-batch
        per shard exactly as :meth:`ShardedEngine.insert_batch` does; each
        owning worker applies its chunk through the same vectorized
        per-page merge path, and the call returns only after *every*
        owning worker has acknowledged — the per-batch fence that makes a
        subsequent read see the write regardless of which process served
        it. The engine-wide :attr:`version` stamp advances with the
        acknowledgements. Empty batches are a strict no-op.

        Parameters
        ----------
        keys:
            Keys to insert, any order, any array-like coercible to
            float64.
        values:
            Aligned payloads; ``None`` assigns engine-wide auto row ids
            in request order (only on engines built without explicit
            values).
        """
        self._check_open()
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.size == 0:
            return
        values = self._resolve_batch_values(keys, values)
        order = np.argsort(keys, kind="stable")
        self._insert_sorted(keys[order], values[order])
        if self._telemetry is not None:
            self._obs_count("insert_batch", int(keys.size))

    def _insert_sorted(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._check_open()
        jobs = [
            (sid, a, b)
            for sid, (a, b) in enumerate(shard_bounds(keys, self.cuts))
            if a < b
        ]
        wal = self._wal
        if wal is not None:
            # Log + group-commit every chunk BEFORE dispatch: once the
            # fsync returns, a worker crash anywhere below replays the
            # chunk from the tail instead of losing it.
            for sid, a, b in jobs:
                wal.log_insert(sid, keys[a:b], values[a:b])
            wal.commit(self._next_rowid)
        thunks = {
            sid: (
                lambda sid=sid, a=a, b=b: self._send_insert(
                    sid, keys[a:b], values[a:b]
                )
            )
            for sid, a, b in jobs
        }
        self._acquire_all()
        try:
            # The fence: every owning worker has replied (i.e. applied its
            # chunk) before this returns — and every reply is drained even
            # on failure, so the pipes never fall a round behind.
            if wal is None:
                try:
                    self._merge_deltas(self._round(sorted(thunks.items())))
                except BaseException:
                    # Some chunks may have applied before the failure;
                    # resync the cached element count from the live
                    # workers (ShardedEngine counts partial applies too —
                    # len() must agree).
                    self._resync_len()
                    raise
                for sid, a, b in jobs:
                    self._shard_ns[sid] += b - a
                self._n = sum(self._shard_ns)
            else:
                errors: Dict[int, BaseException] = {}
                self._merge_deltas(
                    self._round(sorted(thunks.items()), errors)
                )
                if errors:
                    app_exc: Optional[BaseException] = None
                    for sid in sorted(errors):
                        exc = errors[sid]
                        if isinstance(exc, ClusterError):
                            # The restore replays the full committed tail
                            # — including this round's chunk, so the
                            # insert is applied, not lost.
                            self._restore_worker(sid)
                        elif app_exc is None:
                            app_exc = exc
                    self._resync_len()
                    if app_exc is not None:
                        raise app_exc
                else:
                    for sid, a, b in jobs:
                        self._shard_ns[sid] += b - a
                    self._n = sum(self._shard_ns)
        finally:
            self._release_all()
        self._maybe_snapshot()

    def _resync_len(self) -> None:
        """Recount ``_n`` from every *live* worker (caller holds every
        worker lock involved in the failed round).

        Queries each live, unpoisoned shard independently so one dead
        worker cannot veto the whole recount (the bug that used to leave
        ``len(engine)`` desynced after a partially-applied round: the
        all-shards round raised on the dead shard and the old count
        survived). Dead/poisoned shards keep their last-known
        ``_shard_ns`` entry — refreshed on restore or the next
        successful :meth:`stats` call."""
        errors: Dict[int, BaseException] = {}
        replies = self._round(
            [
                (sid, lambda sid=sid: self._send(sid, ("stats",)))
                for sid in range(self.n_shards)
                if sid not in self._poisoned
                and self._workers[sid].process.is_alive()
            ],
            errors,
        )
        for sid, reply in replies.items():
            self._shard_ns[sid] = int(reply[2]["n"])
        self._n = sum(self._shard_ns)

    def delete(self, key: float) -> Any:
        """Scalar delete (a one-key fenced batch through the owning worker).

        Raises :class:`~repro.core.errors.KeyNotFoundError` when absent,
        exactly as :meth:`ShardedEngine.delete` does.
        """
        out = self.delete_batch(np.asarray([key], dtype=np.float64))
        return out[0]

    def delete_batch(
        self, keys, *, missing: str = "raise", default: Any = None
    ) -> np.ndarray:
        """Bulk batch delete: route once, remove per worker under one fence.

        The batch is stable-sorted and cut into one contiguous sub-batch
        per shard exactly as :meth:`ShardedEngine.delete_batch` does; each
        owning worker removes its chunk through the same vectorized
        per-page splice path and replies with the deleted values (plus a
        found mask under ``missing="ignore"``), and the call returns only
        after *every* owning worker has acknowledged — the same per-batch
        fence as inserts, so a subsequent read cannot see a deleted key.
        Results and post-delete state are bit-identical to the in-process
        engine's. Empty batches are a strict no-op.

        Parameters
        ----------
        keys:
            Keys to delete, any order, any array-like coercible to
            float64; each element removes one occurrence.
        missing:
            ``"raise"`` (default) re-raises the owning worker's
            :class:`~repro.core.errors.KeyNotFoundError` (removals
            already applied — including by other workers in the same
            round — stay applied); ``"ignore"`` records misses.
        default:
            Value filling the miss slots under ``missing="ignore"``
            (parent-side only — it never crosses the process boundary).

        Returns
        -------
        numpy.ndarray
            One deleted value per request in request order: the values
            dtype when every request hit, else an object array with
            ``default`` in the miss slots.
        """
        self._check_open()
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.size == 0:
            return np.empty(0, dtype=object)
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        jobs = [
            (sid, a, b)
            for sid, (a, b) in enumerate(shard_bounds(skeys, self.cuts))
            if a < b
        ]
        wal = self._wal
        lsns: Dict[int, int] = {}
        if wal is not None:
            # Log + group-commit before dispatch, exactly as for inserts.
            for sid, a, b in jobs:
                lsns[sid] = wal.log_delete(sid, skeys[a:b], missing)
            wal.commit(self._next_rowid)
        chunk = {sid: (a, b) for sid, a, b in jobs}
        thunks = {
            sid: (
                lambda sid=sid, a=a, b=b: self._send_delete(
                    sid, skeys[a:b], missing
                )
            )
            for sid, a, b in jobs
        }
        resynced = False
        self._acquire_all()
        try:
            if wal is None:
                try:
                    replies = self._round(sorted(thunks.items()))
                except BaseException:
                    # Some chunks may have applied before the failure
                    # (their replies were drained); recount from the
                    # live workers.
                    self._resync_len()
                    raise
            else:
                errors: Dict[int, BaseException] = {}
                replies = self._round(sorted(thunks.items()), errors)
                app_exc: Optional[BaseException] = None
                lost: List[int] = []
                for sid in sorted(errors):
                    exc = errors[sid]
                    if not isinstance(exc, ClusterError):
                        if app_exc is None:
                            app_exc = exc
                        continue
                    # The crashed worker took the reply payload (the
                    # deleted values) with it. Restore it *without*
                    # replaying this round's record, then re-send the
                    # chunk live to recover the values too.
                    try:
                        self._restore_worker(sid, skip_lsn=lsns[sid])
                        a, b = chunk[sid]
                        self._send_delete(sid, skeys[a:b], missing)
                        replies[sid] = self._recv(sid)
                    except ClusterError:
                        # Crashed again mid-retry: restore with the full
                        # tail (the deletion is durably applied) and
                        # report the lost payload as a typed,
                        # non-retryable error.
                        self._restore_worker(sid)
                        lost.append(sid)
                    except BaseException as exc2:
                        if app_exc is None:
                            app_exc = exc2
                if errors:
                    self._resync_len()
                    resynced = True
                if app_exc is not None:
                    raise app_exc
                if lost:
                    raise WorkerRecoveredError(
                        lost[0],
                        detail="deleted values lost in crash; the "
                        "deletions themselves are durably applied — "
                        "do not retry",
                    )
            self._merge_deltas(replies)
            parts = [
                (order[a:b], self._decode_get(sid, replies[sid][2]))
                for sid, a, b in jobs
            ]
            # Scatter and count hits while the locks pin the response
            # lanes (the parts hold zero-copy lane views).
            out = self._scatter(keys.size, parts, default)
            hits = {
                sid: (
                    idx.size
                    if found is None
                    else int(np.asarray(found).sum())
                )
                for (sid, _a, _b), (idx, (_values, found)) in zip(jobs, parts)
            }
        finally:
            self._release_all()
        if not resynced:
            for sid, n_hits in hits.items():
                self._shard_ns[sid] -= n_hits
            self._n = sum(self._shard_ns)
        if self._telemetry is not None:
            self._obs_count("delete_batch", int(keys.size))
        self._maybe_snapshot()
        return out

    def _send_delete(
        self, sid: int, keys: np.ndarray, missing: str,
        profile: bool = True,
    ) -> None:
        worker = self._workers[sid]
        resp_bytes = keys.size * (self._values_dtype.itemsize + 1) + 64
        self._ensure_lanes(sid, keys.nbytes, resp_bytes)
        descr = worker.req.write([keys])[0]
        worker.ipc["batches"] += 1
        frame: Tuple = (
            "delete_batch",
            (worker.req.name, worker.resp.name),
            descr,
            missing,
        )
        if profile and self._workload is not None:
            frame = frame + (True,)
        self._send(sid, frame)

    def _send_insert(
        self, sid: int, keys: np.ndarray, values: np.ndarray,
        profile: bool = True,
    ) -> None:
        worker = self._workers[sid]
        worker.ipc["batches"] += 1
        if values.dtype == np.dtype(object):
            worker.ipc["pickle_fallbacks"] += 1
            self._ensure_lanes(sid, keys.nbytes + 64, 0)
            keys_descr = worker.req.write([keys])[0]
            frame: Tuple = (
                "insert_batch",
                (worker.req.name, worker.resp.name),
                keys_descr,
                None,
                # The object ndarray itself, NOT a list: a list would be
                # re-coerced worker-side (e.g. to a unicode dtype),
                # changing what gets stored vs the in-process engine.
                values,
            )
        else:
            self._ensure_lanes(sid, keys.nbytes + values.nbytes + 64, 0)
            keys_descr, values_descr = worker.req.write([keys, values])
            frame = (
                "insert_batch",
                (worker.req.name, worker.resp.name),
                keys_descr,
                values_descr,
                None,
            )
        if profile and self._workload is not None:
            frame = frame + (True,)
        self._send(sid, frame)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"ClusterEngine(n={self._n}, workers={len(self._workers)}, "
            f"{state})"
        )
