"""The per-shard worker process: rebuild one shard, serve its batch verbs.

Each worker owns exactly one range shard — a paged index rebuilt from the
parent's :meth:`~repro.core.paged_index.PagedIndexBase.to_state` snapshot
(one bulk pass, no re-segmentation) — and runs a blocking request/reply
loop over a ``multiprocessing`` pipe. Bulk payloads travel through the
parent-owned shared-memory lanes (:mod:`repro.cluster.shm`); the pipe
carries only control frames.

Protocol (parent → worker), one reply per frame:

==============  ====================================================
``get_batch``   answer a key batch; replies values + found mask.
                A traced frame appends ``(trace_id, parent_span_id)``
                and its reply appends recorded span dicts
                (:func:`repro.obs.trace.span_record`) — untraced
                frames and replies keep their original 3-tuple shape
``range_batch`` answer ``[lo, hi]`` scans; replies concatenated rows
``insert_batch``  apply a sorted per-shard chunk (the write fence:
                the reply is not sent until the mutation is applied)
``delete_batch``  remove a sorted per-shard chunk under the same fence;
                replies deleted values + found mask (get_batch encoding)
``stats``       the shard index's ``stats()`` dict
``warm``        pre-build the shard's flattened read snapshot
``validate``    full shard validation + routing-range check
``shutdown``    clean exit (replies ``("bye",)`` first)
==============  ====================================================

Workload profiling extends every batch verb the same way tracing
extends ``get_batch``: the parent appends a truthy flag as one extra
frame element (after the trace slot for ``get_batch``, after the verb's
base elements otherwise), the worker folds the batch through its
:class:`~repro.obs.workload.ShardWorkloadProfiler`, and the reply
widens to ``("ok", version, payload, spans_or_None, delta_or_None)`` —
the compact sketch delta rides the pipe exactly like span dicts do.
Unflagged frames and their replies keep their original shapes, so the
telemetry-off wire format stays byte-identical.

Every reply carries the shard's monotonic ``version`` stamp, so the
parent-side engine can maintain the engine-wide version barrier the serve
layer's read-your-writes logic depends on. Per-op exceptions are caught
and shipped back pickled (an invalid parameter is the same error on either
side of the process boundary); the loop itself only exits on ``shutdown``
or when the parent disappears (pipe EOF).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.cluster.shm import ShmLane, attach_lane
from repro.cluster.snapshot import index_from_state
from repro.core.errors import InvalidParameterError
from repro.core.page import exact_typed_array
from repro.obs.trace import span_record
from repro.obs.workload import ShardWorkloadProfiler

__all__ = ["shard_worker_main"]

#: Worker-local miss sentinel for ``get_batch`` (never crosses the pipe).
_MISS = object()


class _ShardServer:
    """One worker's state: the rebuilt shard index plus cached lanes."""

    def __init__(
        self,
        state: Dict[str, Any],
        lo: Optional[float],
        hi: Optional[float],
        shard_id: int = -1,
    ):
        self.index = index_from_state(state)
        self.values_dtype = np.dtype(state["values_dtype"])
        self.lo = lo  # owning cut range, for validate()
        self.hi = hi
        self.shard_id = shard_id  # stamped into traced-reply spans
        self._lanes: Dict[str, Tuple[str, ShmLane]] = {}
        self._workload: Optional[ShardWorkloadProfiler] = None

    def workload_delta(self, verb: str, keys: np.ndarray) -> Dict[str, Any]:
        """Fold one batch through the shard profiler; return its delta.

        The profiler is created on the first flagged frame (seeded with
        the shard's owning cut range, so inner shards bin over their
        exact span from the start) — workers whose parent never enables
        workload profiling pay nothing.
        """
        if self._workload is None:
            self._workload = ShardWorkloadProfiler(self.lo, self.hi)
        return self._workload.record(verb, keys)

    # -- lanes ---------------------------------------------------------

    def lane(self, side: str, name: str) -> ShmLane:
        """The request/response lane named in a frame, (re-)attached lazily.

        The parent may reallocate a lane to grow it; a changed name means
        the old block is gone, so the stale attachment is dropped.
        """
        cached = self._lanes.get(side)
        if cached is not None and cached[0] == name:
            return cached[1]
        if cached is not None:
            cached[1].close()
        lane = attach_lane(name)
        self._lanes[side] = (name, lane)
        return lane

    def close_lanes(self) -> None:
        """Drop every cached lane attachment (worker-exit cleanup)."""
        for _, lane in self._lanes.values():
            lane.close()
        self._lanes.clear()

    # -- verbs ---------------------------------------------------------

    def get_batch(self, q: np.ndarray):
        """Values + found mask for one key batch.

        Parameters
        ----------
        q:
            This shard's float64 key sub-batch (may alias the request
            lane; reads never mutate).

        Returns
        -------
        tuple
            ``(values, found)`` — ``found`` is ``None`` when every query
            hit (the all-numeric fast shape), else a bool mask.
        """
        result = self.index.get_batch(q, _MISS)
        if result.dtype != np.dtype(object):
            return result, None
        found = np.fromiter(
            (v is not _MISS for v in result), dtype=bool, count=result.size
        )
        return result, found

    def encode_get_reply(self, resp: ShmLane, result, found):
        """Encode a get_batch answer into the response lane.

        Numeric results go through shared memory (values array + packed
        mask); anything the shard's dtype cannot hold — buffered object
        payloads — falls back to a pickled ``(values_list, mask)`` pair.
        """
        if found is None:
            descr = resp.write([result])
            return ("shm", descr, None)
        values = np.zeros(result.size, dtype=self.values_dtype)
        hits = result[found] if found.any() else result[:0]
        # Shared exactness rule (exact_typed_array): the cast must be
        # value-preserving (NaN payloads allowed), otherwise the payload
        # is not really numeric — e.g. the string '123' parses but must
        # come back as a string, not 123.
        cast = exact_typed_array(hits, self.values_dtype)
        if cast is None:
            payload = [v if f else None for v, f in zip(result, found)]
            return ("pickle", payload, found)
        if hits.size:
            values[found] = cast
        descr = resp.write([values, found.view(np.uint8)])
        return ("shm", descr[:1], descr[1])

    def range_batch(self, los, his, include_lo: bool, include_hi: bool):
        """Per-bound (keys, values) contributions from this shard.

        Parameters
        ----------
        los, his:
            Aligned per-bound lower/upper keys (float64, may alias the
            request lane).

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            This shard's matching rows per bound, in key order.
        """
        from repro.engine.batch import flat_view

        view = flat_view(self.index)
        out = []
        for lo, hi in zip(los, his):
            out.append(view.range_arrays(float(lo), float(hi), include_lo, include_hi))
        return out

    def encode_range_reply(self, resp: ShmLane, results):
        """Encode range results: concatenated keys/values + per-bound counts.

        Falls back to pickled per-bound arrays when the payload outgrows
        the response lane or the values are object-dtyped.
        """
        counts = np.asarray([k.size for k, _ in results], dtype=np.int64)
        if results:
            all_keys = np.concatenate([k for k, _ in results])
            all_values = np.concatenate([v for _, v in results])
        else:
            all_keys = np.empty(0, dtype=np.float64)
            all_values = np.empty(0, dtype=self.values_dtype)
        arrays = [counts, all_keys, all_values]
        if (
            all_values.dtype != np.dtype(object)
            and ShmLane.required_bytes(arrays) <= resp.capacity
        ):
            return ("shm", resp.write(arrays), str(all_values.dtype.str))
        return ("pickle", results, None)

    def validate(self) -> None:
        """Shard validation plus the engine routing invariant, vectorized."""
        self.index.validate()
        arrays = self.index.flat_arrays()
        for keys in (arrays["keys"], arrays["buf_keys"]):
            if keys.size == 0:
                continue
            if self.lo is not None and float(keys.min()) < self.lo:
                raise InvalidParameterError(
                    f"shard holds key {keys.min()} below cut {self.lo}"
                )
            if self.hi is not None and float(keys.max()) >= self.hi:
                raise InvalidParameterError(
                    f"shard holds key {keys.max()} at/above cut {self.hi}"
                )

    def warm(self) -> None:
        """Pre-build the flattened read snapshot (first-batch latency)."""
        from repro.engine.batch import flat_view

        flat_view(self.index)


def shard_worker_main(
    conn: Any,
    state: Dict[str, Any],
    shard_id: int,
    lo: Optional[float],
    hi: Optional[float],
    index_cls: Any = None,
) -> None:
    """Entry point of one shard worker process (the ``Process`` target).

    Parameters
    ----------
    conn:
        The worker end of the control pipe.
    state:
        The shard's ``to_state`` snapshot to rebuild from.
    shard_id:
        This shard's id (error reporting only).
    lo, hi:
        The shard's owning cut range (``None`` = unbounded), checked by
        the ``validate`` verb.
    index_cls:
        The shard's index class, resolved parent-side. Registered here
        before the rebuild so downstream classes work under ``spawn``
        too (a spawned child re-imports with a freshly seeded registry;
        the parent's ``register_index_class`` calls are not inherited).
    """
    try:
        if index_cls is not None:
            from repro.cluster.snapshot import register_index_class

            register_index_class(index_cls)
        server = _ShardServer(state, lo, hi, shard_id)
    except BaseException as exc:  # surface rebuild failures to the parent
        try:
            conn.send(("err", 0, exc))
        finally:
            conn.close()
        return
    conn.send(("ready", server.index.version))
    try:
        while True:
            try:
                frame = conn.recv()
            except EOFError:  # parent died; nothing left to serve
                break
            verb = frame[0]
            if verb == "shutdown":
                conn.send(("bye",))
                break
            try:
                reply = _dispatch(server, frame)
            except BaseException as exc:
                reply = ("err", server.index.version, exc)
            try:
                conn.send(reply)
            except Exception:  # unpicklable reply payload
                conn.send(("err", server.index.version,
                           RuntimeError(f"unpicklable {verb} reply")))
    finally:
        server.close_lanes()
        conn.close()


def _dispatch(server: _ShardServer, frame: Tuple) -> Tuple:
    """Execute one control frame; return the reply tuple."""
    verb = frame[0]
    if verb == "get_batch":
        _, (req_name, resp_name), q_descr = frame[:3]
        # A traced frame carries (trace_id, parent_span_id) as a fourth
        # element; untraced frames keep the original 3-tuple shape so the
        # telemetry-off wire format is byte-identical to before. A fifth
        # element flags workload profiling (the trace slot is then
        # explicitly None when untraced).
        trace_ctx = frame[3] if len(frame) > 3 else None
        profile = len(frame) > 4 and frame[4]
        req = server.lane("req", req_name)
        resp = server.lane("resp", resp_name)
        (q,) = req.read([q_descr])
        if trace_ctx is None and not profile:
            result, found = server.get_batch(q)
            payload = server.encode_get_reply(resp, result, found)
            return ("ok", server.index.version, payload)
        t0 = time.perf_counter()
        result, found = server.get_batch(q)
        compute_s = time.perf_counter() - t0
        payload = server.encode_get_reply(resp, result, found)
        delta = server.workload_delta("get", q) if profile else None
        spans = None
        if trace_ctx is not None:
            spans = [
                span_record(
                    "worker.compute",
                    trace_ctx,
                    t0,
                    compute_s,
                    shard=server.shard_id,
                    pid=os.getpid(),
                    n=int(q.size),
                )
            ]
        if delta is None:
            return ("ok", server.index.version, payload, spans)
        return ("ok", server.index.version, payload, spans, delta)
    if verb == "range_batch":
        _, (req_name, resp_name), bounds_descr, include_lo, include_hi = (
            frame[:5]
        )
        profile = len(frame) > 5 and frame[5]
        req = server.lane("req", req_name)
        resp = server.lane("resp", resp_name)
        los, his = req.read(bounds_descr)
        results = server.range_batch(los, his, include_lo, include_hi)
        payload = server.encode_range_reply(resp, results)
        if not profile:
            return ("ok", server.index.version, payload)
        delta = server.workload_delta("range", los)
        return ("ok", server.index.version, payload, None, delta)
    if verb == "delete_batch":
        _, (req_name, resp_name), keys_descr, miss_mode = frame[:4]
        profile = len(frame) > 4 and frame[4]
        req = server.lane("req", req_name)
        resp = server.lane("resp", resp_name)
        (keys_view,) = req.read([keys_descr])
        keys = np.array(keys_view)  # own the memory before mutating state
        result = server.index.delete_batch(
            keys, missing=miss_mode, default=_MISS
        )
        if result.dtype != np.dtype(object):
            found = None
        else:
            found = np.fromiter(
                (v is not _MISS for v in result), dtype=bool, count=result.size
            )
        payload = server.encode_get_reply(resp, result, found)
        if not profile:
            return ("ok", server.index.version, payload)
        delta = server.workload_delta("delete", keys)
        return ("ok", server.index.version, payload, None, delta)
    if verb == "insert_batch":
        _, (req_name, _resp_name), keys_descr, values_descr, pickled = (
            frame[:5]
        )
        profile = len(frame) > 5 and frame[5]
        req = server.lane("req", req_name)
        (keys_view,) = req.read([keys_descr])
        keys = np.array(keys_view)  # own the memory before mutating state
        if values_descr is not None:
            (values_view,) = req.read([values_descr])
            values = np.array(values_view)
        else:
            values = pickled
        server.index.insert_batch(keys, values)
        if not profile:
            return ("ok", server.index.version, None)
        delta = server.workload_delta("insert", keys)
        return ("ok", server.index.version, None, None, delta)
    if verb == "stats":
        return ("ok", server.index.version, server.index.stats())
    if verb == "to_state":
        # Snapshot for the durability layer: the full ``to_state`` dict
        # rides the pipe (pickle) — snapshots are rare, size over speed.
        return ("ok", server.index.version, server.index.to_state())
    if verb == "warm":
        server.warm()
        return ("ok", server.index.version, None)
    if verb == "validate":
        server.validate()
        return ("ok", server.index.version, None)
    raise ValueError(f"unknown verb {verb!r}")
