"""Typed failures of the multi-process cluster layer."""

from __future__ import annotations

__all__ = ["ClusterError", "WorkerCrashedError", "WorkerRecoveredError"]


class ClusterError(RuntimeError):
    """A cluster-level failure: a worker process died, stopped responding,
    or the engine was used after :meth:`~repro.cluster.ClusterEngine.close`.

    Deliberately distinct from the index-level exceptions in
    :mod:`repro.core.errors`: those are re-raised transparently when a
    worker reports them (an invalid parameter is an invalid parameter on
    either side of the process boundary), whereas a ``ClusterError`` means
    the *transport* failed and shard state on the other side is unknown.
    """


class WorkerCrashedError(ClusterError):
    """A shard's worker process exited or broke its pipe mid-conversation.

    Carries ``shard`` (the shard id) and ``exitcode`` (the process's exit
    code, or ``None`` if it is unjoined/hung) so callers can report which
    range of the key space became unavailable.
    """

    def __init__(self, shard: int, exitcode=None, detail: str = "") -> None:
        self.shard = shard
        self.exitcode = exitcode
        message = f"worker for shard {shard} crashed (exitcode={exitcode})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class WorkerRecoveredError(ClusterError):
    """A worker crashed mid-write and was restored, but its reply was lost.

    Raised only on durable engines: the shard's worker was successfully
    respawned from snapshot + WAL and the write in flight **is durably
    applied** (``applied`` is always True — the record was committed to
    the log before dispatch and replayed during the restore). What was
    lost is the *reply payload* (e.g. the deleted values a
    ``delete_batch`` would have returned). Callers must NOT blindly
    retry the write — it already happened; re-issuing it would apply it
    twice. Reads may simply be re-issued.
    """

    def __init__(self, shard: int, detail: str = "") -> None:
        self.shard = shard
        self.applied = True
        message = (
            f"worker for shard {shard} crashed and was restored; the "
            "write is applied but its reply was lost"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)
