"""Typed failures of the multi-process cluster layer."""

from __future__ import annotations

__all__ = ["ClusterError", "WorkerCrashedError"]


class ClusterError(RuntimeError):
    """A cluster-level failure: a worker process died, stopped responding,
    or the engine was used after :meth:`~repro.cluster.ClusterEngine.close`.

    Deliberately distinct from the index-level exceptions in
    :mod:`repro.core.errors`: those are re-raised transparently when a
    worker reports them (an invalid parameter is an invalid parameter on
    either side of the process boundary), whereas a ``ClusterError`` means
    the *transport* failed and shard state on the other side is unknown.
    """


class WorkerCrashedError(ClusterError):
    """A shard's worker process exited or broke its pipe mid-conversation.

    Carries ``shard`` (the shard id) and ``exitcode`` (the process's exit
    code, or ``None`` if it is unjoined/hung) so callers can report which
    range of the key space became unavailable.
    """

    def __init__(self, shard: int, exitcode=None, detail: str = "") -> None:
        self.shard = shard
        self.exitcode = exitcode
        message = f"worker for shard {shard} crashed (exitcode={exitcode})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
