"""Shard snapshots: the in-memory serialization the cluster ships to workers.

The heavy lifting lives on the indexes themselves —
:meth:`repro.core.paged_index.PagedIndexBase.to_state` exports one shard as
a dict of flat NumPy arrays plus build parameters, and ``from_state``
rebuilds it with one bulk pass (no re-segmentation) — and the
class-dispatch registry is shared with the on-disk format in
:mod:`repro.core.serialize` (:func:`index_from_state` /
:func:`register_index_class` are re-exported from there, so a class
registered once both persists and clusters). This module adds the one
piece only a *cluster* needs:

* :func:`engine_to_states` — snapshot every shard of a live
  :class:`~repro.engine.ShardedEngine` along with the routing cuts and
  row-id counter, i.e. everything :class:`~repro.cluster.ClusterEngine`
  needs to spawn one worker per shard and then drop the in-process copy.

Snapshots are value copies: once a worker rebuilds from one, parent and
worker states evolve independently (the cluster keeps them consistent by
routing every mutation through the workers).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.serialize import index_from_state, register_index_class

__all__ = ["index_from_state", "engine_to_states", "register_index_class"]


def engine_to_states(engine: Any) -> Dict[str, Any]:
    """Snapshot a whole :class:`~repro.engine.ShardedEngine` for clustering.

    Captures per-shard states plus the engine-level routing and write
    bookkeeping (cuts, auto-rowid flag, next row id), which is exactly
    what the parent side of a :class:`~repro.cluster.ClusterEngine` keeps
    after the shards themselves move into worker processes.

    Returns
    -------
    dict
        ``{"cuts", "auto_rowid", "next_rowid", "shards": [state, ...]}``.
    """
    shard_states: List[Dict[str, Any]] = [
        shard.to_state() for shard in engine.shards
    ]
    return {
        "cuts": engine.cuts.copy(),
        "auto_rowid": engine._auto_rowid,
        "next_rowid": engine._next_rowid,
        "shards": shard_states,
    }
