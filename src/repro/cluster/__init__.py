"""Multi-process shard executors with a shared-memory batch protocol.

Layer 2.5 of the stack: the in-process :class:`~repro.engine.ShardedEngine`
is GIL-bound — every shard's vectorized work serializes on one core — so
this package moves each range shard into its own worker process while
keeping the exact engine API, letting the serving stack scale with the
machine:

* :mod:`~repro.cluster.snapshot` — ship a shard: class-dispatching
  rebuild of :meth:`~repro.core.paged_index.PagedIndexBase.to_state`
  snapshots (no re-segmentation), plus whole-engine snapshot extraction;
* :mod:`~repro.cluster.shm` — the zero-copy transport: named
  shared-memory lanes batch keys and numeric results cross process
  boundaries through (pickle fallback for object payloads);
* :mod:`~repro.cluster.worker` — the per-shard worker loop dispatching
  the engine's vectorized batch verbs with per-batch fences;
* :mod:`~repro.cluster.engine` — :class:`ClusterEngine`, the parent-side
  facade with the full :class:`~repro.engine.ShardedEngine` surface
  (``get_batch`` / ``range_batch`` / ``insert_batch`` / ``stats`` /
  ``warm`` / ``version`` + scalar mirrors), so
  :class:`repro.serve.Server` runs over it unchanged;
* :mod:`~repro.cluster.errors` — :class:`ClusterError` /
  :class:`WorkerCrashedError` / :class:`WorkerRecoveredError`, the typed
  transport failures.

With a :class:`repro.wal.WalStore` attached (``ClusterEngine.attach_wal``
or ``open_engine(durability=...)``), every write chunk is logged and
group-committed *before* dispatch, and a crashed worker is **restarted**
from snapshot + WAL tail instead of surfacing a terminal
:class:`WorkerCrashedError`: reads retry transparently, inserts replay
from the log, and a delete whose reply died with the worker raises the
typed :class:`WorkerRecoveredError` (the deletion *is* applied — only
the returned values were lost).

Quickstart::

    engine = ClusterEngine(keys, n_shards=4, error=128)
    values = engine.get_batch(queries)      # computed on 4 cores
    engine.close()                          # or use it as a context manager

``python -m repro.bench cluster`` benchmarks in-process vs cluster
dispatch at 1/2/4 workers and writes ``BENCH_cluster.json``.
"""

from repro.cluster.engine import ClusterEngine
from repro.cluster.errors import (
    ClusterError,
    WorkerCrashedError,
    WorkerRecoveredError,
)
from repro.cluster.shm import ShmLane, attach_lane, teardown_errors
from repro.cluster.snapshot import (
    engine_to_states,
    index_from_state,
    register_index_class,
)

__all__ = [
    "ClusterEngine",
    "ClusterError",
    "ShmLane",
    "WorkerCrashedError",
    "WorkerRecoveredError",
    "attach_lane",
    "engine_to_states",
    "index_from_state",
    "register_index_class",
    "teardown_errors",
]
