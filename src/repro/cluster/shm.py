"""Shared-memory batch lanes: zero-copy NumPy transport between processes.

The cluster's IPC splits every exchange into a tiny *control frame* (a
pickled tuple over a ``multiprocessing`` pipe: the verb, array layout
descriptors, fence/version stamps) and a bulk *payload* that never touches
the pickler: the arrays themselves live in a ``multiprocessing.shared_memory``
block both sides map, so a batch of query keys — or a batch of result
values — crosses the process boundary as one ``memcpy`` in, zero copies
across, and one gather out.

:class:`ShmLane` is one direction of that channel: a named shared-memory
arena the owning side writes arrays into back-to-back (16-byte aligned)
and the peer reads as NumPy views. Lanes are single-flight by protocol —
the writer never reuses a lane until the peer's reply frame arrives — so
no ring indices or locks are needed; "ring" behavior falls out of the
strict request/reply alternation. When a payload outgrows a lane the
*owner* reallocates a bigger block and the next control frame carries the
new name (:meth:`ShmLane.ensure`); the peer re-attaches lazily by name.
Payloads that have no flat numeric representation (object dtypes, oversized
worker replies) fall back to pickling inside the control frame — slower,
never wrong.

CPython < 3.13 registers *attached* segments with the per-process
``resource_tracker`` as if it owned them, which makes a worker's exit
unlink memory the parent still maps (and spams leak warnings).
:func:`attach_lane` therefore unregisters the segment right after
attaching — only the creating side may unlink.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "ShmLane",
    "aligned_offset",
    "attach_lane",
    "DEFAULT_LANE_CAPACITY",
    "note_teardown_error",
    "teardown_errors",
]

#: Default lane size: comfortably holds a 64k-key float64 batch plus masks.
DEFAULT_LANE_CAPACITY = 1 << 20

#: Array start alignment inside a lane (bytes).
_ALIGN = 16

#: Layout descriptor for one array in a lane: (dtype.str, length, offset).
Descriptor = Tuple[str, int, int]


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def aligned_offset(offset: int) -> int:
    """The next 16-byte-aligned offset at or after ``offset``.

    This is the lane layout rule — arrays pack back-to-back at aligned
    starts — exported so the wire codec in :mod:`repro.net.frame` lays
    batch payloads out exactly like a lane does.
    """
    return _aligned(offset)


class ShmLane:
    """One direction of the zero-copy channel: a named shared-memory arena.

    Parameters
    ----------
    capacity:
        Size in bytes of the freshly created block (owner side).
    shm:
        Internal — an already-attached ``SharedMemory`` (see
        :func:`attach_lane`); ``capacity`` is ignored when given.
    """

    def __init__(self, capacity: int = DEFAULT_LANE_CAPACITY, *, shm=None) -> None:
        if shm is None:
            shm = shared_memory.SharedMemory(create=True, size=int(capacity))
            self._owner = True
        else:
            self._owner = False
        self._shm = shm

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The block's system-wide name (what the peer attaches by)."""
        return self._shm.name

    @property
    def capacity(self) -> int:
        """Usable bytes in the current block."""
        return self._shm.size

    @staticmethod
    def required_bytes(arrays: Sequence[np.ndarray]) -> int:
        """Bytes :meth:`write` needs for ``arrays`` (alignment included)."""
        total = 0
        for arr in arrays:
            total = _aligned(total) + arr.nbytes
        return total

    def ensure(self, nbytes: int) -> bool:
        """Grow the lane to hold ``nbytes`` (owner side only).

        Reallocates a fresh block (old one unlinked) when the current one
        is too small; the caller must ship the new :attr:`name` to the
        peer in the next control frame. Growth doubles, so a traffic
        spike costs O(log spike) reallocations, not one per batch.

        Returns
        -------
        bool
            True when the lane was reallocated (the name changed).
        """
        if not self._owner:
            raise ValueError("only the owning side may grow a lane")
        if nbytes <= self.capacity:
            return False
        new_capacity = max(self.capacity, 1)
        while new_capacity < nbytes:
            new_capacity *= 2
        _dispose(self._shm, unlink=True)
        self._shm = shared_memory.SharedMemory(create=True, size=new_capacity)
        return True

    # ------------------------------------------------------------------

    def write(self, arrays: Sequence[np.ndarray]) -> List[Descriptor]:
        """Copy ``arrays`` into the lane back-to-back; return the layout.

        Each input must be 1-D with a non-object dtype. The returned
        descriptors — ``(dtype.str, length, offset)`` triples — are what
        the control frame carries so :meth:`read` on the other side can
        reconstruct zero-copy views. Raises ``ValueError`` when the lane
        is too small (callers :meth:`ensure` first, or fall back to
        pickling).
        """
        offset = 0
        descriptors: List[Descriptor] = []
        buf = self._shm.buf
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            if arr.dtype == np.dtype(object):
                raise ValueError("object dtype has no shm representation")
            offset = _aligned(offset)
            end = offset + arr.nbytes
            if end > self.capacity:
                raise ValueError(
                    f"lane overflow: need {end} bytes, have {self.capacity}"
                )
            view = np.frombuffer(
                buf, dtype=arr.dtype, count=arr.size, offset=offset
            )
            view[:] = arr
            descriptors.append((arr.dtype.str, int(arr.size), offset))
            offset = end
        return descriptors

    def read(self, descriptors: Sequence[Descriptor]) -> List[np.ndarray]:
        """Zero-copy NumPy views over arrays previously :meth:`write`-ten.

        The views alias shared memory owned by the peer's current batch:
        consume them before sending the reply frame (or copy), never after.
        """
        out: List[np.ndarray] = []
        for dtype_str, length, offset in descriptors:
            out.append(
                np.frombuffer(
                    self._shm.buf,
                    dtype=np.dtype(dtype_str),
                    count=length,
                    offset=offset,
                )
            )
        return out

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the block; the owning side also unlinks it. Idempotent.

        Tolerates outstanding NumPy views (:meth:`read` hands out aliases
        of the mapping): unlinking proceeds regardless, and the unmap
        itself completes when the last view is garbage-collected.
        """
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        _dispose(shm, unlink=self._owner)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except (OSError, FileNotFoundError, BufferError):
            note_teardown_error()


#: Blocks whose unmap was deferred because NumPy views still alias them.
#: Kept referenced (so no __del__ mid-flight) and re-tried opportunistically.
_ZOMBIES: List["shared_memory.SharedMemory"] = []

#: Teardown failures swallowed across the cluster transport (lane close,
#: pipe close, shutdown sends to dead workers). Silent ``except: pass``
#: blocks used to hide these; now every swallow increments this counter,
#: surfaced as ``stats()["ipc"]["teardown_errors"]`` and the
#: ``cluster.teardown_errors`` obs metric.
_TEARDOWN_ERRORS = {"count": 0}


def note_teardown_error() -> None:
    """Record one swallowed teardown failure (cluster-wide counter)."""
    _TEARDOWN_ERRORS["count"] += 1


def teardown_errors() -> int:
    """Teardown failures swallowed so far in this process.

    Returns
    -------
    int
        The running count of swallowed lane/pipe/process teardown
        errors since import.
    """
    return _TEARDOWN_ERRORS["count"]


def _dispose(shm, unlink: bool) -> None:
    """Close (best-effort) and optionally unlink one SharedMemory block.

    A block with live NumPy views cannot unmap yet (``BufferError``); it
    is parked in ``_ZOMBIES`` and re-closed once its views are collected.
    Unlinking is independent of unmapping and always proceeds for owners.
    """
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
    try:
        shm.close()
    except BufferError:
        _ZOMBIES.append(shm)
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    for zombie in _ZOMBIES[:]:
        if zombie is shm:
            continue
        try:
            zombie.close()
        except BufferError:
            continue
        _ZOMBIES.remove(zombie)


def attach_lane(name: str) -> ShmLane:
    """Attach to a peer-owned lane by name (worker side).

    CPython < 3.13 registers the attachment with the ``resource_tracker``
    as if this process owned it. Worker processes share the parent's
    tracker (the fd is inherited at fork/spawn), so the duplicate
    registration is a set no-op there and needs no correction; but if
    this process runs its *own* tracker — attaching from an unrelated
    process tree — the segment is unregistered again so this side's exit
    cannot unlink memory the owner still maps.
    """
    shared_tracker = _tracker_running()
    shm = shared_memory.SharedMemory(name=name)
    if not shared_tracker:
        try:  # pragma: no cover - unrelated-process-tree path
            resource_tracker.unregister(shm._name, "shared_memory")
        except (OSError, FileNotFoundError, BufferError, KeyError):
            note_teardown_error()
    return ShmLane(shm=shm)


def _tracker_running() -> bool:
    """Whether a resource tracker connection already exists here — i.e.
    one was inherited from the lane's owner (the normal worker case: both
    fork and spawn children share the parent's tracker fd). Must be
    checked *before* attaching, which would spawn a fresh tracker."""
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    return tracker is not None and getattr(tracker, "_fd", None) is not None
