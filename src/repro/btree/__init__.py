"""In-memory B+ tree substrate (the STX-tree stand-in from the paper).

Every tree-backed index in this repository — the FITing-Tree itself, the
dense "Full" baseline, and the sparse "Fixed" baseline — is built on
:class:`~repro.btree.btree.BPlusTree`, mirroring the paper's requirement
that the underlying tree implementation be held constant across comparisons.
"""

from repro.btree.btree import BPlusTree, DEFAULT_BRANCHING
from repro.btree.node import InnerNode, LeafNode

__all__ = ["BPlusTree", "DEFAULT_BRANCHING", "InnerNode", "LeafNode"]
