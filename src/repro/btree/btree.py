"""An in-memory B+ tree: the ordered-map substrate under every tree index here.

The paper builds the FITing-Tree on top of an off-the-shelf STX B+ tree and
stresses that the *same* tree implementation must back the approximate index
and both baselines (full/dense and fixed-page/sparse) for a fair comparison.
This module is that substrate: a textbook B+ tree with

* point ``get``/``insert``/``delete`` (delete with borrow/merge rebalancing),
* predecessor / successor queries (``floor_item`` / ``ceiling_item``) —
  the query the FITing-Tree uses to locate the segment owning a key,
* ordered range iteration over a doubly linked leaf chain,
* one-pass bulk loading with a configurable fill factor,
* modeled size accounting (8-byte keys/pointers, as in the paper's Section 6),
* optional access counting for the latency simulator (:mod:`repro.memsim`).

Keys may be any mutually comparable values; the library mostly uses Python
floats/ints (numpy scalars are converted by callers).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import (
    EmptyIndexError,
    InvalidParameterError,
    InvariantViolationError,
    KeyNotFoundError,
    NotSortedError,
)
from repro.btree.node import InnerNode, LeafNode

__all__ = ["BPlusTree", "DEFAULT_BRANCHING"]

#: Default inner-node fanout ``b``. 16 children * 16 bytes/entry keeps an
#: inner node within a few cache lines, matching the flavor of the paper's
#: in-memory setting without pretending to model a specific CPU.
DEFAULT_BRANCHING = 16


class BPlusTree:
    """A B+ tree mapping unique, mutually comparable keys to arbitrary values.

    Parameters
    ----------
    branching:
        Maximum number of children of an inner node (the fanout ``b`` in the
        paper's cost model). Must be at least 3.
    leaf_capacity:
        Maximum number of entries in a leaf. Defaults to ``branching``.
    counter:
        Optional access counter (see :class:`repro.memsim.AccessCounter`).
        When set, every node touched during a descent is recorded via
        ``counter.tree_node()`` — one random memory access in the paper's
        cost model.
    """

    def __init__(
        self,
        branching: int = DEFAULT_BRANCHING,
        leaf_capacity: Optional[int] = None,
        counter: Any = None,
    ) -> None:
        if branching < 3:
            raise InvalidParameterError(f"branching must be >= 3, got {branching}")
        if leaf_capacity is None:
            leaf_capacity = branching
        if leaf_capacity < 2:
            raise InvalidParameterError(
                f"leaf_capacity must be >= 2, got {leaf_capacity}"
            )
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.counter = counter
        self._root: Any = None
        self._size = 0
        self._first_leaf: Optional[LeafNode] = None

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    @property
    def _min_leaf_keys(self) -> int:
        return self.leaf_capacity // 2

    @property
    def _min_inner_children(self) -> int:
        return (self.branching + 1) // 2

    def _visit(self, node: Any) -> None:
        if self.counter is not None:
            self.counter.tree_node()

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def clear(self) -> None:
        """Remove every entry, resetting to an empty tree."""
        self._root = None
        self._size = 0
        self._first_leaf = None

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------

    def _descend(self, key: Any) -> Tuple[LeafNode, List[Tuple[InnerNode, int]]]:
        """Walk from the root to the leaf owning ``key``.

        Returns the leaf plus the path of ``(inner_node, child_index)`` pairs
        taken, which insert/delete use to propagate splits and merges.
        """
        path: List[Tuple[InnerNode, int]] = []
        node = self._root
        while not node.is_leaf:
            self._visit(node)
            idx = bisect_right(node.keys, key)
            path.append((node, idx))
            node = node.children[idx]
        self._visit(node)
        return node, path

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Return the value stored for ``key``, or ``default`` if absent."""
        if self._root is None:
            return default
        leaf, _ = self._descend(key)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            return leaf.values[i]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __getitem__(self, key: Any) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyNotFoundError(key)
        return value

    def floor_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the ``(k, v)`` pair with the greatest ``k <= key``.

        This is the query a FITing-Tree issues to find the segment that owns
        a lookup key. Returns ``None`` when every key is greater than
        ``key`` (or the tree is empty).
        """
        if self._root is None:
            return None
        leaf, _ = self._descend(key)
        i = bisect_right(leaf.keys, key) - 1
        if i >= 0:
            return leaf.keys[i], leaf.values[i]
        prev = leaf.prev_leaf
        if prev is None:
            return None
        self._visit(prev)
        return prev.keys[-1], prev.values[-1]

    def lower_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the ``(k, v)`` pair with the greatest ``k < key`` (strict)."""
        if self._root is None:
            return None
        leaf, _ = self._descend(key)
        i = bisect_left(leaf.keys, key) - 1
        if i >= 0:
            return leaf.keys[i], leaf.values[i]
        prev = leaf.prev_leaf
        if prev is None:
            return None
        self._visit(prev)
        return prev.keys[-1], prev.values[-1]

    def higher_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the ``(k, v)`` pair with the smallest ``k > key`` (strict)."""
        if self._root is None:
            return None
        leaf, _ = self._descend(key)
        i = bisect_right(leaf.keys, key)
        if i < len(leaf.keys):
            return leaf.keys[i], leaf.values[i]
        nxt = leaf.next_leaf
        if nxt is None:
            return None
        self._visit(nxt)
        return nxt.keys[0], nxt.values[0]

    def ceiling_item(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Return the ``(k, v)`` pair with the smallest ``k >= key``."""
        if self._root is None:
            return None
        leaf, _ = self._descend(key)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys):
            return leaf.keys[i], leaf.values[i]
        nxt = leaf.next_leaf
        if nxt is None:
            return None
        self._visit(nxt)
        return nxt.keys[0], nxt.values[0]

    def min_item(self) -> Tuple[Any, Any]:
        """Return the smallest ``(k, v)`` pair. Raises on an empty tree."""
        if self._first_leaf is None:
            raise EmptyIndexError("min_item() on empty tree")
        leaf = self._first_leaf
        return leaf.keys[0], leaf.values[0]

    def max_item(self) -> Tuple[Any, Any]:
        """Return the largest ``(k, v)`` pair. Raises on an empty tree."""
        if self._root is None:
            raise EmptyIndexError("max_item() on empty tree")
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield every ``(k, v)`` pair in ascending key order."""
        leaf = self._first_leaf
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def keys(self) -> Iterator[Any]:
        for k, _ in self.items():
            yield k

    def values(self) -> Iterator[Any]:
        for _, v in self.items():
            yield v

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def range_items(
        self,
        lo: Any = None,
        hi: Any = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(k, v)`` pairs with ``lo <= k <= hi`` in ascending order.

        ``None`` bounds are open-ended; inclusivity of each bound is
        controlled independently.
        """
        if self._root is None:
            return
        if lo is None:
            leaf: Optional[LeafNode] = self._first_leaf
            i = 0
        else:
            leaf, _ = self._descend(lo)
            i = (bisect_left if include_lo else bisect_right)(leaf.keys, lo)
        while leaf is not None:
            keys = leaf.keys
            n = len(keys)
            while i < n:
                k = keys[i]
                if hi is not None:
                    if k > hi or (not include_hi and k == hi):
                        return
                yield k, leaf.values[i]
                i += 1
            leaf = leaf.next_leaf
            i = 0

    def items_from_floor(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Yield pairs in order, starting at the greatest key ``<= key``.

        If no key is ``<= key``, iteration starts at the smallest key. Used
        by range scans that must begin inside the segment owning ``key``.
        """
        if self._root is None:
            return
        leaf, _ = self._descend(key)
        i = bisect_right(leaf.keys, key) - 1
        if i < 0:
            prev = leaf.prev_leaf
            if prev is not None:
                leaf, i = prev, len(prev.keys) - 1
            else:
                i = 0
        while leaf is not None:
            while i < len(leaf.keys):
                yield leaf.keys[i], leaf.values[i]
                i += 1
            leaf = leaf.next_leaf
            i = 0

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> bool:
        """Upsert ``key -> value``. Returns True if the key was new."""
        if self._root is None:
            leaf = LeafNode()
            leaf.keys.append(key)
            leaf.values.append(value)
            self._root = leaf
            self._first_leaf = leaf
            self._size = 1
            self._visit(leaf)
            return True

        leaf, path = self._descend(key)
        i = bisect_left(leaf.keys, key)
        if i < len(leaf.keys) and leaf.keys[i] == key:
            leaf.values[i] = value
            return False
        leaf.keys.insert(i, key)
        leaf.values.insert(i, value)
        self._size += 1
        if len(leaf.keys) > self.leaf_capacity:
            self._split_leaf(leaf, path)
        return True

    def __setitem__(self, key: Any, value: Any) -> None:
        self.insert(key, value)

    def _split_leaf(self, leaf: LeafNode, path: List[Tuple[InnerNode, int]]) -> None:
        mid = len(leaf.keys) // 2
        right = LeafNode()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        del leaf.keys[mid:]
        del leaf.values[mid:]
        right.next_leaf = leaf.next_leaf
        if right.next_leaf is not None:
            right.next_leaf.prev_leaf = right
        right.prev_leaf = leaf
        leaf.next_leaf = right
        self._insert_in_parent(leaf, right.keys[0], right, path)

    def _insert_in_parent(
        self,
        left: Any,
        sep: Any,
        right: Any,
        path: List[Tuple[InnerNode, int]],
    ) -> None:
        while True:
            if not path:
                root = InnerNode()
                root.keys = [sep]
                root.children = [left, right]
                self._root = root
                return
            parent, idx = path.pop()
            parent.keys.insert(idx, sep)
            parent.children.insert(idx + 1, right)
            if len(parent.children) <= self.branching:
                return
            mid = len(parent.keys) // 2
            sep = parent.keys[mid]
            new_right = InnerNode()
            new_right.keys = parent.keys[mid + 1 :]
            new_right.children = parent.children[mid + 1 :]
            del parent.keys[mid:]
            del parent.children[mid + 1 :]
            left, right = parent, new_right

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key: Any) -> Any:
        """Remove ``key`` and return its value. Raises if the key is absent."""
        if self._root is None:
            raise KeyNotFoundError(key)
        leaf, path = self._descend(key)
        i = bisect_left(leaf.keys, key)
        if i >= len(leaf.keys) or leaf.keys[i] != key:
            raise KeyNotFoundError(key)
        value = leaf.values[i]
        del leaf.keys[i]
        del leaf.values[i]
        self._size -= 1
        self._rebalance_after_delete(leaf, path)
        return value

    def __delitem__(self, key: Any) -> None:
        self.delete(key)

    def pop(self, key: Any, default: Any = ...) -> Any:
        """Remove ``key`` returning its value, or ``default`` if absent."""
        try:
            return self.delete(key)
        except KeyNotFoundError:
            if default is ...:
                raise
            return default

    def _rebalance_after_delete(
        self, node: Any, path: List[Tuple[InnerNode, int]]
    ) -> None:
        while True:
            if not path:
                # node is the root.
                if node.is_leaf:
                    if not node.keys:
                        self._root = None
                        self._first_leaf = None
                elif len(node.children) == 1:
                    self._root = node.children[0]
                return

            underflow = (
                len(node.keys) < self._min_leaf_keys
                if node.is_leaf
                else len(node.children) < self._min_inner_children
            )
            if not underflow:
                return

            parent, idx = path.pop()
            if node.is_leaf:
                done = self._fix_leaf_underflow(parent, idx)
            else:
                done = self._fix_inner_underflow(parent, idx)
            if done:
                return
            node = parent

    def _fix_leaf_underflow(self, parent: InnerNode, idx: int) -> bool:
        """Borrow from or merge with a sibling leaf. True if parent is fine."""
        node: LeafNode = parent.children[idx]
        left: Optional[LeafNode] = parent.children[idx - 1] if idx > 0 else None
        right: Optional[LeafNode] = (
            parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        )

        if left is not None and len(left.keys) > self._min_leaf_keys:
            node.keys.insert(0, left.keys.pop())
            node.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = node.keys[0]
            return True
        if right is not None and len(right.keys) > self._min_leaf_keys:
            node.keys.append(right.keys.pop(0))
            node.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
            return True

        # Merge with a sibling (prefer the left one).
        if left is not None:
            dst, src, sep_idx = left, node, idx - 1
        else:
            assert right is not None  # every non-root node has a sibling
            dst, src, sep_idx = node, right, idx
        dst.keys.extend(src.keys)
        dst.values.extend(src.values)
        dst.next_leaf = src.next_leaf
        if src.next_leaf is not None:
            src.next_leaf.prev_leaf = dst
        del parent.keys[sep_idx]
        del parent.children[sep_idx + 1]
        return False

    def _fix_inner_underflow(self, parent: InnerNode, idx: int) -> bool:
        """Borrow/merge for an inner child. True if parent needs no more work."""
        node: InnerNode = parent.children[idx]
        left: Optional[InnerNode] = parent.children[idx - 1] if idx > 0 else None
        right: Optional[InnerNode] = (
            parent.children[idx + 1] if idx + 1 < len(parent.children) else None
        )

        if left is not None and len(left.children) > self._min_inner_children:
            node.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            node.children.insert(0, left.children.pop())
            return True
        if right is not None and len(right.children) > self._min_inner_children:
            node.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            node.children.append(right.children.pop(0))
            return True

        if left is not None:
            dst, src, sep_idx = left, node, idx - 1
        else:
            assert right is not None
            dst, src, sep_idx = node, right, idx
        dst.keys.append(parent.keys[sep_idx])
        dst.keys.extend(src.keys)
        dst.children.extend(src.children)
        del parent.keys[sep_idx]
        del parent.children[sep_idx + 1]
        return False

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    def bulk_load(self, pairs: Iterable[Tuple[Any, Any]], fill: float = 1.0) -> None:
        """Build the tree in one bottom-up pass from sorted ``(key, value)`` pairs.

        Parameters
        ----------
        pairs:
            ``(key, value)`` pairs in strictly ascending key order.
        fill:
            Target node occupancy in ``(0, 1]`` — e.g. the paper's cost model
            assumes ``f = 0.5``. Leaves are packed to ``fill * leaf_capacity``
            entries and inner nodes to ``fill * branching`` children; a
            too-small trailing node is rebalanced with its left sibling so the
            result satisfies ``validate()``.

        Raises
        ------
        InvalidParameterError
            If the tree is non-empty or ``fill`` is out of range.
        NotSortedError
            If keys are not strictly ascending.
        """
        if self._root is not None:
            raise InvalidParameterError("bulk_load requires an empty tree")
        if not (0.0 < fill <= 1.0):
            raise InvalidParameterError(f"fill must be in (0, 1], got {fill}")

        # Targets are clamped to [minimum occupancy, capacity]: a fill factor
        # below the B+ tree minimum cannot be honoured without violating the
        # structural invariants, so such nodes are packed at the minimum.
        leaf_target = min(
            self.leaf_capacity,
            max(2, self._min_leaf_keys, round(self.leaf_capacity * fill)),
        )
        inner_target = min(
            self.branching,
            max(2, self._min_inner_children, round(self.branching * fill)),
        )

        # Level 0: build the leaf chain.
        leaves: List[LeafNode] = []
        current = LeafNode()
        prev_key: Any = None
        first = True
        for key, value in pairs:
            if not first and not prev_key < key:
                raise NotSortedError(
                    f"bulk_load keys must be strictly ascending; "
                    f"saw {prev_key!r} then {key!r}"
                )
            first = False
            prev_key = key
            if len(current.keys) >= leaf_target:
                leaves.append(current)
                nxt = LeafNode()
                current.next_leaf = nxt
                nxt.prev_leaf = current
                current = nxt
            current.keys.append(key)
            current.values.append(value)

        if first:
            return  # no pairs: stay empty
        leaves.append(current)

        # Fix a trailing leaf that would violate minimum occupancy: merge it
        # into its predecessor when the pair fits in one leaf (always true
        # at fill <= 0.5, where an even split would leave both underfull),
        # otherwise split the pair evenly.
        if len(leaves) > 1 and len(leaves[-1].keys) < self._min_leaf_keys:
            a, b = leaves[-2], leaves[-1]
            if len(a.keys) + len(b.keys) <= self.leaf_capacity:
                a.keys.extend(b.keys)
                a.values.extend(b.values)
                a.next_leaf = None
                leaves.pop()
            else:
                all_keys = a.keys + b.keys
                all_values = a.values + b.values
                half = len(all_keys) // 2
                a.keys, b.keys = all_keys[:half], all_keys[half:]
                a.values, b.values = all_values[:half], all_values[half:]

        self._first_leaf = leaves[0]
        self._size = sum(len(leaf.keys) for leaf in leaves)

        # Upper levels: group children until a single root remains.
        level: List[Any] = leaves
        min_keys = [leaf.keys[0] for leaf in leaves]
        while len(level) > 1:
            parents: List[InnerNode] = []
            parent_min_keys: List[Any] = []
            i = 0
            n = len(level)
            while i < n:
                take = min(inner_target, n - i)
                # Avoid leaving a too-small trailing parent: absorb the tail
                # into this node if it fits, otherwise keep enough behind.
                remaining = n - i - take
                if 0 < remaining < self._min_inner_children:
                    if take + remaining <= self.branching:
                        take += remaining
                    else:
                        take = take + remaining - self._min_inner_children
                node = InnerNode()
                node.children = level[i : i + take]
                node.keys = min_keys[i + 1 : i + take]
                parents.append(node)
                parent_min_keys.append(min_keys[i])
                i += take
            level = parents
            min_keys = parent_min_keys
        self._root = level[0]

    # ------------------------------------------------------------------
    # Structure statistics
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Number of levels (0 for an empty tree, 1 for a lone leaf)."""
        h = 0
        node = self._root
        while node is not None:
            h += 1
            node = None if node.is_leaf else node.children[0]
        return h

    def _walk_nodes(self) -> Iterator[Any]:
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    def node_counts(self) -> Tuple[int, int]:
        """Return ``(n_inner_nodes, n_leaf_nodes)``."""
        inner = leaves = 0
        for node in self._walk_nodes():
            if node.is_leaf:
                leaves += 1
            else:
                inner += 1
        return inner, leaves

    def model_bytes(self) -> int:
        """Modeled index size: 8-byte keys and pointers, no Python overhead."""
        return sum(node.model_bytes() for node in self._walk_nodes())

    # ------------------------------------------------------------------
    # Validation (tests call this after every mutation pattern)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every structural invariant; raise InvariantViolationError.

        Checked invariants: uniform leaf depth, sorted keys inside nodes,
        child/separator counts, occupancy bounds (root exempt), separator
        consistency with subtree key ranges, leaf-chain integrity and global
        ordering, and the cached size.
        """
        if self._root is None:
            if self._size != 0 or self._first_leaf is not None:
                raise InvariantViolationError("empty tree with leftover state")
            return

        leaf_depths = set()
        chain_leaves: List[LeafNode] = []

        def check(node: Any, depth: int, lo: Any, hi: Any) -> None:
            keys = node.keys
            for a, b in zip(keys, keys[1:]):
                if not a < b:
                    raise InvariantViolationError(f"unsorted keys in {node!r}")
            if keys:
                if lo is not None and keys[0] < lo:
                    raise InvariantViolationError("key below separator bound")
                if hi is not None and not keys[-1] < hi:
                    raise InvariantViolationError("key above separator bound")
            if node.is_leaf:
                leaf_depths.add(depth)
                if node is not self._root and len(keys) < self._min_leaf_keys:
                    raise InvariantViolationError("leaf underflow")
                if len(keys) > self.leaf_capacity:
                    raise InvariantViolationError("leaf overflow")
                return
            if len(node.children) != len(keys) + 1:
                raise InvariantViolationError("child/separator count mismatch")
            if node is not self._root and len(node.children) < self._min_inner_children:
                raise InvariantViolationError("inner underflow")
            if len(node.children) > self.branching:
                raise InvariantViolationError("inner overflow")
            bounds = [lo] + list(keys) + [hi]
            for i, child in enumerate(node.children):
                check(child, depth + 1, bounds[i], bounds[i + 1])

        check(self._root, 0, None, None)
        if len(leaf_depths) != 1:
            raise InvariantViolationError(f"leaves at multiple depths: {leaf_depths}")

        # Leaf chain: starts at _first_leaf, covers all leaves, sorted overall.
        leaf = self._first_leaf
        prev: Optional[LeafNode] = None
        total = 0
        last_key: Any = None
        while leaf is not None:
            if leaf.prev_leaf is not prev:
                raise InvariantViolationError("broken prev_leaf link")
            if not leaf.keys:
                raise InvariantViolationError("empty leaf in chain")
            if last_key is not None and not last_key < leaf.keys[0]:
                raise InvariantViolationError("leaf chain out of order")
            last_key = leaf.keys[-1]
            total += len(leaf.keys)
            chain_leaves.append(leaf)
            prev, leaf = leaf, leaf.next_leaf
        if total != self._size:
            raise InvariantViolationError(
                f"size mismatch: chain={total} cached={self._size}"
            )
        _, n_leaves = self.node_counts()
        if len(chain_leaves) != n_leaves:
            raise InvariantViolationError("leaf chain does not cover all leaves")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BPlusTree(n={self._size}, height={self.height}, "
            f"branching={self.branching})"
        )
