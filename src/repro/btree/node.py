"""Node types for the in-memory B+ tree substrate.

The tree distinguishes inner nodes (separator keys + child pointers) from
leaf nodes (keys + values + doubly linked leaf chain). Nodes are plain
Python objects with ``__slots__``; all balancing logic lives in
:mod:`repro.btree.btree` so the node classes stay dumb containers that are
easy to validate in tests.

Size accounting follows the model used by the paper's Section 6 cost model:
8 bytes per key and 8 bytes per pointer/value slot, i.e. 16 bytes per entry,
ignoring Python object overhead (which would be meaningless to compare with
the paper's C++ numbers).
"""

from __future__ import annotations

from typing import Any, List, Optional

_BYTES_PER_KEY = 8
_BYTES_PER_POINTER = 8


class LeafNode:
    """A leaf node holding ``keys[i] -> values[i]`` pairs in sorted key order.

    Leaves form a doubly linked chain (``prev_leaf``/``next_leaf``) used for
    range scans and floor/ceiling queries that cross node boundaries.
    """

    __slots__ = ("keys", "values", "prev_leaf", "next_leaf")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.prev_leaf: Optional["LeafNode"] = None
        self.next_leaf: Optional["LeafNode"] = None

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.keys)

    def model_bytes(self) -> int:
        """Modeled size in bytes: one key + one value pointer per entry."""
        return len(self.keys) * (_BYTES_PER_KEY + _BYTES_PER_POINTER)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeafNode(n={len(self.keys)}, first={self.keys[0] if self.keys else None})"


class InnerNode:
    """An inner node with ``len(children) == len(keys) + 1``.

    ``keys[i]`` separates ``children[i]`` (keys strictly less than
    ``keys[i]``) from ``children[i + 1]`` (keys greater than or equal).
    """

    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.children: List[Any] = []

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.keys)

    def model_bytes(self) -> int:
        """Modeled size in bytes: separator keys plus child pointers."""
        return (
            len(self.keys) * _BYTES_PER_KEY
            + len(self.children) * _BYTES_PER_POINTER
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InnerNode(n={len(self.keys)})"
