"""ShardedEngine: a range-partitioned, batch-first serving layer.

The single :class:`~repro.core.fiting_tree.FITingTree` answers one key at a
time; a serving system amortizes. The engine range-partitions the key space
(:mod:`repro.engine.partition`) into N shards, each backed by its own
FITing-Tree (or any ``PagedIndexBase`` subclass via ``index_factory``), and
exposes batch verbs:

* :meth:`ShardedEngine.get_batch` — route the whole batch to shards with
  one ``searchsorted``, then answer each shard's slice through its cached
  :class:`~repro.engine.batch.FlatView` (vectorized interpolation + bounded
  window probe), scattering results back into request order;
* :meth:`ShardedEngine.range_batch` — per-bound shard overlap resolution,
  each shard contributing one contiguous slice of its flattened arrays;
* :meth:`ShardedEngine.insert_batch` — route the sorted batch once, then
  hand each shard its whole contiguous sub-batch; every owning page merges
  its chunk with one vectorized splice (``PagedIndexBase.insert_batch``),
  so overflow/split decisions and version bumps happen once per mutated
  page instead of once per key. Flat views invalidate per shard, so
  untouched shards keep their snapshots (read-mostly shards stay fast
  under writes elsewhere).

Scalar ``get`` / ``insert`` / ``range_items`` mirrors are provided so the
engine drops into any harness an index fits; equivalence between the two
paths is pinned by tests. Shards are plain single-process objects — the
partition/batch split is deliberately the shape a future async or
multi-process deployment needs (each shard's state is independent), per the
ROADMAP north star.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError, NotSortedError
from repro.core.fiting_tree import FITingTree
from repro.core.page import aligned_value_array
from repro.engine.batch import FlatView, flat_view
from repro.engine.partition import partition_cuts, route, shard_bounds

__all__ = ["ShardedEngine"]

#: Consecutive stale batches served via the grouped per-shard path before
#: the combined view is reassembled (amortizes the O(total data) concat).
_STALE_READS_BEFORE_REBUILD = 4


class ShardedEngine:
    """Range-partitioned batch query engine over per-shard paged indexes.

    Parameters
    ----------
    keys:
        Sorted (ascending, duplicates allowed) build keys; ``None`` or
        empty starts an empty single-shard engine that grows via inserts.
    values:
        Optional payloads aligned with ``keys``; omitted means engine-wide
        auto row ids ``0..n-1`` (inserts keep numbering across shards).
    n_shards:
        Requested shard count; the effective count may be lower when the
        data has too few distinct keys (see ``partition_cuts``).
    index_factory:
        ``f(keys, values) -> PagedIndexBase`` building one shard. Defaults
        to a :class:`FITingTree` with this engine's ``error`` /
        ``buffer_capacity``.
    error, buffer_capacity:
        Passed to the default factory (ignored when ``index_factory`` is
        given).
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle. ``None`` (default)
        disables instrumentation entirely — hot paths pay one
        ``is not None`` test per batch. When set, batch-verb call/key
        counters update per call and the view-cache / size / residency
        state is exported through registry callbacks (read only at
        collection time).

    Examples
    --------
    >>> import numpy as np
    >>> keys = np.sort(np.random.default_rng(0).uniform(0, 1e6, 100_000))
    >>> engine = ShardedEngine(keys, n_shards=4, error=128)
    >>> bool((engine.get_batch(keys[:1024]) == np.arange(1024)).all())
    True
    """

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        n_shards: int = 4,
        index_factory: Optional[Callable[..., Any]] = None,
        error: float = 64.0,
        buffer_capacity: Optional[int] = None,
        telemetry: Any = None,
        **index_kwargs: Any,
    ) -> None:
        if keys is None:
            keys = np.empty(0, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size > 1 and np.any(np.diff(keys) < 0):
            raise NotSortedError("build keys must be sorted ascending")

        self._auto_rowid = values is None
        if values is None:
            values = np.arange(keys.size, dtype=np.int64)
        else:
            values = np.asarray(values)
            if len(values) != keys.size:
                raise InvalidParameterError(
                    f"values length {len(values)} != keys length {keys.size}"
                )
        self._next_rowid = keys.size

        if index_factory is None:
            def index_factory(k, v):
                return FITingTree(
                    k,
                    v,
                    error=error,
                    buffer_capacity=buffer_capacity,
                    **index_kwargs,
                )

        self.cuts = partition_cuts(keys, n_shards)
        self._shards: List[Any] = [
            index_factory(keys[a:b], values[a:b])
            for a, b in shard_bounds(keys, self.cuts)
        ]
        self._init_runtime(telemetry)

    def _init_runtime(self, telemetry: Any) -> None:
        """Initialize the non-data runtime state (caches, telemetry, WAL).

        Shared by ``__init__`` and :meth:`from_states`, which rebuilds the
        data fields (``cuts``/shards/rowid bookkeeping) from snapshots
        instead of a build pass.
        """
        self._counter: Any = None
        self._view_stats: Dict[str, int] = {
            "view_hits": 0,
            "view_builds": 0,
            "view_patches": 0,
            "view_full_rebuilds": 0,
        }
        self._combined: Optional[FlatView] = None
        self._combined_versions: Optional[Tuple[int, ...]] = None
        #: Page count per shard at the last combined assembly — the
        #: geometry the incremental patch path needs to locate one
        #: shard's slice inside the combined arrays.
        self._combined_shard_pages: Optional[List[int]] = None
        self._stale_reads = 0
        self.telemetry = telemetry
        self._telemetry = telemetry
        self._wal: Any = None
        self._obs_ops: Optional[Dict[str, Tuple[Any, Any]]] = None
        self._workload: Any = None
        if telemetry is not None:
            self._register_telemetry(telemetry)

    @classmethod
    def from_states(
        cls, states: Dict[str, Any], *, telemetry: Any = None
    ) -> "ShardedEngine":
        """Rebuild an engine from an ``engine_to_states``-shaped snapshot.

        Parameters
        ----------
        states:
            Dict with ``cuts``, ``auto_rowid``, ``next_rowid`` and one
            ``PagedIndexBase.to_state`` dict per shard — the shape
            :meth:`to_states` produces and WAL recovery hands back.
        telemetry:
            Optional :class:`repro.obs.Telemetry` to register against.

        Returns
        -------
        ShardedEngine
            An engine bit-identical to the snapshotted one.
        """
        from repro.core.serialize import index_from_state

        eng = cls.__new__(cls)
        eng._auto_rowid = bool(states["auto_rowid"])
        eng._next_rowid = int(states["next_rowid"])
        eng.cuts = np.asarray(states["cuts"], dtype=np.float64)
        eng._shards = [index_from_state(s) for s in states["shards"]]
        eng._init_runtime(telemetry)
        return eng

    def to_states(self) -> Dict[str, Any]:
        """Snapshot the whole engine as an ``engine_to_states`` dict.

        Returns
        -------
        dict
            ``cuts`` (copied), ``auto_rowid``, ``next_rowid`` and the
            per-shard ``to_state`` snapshots — the exact input
            :meth:`from_states` accepts and the WAL store persists.
        """
        return {
            "cuts": self.cuts.copy(),
            "auto_rowid": self._auto_rowid,
            "next_rowid": self._next_rowid,
            "shards": [s.to_state() for s in self._shards],
        }

    def attach_wal(self, store: Any) -> None:
        """Attach a :class:`repro.wal.WalStore`: log every mutation.

        Sets each shard's ``wal_sink`` so mutations are logged before
        they apply, binds :meth:`to_states` as the store's snapshot
        provider, and makes every batch verb group-commit on completion.
        Rejects object-dtype payload shards (no portable encoding).
        """
        for shard in self._shards:
            if shard._values_dtype == np.dtype(object):
                raise InvalidParameterError(
                    "durability requires numeric value dtypes; this "
                    "engine holds object payloads"
                )
        store.set_retain_tail(False)
        store.bind(self.to_states)
        for sid, shard in enumerate(self._shards):
            shard.wal_sink = store.sink(sid)
        self._wal = store

    def close(self) -> None:
        """Release durability resources; a no-op without an attached WAL.

        Uncommitted WAL records are discarded — but engine verbs commit
        before returning, so none exist outside a mid-crash window.
        """
        if self._wal is not None:
            for shard in self._shards:
                shard.wal_sink = None
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _register_telemetry(self, telemetry: Any) -> None:
        """Wire this engine's counters and pull-based sources into the
        telemetry registry (called once from ``__init__``)."""
        reg = telemetry.registry
        ops = reg.counter(
            "repro_engine_ops_total", "Engine batch-verb calls.",
            labels=("op",),
        )
        keys_fam = reg.counter(
            "repro_engine_keys_total",
            "Keys processed by engine batch verbs.", labels=("op",),
        )
        self._obs_ops = {
            op: (ops.labels(op), keys_fam.labels(op))
            for op in ("get_batch", "range_batch", "insert_batch",
                       "delete_batch")
        }
        # Workload profiling (None unless the bundle enables it): the
        # profiler bins over this engine's routing cuts, one vectorized
        # sketch update per batch verb.
        ensure = getattr(telemetry, "ensure_workload", None)
        self._workload = ensure(self.cuts) if ensure is not None else None
        reg.register_callback(
            "repro_engine_view_events", lambda: dict(self._view_stats),
            "Flat-view cache events (hits/builds/patches/full rebuilds).",
            labels=("event",),
        )
        reg.register_callback(
            "repro_engine_size", self._collect_size,
            "Engine size gauges (rows, shards, pages, bytes).",
            labels=("field",),
        )
        reg.register_callback(
            "repro_engine_residency_bytes", self._collect_residency,
            "Read-path resident bytes per storage tier.", labels=("tier",),
        )

    def _collect_size(self) -> Dict[str, float]:
        per_shard = [s.stats() for s in self._shards]
        return {
            "n": len(self),
            "n_shards": self.n_shards,
            "n_pages": sum(s["n_pages"] for s in per_shard),
            "buffered_elements": sum(
                s["buffered_elements"] for s in per_shard
            ),
            "model_bytes": self.model_bytes(),
            "page_rebuilds": sum(s["page_rebuilds"] for s in per_shard),
        }

    def _collect_residency(self) -> Dict[str, float]:
        report = self.residency_report()
        return {
            "pages": report["page_bytes"],
            "views": report["view_bytes"],
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Effective shard count (may be below the requested count)."""
        return len(self._shards)

    @property
    def version(self) -> int:
        """Monotonic engine-wide mutation stamp (sum of shard versions).

        Every write path bumps at least one shard's version, and shards are
        never removed, so this only moves forward. Observers use it as a
        flush barrier: the async serving layer records it after each insert
        dispatch (``RequestBatcher.stats()["barrier_version"]``) so
        "reads submitted after this write see it" is checkable, and the
        batcher's insert-failure fallback compares it to prove the engine
        applied nothing before retrying per key.
        """
        return sum(s.version for s in self._shards)

    @property
    def shards(self) -> List[Any]:
        """The per-shard indexes (read-only use; mutate via the engine)."""
        return list(self._shards)

    def shard_versions(self) -> Tuple[int, ...]:
        """Per-shard monotonic version stamps (one per shard, in order).

        The engine-agnostic observation point for "did any shard mutate":
        the stateful suites pin empty-batch no-ops on it, and it is the
        same surface :class:`repro.cluster.ClusterEngine` maintains from
        worker replies, so tests written against it run on either engine.
        """
        return tuple(s.version for s in self._shards)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def model_bytes(self) -> int:
        """Modeled index overhead summed over shards (+ the cut vector)."""
        return sum(s.model_bytes() for s in self._shards) + 8 * self.cuts.size

    @property
    def counter(self) -> Any:
        """The shared access counter instrumenting every shard (or None)."""
        return self._counter

    @counter.setter
    def counter(self, counter: Any) -> None:
        """Instrument every shard (and its tree) with one shared counter."""
        self._counter = counter
        for shard in self._shards:
            shard.counter = counter
            shard._tree.counter = counter

    def stats(self) -> Dict[str, Any]:
        """Engine-level stats: totals, flat-view cache hit rate, per-shard
        segment counts and buffer occupancy.

        The top-level key set is the backend-independent schema shared
        with :class:`repro.cluster.ClusterEngine` (pinned by the
        ``tests/api`` stats-schema conformance suite): single-process
        backends report an empty ``workers`` list and all-zero ``ipc``
        counters rather than omitting the keys.
        """
        from repro.obs import stats_sections

        per_shard = [s.stats() for s in self._shards]
        views = dict(self._view_stats)
        touches = views["view_hits"] + views["view_builds"]
        workload, slow_ops = stats_sections(self._telemetry)
        return {
            "backend": "sharded",
            "n": len(self),
            "n_shards": self.n_shards,
            "cuts": self.cuts.tolist(),
            "model_bytes": self.model_bytes(),
            "n_pages": sum(s["n_pages"] for s in per_shard),
            "buffered_elements": sum(s["buffered_elements"] for s in per_shard),
            "page_rebuilds": sum(s["page_rebuilds"] for s in per_shard),
            "view_hits": views["view_hits"],
            "view_builds": views["view_builds"],
            "view_hit_rate": views["view_hits"] / touches if touches else 0.0,
            "view_patches": views["view_patches"],
            "view_full_rebuilds": views["view_full_rebuilds"],
            "shards": per_shard,
            "workers": [],
            "ipc": {"batches": 0, "pickle_fallbacks": 0, "lane_growths": 0},
            "wal": None if self._wal is None else self._wal.stats(),
            "workload": workload,
            "slow_ops": slow_ops,
        }

    def validate(self) -> None:
        """Validate every shard plus the routing invariant (each shard's
        keys lie inside its cut range)."""
        for i, shard in enumerate(self._shards):
            shard.validate()
            lo = self.cuts[i - 1] if i > 0 else None
            hi = self.cuts[i] if i < self.cuts.size else None
            for key in shard.keys():
                if lo is not None and key < lo:
                    raise InvalidParameterError(
                        f"shard {i} holds key {key} below cut {lo}"
                    )
                if hi is not None and key >= hi:
                    raise InvalidParameterError(
                        f"shard {i} holds key {key} at/above cut {hi}"
                    )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    #: Per-shard reads share this engine's caches and stats dicts, so
    #: concurrent threads must not dispatch them in parallel here (the
    #: multi-process :class:`repro.cluster.ClusterEngine` flips this on).
    shard_dispatch_safe = False

    def shard_for(self, key: float) -> Any:
        """The shard index owning ``key``."""
        return self._shards[int(route(self.cuts, [key])[0])]

    def route_shards(self, queries) -> np.ndarray:
        """Owning shard id per query key (vectorized; the split the serve
        layer's per-shard dispatch tasks use)."""
        return route(self.cuts, np.asarray(queries, dtype=np.float64))

    def get_batch_shard(self, sid: int, queries, default: Any = None) -> np.ndarray:
        """One shard's sub-batch, answered through that shard's view alone.

        Parameters
        ----------
        sid:
            Shard id (``0 <= sid < n_shards``); every query must route
            here for results to be meaningful.
        queries:
            This shard's key sub-batch (float64-coercible).
        default:
            Miss filler, as in :meth:`get_batch`.

        Returns
        -------
        numpy.ndarray
            One value per query, exactly as :meth:`get_batch` would fill
            those slots.
        """
        q = np.ascontiguousarray(queries, dtype=np.float64)
        if q.size == 0:
            return np.empty(0, dtype=object)
        return self._view(sid).get_batch(q, default, counter=self._counter)

    def warm(self) -> None:
        """Best-effort pre-build of the cached read-path snapshots.

        Builds every shard's flat view and (when shard configs are
        homogeneous) the combined engine-wide view, so the first real
        batch does not pay the O(total data) flatten/concat cost.
        ``repro.serve.Server.warm`` runs this through its worker-thread
        executor at startup so the event loop never blocks on it; calling
        it again after writes is safe (it rebuilds only what is stale,
        subject to the same amortization grace the read path uses).
        """
        self._combined_view()

    def _view(self, shard_idx: int) -> FlatView:
        return flat_view(self._shards[shard_idx], self._view_stats)

    def _combined_view(self) -> Optional[FlatView]:
        """Engine-wide FlatView spanning every shard's pages, or ``None``
        when shard configs are heterogeneous (mixed error bounds/dtypes).

        Maintenance is incremental: when exactly one shard mutated since
        the last assembly, only that shard's slice of the combined arrays
        is re-spliced (:meth:`_patch_combined`, a three-way memcpy —
        prefix from the old combined, the dirty shard's fresh view, the
        suffix shifted); every other shard's data, routing keys and
        offsets are reused untouched. Multi-shard mutations (or the first
        build) fall back to the full per-shard concatenation. Both paths
        are counted (``view_patches`` / ``view_full_rebuilds`` in
        :meth:`stats`) and produce identical views — pinned by the
        incremental-view regression suite. Once assembled, every shard's
        cached view is re-pointed at a zero-copy slice of the combined
        arrays (``FlatView.slice_pages``), so steady-state residency is
        pages + one combined copy (~2x); see :meth:`residency_report`.
        Shard ranges are disjoint and ordered, so the concatenated page
        starts and data stay globally sorted and one view answers a whole
        batch without per-shard grouping.
        """
        versions = tuple(s.version for s in self._shards)
        if self._combined_versions == versions:
            if self._combined is not None:
                self._view_stats["view_hits"] += 1
            return self._combined  # None = known-heterogeneous: grouped path
        if (
            self._combined is not None
            and len(self._shards) > 1
            and self._stale_reads < _STALE_READS_BEFORE_REBUILD
        ):
            # A write just landed. Reassembling the combined view is an
            # O(total data) splice/concat; under a write/read interleave
            # that would be paid every batch. Serve a few batches through
            # the grouped per-shard path (only dirty shards re-flatten)
            # and reassemble once the spend amortizes over enough reads.
            self._stale_reads += 1
            return None
        self._stale_reads = 0
        combined = self._patch_combined(versions)
        if combined is None:
            combined = self._assemble_combined(versions)
        self._combined = combined
        self._combined_versions = versions
        return combined

    def _assemble_combined(self, versions: Tuple[int, ...]) -> Optional[FlatView]:
        """Full combined-view assembly: concatenate every shard's view."""
        views = [self._view(i) for i in range(len(self._shards))]
        if (
            len({v.search_error for v in views}) > 1
            or len({v.values.dtype for v in views}) > 1
        ):
            self._combined_shard_pages = None
            return None
        if len(views) == 1:
            self._combined_shard_pages = [views[0].n_pages]
            return views[0]
        self._view_stats["view_full_rebuilds"] += 1
        data_total = 0
        buf_total = 0
        offset_parts = []
        buf_offset_parts = []
        route_parts = []
        for i, v in enumerate(views):
            offset_parts.append(v.offsets[:-1] + data_total)
            buf_offset_parts.append(v.buf_offsets[:-1] + buf_total)
            data_total += int(v.offsets[-1])
            buf_total += int(v.buf_offsets[-1])
            rs = v.route_starts
            if i > 0 and rs.size:
                # Lower the shard's first routing key to its cut so
                # queries in [cut, first page start) route into this
                # shard — exactly where scalar engine routing buffers
                # and probes them.
                rs = rs.copy()
                rs[0] = self.cuts[i - 1]
            route_parts.append(rs)
        offset_parts.append(np.asarray([data_total], dtype=np.int64))
        buf_offset_parts.append(np.asarray([buf_total], dtype=np.int64))
        combined = FlatView(
            {
                "version": -1,  # never matched; engine caches by shard versions
                "search_error": views[0].search_error,
                "heights": np.concatenate([v.heights for v in views]),
                "starts": np.concatenate([v.starts for v in views]),
                "route_starts": np.concatenate(route_parts),
                "slopes": np.concatenate([v.slopes for v in views]),
                "deletions": np.concatenate([v.deletions for v in views]),
                "offsets": np.concatenate(offset_parts),
                "keys": np.concatenate([v.keys for v in views]),
                "values": np.concatenate([v.values for v in views]),
                "buf_offsets": np.concatenate(buf_offset_parts),
                "buf_keys": np.concatenate([v.buf_keys for v in views]),
                "buf_values": np.concatenate([v.buf_values for v in views]),
            }
        )
        self._combined_shard_pages = [v.n_pages for v in views]
        # Collapse per-shard residency: each shard's cached view becomes
        # a window into the combined arrays. The fresh copies flat_view()
        # just built for dirty shards are dropped here, so only pages +
        # combined stay resident (~2x).
        self._repoint_shard_caches(combined, versions)
        return combined

    def _patch_combined(self, versions: Tuple[int, ...]) -> Optional[FlatView]:
        """Incremental assembly: splice one dirty shard into the combined.

        Applicable when a combined view exists and exactly one shard's
        version moved since it was assembled (the common write pattern —
        the serve layer's insert batches land on one shard far more often
        than on several). The clean shards' slices are copied straight
        from the old combined arrays (two memcpys bracketing the dirty
        shard's fresh view) instead of re-walking every shard's cached
        view, re-lowering its routing keys and re-rebasing its offsets.
        Returns ``None`` when not applicable (first build, multiple dirty
        shards, heterogeneous configs) — the caller falls back to
        :meth:`_assemble_combined`.
        """
        old = self._combined
        if (
            old is None
            or self._combined_versions is None
            or self._combined_shard_pages is None
            or len(self._shards) <= 1
            or len(self._combined_versions) != len(versions)
        ):
            return None
        dirty = [
            i
            for i, (was, now) in enumerate(zip(self._combined_versions, versions))
            if was != now
        ]
        if len(dirty) != 1:
            return None
        i = dirty[0]
        new = self._view(i)
        if (
            new.search_error != old.search_error
            or new.values.dtype != old.values.dtype
        ):
            return None
        pages = self._combined_shard_pages
        p0 = sum(pages[:i])
        p1 = p0 + pages[i]
        d0, d1 = int(old.offsets[p0]), int(old.offsets[p1])
        b0, b1 = int(old.buf_offsets[p0]), int(old.buf_offsets[p1])
        rs = new.route_starts
        if i > 0 and rs.size:
            rs = rs.copy()
            rs[0] = self.cuts[i - 1]  # same cut lowering as the full path
        d_shift = new.keys.size - (d1 - d0)
        b_shift = new.buf_keys.size - (b1 - b0)
        combined = FlatView(
            {
                "version": -1,
                "search_error": old.search_error,
                "heights": np.concatenate(
                    (old.heights[:p0], new.heights, old.heights[p1:])
                ),
                "starts": np.concatenate(
                    (old.starts[:p0], new.starts, old.starts[p1:])
                ),
                "route_starts": np.concatenate(
                    (old.route_starts[:p0], rs, old.route_starts[p1:])
                ),
                "slopes": np.concatenate(
                    (old.slopes[:p0], new.slopes, old.slopes[p1:])
                ),
                "deletions": np.concatenate(
                    (old.deletions[:p0], new.deletions, old.deletions[p1:])
                ),
                "offsets": np.concatenate(
                    (
                        old.offsets[: p0 + 1],
                        new.offsets[1:] + d0,
                        old.offsets[p1 + 1 :] + d_shift,
                    )
                ),
                "keys": np.concatenate((old.keys[:d0], new.keys, old.keys[d1:])),
                "values": np.concatenate(
                    (old.values[:d0], new.values, old.values[d1:])
                ),
                "buf_offsets": np.concatenate(
                    (
                        old.buf_offsets[: p0 + 1],
                        new.buf_offsets[1:] + b0,
                        old.buf_offsets[p1 + 1 :] + b_shift,
                    )
                ),
                "buf_keys": np.concatenate(
                    (old.buf_keys[:b0], new.buf_keys, old.buf_keys[b1:])
                ),
                "buf_values": np.concatenate(
                    (old.buf_values[:b0], new.buf_values, old.buf_values[b1:])
                ),
            }
        )
        self._combined_shard_pages = list(pages)
        self._combined_shard_pages[i] = new.n_pages
        self._view_stats["view_patches"] += 1
        self._repoint_shard_caches(combined, versions)
        return combined

    def _repoint_shard_caches(
        self, combined: FlatView, versions: Tuple[int, ...]
    ) -> None:
        """Re-point every shard's cached view at its slice of ``combined``
        (so nothing keeps the pre-assembly array copies alive)."""
        p0 = 0
        for shard, n_pages, version in zip(
            self._shards, self._combined_shard_pages, versions
        ):
            p1 = p0 + n_pages
            shard._flat_view_cache = combined.slice_pages(p0, p1, version)
            p0 = p1

    def residency_report(self) -> Dict[str, Any]:
        """Bytes resident per storage tier of the read path.

        ``page_bytes`` is the ground truth: the key/value arrays owned by
        the pages themselves. ``view_bytes`` is everything the cached
        flat views *own* on top of that — the combined arrays plus any
        per-shard arrays that are real copies (slice-backed shard views
        count zero; see ``FlatView.nbytes_owned``). Python-list insert
        buffers are excluded (bounded by ``buffer_capacity`` per page).

        Returns
        -------
        dict
            ``page_bytes``, ``view_bytes`` (both ints) and
            ``residency_ratio`` = ``(page + view) / page`` — ~2x once the
            combined view is warm, versus ~3x when per-shard views hold
            their own copies.
        """
        page_bytes = 0
        for shard in self._shards:
            for page in shard.pages():
                page_bytes += page.keys.nbytes + page.values.nbytes
        seen: set = set()
        view_bytes = 0
        if self._combined is not None:
            view_bytes += self._combined.nbytes_owned(seen)
        for shard in self._shards:
            cached = getattr(shard, "_flat_view_cache", None)
            if cached is not None:
                view_bytes += cached.nbytes_owned(seen)
        return {
            "page_bytes": int(page_bytes),
            "view_bytes": int(view_bytes),
            "residency_ratio": (
                (page_bytes + view_bytes) / page_bytes if page_bytes else 1.0
            ),
        }

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: float, default: Any = None) -> Any:
        """Scalar point lookup (routes to one shard's ``get``)."""
        return self.shard_for(key).get(key, default)

    def __contains__(self, key: float) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def get_batch(self, queries, default: Any = None) -> np.ndarray:
        """Vectorized point lookups across shards, in request order.

        Routes the batch with one ``searchsorted`` over the cuts, answers
        each shard's group through its flattened view, and scatters results
        back. Cost for K queries over P pages: O(K log P) for routing plus
        O(K log error) lock-step window probes — a handful of whole-batch
        array passes instead of K Python descents.

        Parameters
        ----------
        queries:
            Key batch, any array-like coercible to float64; order is
            preserved in the result.
        default:
            Value stored in the slot of every query with no match.

        Returns
        -------
        numpy.ndarray
            One value per query: the values dtype when every query hits,
            else an object array with ``default`` in the miss slots
            (matching ``PagedIndexBase.get_batch``).
        """
        tel = self._telemetry
        if tel is None:
            return self._get_batch_impl(queries, default)
        with tel.span("engine.get_batch") as sp:
            out = self._get_batch_impl(queries, default)
            if sp is not None:
                sp.attrs["n"] = int(out.size)
        c_ops, c_keys = self._obs_ops["get_batch"]
        c_ops.inc()
        c_keys.inc(out.size)
        if self._workload is not None:
            self._workload.record("get", queries)
        return out

    def _get_batch_impl(self, queries, default: Any = None) -> np.ndarray:
        q = np.ascontiguousarray(queries, dtype=np.float64)
        combined = self._combined_view()
        if combined is not None:
            return combined.get_batch(q, default, counter=self._counter)
        # Heterogeneous shard configs: group queries per shard and answer
        # each group through that shard's own view.
        sid = route(self.cuts, q)
        parts: List[Tuple[np.ndarray, np.ndarray]] = []
        for i in range(self.n_shards):
            idx = np.flatnonzero(sid == i)
            if idx.size == 0:
                continue
            res = self._view(i).get_batch(q[idx], default, counter=self._counter)
            parts.append((idx, res))
        if not parts:  # empty batch
            return np.empty(0, dtype=object)
        # Shards may disagree on value dtype (that is why this fallback
        # path exists); anything non-uniform scatters losslessly as object.
        dtypes = {res.dtype for _, res in parts}
        dtype = dtypes.pop() if len(dtypes) == 1 else np.dtype(object)
        out = np.empty(q.size, dtype=dtype)
        for idx, res in parts:
            out[idx] = res
        return out

    def range_items(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[float, Any]]:
        """Scalar-compatible range scan stitched across shards in key order."""
        keys, values = self.range_arrays(lo, hi, include_lo, include_hi)
        for k, v in zip(keys, values):
            yield float(k), v

    def range_arrays(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One range query, answered as ``(keys, values)`` arrays."""
        first = 0 if lo is None else int(route(self.cuts, [lo])[0])
        last = self.n_shards - 1 if hi is None else int(route(self.cuts, [hi])[0])
        ks: List[np.ndarray] = []
        vs: List[np.ndarray] = []
        for i in range(first, last + 1):
            k, v = self._view(i).range_arrays(lo, hi, include_lo, include_hi)
            ks.append(k)
            vs.append(v)
        if not ks:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=object)
        if len({v.dtype for v in vs}) > 1:
            # Mixed per-shard value dtypes: concatenate losslessly as
            # object instead of letting NumPy promote (int64+float64
            # promotion corrupts large ints).
            vs = [v.astype(object) for v in vs]
        return np.concatenate(ks), np.concatenate(vs)

    def range_batch(
        self,
        bounds,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One ``(keys, values)`` pair per ``[lo, hi]`` row of ``bounds``.

        Every scan reuses the per-shard flattened views built by the
        first, so a batch of B scans pays the O(total data) snapshot cost
        once; each scan is then O(log n) ``searchsorted`` bounds plus an
        O(m) copy of its m matching rows.

        Parameters
        ----------
        bounds:
            ``(n, 2)`` array-like of inclusive ``[lo, hi]`` key bounds.
        include_lo, include_hi:
            Bound inclusivity, applied to every scan in the batch.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            For each bounds row, the matching ``(keys, values)`` arrays in
            key order (exactly the order ``range_items`` yields).
        """
        bounds = np.asarray(bounds, dtype=np.float64)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise InvalidParameterError("bounds must be an (n, 2) array")
        out = [
            self.range_arrays(lo, hi, include_lo, include_hi)
            for lo, hi in bounds
        ]
        if self._telemetry is not None:
            c_ops, c_keys = self._obs_ops["range_batch"]
            c_ops.inc()
            c_keys.inc(bounds.shape[0])
            if self._workload is not None:
                self._workload.record("range", bounds[:, 0])
        return out

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _resolve_batch_values(self, keys: np.ndarray, values) -> np.ndarray:
        if values is None:
            if not self._auto_rowid:
                raise InvalidParameterError(
                    "this engine stores explicit values; insert_batch "
                    "requires aligned values"
                )
            out = np.arange(
                self._next_rowid, self._next_rowid + keys.size, dtype=np.int64
            )
            self._next_rowid += keys.size
            return out
        return aligned_value_array(keys.size, values)

    def insert(self, key: float, value: Any = None) -> None:
        """Scalar insert (engine-level row id when built without values)."""
        if value is None and self._auto_rowid:
            value = self._next_rowid
            self._next_rowid += 1
        wal = self._wal
        if wal is None:
            self.shard_for(key).insert(key, value)
            return
        try:
            self.shard_for(key).insert(key, value)
        finally:
            wal.commit(self._next_rowid)
        wal.maybe_snapshot()

    def insert_batch(self, keys, values=None) -> None:
        """Bulk batch insert: route once, bulk-merge per shard and page.

        The batch is stable-sorted by key (ties keep request order) and
        cut into one contiguous sub-batch per shard with a single
        ``searchsorted`` over the cuts; each shard then sort-merges whole
        per-page chunks through ``PagedIndexBase.insert_batch``. The
        resulting state is identical to looping ``insert`` per key in that
        same order — pinned by the equivalence and stateful suites — at a
        fraction of the per-key Python cost. An empty batch is a strict
        no-op: no shard state is touched, no versions bumped, no row ids
        consumed. Cost for K inserts: one O(K log K) sort, one routing
        pass over the cuts, then O(K + touched-page data) merge work.

        Parameters
        ----------
        keys:
            Keys to insert, any order, any array-like coercible to
            float64.
        values:
            Aligned payloads; ``None`` assigns engine-wide auto row ids in
            request order (only on engines built without explicit values).
        """
        wal = self._wal
        if wal is None:
            self._insert_batch_impl(keys, values)
            return
        try:
            self._insert_batch_impl(keys, values)
        finally:
            # Group commit: the whole batch (every per-shard record the
            # sinks emitted) becomes durable with one write + fsync,
            # even when a shard's apply raised after its emission —
            # replay reproduces that same deterministic partial state.
            wal.commit(self._next_rowid)
        wal.maybe_snapshot()

    def _insert_batch_impl(self, keys, values=None) -> None:
        """The batch-insert body (no durability commit around it)."""
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.size == 0:
            return
        values = self._resolve_batch_values(keys, values)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        for sid, (a, b) in enumerate(shard_bounds(keys, self.cuts)):
            if a < b:
                self._shards[sid].insert_batch(keys[a:b], values[a:b])
        if self._telemetry is not None:
            c_ops, c_keys = self._obs_ops["insert_batch"]
            c_ops.inc()
            c_keys.inc(keys.size)
            if self._workload is not None:
                self._workload.record("insert", keys)

    def delete(self, key: float) -> Any:
        """Scalar delete: remove one occurrence of ``key``, return its value.

        Routes to the owning shard's ``delete``; raises
        :class:`~repro.core.errors.KeyNotFoundError` when absent.
        """
        wal = self._wal
        if wal is None:
            return self.shard_for(key).delete(key)
        try:
            value = self.shard_for(key).delete(key)
        finally:
            wal.commit(self._next_rowid)
        wal.maybe_snapshot()
        return value

    def delete_batch(
        self, keys, *, missing: str = "raise", default: Any = None
    ) -> np.ndarray:
        """Bulk batch delete: route once, bulk-splice per shard and page.

        The batch is stable-sorted by key and cut into one contiguous
        sub-batch per shard with a single ``searchsorted`` over the cuts;
        each shard removes its chunk through
        ``PagedIndexBase.delete_batch`` (one splice per mutated page).
        The resulting state is identical to looping ``delete`` per key in
        that same order — pinned by the equivalence suites — and only the
        mutated shards' flat views invalidate (the combined view patches
        incrementally when one shard was touched). An empty batch is a
        strict no-op.

        Parameters
        ----------
        keys:
            Keys to delete, any order, any array-like coercible to
            float64; each element removes one occurrence.
        missing:
            ``"raise"`` (default) raises
            :class:`~repro.core.errors.KeyNotFoundError` at the first
            absent request (prior removals stay applied, exactly as the
            scalar loop would leave them); ``"ignore"`` records a miss
            and continues.
        default:
            Value filling the miss slots under ``missing="ignore"``.

        Returns
        -------
        numpy.ndarray
            One deleted value per request in request order: the values
            dtype when every request hit, else an object array with
            ``default`` in the miss slots.
        """
        wal = self._wal
        if wal is None:
            return self._delete_batch_impl(keys, missing=missing, default=default)
        try:
            out = self._delete_batch_impl(keys, missing=missing, default=default)
        finally:
            wal.commit(self._next_rowid)
        wal.maybe_snapshot()
        return out

    def _delete_batch_impl(
        self, keys, *, missing: str = "raise", default: Any = None
    ) -> np.ndarray:
        """The batch-delete body (no durability commit around it)."""
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.size == 0:
            return np.empty(0, dtype=object)
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        parts: List[Tuple[np.ndarray, np.ndarray]] = []
        for sid, (a, b) in enumerate(shard_bounds(skeys, self.cuts)):
            if a < b:
                res = self._shards[sid].delete_batch(
                    skeys[a:b], missing=missing, default=default
                )
                parts.append((order[a:b], res))
        dtypes = {res.dtype for _, res in parts}
        dtype = dtypes.pop() if len(dtypes) == 1 else np.dtype(object)
        out = np.empty(keys.size, dtype=dtype)
        for idx, res in parts:
            out[idx] = res
        if self._telemetry is not None:
            c_ops, c_keys = self._obs_ops["delete_batch"]
            c_ops.inc()
            c_keys.inc(keys.size)
            if self._workload is not None:
                self._workload.record("delete", keys)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine(n={len(self)}, shards={self.n_shards}, "
            f"pages={sum(s.n_pages for s in self._shards)})"
        )
