"""Sharded, vectorized batch query engine over FITing-Tree shards.

The serving layer above :mod:`repro.core`: range partitioning
(:mod:`repro.engine.partition`), the flattened array-native batch read path
(:mod:`repro.engine.batch`), and the public :class:`ShardedEngine` facade
(:mod:`repro.engine.engine`). See ``python -m repro.bench engine`` for the
scalar vs batch vs sharded-batch throughput comparison.
"""

from repro.engine.batch import FlatView, flat_view
from repro.engine.engine import ShardedEngine
from repro.engine.partition import partition_cuts, route, shard_bounds

__all__ = [
    "FlatView",
    "ShardedEngine",
    "flat_view",
    "partition_cuts",
    "route",
    "shard_bounds",
]
