"""Array-native batch read path over a paged index's flattened snapshot.

A :class:`FlatView` freezes one :class:`~repro.core.paged_index.PagedIndexBase`
into contiguous NumPy arrays (via ``flat_arrays``): per-page start keys,
slopes, deletion counts and offsets, plus the concatenation of every page's
sorted data (globally sorted, since pages are emitted in key order) and of
every page's insert buffer. A batch of K point lookups then costs a handful
of whole-batch array passes instead of K independent B+-tree descents:

1. **route** — one ``np.searchsorted`` over the page start keys finds every
   query's owning page (the predecessor pass);
2. **interpolate** — vectorized ``(q - start) * slope`` predicts every
   query's position, clamped to the paper's error window exactly as
   ``SegmentPage.window`` does (deletion-widened, with the same
   outside-the-array fallbacks);
3. **probe** — a vectorized bounded binary search (`_bounded_leftmost`)
   resolves all windows simultaneously in ``O(log error)`` array passes;
   queries that miss in the data fall through to the same vectorized search
   over their page's buffer slice.

Results are exactly those of per-key ``PagedIndexBase.get`` for every
finite query — the pinned equivalence tests cover duplicates, misses,
buffered inserts and deletion-widened windows. Non-finite queries (NaN,
±inf), which the scalar path cannot evaluate at all (it raises inside
``SegmentPage.window``), are answered as clean misses with no probes
charged. Views are snapshots: they are cached on the index
and invalidated by its monotonic ``version`` counter (see
:func:`flat_view`), so any insert/delete transparently triggers a rebuild
on the next batch.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.memsim.counter import binary_search_probes_vec

__all__ = ["FlatView", "flat_view"]


def _bounded_leftmost(
    keys: np.ndarray, q: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Leftmost insertion point of each ``q[i]`` within ``keys[lo[i]:hi[i]]``.

    A lock-step vectorized binary search: every iteration halves all still-
    active windows at once, so a whole batch resolves in
    ``ceil(log2(max window))`` array passes. ``lo``/``hi`` are only rebound
    locally (never mutated), so callers may pass their own arrays.
    """
    if keys.size == 0:
        return lo
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        km = keys[np.where(active, mid, 0)]
        less = active & (km < q)
        lo = np.where(less, mid + 1, lo)
        hi = np.where(active & ~less, mid, hi)
        active = lo < hi
    return lo


class FlatView:
    """Immutable flattened snapshot of one paged index (see module doc)."""

    __slots__ = (
        "version",
        "search_error",
        "heights",
        "starts",
        "route_starts",
        "slopes",
        "deletions",
        "offsets",
        "keys",
        "values",
        "buf_offsets",
        "buf_keys",
        "buf_values",
        "_data_page_idx",
        "_buf_page_idx",
    )

    def __init__(self, arrays: Dict[str, Any]) -> None:
        self.version = arrays["version"]
        self.search_error = arrays["search_error"]
        #: Owning tree's height per page, so modeled tree-descent charges
        #: stay per-shard-exact in multi-shard combined views.
        self.heights = arrays["heights"]
        self.starts = arrays["starts"]
        #: Routing keys for the predecessor pass. Usually the page starts
        #: themselves; a multi-shard combined view lowers each shard's first
        #: entry to the shard's cut so under-shard-min queries route into
        #: the shard that buffers them (mirroring scalar engine routing).
        self.route_starts = arrays.get("route_starts", arrays["starts"])
        self.slopes = arrays["slopes"]
        self.deletions = arrays["deletions"]
        self.offsets = arrays["offsets"]
        self.keys = arrays["keys"]
        self.values = arrays["values"]
        self.buf_offsets = arrays["buf_offsets"]
        self.buf_keys = arrays["buf_keys"]
        self.buf_values = arrays["buf_values"]
        self._data_page_idx: Optional[np.ndarray] = None
        self._buf_page_idx: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def slice_pages(self, p0: int, p1: int, version: Any) -> "FlatView":
        """A view over pages ``[p0, p1)`` sharing this view's memory.

        Every data-bearing array of the result is a NumPy slice of this
        view's arrays (zero-copy); only the per-page offset vectors are
        rebased, so the call is O(p1 - p0) time and ~zero marginal bytes.
        This is how the engine keeps per-shard views at ~zero marginal
        residency once the combined view exists: each shard's cached view
        becomes a window into the combined arrays, keyed by the shard's
        ``version`` captured at assembly time.

        Parameters
        ----------
        p0, p1:
            Half-open page range within this view (``0 <= p0 <= p1 <=
            n_pages``).
        version:
            Version stamp the sliced view is keyed by — the owning
            shard's ``index.version`` at assembly time, so the cache
            invalidates exactly when that shard mutates.

        Returns
        -------
        FlatView
            A snapshot over just those pages, borrowing this view's
            buffers (``nbytes_owned`` counts it as zero).
        """
        d0, d1 = int(self.offsets[p0]), int(self.offsets[p1])
        b0, b1 = int(self.buf_offsets[p0]), int(self.buf_offsets[p1])
        return FlatView(
            {
                "version": version,
                "search_error": self.search_error,
                "heights": self.heights[p0:p1],
                # route_starts intentionally omitted: the slice routes by
                # its own page starts (combined-view cut lowering must not
                # leak into a standalone per-shard view).
                "starts": self.starts[p0:p1],
                "slopes": self.slopes[p0:p1],
                "deletions": self.deletions[p0:p1],
                "offsets": self.offsets[p0 : p1 + 1] - d0,
                "keys": self.keys[d0:d1],
                "values": self.values[d0:d1],
                "buf_offsets": self.buf_offsets[p0 : p1 + 1] - b0,
                "buf_keys": self.buf_keys[b0:b1],
                "buf_values": self.buf_values[b0:b1],
            }
        )

    def nbytes_owned(self, seen: Optional[set] = None) -> int:
        """Bytes of array memory this view *owns*, for residency accounting.

        Slices borrowing another array's buffer count zero, and ``seen``
        (ids of arrays already counted) dedupes arrays shared across views
        — e.g. the single-shard case where the combined view *is* the
        shard view, or ``route_starts`` aliasing ``starts``.
        """
        if seen is None:
            seen = set()
        total = 0
        for name in self.__slots__:
            arr = getattr(self, name, None)
            if (
                isinstance(arr, np.ndarray)
                and arr.base is None
                and id(arr) not in seen
            ):
                seen.add(id(arr))
                total += arr.nbytes
        return total

    @property
    def n_pages(self) -> int:
        """Number of pages frozen into this snapshot."""
        return self.starts.size

    @property
    def data_page_idx(self) -> np.ndarray:
        """Owning page of each slot in the concatenated data array."""
        if self._data_page_idx is None:
            self._data_page_idx = np.repeat(
                np.arange(self.n_pages, dtype=np.int64), np.diff(self.offsets)
            )
        return self._data_page_idx

    @property
    def buf_page_idx(self) -> np.ndarray:
        """Owning page of each slot in the concatenated buffer array."""
        if self._buf_page_idx is None:
            self._buf_page_idx = np.repeat(
                np.arange(self.n_pages, dtype=np.int64), np.diff(self.buf_offsets)
            )
        return self._buf_page_idx

    # ------------------------------------------------------------------
    # Point lookups
    # ------------------------------------------------------------------

    def _windows(
        self, q: np.ndarray, pi: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query global ``[lo, hi)`` probe windows (SegmentPage.window,
        vectorized, shifted by each page's offset)."""
        base = self.offsets[pi]
        plen = self.offsets[pi + 1] - base
        if math.isinf(self.search_error):
            return base.copy(), base + plen  # whole-page binary search
        pred = (q - self.starts[pi]) * self.slopes[pi]
        err = self.search_error + self.deletions[pi]
        lo = np.floor(pred - err)
        hi = np.ceil(pred + err) + 1.0
        np.maximum(lo, 0.0, out=lo)
        np.minimum(lo, plen, out=lo)  # keep huge predictions finite
        np.minimum(hi, plen, out=hi)
        np.maximum(hi, 0.0, out=hi)
        bad = ~np.isfinite(pred)
        if bad.any():
            lo[bad] = 0.0
            hi[bad] = 0.0
        lo = lo.astype(np.int64)
        hi = hi.astype(np.int64)
        empty = lo >= hi
        if empty.any():
            # Prediction clamped entirely outside the array: probe the
            # nearest end slot (mirrors SegmentPage.window).
            neg = pred < 0
            lo = np.where(empty, np.where(neg, 0, np.maximum(plen - 1, 0)), lo)
            hi = np.where(empty, np.where(neg, np.minimum(plen, 1), plen), hi)
        if bad.any():
            # Non-finite queries (the scalar path cannot evaluate them at
            # all — it raises): keep a genuinely empty window so they miss
            # without probes or modeled charges.
            lo[bad] = 0
            hi[bad] = 0
        return base + lo, base + hi

    def get_batch(
        self, queries, default: Any = None, counter: Any = None
    ) -> np.ndarray:
        """One value per query, exactly matching per-key ``index.get``
        (finite queries; non-finite ones miss cleanly — see module doc).

        Cost for K queries: O(K log n_pages) routing plus O(K log error)
        lock-step probe passes, all whole-batch NumPy operations.

        Parameters
        ----------
        queries:
            Key batch, any array-like coercible to float64.
        default:
            Value placed in the slot of every query with no match.
        counter:
            Optional access counter; modeled charges (ops, tree descents
            at the snapshot height, window/buffer binary-search probes)
            are added in bulk, mirroring the scalar path's accounting.

        Returns
        -------
        numpy.ndarray
            An array in the values dtype when every query hits; otherwise
            an object array with ``default`` filling the misses.
        """
        q = np.ascontiguousarray(queries, dtype=np.float64)
        n_queries = q.size
        if self.n_pages == 0:
            if counter is not None:
                counter.ops += n_queries
            out = np.empty(n_queries, dtype=object)
            out[:] = default
            return out
        pi = np.searchsorted(self.route_starts, q, side="right") - 1
        np.clip(pi, 0, self.n_pages - 1, out=pi)
        nd = self.keys.size
        glo: Optional[np.ndarray] = None
        ghi: Optional[np.ndarray] = None
        if counter is None and nd:
            # Uncounted fast path (the serving layer's): the concatenated
            # data is globally sorted, and any present key provably lives
            # in its routed page (pages partition the sorted key space and
            # the error invariant keeps every page key inside its own
            # window), so one C-level predecessor search replaces the
            # whole interpolate+window-probe pipeline. Leftmost-in-page
            # position = max(global leftmost, page start), which is
            # exactly the occurrence the scalar window search returns —
            # results are identical, only the instruction count differs.
            # With a counter attached the classic path below runs instead,
            # so modeled probe charges keep matching the paper's access
            # model.
            pos = np.searchsorted(self.keys, q, side="left")
            np.maximum(pos, self.offsets[pi], out=pos)
            safe = np.minimum(pos, nd - 1)
            found = (pos < self.offsets[pi + 1]) & (self.keys[safe] == q)
            out = self.values[safe]
        elif nd:
            glo, ghi = self._windows(q, pi)
            pos = _bounded_leftmost(self.keys, q, glo, ghi)
            found = (pos < ghi) & (self.keys[np.minimum(pos, nd - 1)] == q)
            out = self.values[np.minimum(pos, nd - 1)]
        else:
            if counter is not None:
                glo, ghi = self._windows(q, pi)
            found = np.zeros(n_queries, dtype=bool)
            out = np.empty(n_queries, dtype=self.values.dtype)

        miss = np.flatnonzero(~found)
        buf_windows = None
        if miss.size:
            pim = pi[miss]
            blo = self.buf_offsets[pim]
            bhi = self.buf_offsets[pim + 1]
            qm = q[miss]
            non_finite = ~np.isfinite(qm)
            if non_finite.any():  # unanswerable queries skip buffers too
                blo = np.where(non_finite, 0, blo)
                bhi = np.where(non_finite, 0, bhi)
            buf_windows = bhi - blo
            if self.buf_keys.size:
                bpos = _bounded_leftmost(self.buf_keys, qm, blo, bhi)
                nb = self.buf_keys.size
                bhit = (bpos < bhi) & (self.buf_keys[np.minimum(bpos, nb - 1)] == qm)
                if bhit.any():
                    hit_idx = miss[bhit]
                    if self.buf_values.dtype == object and out.dtype != object:
                        out = out.astype(object)  # lossless for odd payloads
                    out[hit_idx] = self.buf_values[bpos[bhit]]
                    found[hit_idx] = True

        if counter is not None:
            counter.ops += n_queries
            counter.tree_nodes += int(self.heights[pi].sum())
            probes, lines = binary_search_probes_vec(ghi - glo)
            counter.segment_probes += probes
            counter.segment_line_misses += lines
            if buf_windows is not None:
                probes, lines = binary_search_probes_vec(buf_windows)
                counter.buffer_probes += probes
                counter.buffer_line_misses += lines

        if bool(found.all()):
            return out
        result = out.astype(object)
        result[~found] = default
        return result

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------

    def range_arrays(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All ``(keys, values)`` with ``lo <= key <= hi``, in exactly the
        order ``PagedIndexBase.range_items`` yields them.

        Data rows come from one slice of the globally sorted concatenated
        array; in-range buffered rows are merged in with a stable lexsort on
        ``(key, page, data-before-buffer)``, which reproduces the scalar
        page-by-page merge order including duplicate runs that span pages.
        """
        nd = self.keys.size
        a = 0
        b = nd
        if lo is not None:
            a = int(
                np.searchsorted(self.keys, lo, side="left" if include_lo else "right")
            )
        if hi is not None:
            b = int(
                np.searchsorted(self.keys, hi, side="right" if include_hi else "left")
            )
        b = max(a, b)
        dk, dv = self.keys[a:b], self.values[a:b]

        if self.buf_keys.size:
            mask = np.ones(self.buf_keys.size, dtype=bool)
            if lo is not None:
                mask &= self.buf_keys >= lo if include_lo else self.buf_keys > lo
            if hi is not None:
                mask &= self.buf_keys <= hi if include_hi else self.buf_keys < hi
            bk, bv = self.buf_keys[mask], self.buf_values[mask]
            bp = self.buf_page_idx[mask]
        else:
            bk = np.empty(0, dtype=np.float64)
            bv = np.empty(0, dtype=self.values.dtype)
            bp = np.empty(0, dtype=np.int64)

        if bk.size == 0:
            return dk, dv
        keys_all = np.concatenate((dk, bk))
        values_all = np.concatenate((dv, bv))
        page_all = np.concatenate((self.data_page_idx[a:b], bp))
        is_buf = np.concatenate(
            (np.zeros(dk.size, dtype=np.int8), np.ones(bk.size, dtype=np.int8))
        )
        order = np.lexsort((is_buf, page_all, keys_all))
        return keys_all[order], values_all[order]


def flat_view(index: Any, stats: Optional[Dict[str, int]] = None) -> FlatView:
    """The index's cached :class:`FlatView`, rebuilt when stale.

    The cache key is the index's monotonic ``version`` counter, so buffered
    inserts, deletes and page rebuilds all invalidate it. ``stats`` (a dict
    with ``"view_hits"``/``"view_builds"``) lets callers — the engine's
    cache-hit-rate stat — observe reuse without a second API.
    """
    cached = getattr(index, "_flat_view_cache", None)
    if cached is not None and cached.version == index.version:
        if stats is not None:
            stats["view_hits"] = stats.get("view_hits", 0) + 1
        return cached
    view = FlatView(index.flat_arrays())
    index._flat_view_cache = view
    if stats is not None:
        stats["view_builds"] = stats.get("view_builds", 0) + 1
    return view
