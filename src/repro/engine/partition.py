"""Range partitioning: cut one sorted key space into N contiguous shards.

A :class:`~repro.engine.engine.ShardedEngine` owns one index per shard;
everything here is the pure geometry of the split:

* :func:`partition_cuts` — choose ``n_shards - 1`` strictly increasing cut
  keys that divide a sorted build array into roughly equal-sized shards.
  Cuts are snapped to the *first* occurrence of the chosen key so a run of
  duplicates never straddles a shard boundary, and degenerate cuts (a key
  distribution too skewed to fill every shard) are dropped, yielding fewer
  shards rather than empty ones.
* :func:`shard_bounds` — the ``[start, end)`` slice of the build array that
  each shard owns under a given cut vector.
* :func:`route` — the vectorized router: one ``np.searchsorted`` maps a
  whole query batch to shard ids. A key equal to a cut belongs to the shard
  that starts at that cut; keys below the first shard's range route to
  shard 0 (mirroring ``PagedIndexBase._page_for``, which buffers under-min
  inserts in the first page).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError, NotSortedError

__all__ = ["partition_cuts", "route", "shard_bounds"]


def partition_cuts(keys, n_shards: int) -> np.ndarray:
    """Cut keys splitting sorted ``keys`` into at most ``n_shards`` shards.

    Returns a strictly increasing float64 array of length ``<= n_shards-1``;
    shard ``i`` owns keys in ``[cuts[i-1], cuts[i])`` (unbounded at the
    ends). May return fewer cuts than requested when the data has too few
    distinct keys to populate every shard.
    """
    if n_shards < 1:
        raise InvalidParameterError(f"n_shards must be >= 1, got {n_shards}")
    keys = np.asarray(keys, dtype=np.float64)
    if keys.size > 1 and np.any(np.diff(keys) < 0):
        raise NotSortedError("partition keys must be sorted ascending")
    if n_shards == 1 or keys.size == 0:
        return np.empty(0, dtype=np.float64)
    positions = (np.arange(1, n_shards) * keys.size) // n_shards
    cuts = np.unique(keys[positions])
    return cuts[cuts > keys[0]]  # a cut at the global min empties shard 0


def route(cuts: np.ndarray, queries) -> np.ndarray:
    """Shard id for each query key (vectorized; ids in ``[0, len(cuts)]``)."""
    queries = np.asarray(queries, dtype=np.float64)
    return np.searchsorted(cuts, queries, side="right")


def shard_bounds(keys, cuts: np.ndarray) -> List[Tuple[int, int]]:
    """Per-shard ``[start, end)`` slices of a sorted key array.

    Works for any sorted batch — the build array at construction time,
    or a sorted insert batch (``ShardedEngine.insert_batch`` cuts whole
    sub-batches per shard this way instead of routing key by key).
    Boundaries use ``side="left"`` so every occurrence of a cut key lands
    in the shard that starts at the cut — consistent with :func:`route`.
    """
    keys = np.asarray(keys, dtype=np.float64)
    edges = np.searchsorted(keys, cuts, side="left")
    starts = np.concatenate(([0], edges))
    ends = np.concatenate((edges, [keys.size]))
    return list(zip(starts.tolist(), ends.tolist()))
