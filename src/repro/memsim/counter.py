"""Random-memory-access counters for the simulated latency model.

The paper prices an index operation as a number of cache misses — tree
levels visited plus binary-search probes inside a segment plus probes in the
insert buffer (Section 6, eq. 1). Wall-clock nanoseconds measured in CPython
would be meaningless for reproducing those claims, so every index in this
repository can be instrumented with an :class:`AccessCounter` and the
benchmarks convert the counted accesses to nanoseconds via
:class:`repro.memsim.latency.LatencyModel`.

Counters are deliberately tiny objects: with ``counter=None`` (the default)
the instrumentation costs one attribute check per node visit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["AccessCounter", "binary_search_probes", "binary_search_probes_vec"]


def binary_search_probes(window: int) -> int:
    """Number of probes binary search performs over ``window`` elements.

    The paper's cost model uses ``log2(e)`` probes for a window bounded by
    the error ``e``; we use ``ceil(log2(window)) + 1`` (the worst-case probe
    count of textbook binary search, and at least one probe for a non-empty
    window) so measured and modeled costs are directly comparable.
    """
    if window <= 0:
        return 0
    if window == 1:
        return 1
    return int(math.ceil(math.log2(window))) + 1


#: 64-byte cache lines hold 8 of our 8-byte keys.
_KEYS_PER_LINE = 8


#: Probes of a binary search that stay within one cache line; the batch
#: paths subtract these when charging line misses so vectorized and
#: scalar accounting can never desync.
_LINE_LOCAL_PROBES = int(math.log2(_KEYS_PER_LINE))


def binary_search_probes_vec(windows) -> Tuple[int, int]:
    """Batch totals of ``(binary_search_probes, binary_search_line_misses)``
    over an array of window sizes.

    The single vectorized twin of the two scalar formulas above, shared by
    every whole-batch code path (flat-view reads, bulk buffer inserts):
    ``ceil(log2(w)) + 1`` probes for ``w > 1``, one for ``w == 1``,
    nothing for empty windows; line misses are probes minus the final
    line-local probes, floored at 1.
    """
    windows = np.asarray(windows)
    w = windows[windows > 0]
    if w.size == 0:
        return 0, 0
    probes = np.ones(w.size, dtype=np.int64)
    big = w > 1
    probes[big] = np.ceil(np.log2(w[big])).astype(np.int64) + 1
    line = np.maximum(probes - _LINE_LOCAL_PROBES, 1)
    return int(probes.sum()), int(line.sum())


def binary_search_line_misses(window: int) -> int:
    """Distinct cache lines a binary search over ``window`` elements touches.

    The first probes of a binary search are far apart (one line each); once
    the remaining range fits in a cache line (8 keys), further probes are
    free. This is what distinguishes searching a 32-element error window
    (~2 misses) from searching a whole table (~log2(n) misses) on real
    hardware, and it is why the paper's measured latencies sit below its
    flat-cost model.
    """
    if window <= 0:
        return 0
    return max(1, binary_search_probes(window) - int(math.log2(_KEYS_PER_LINE)))


@dataclass
class AccessCounter:
    """Accumulates random memory accesses by category.

    Attributes
    ----------
    tree_nodes:
        B+ tree nodes visited during descents (one cache miss each in the
        paper's model — the ``log_b(S_e)`` term).
    segment_probes:
        Binary/linear-search probes inside a segment or fixed page (the
        ``log2(e)`` term).
    buffer_probes:
        Probes inside per-segment insert buffers (the ``log2(buf)`` term).
    data_moves:
        Elements shifted/copied by buffered inserts and merges. Sequential
        work: tracked for insert-throughput modeling but *not* counted as a
        random access.
    splits:
        Segment/page splits (FITing-Tree: merge + re-segmentation events).
    ops:
        Logical operations measured (lookups or inserts), so callers can
        report per-operation averages.
    """

    tree_nodes: int = 0
    segment_probes: int = 0
    buffer_probes: int = 0
    segment_line_misses: int = 0
    buffer_line_misses: int = 0
    data_moves: int = 0
    splits: int = 0
    ops: int = 0

    def tree_node(self) -> None:
        self.tree_nodes += 1

    def segment_probe(self, n: int = 1) -> None:
        self.segment_probes += n
        self.segment_line_misses += n

    def segment_binary_search(self, window: int) -> None:
        self.segment_probes += binary_search_probes(window)
        self.segment_line_misses += binary_search_line_misses(window)

    def buffer_probe(self, n: int = 1) -> None:
        self.buffer_probes += n
        self.buffer_line_misses += n

    def buffer_binary_search(self, window: int) -> None:
        self.buffer_probes += binary_search_probes(window)
        self.buffer_line_misses += binary_search_line_misses(window)

    def data_move(self, n: int = 1) -> None:
        self.data_moves += n

    def split(self) -> None:
        self.splits += 1

    def op(self) -> None:
        self.ops += 1

    @property
    def random_accesses(self) -> int:
        """Logical random accesses (the paper's flat cost-model currency)."""
        return self.tree_nodes + self.segment_probes + self.buffer_probes

    @property
    def data_line_misses(self) -> int:
        """Cache-line-deduplicated accesses into table-resident data."""
        return self.segment_line_misses + self.buffer_line_misses

    def per_op(self) -> Dict[str, float]:
        """Average counts per recorded operation (empty dict if no ops)."""
        if self.ops == 0:
            return {}
        return {
            "tree_nodes": self.tree_nodes / self.ops,
            "segment_probes": self.segment_probes / self.ops,
            "buffer_probes": self.buffer_probes / self.ops,
            "random_accesses": self.random_accesses / self.ops,
            "data_line_misses": self.data_line_misses / self.ops,
            "data_moves": self.data_moves / self.ops,
        }

    def reset(self) -> None:
        self.tree_nodes = 0
        self.segment_probes = 0
        self.buffer_probes = 0
        self.segment_line_misses = 0
        self.buffer_line_misses = 0
        self.data_moves = 0
        self.splits = 0
        self.ops = 0

    def snapshot(self) -> "AccessCounter":
        """Return an independent copy of the current counts."""
        return AccessCounter(
            tree_nodes=self.tree_nodes,
            segment_probes=self.segment_probes,
            buffer_probes=self.buffer_probes,
            segment_line_misses=self.segment_line_misses,
            buffer_line_misses=self.buffer_line_misses,
            data_moves=self.data_moves,
            splits=self.splits,
            ops=self.ops,
        )

    def diff(self, earlier: "AccessCounter") -> "AccessCounter":
        """Counts accumulated since ``earlier`` (an earlier snapshot)."""
        return AccessCounter(
            tree_nodes=self.tree_nodes - earlier.tree_nodes,
            segment_probes=self.segment_probes - earlier.segment_probes,
            buffer_probes=self.buffer_probes - earlier.buffer_probes,
            segment_line_misses=self.segment_line_misses - earlier.segment_line_misses,
            buffer_line_misses=self.buffer_line_misses - earlier.buffer_line_misses,
            data_moves=self.data_moves - earlier.data_moves,
            splits=self.splits - earlier.splits,
            ops=self.ops - earlier.ops,
        )
