"""A set-associative LRU cache simulator with trace replay.

This is the detailed end of the latency-substitution substrate: where
:class:`repro.memsim.latency.LatencyModel` prices accesses by working-set
size, :class:`CacheSim` replays an actual address trace through a
set-associative LRU cache and reports hits/misses. The ablation benchmark
uses it to show *why* the fixed-page index develops the latency spike the
paper attributes to falling out of L2: the tree's hot upper levels stay
cached while ever more leaf accesses miss.

Addresses are plain integers (byte addresses); traces are any iterable of
``(address, size_bytes)`` pairs. A multi-level hierarchy can be simulated by
chaining: feed the misses of one level into the next.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.errors import InvalidParameterError

__all__ = ["CacheSim", "CacheStats", "MultiLevelCache"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheSim:
    """A single-level set-associative LRU cache.

    Parameters
    ----------
    capacity_bytes:
        Total cache capacity. Must be a multiple of ``line_size * ways``.
    line_size:
        Cache line size in bytes (64 by default).
    ways:
        Associativity. ``ways >= n_lines`` gives a fully associative cache.
    """

    def __init__(
        self, capacity_bytes: int, line_size: int = 64, ways: int = 8
    ) -> None:
        if line_size <= 0 or capacity_bytes <= 0 or ways <= 0:
            raise InvalidParameterError("cache parameters must be positive")
        n_lines = capacity_bytes // line_size
        if n_lines == 0:
            raise InvalidParameterError("capacity smaller than one line")
        ways = min(ways, n_lines)
        if n_lines % ways != 0:
            raise InvalidParameterError(
                f"lines ({n_lines}) not divisible by ways ({ways})"
            )
        self.line_size = line_size
        self.ways = ways
        self.n_sets = n_lines // ways
        # Each set is an OrderedDict acting as an LRU list: key = line tag.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def _touch_line(self, line: int) -> bool:
        """Access one cache line; return True on hit."""
        s = self._sets[line % self.n_sets]
        if line in s:
            s.move_to_end(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        s[line] = True
        if len(s) > self.ways:
            s.popitem(last=False)
        return False

    def access(self, address: int, size: int = 8) -> int:
        """Access ``size`` bytes at ``address``; return the number of misses."""
        if size <= 0:
            raise InvalidParameterError(f"size must be positive, got {size}")
        first = address // self.line_size
        last = (address + size - 1) // self.line_size
        misses = 0
        for line in range(first, last + 1):
            if not self._touch_line(line):
                misses += 1
        return misses

    def replay(self, trace: Iterable[Tuple[int, int]]) -> CacheStats:
        """Replay ``(address, size)`` pairs; return stats for this replay."""
        before_h, before_m = self.stats.hits, self.stats.misses
        for address, size in trace:
            self.access(address, size)
        return CacheStats(
            hits=self.stats.hits - before_h, misses=self.stats.misses - before_m
        )

    def reset(self) -> None:
        self._sets = [OrderedDict() for _ in range(self.n_sets)]
        self.stats = CacheStats()


class MultiLevelCache:
    """Chain of caches: an access missing level i is tried at level i+1.

    ``latency_ns`` prices a full replay given per-level hit latencies plus a
    memory latency for accesses missing every level.
    """

    def __init__(self, levels: List[CacheSim], latencies_ns: List[float],
                 memory_ns: float = 100.0) -> None:
        if len(levels) != len(latencies_ns):
            raise InvalidParameterError("one latency per cache level required")
        if not levels:
            raise InvalidParameterError("need at least one cache level")
        self.levels = levels
        self.latencies_ns = latencies_ns
        self.memory_ns = memory_ns

    def access(self, address: int, size: int = 8) -> float:
        """Access and return the modeled latency in ns."""
        total = 0.0
        first = address // self.levels[0].line_size
        last = (address + size - 1) // self.levels[0].line_size
        for line in range(first, last + 1):
            addr = line * self.levels[0].line_size
            for latency, level in zip(self.latencies_ns, self.levels):
                hit = level.access(addr, 1) == 0
                total += latency
                if hit:
                    break
            else:
                total += self.memory_ns
        return total

    def replay(self, trace: Iterable[Tuple[int, int]]) -> float:
        """Replay a trace, returning total modeled latency in ns."""
        return sum(self.access(a, s) for a, s in trace)

    def per_level_stats(self) -> Dict[str, CacheStats]:
        return {f"L{i + 1}": lvl.stats for i, lvl in enumerate(self.levels)}
