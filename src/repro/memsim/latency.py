"""Latency models converting counted memory accesses to nanoseconds.

Two models are provided:

* a **flat** model — every random access costs a constant ``c`` ns, exactly
  the paper's Section 6 cost model (they use c=100ns generically and
  c=50ns measured for Figure 10);
* a **hierarchy** model — the per-access cost depends on which cache level
  the operation's working set fits in. This reproduces the Figure 6 effect
  the paper points out ("the spike in the graph for the fixed-sized index is
  due to the fact that the index begins to fall out of the CPU's L2 cache")
  without measuring real hardware.

The default hierarchy approximates the paper's Xeon E5-2660 (25 MB L3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.errors import InvalidParameterError
from repro.memsim.counter import AccessCounter

__all__ = ["CacheLevel", "LatencyModel", "XEON_E5_2660_HIERARCHY"]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy.

    ``capacity_bytes`` of ``None`` marks main memory (unbounded capacity).
    """

    name: str
    capacity_bytes: Optional[int]
    access_ns: float


#: Approximation of the evaluation machine in the paper (Intel E5-2660:
#: 32KB L1d, 256KB L2, 25MB shared L3, DDR3 DRAM). Latencies are typical
#: published figures for that generation, not measurements.
XEON_E5_2660_HIERARCHY: Tuple[CacheLevel, ...] = (
    CacheLevel("L1", 32 * 1024, 4.0),
    CacheLevel("L2", 256 * 1024, 12.0),
    CacheLevel("L3", 25 * 1024 * 1024, 40.0),
    CacheLevel("DRAM", None, 100.0),
)


class LatencyModel:
    """Prices counted random accesses in nanoseconds.

    Parameters
    ----------
    c:
        If given, use the flat model: every access costs ``c`` ns (the
        paper's cost-model constant).
    hierarchy:
        Cache levels ordered smallest-to-largest. Used when ``c`` is None.
        The last level must have ``capacity_bytes=None``.

    Examples
    --------
    >>> flat = LatencyModel(c=100.0)
    >>> flat.access_ns(10**9)
    100.0
    >>> hier = LatencyModel()
    >>> hier.access_ns(16 * 1024)   # fits in L1
    4.0
    >>> hier.access_ns(10**9)       # DRAM resident
    100.0
    """

    def __init__(
        self,
        c: Optional[float] = None,
        hierarchy: Sequence[CacheLevel] = XEON_E5_2660_HIERARCHY,
    ) -> None:
        if c is not None and c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c}")
        if c is None:
            if not hierarchy:
                raise InvalidParameterError("hierarchy must be non-empty")
            if hierarchy[-1].capacity_bytes is not None:
                raise InvalidParameterError(
                    "last hierarchy level must be unbounded (capacity_bytes=None)"
                )
            sizes = [lvl.capacity_bytes for lvl in hierarchy[:-1]]
            if any(s is None or s <= 0 for s in sizes):
                raise InvalidParameterError("inner levels need positive capacities")
            if sizes != sorted(sizes):  # type: ignore[type-var]
                raise InvalidParameterError("hierarchy levels must grow in capacity")
        self.c = c
        self.hierarchy = tuple(hierarchy)

    def access_ns(self, working_set_bytes: int) -> float:
        """Cost of one random access for an op touching ``working_set_bytes``."""
        if self.c is not None:
            return self.c
        for level in self.hierarchy:
            if level.capacity_bytes is None or working_set_bytes <= level.capacity_bytes:
                return level.access_ns
        raise AssertionError("unreachable: last level is unbounded")

    def latency_ns(self, n_accesses: float, working_set_bytes: int) -> float:
        """Total modeled latency of ``n_accesses`` random accesses."""
        return n_accesses * self.access_ns(working_set_bytes)

    def op_latency_ns(
        self, counter: AccessCounter, working_set_bytes: int
    ) -> float:
        """Average modeled latency per recorded operation in ``counter``.

        Flat pricing of every logical access — the paper's Section 6 model
        verbatim. Use :meth:`op_latency_split_ns` for the structure-aware
        pricing the benchmarks report.
        """
        if counter.ops == 0:
            return 0.0
        return self.latency_ns(
            counter.random_accesses / counter.ops, working_set_bytes
        )

    def tree_access_ns(
        self, tree_bytes: int, height: int, branching: int
    ) -> float:
        """Average cost of one node visit during a root-to-leaf descent.

        A descent's working set is level-dependent: the top of a ``b``-ary
        tree is touched by every query and stays cache hot, while level
        ``i`` from the root has a hot set of roughly ``tree_bytes / b^(h-1-i)``
        bytes. We price each level at its own hot-set residency and return
        the per-node average. With flat pricing (``c`` set) this is just
        ``c``.
        """
        if self.c is not None:
            return self.c
        if height <= 0:
            return self.access_ns(tree_bytes)
        total = 0.0
        for level in range(height):
            hot_set = tree_bytes / (branching ** (height - 1 - level))
            total += self.access_ns(int(hot_set))
        return total / height

    def op_latency_split_ns(
        self,
        counter: AccessCounter,
        index_bytes: int,
        data_bytes: int,
        height: Optional[int] = None,
        branching: Optional[int] = None,
    ) -> float:
        """Structure-aware average latency per operation.

        Tree-descent accesses hit the *index* (top levels cache hot, priced
        per level when ``height``/``branching`` are given); page window
        probes and buffer probes hit *table data* (usually not cached), and
        nearby probes of one binary search share cache lines. This is the
        pricing that reproduces Figure 6's shape: a dense index never
        touches the table, a small error window costs only a couple of data
        misses, and an oversized fixed page costs many.
        """
        if counter.ops == 0:
            return 0.0
        if height is not None and branching is not None:
            node_ns = self.tree_access_ns(index_bytes, height, branching)
        else:
            node_ns = self.access_ns(index_bytes)
        index_part = counter.tree_nodes * node_ns
        data_part = counter.data_line_misses * self.access_ns(data_bytes)
        return (index_part + data_part) / counter.ops
