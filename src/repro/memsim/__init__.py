"""Memory-access counting, latency modeling, and cache simulation.

This package is the substitution substrate for the paper's hardware-measured
nanosecond latencies (see DESIGN.md, substitution 2): indexes count the
random memory accesses they perform (:class:`AccessCounter`), a
:class:`LatencyModel` prices them — flat ``c`` ns/access like the paper's
cost model, or cache-hierarchy-aware — and :class:`CacheSim` replays real
address traces for the detailed ablation.
"""

from repro.memsim.cache import CacheSim, CacheStats, MultiLevelCache
from repro.memsim.counter import (
    AccessCounter,
    binary_search_line_misses,
    binary_search_probes,
)
from repro.memsim.latency import (
    CacheLevel,
    LatencyModel,
    XEON_E5_2660_HIERARCHY,
)
from repro.memsim.memory import AddressSpace
from repro.memsim.trace import array_binary_search_trace, lookup_trace

__all__ = [
    "AccessCounter",
    "AddressSpace",
    "CacheLevel",
    "CacheSim",
    "CacheStats",
    "LatencyModel",
    "MultiLevelCache",
    "XEON_E5_2660_HIERARCHY",
    "array_binary_search_trace",
    "binary_search_line_misses",
    "binary_search_probes",
    "lookup_trace",
]
