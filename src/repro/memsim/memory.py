"""A toy address space: assigns byte addresses to simulated structures.

Cache simulation needs addresses. Real Python objects do not have stable,
meaningful layouts, so :class:`AddressSpace` is a bump allocator that hands
out aligned address ranges for "allocations" (tree nodes, data arrays),
letting us synthesize realistic address traces for
:class:`repro.memsim.cache.CacheSim`.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.errors import InvalidParameterError

__all__ = ["AddressSpace"]


class AddressSpace:
    """Bump allocator over a flat byte-addressed space.

    ``alloc`` returns the base address of a fresh range; ``of`` memoizes a
    per-object allocation so repeated traces touch the same addresses (the
    whole point of simulating cache locality).
    """

    def __init__(self, base: int = 0x10000, align: int = 64) -> None:
        if align <= 0 or (align & (align - 1)) != 0:
            raise InvalidParameterError(f"align must be a power of two, got {align}")
        self._next = base
        self._align = align
        # Values keep a strong reference to the object: ids are only unique
        # among *live* objects, so memoizing by id() requires pinning them.
        self._by_object: Dict[int, tuple] = {}

    def alloc(self, size: int) -> int:
        """Reserve ``size`` bytes; return the aligned base address."""
        if size <= 0:
            raise InvalidParameterError(f"size must be positive, got {size}")
        mask = self._align - 1
        base = (self._next + mask) & ~mask
        self._next = base + size
        return base

    def of(self, obj: Any, size: int) -> int:
        """Return the stable base address of ``obj``, allocating on first use."""
        key = id(obj)
        entry = self._by_object.get(key)
        if entry is None:
            entry = (self.alloc(size), size, obj)
            self._by_object[key] = entry
        return entry[0]

    @property
    def bytes_allocated(self) -> int:
        return sum(size for _, size, _ in self._by_object.values())
