"""Generate address traces from B+ tree operations for cache simulation.

``lookup_trace`` walks a :class:`repro.btree.BPlusTree` exactly as a point
lookup would, emitting one ``(address, size)`` access per node visited plus
one 8-byte access per binary-search probe within the final leaf. Replaying
such traces through :class:`repro.memsim.cache.CacheSim` reproduces the
cache-residency effects the paper observes on real hardware (Figure 6's L2
spike) from first principles.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Iterator, List, Tuple

from repro.btree import BPlusTree
from repro.memsim.memory import AddressSpace

__all__ = ["lookup_trace", "array_binary_search_trace"]

_ENTRY_BYTES = 16  # 8-byte key + 8-byte pointer/value, as in node sizing.


def _node_size(node: Any) -> int:
    if node.is_leaf:
        return max(_ENTRY_BYTES, len(node.keys) * _ENTRY_BYTES)
    return max(_ENTRY_BYTES, len(node.keys) * 8 + len(node.children) * 8)


def lookup_trace(
    tree: BPlusTree, key: Any, space: AddressSpace
) -> List[Tuple[int, int]]:
    """Address trace of one point lookup of ``key`` in ``tree``.

    Each visited node contributes one access to its header/key area; the
    final leaf additionally contributes one 8-byte access per binary-search
    probe position, so spatially close probes share cache lines just as they
    would in a real array search.
    """
    trace: List[Tuple[int, int]] = []
    node = tree._root
    if node is None:
        return trace
    while not node.is_leaf:
        base = space.of(node, _node_size(node))
        trace.append((base, min(_node_size(node), 64)))
        idx = bisect_right(node.keys, key)
        node = node.children[idx]
    base = space.of(node, _node_size(node))
    trace.extend(
        (base + probe * _ENTRY_BYTES, 8)
        for probe in _binary_probe_positions(len(node.keys), node.keys, key)
    )
    return trace


def _binary_probe_positions(n: int, keys: List[Any], key: Any) -> Iterator[int]:
    """Indices probed by a textbook binary search for ``key`` in ``keys``."""
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) // 2
        yield mid
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    if n:
        yield min(lo, n - 1)


def array_binary_search_trace(
    base_addr: int, n: int, target_index: int, element_bytes: int = 8
) -> List[Tuple[int, int]]:
    """Address trace of binary search over a flat array for a known position.

    Used to model searching inside a segment/page: the probe sequence of a
    binary search that converges on ``target_index`` within an ``n``-element
    array starting at ``base_addr``.
    """
    trace: List[Tuple[int, int]] = []
    lo, hi = 0, n
    while lo < hi:
        mid = (lo + hi) // 2
        trace.append((base_addr + mid * element_bytes, element_bytes))
        if mid < target_index:
            lo = mid + 1
        elif mid > target_index:
            hi = mid
        else:
            break
    return trace
