"""SegmentPage: the mutable table page behind one FITing-Tree segment.

A clustered FITing-Tree stores one :class:`SegmentPage` per segment: the
sorted key slice (plus aligned values), the fitted slope for interpolation
search, and the paper's fixed-size sorted insert buffer (Section 5). The
page enforces the bounded-search contract:

* lookups probe only ``[predicted - e, predicted + e]`` in the data array
  (``e`` = segmentation error, widened by 1 per physical deletion — see
  ``FITingTree.delete``) plus the whole buffer;
* inserts go to the buffer; the owning index merges and re-segments when
  the buffer reaches capacity.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Any, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError, InvariantViolationError
from repro.memsim.counter import binary_search_probes_vec

__all__ = [
    "SegmentPage",
    "aligned_value_array",
    "as_value_array",
    "exact_typed_array",
]


def _object_array(items: List[Any]) -> np.ndarray:
    """1-D object array holding ``items`` verbatim.

    ``np.asarray(..., dtype=object)`` recurses into sequence payloads
    (equal-length tuples become a 2-D array); filling element-wise keeps
    every payload an opaque scalar.
    """
    out = np.empty(len(items), dtype=object)
    for i, v in enumerate(items):
        out[i] = v
    return out


def as_value_array(values) -> np.ndarray:
    """Coerce a batch of payloads to a 1-D array without recursing.

    The batch-insert equivalent of handing each payload to a scalar
    ``insert``: sequence payloads (tuples, lists — even ragged ones)
    stay opaque elements of an object array instead of becoming extra
    array dimensions or a ``ValueError``.
    """
    if isinstance(values, np.ndarray):
        return values
    try:
        arr = np.asarray(values)
    except ValueError:  # ragged sequence payloads
        return _object_array(list(values))
    if arr.ndim != 1:
        return _object_array(list(values))
    return arr


def exact_typed_array(items, dtype) -> Optional[np.ndarray]:
    """``items`` as a ``dtype`` array iff the cast preserves every value.

    The one lossless-cast rule shared by buffer exports
    (:meth:`SegmentPage.buffer_arrays`), worker get/delete replies and
    bulk-delete results: a payload the target dtype cannot represent
    exactly yields ``None`` (callers fall back to an object array or a
    pickled reply) rather than a silently coerced array. NaN payloads
    cast to NaN count as preserved. The comparison is one vectorized
    pass; only slots that compare unequal (NaN candidates) are
    re-examined per element.
    """
    out = np.empty(len(items), dtype=dtype)
    try:
        out[:] = items
        if isinstance(items, np.ndarray) and items.dtype != np.dtype(object):
            src = items
        else:
            src = _object_array(list(items))
        neq = np.asarray(out != src, dtype=bool)
    except (ValueError, TypeError, OverflowError):
        return None
    if neq.any():
        for i in np.flatnonzero(neq):
            a, b = out[i], src[i]
            try:
                if not (a != a and b != b):  # anything but NaN -> NaN
                    return None
            except (ValueError, TypeError):
                return None
    return out


def aligned_value_array(n_keys: int, values) -> np.ndarray:
    """Explicit batch payloads as a 1-D array aligned with ``n_keys`` keys.

    The shared explicit-values half of every batch resolver (index- and
    engine-level ``_resolve_batch_values``); the auto-rowid policies stay
    with their owners.
    """
    values = as_value_array(values)
    if len(values) != n_keys:
        raise InvalidParameterError(
            f"values length {len(values)} != keys length {n_keys}"
        )
    return values


class SegmentPage:
    """One variable-sized table page: sorted data + sorted insert buffer."""

    __slots__ = (
        "start_key",
        "slope",
        "keys",
        "values",
        "buf_keys",
        "buf_values",
        "deletions",
    )

    def __init__(
        self,
        start_key: float,
        slope: float,
        keys: np.ndarray,
        values: np.ndarray,
    ) -> None:
        self.start_key = float(start_key)
        self.slope = float(slope)
        self.keys = keys
        self.values = values
        self.buf_keys: List[float] = []
        self.buf_values: List[Any] = []
        #: Physical deletions from ``keys`` since the last (re)build. Each
        #: one can shift later elements one slot from their predicted
        #: position, so the search window is widened accordingly.
        self.deletions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_data(self) -> int:
        return len(self.keys)

    @property
    def n_buffer(self) -> int:
        return len(self.buf_keys)

    @property
    def n_total(self) -> int:
        return len(self.keys) + len(self.buf_keys)

    def min_key(self) -> float:
        """Smallest key on the page (data or buffer)."""
        candidates = []
        if len(self.keys):
            candidates.append(float(self.keys[0]))
        if self.buf_keys:
            candidates.append(self.buf_keys[0])
        return min(candidates)

    def max_key(self) -> float:
        """Largest key on the page (data or buffer)."""
        candidates = []
        if len(self.keys):
            candidates.append(float(self.keys[-1]))
        if self.buf_keys:
            candidates.append(self.buf_keys[-1])
        return max(candidates)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def window(self, key: float, search_error: float) -> Tuple[int, int]:
        """The ``[lo, hi)`` data-array range interpolation search may probe."""
        n = len(self.keys)
        if n == 0:
            return 0, 0
        if math.isinf(search_error):
            return 0, n  # fixed-page mode: binary-search the whole page
        err = search_error + self.deletions
        predicted = (key - self.start_key) * self.slope
        lo = int(max(0.0, math.floor(predicted - err)))
        hi = int(min(n, math.ceil(predicted + err) + 1))
        if lo >= hi:  # prediction clamped entirely outside the array
            if predicted < 0:
                lo, hi = 0, min(n, 1)
            else:
                lo, hi = max(0, n - 1), n
        return lo, hi

    def find_in_data(
        self,
        key: float,
        search_error: float,
        counter: Any = None,
        mode: str = "binary",
    ) -> int:
        """Index of the first occurrence of ``key`` in the data slice, or -1.

        Probes only the interpolation window; correctness relies on the
        segmentation error bound (every occurrence lies inside the window).

        ``mode`` selects the local search strategy (paper Section 4.1.2:
        "it is possible to utilize any well-known search algorithm,
        including linear search, binary search, or exponential search"):

        * ``"binary"`` — binary search over the window (the paper's default);
        * ``"linear"`` — scan outward from the predicted position; cheaper
          than binary for very small errors (the paper's remark);
        * ``"exponential"`` — gallop from the predicted position, then
          binary-search the bracket; probes scale with the *actual*
          prediction miss rather than the worst-case window.
        """
        if mode == "binary":
            lo, hi = self.window(key, search_error)
            if counter is not None:
                counter.segment_binary_search(hi - lo)
            i = lo + int(np.searchsorted(self.keys[lo:hi], key, side="left"))
            if i < hi and self.keys[i] == key:
                return i
            return -1
        if mode == "linear":
            return self._find_linear(key, search_error, counter)
        if mode == "exponential":
            return self._find_exponential(key, search_error, counter)
        raise InvalidParameterError(
            f"unknown search mode {mode!r}; use binary | linear | exponential"
        )

    def _start_probe(self, key: float, search_error: float) -> Tuple[int, int, int]:
        """Clamped predicted index plus the window it must stay within."""
        lo, hi = self.window(key, search_error)
        if lo >= hi:
            return lo, hi, lo
        predicted = (key - self.start_key) * self.slope
        start = int(round(predicted))
        return lo, hi, min(max(start, lo), hi - 1)

    def _first_occurrence(self, i: int, key: float, probes: int, counter: Any) -> int:
        while i > 0 and self.keys[i - 1] == key:
            i -= 1
            probes += 1
        if counter is not None:
            counter.segment_probe(probes)
        return i

    def _find_linear(self, key: float, search_error: float, counter: Any) -> int:
        lo, hi, i = self._start_probe(key, search_error)
        if lo >= hi:
            return -1
        probes = 1
        keys = self.keys
        if keys[i] < key:
            while keys[i] < key:
                i += 1
                probes += 1
                if i >= hi:
                    self._count_probes(probes, counter)
                    return -1
        else:
            while i > lo and keys[i - 1] >= key:
                i -= 1
                probes += 1
        if keys[i] == key:
            return self._first_occurrence(i, key, probes, counter)
        self._count_probes(probes, counter)
        return -1

    def _find_exponential(
        self, key: float, search_error: float, counter: Any
    ) -> int:
        lo, hi, start = self._start_probe(key, search_error)
        if lo >= hi:
            return -1
        keys = self.keys
        probes = 1
        if keys[start] == key:
            return self._first_occurrence(start, key, probes, counter)
        if keys[start] < key:
            # Gallop right: bracket (start + step/2, start + step].
            step = 1
            while start + step < hi and keys[start + step] < key:
                probes += 1
                step *= 2
            bracket_lo = start + step // 2 + 1
            bracket_hi = min(start + step + 1, hi)
        else:
            step = 1
            while start - step >= lo and keys[start - step] > key:
                probes += 1
                step *= 2
            bracket_lo = max(start - step, lo)
            bracket_hi = start - step // 2
        if counter is not None:
            counter.segment_probe(probes)
            counter.segment_binary_search(max(0, bracket_hi - bracket_lo))
        i = bracket_lo + int(
            np.searchsorted(keys[bracket_lo:bracket_hi], key, side="left")
        )
        if i < bracket_hi and keys[i] == key:
            return self._first_occurrence(i, key, 0, counter)
        return -1

    @staticmethod
    def _count_probes(probes: int, counter: Any) -> None:
        if counter is not None:
            counter.segment_probe(probes)

    def find_in_buffer(self, key: float, counter: Any = None) -> int:
        """Index of the first occurrence of ``key`` in the buffer, or -1."""
        if counter is not None:
            counter.buffer_binary_search(len(self.buf_keys))
        i = bisect_left(self.buf_keys, key)
        if i < len(self.buf_keys) and self.buf_keys[i] == key:
            return i
        return -1

    def get(
        self,
        key: float,
        search_error: float,
        counter: Any = None,
        default: Any = None,
        mode: str = "binary",
    ) -> Any:
        """Value of the first occurrence of ``key`` on this page."""
        i = self.find_in_data(key, search_error, counter, mode)
        if i >= 0:
            return self.values[i]
        j = self.find_in_buffer(key, counter)
        if j >= 0:
            return self.buf_values[j]
        return default

    def collect_matches(
        self, key: float, search_error: float, out: List[Any]
    ) -> None:
        """Append the values of *every* occurrence of ``key`` to ``out``."""
        i = self.find_in_data(key, search_error)
        if i >= 0:
            n = len(self.keys)
            while i < n and self.keys[i] == key:
                out.append(self.values[i])
                i += 1
        j = self.find_in_buffer(key)
        if j >= 0:
            while j < len(self.buf_keys) and self.buf_keys[j] == key:
                out.append(self.buf_values[j])
                j += 1

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert_into_buffer(self, key: float, value: Any, counter: Any = None) -> None:
        """Insert ``key -> value`` into the sorted buffer (paper Section 5)."""
        i = bisect_left(self.buf_keys, key)
        if counter is not None:
            counter.buffer_binary_search(len(self.buf_keys))
            counter.data_move(len(self.buf_keys) - i)
        self.buf_keys.insert(i, key)
        self.buf_values.insert(i, value)

    def bulk_insert(self, keys, values, counter: Any = None) -> None:
        """Sort-merge a whole sorted batch into the buffer in one pass.

        ``keys`` must be sorted ascending (float64-coercible); ``values``
        is an aligned array-like. The resulting buffer is exactly what a
        loop of :meth:`insert_into_buffer` over the batch (in the given
        order) produces — including the subtlety that repeated
        ``bisect_left`` insertion stacks equal keys in *reverse* arrival
        order, ahead of previously buffered equals — but costs one
        ``searchsorted`` plus one splice instead of a bisect-and-shift per
        key. Modeled counter charges match the scalar loop exactly.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        n_new = keys.size
        if n_new == 0:
            return
        # Per-element index within its run of equal keys, and the
        # permutation reversing each run (the bisect_left tie order).
        idx = np.arange(n_new, dtype=np.int64)
        if n_new > 1:
            run_starts = np.flatnonzero(np.diff(keys) != 0) + 1
            bounds = np.concatenate(([0], run_starts, [n_new]))
            run_id = np.zeros(n_new, dtype=np.int64)
            run_id[run_starts] = 1
            np.cumsum(run_id, out=run_id)
            within = idx - bounds[run_id]
            order = bounds[run_id] + bounds[run_id + 1] - 1 - idx
        else:
            within = np.zeros(1, dtype=np.int64)
            order = np.zeros(1, dtype=np.int64)
        if isinstance(values, np.ndarray):
            # list() yields the same scalars a zip over the array would.
            reordered = list(values[order])
        else:
            reordered = [values[i] for i in order.tolist()]

        b0 = len(self.buf_keys)
        if b0 == 0:
            pos = np.zeros(n_new, dtype=np.int64)
            self.buf_keys = keys.tolist()
            self.buf_values = reordered
        else:
            buf_k = np.asarray(self.buf_keys, dtype=np.float64)
            pos = np.searchsorted(buf_k, keys, side="left")
            self.buf_keys = np.insert(buf_k, pos, keys).tolist()
            # Scatter values around the splice points; buffers are bounded
            # by the owner's capacity, so these list passes stay tiny.
            tgt = pos + idx
            merged: List[Any] = [None] * (b0 + n_new)
            keep = np.ones(b0 + n_new, dtype=bool)
            keep[tgt] = False
            for p, v in zip(np.flatnonzero(keep).tolist(), self.buf_values):
                merged[p] = v
            for p, v in zip(tgt.tolist(), reordered):
                merged[p] = v
            self.buf_values = merged

        if counter is not None:
            # Exactly the scalar loop's charges: the t-th insert binary-
            # searches a buffer of b0 + t elements and shifts every element
            # >= its key (existing ones past its slot plus earlier ties).
            probes, lines = binary_search_probes_vec(
                b0 + np.arange(n_new, dtype=np.int64)
            )
            counter.buffer_probes += probes
            counter.buffer_line_misses += lines
            counter.data_move(int(((b0 - pos) + within).sum()))

    def delete_at_data(self, i: int, counter: Any = None) -> Any:
        """Physically remove data element ``i``; widens future windows by 1.

        Charges ``data_move`` for the suffix shifted left by the removal —
        the mirror of :meth:`insert_into_buffer`'s shift charge, and the
        accounting the vectorized :meth:`bulk_delete` path reproduces
        exactly (one splice, per-element modeled charges).
        """
        value = self.values[i]
        if counter is not None:
            counter.data_move(len(self.keys) - i - 1)
        self.keys = np.delete(self.keys, i)
        self.values = np.delete(self.values, i)
        self.deletions += 1
        return value

    def delete_at_buffer(self, i: int, counter: Any = None) -> Any:
        """Remove buffer entry ``i``; charges the list shift like inserts do."""
        value = self.buf_values[i]
        if counter is not None:
            counter.data_move(len(self.buf_keys) - i - 1)
        del self.buf_keys[i]
        del self.buf_values[i]
        return value

    def bulk_delete(
        self,
        keys,
        search_error: float,
        counter: Any = None,
        max_data: Optional[int] = None,
    ) -> Tuple[int, List[Any], int]:
        """Delete one occurrence per requested key in one vectorized pass.

        ``keys`` must be sorted ascending (float64-coercible); each element
        is one deletion request. Requests are satisfied exactly as a loop
        of scalar deletes over the batch would satisfy them on this page:
        for every key, buffered occurrences go first (leftmost first), then
        data occurrences (leftmost first, each widening future windows by
        one slot). The pass stops early at the first request with no
        remaining occurrence on this page — the owning index resolves it
        through the scalar multi-page fallback — or once ``max_data``
        physical data removals have been applied (the index's
        rebuild-budget chunking, mirroring ``insert_batch``'s
        capacity-aware chunking). All surviving removals are applied with
        one list rebuild (buffer) plus one ``np.delete`` splice (data)
        instead of one shift per key.

        Modeled counter charges replicate the scalar loop exactly,
        including state evolution *within* the batch: the t-th request
        pays a buffer binary search over the buffer as it stood after
        t-1 removals, a window search sized by the deletions-widened,
        shrunken data array of that moment, and the same ``data_move``
        shift totals as :meth:`delete_at_buffer` / :meth:`delete_at_data`.

        Parameters
        ----------
        keys:
            Sorted deletion requests (duplicates delete multiple
            occurrences).
        search_error:
            The owner's page search error (window bound).
        counter:
            Optional access counter (see charge model above).
        max_data:
            Inclusive cap on physical data removals this call may apply;
            ``None`` means unbounded.

        Returns
        -------
        tuple
            ``(n_applied, values, n_data_deleted)`` — the number of leading
            requests satisfied, their deleted values in request order, and
            how many of them were physical data removals.
        """
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        n = keys.size
        if n == 0:
            return 0, [], 0
        # Per-request run decomposition (as in bulk_insert): run_id names
        # each request's distinct key, ``within`` its rank in that run.
        idx = np.arange(n, dtype=np.int64)
        if n > 1:
            run_starts = np.flatnonzero(np.diff(keys) != 0) + 1
            bounds = np.concatenate(([0], run_starts, [n]))
            run_id = np.zeros(n, dtype=np.int64)
            run_id[run_starts] = 1
            np.cumsum(run_id, out=run_id)
        else:
            bounds = np.asarray([0, 1], dtype=np.int64)
            run_id = np.zeros(1, dtype=np.int64)
        within = idx - bounds[run_id]
        uk = keys[bounds[:-1]]
        counts = np.diff(bounds)

        buf_k = np.asarray(self.buf_keys, dtype=np.float64)
        b_lo = np.searchsorted(buf_k, uk, side="left")
        b_avail = np.searchsorted(buf_k, uk, side="right") - b_lo
        d_lo = np.searchsorted(self.keys, uk, side="left")
        d_avail = np.searchsorted(self.keys, uk, side="right") - d_lo
        take_b = np.minimum(counts, b_avail)
        take_d = np.minimum(counts - take_b, d_avail)

        is_buf = within < take_b[run_id]
        is_data = ~is_buf & (within < (take_b + take_d)[run_id])
        # Stop at the first request this page cannot satisfy, then at the
        # data-removal budget (the request that exhausts it is included,
        # exactly where the scalar loop triggers the rebuild).
        satisfied = is_buf | is_data
        n_applied = int(np.argmin(satisfied)) if not satisfied.all() else n
        if max_data is not None:
            data_rank = np.cumsum(is_data[:n_applied])
            over = np.flatnonzero(data_rank >= max_data)
            if over.size:
                n_applied = int(over[0]) + 1
        if n_applied == 0:
            return 0, [], 0

        is_buf = is_buf[:n_applied]
        is_data = is_data[:n_applied]
        # Original-array positions of each removal; deleting them in one
        # splice equals the scalar one-at-a-time removals.
        buf_req = np.flatnonzero(is_buf)
        data_req = np.flatnonzero(is_data)
        buf_pos = (b_lo[run_id] + within)[buf_req]
        data_pos = (d_lo[run_id] + within - take_b[run_id])[data_req]

        values: List[Any] = [None] * n_applied
        for t, p in zip(buf_req.tolist(), buf_pos.tolist()):
            values[t] = self.buf_values[p]
        for t, p in zip(data_req.tolist(), data_pos.tolist()):
            values[t] = self.values[p]

        if counter is not None:
            # Every request binary-searches the buffer as it stood at its
            # turn (t-1 earlier buffer removals already applied) ...
            b0 = len(self.buf_keys)
            prior_b = np.concatenate(([0], np.cumsum(is_buf)[:-1]))
            probes, lines = binary_search_probes_vec(b0 - prior_b)
            counter.buffer_probes += probes
            counter.buffer_line_misses += lines
            # ... buffer misses fall through to a window search over the
            # shrunken, deletions-widened data array of that moment ...
            if data_req.size:
                n0 = len(self.keys)
                prior_d = np.cumsum(is_data)[data_req] - 1
                n_t = n0 - prior_d
                err = search_error + self.deletions + prior_d
                pred = (keys[data_req] - self.start_key) * self.slope
                lo = np.maximum(np.floor(pred - err), 0.0)
                hi = np.minimum(np.ceil(pred + err) + 1.0, n_t)
                width = np.maximum(hi - lo, 0.0).astype(np.int64)
                # Clamped-outside fallback probes one end slot (window()).
                width[width == 0] = np.minimum(n_t, 1)[width == 0]
                probes, lines = binary_search_probes_vec(width)
                counter.segment_probes += probes
                counter.segment_line_misses += lines
                counter.data_move(int((n0 - data_pos - 1).sum()))
            if buf_req.size:
                counter.data_move(int((b0 - buf_pos - 1).sum()))

        if buf_pos.size:
            keep = np.ones(len(self.buf_keys), dtype=bool)
            keep[buf_pos] = False
            self.buf_keys = [k for k, f in zip(self.buf_keys, keep) if f]
            self.buf_values = [v for v, f in zip(self.buf_values, keep) if f]
        if data_pos.size:
            self.keys = np.delete(self.keys, data_pos)
            self.values = np.delete(self.values, data_pos)
            self.deletions += int(data_pos.size)
        return n_applied, values, int(data_pos.size)

    def buffer_arrays(self, values_dtype=None) -> Tuple[np.ndarray, np.ndarray]:
        """The insert buffer as aligned ``(keys, values)`` NumPy arrays.

        The key array is always float64; values use ``values_dtype`` (or
        this page's data dtype) so per-page exports concatenate cleanly in
        :meth:`repro.core.paged_index.PagedIndexBase.flat_arrays`. Buffered
        payloads that the target dtype cannot represent losslessly (the
        buffer is a plain Python list, so inserts may hold anything) fall
        back to an object array — never silently coerced.
        """
        dtype = self.values.dtype if values_dtype is None else values_dtype
        keys = np.asarray(self.buf_keys, dtype=np.float64)
        if dtype == np.dtype(object):
            return keys, _object_array(self.buf_values)
        values = exact_typed_array(self.buf_values, dtype)
        if values is None:
            values = _object_array(self.buf_values)
        return keys, values

    def merged_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Data and buffer merged into one sorted (keys, values) pair."""
        if not self.buf_keys:
            return self.keys, self.values
        buf_k = np.asarray(self.buf_keys, dtype=self.keys.dtype)
        positions = np.searchsorted(self.keys, buf_k, side="left")
        merged_keys = np.insert(self.keys, positions, buf_k)
        if self.values.dtype == np.dtype(object):
            buf_v = _object_array(self.buf_values)
        else:
            buf_v = np.asarray(self.buf_values, dtype=self.values.dtype)
        merged_values = np.insert(self.values, positions, buf_v)
        return merged_keys, merged_values

    # ------------------------------------------------------------------
    # Iteration and validation
    # ------------------------------------------------------------------

    def iter_items(
        self, lo: Optional[float] = None
    ) -> Iterator[Tuple[float, Any]]:
        """Yield ``(key, value)`` pairs of data+buffer in sorted key order.

        With ``lo`` set, iteration starts at the first key ``>= lo`` (the
        skip uses binary search, so range scans do not pay for the part of
        the page below the range).
        """
        nd, nb = len(self.keys), len(self.buf_keys)
        if lo is None:
            di, bi = 0, 0
        else:
            di = int(np.searchsorted(self.keys, lo, side="left"))
            bi = bisect_left(self.buf_keys, lo)
        while di < nd and bi < nb:
            if self.keys[di] <= self.buf_keys[bi]:
                yield float(self.keys[di]), self.values[di]
                di += 1
            else:
                yield self.buf_keys[bi], self.buf_values[bi]
                bi += 1
        while di < nd:
            yield float(self.keys[di]), self.values[di]
            di += 1
        while bi < nb:
            yield self.buf_keys[bi], self.buf_values[bi]
            bi += 1

    def validate(self, search_error: float, buffer_capacity: int) -> None:
        """Check page invariants; raise :class:`InvariantViolationError`."""
        if len(self.keys) != len(self.values):
            raise InvariantViolationError("keys/values length mismatch")
        if len(self.buf_keys) != len(self.buf_values):
            raise InvariantViolationError("buffer keys/values length mismatch")
        if len(self.keys) and np.any(np.diff(self.keys) < 0):
            raise InvariantViolationError("page data not sorted")
        if any(a > b for a, b in zip(self.buf_keys, self.buf_keys[1:])):
            raise InvariantViolationError("page buffer not sorted")
        if buffer_capacity and len(self.buf_keys) >= buffer_capacity:
            raise InvariantViolationError("buffer at/over capacity")
        if len(self.keys):
            predicted = (self.keys - self.start_key) * self.slope
            deviation = float(
                np.max(np.abs(predicted - np.arange(len(self.keys))))
            )
            allowed = search_error + self.deletions + 1e-6
            if deviation > allowed:
                raise InvariantViolationError(
                    f"page deviation {deviation} exceeds {allowed}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentPage(start={self.start_key}, n={self.n_data}, "
            f"buf={self.n_buffer}, slope={self.slope:.4g})"
        )
