"""Shared machinery for paged indexes (FITing-Tree and the Fixed baseline).

Both the FITing-Tree and the paper's fixed-size-page baseline are *sparse*
indexes: a B+ tree maps the first key of each page to a page holding sorted
data plus a bounded sorted insert buffer. They differ only in

* how pages are cut from sorted data (error-bounded segmentation vs fixed
  chunks) — the :meth:`PagedIndexBase._make_pages` hook;
* how a page is searched (interpolation + bounded window vs full binary
  search) — the :attr:`PagedIndexBase.page_search_error` attribute
  (``inf`` means "binary-search the whole page");
* per-page metadata charged by the size model (24 B of start/slope/pointer
  for a FITing segment, nothing extra for a fixed page).

Keeping one implementation here preserves the paper's fairness argument —
identical tree substrate, buffering, routing and split plumbing across the
compared indexes — and keeps the subclasses tiny.

Segment tree keys are ``(start_key, seq)`` pairs: the ``seq`` float breaks
ties between pages sharing a start key (split duplicate runs) and leaves
room to splice in pages created by later re-segmentations without touching
neighbours.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.btree import BPlusTree, DEFAULT_BRANCHING
from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    NotSortedError,
)
from repro.core.page import (
    SegmentPage,
    aligned_value_array,
    exact_typed_array,
)

__all__ = ["PagedIndexBase"]

_INF = math.inf
#: Seq-number spacing used at bulk load / renumbering.
_SEQ_SPACING = 1024.0


class PagedIndexBase:
    """Common base: B+ tree over ``(start_key, seq) -> SegmentPage``.

    Subclasses must set, before calling ``super().__init__``:

    * ``buffer_capacity`` (int, >= 0; 0 means read-only),
    * ``page_search_error`` (float; ``inf`` = binary-search whole page),
    * ``metadata_bytes_per_page`` (int, added to ``model_bytes`` per page),

    and implement ``_make_pages(keys, values) -> list[SegmentPage]``.
    """

    buffer_capacity: int
    page_search_error: float
    metadata_bytes_per_page: int

    #: Local search strategy inside pages: binary | linear | exponential
    #: (paper Section 4.1.2). Subclasses may override before super().__init__.
    search_mode: str = "binary"

    #: Optional durability sink (a ``repro.wal`` per-shard facade, set by
    #: an engine's ``attach_wal``). When non-None every mutation verb logs
    #: its resolved request through it *before* applying, so replaying the
    #: committed WAL reproduces the same final state — including
    #: deterministic partial failures such as a strict delete raising
    #: midway.
    wal_sink: Any = None

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        branching: int = DEFAULT_BRANCHING,
        fill: float = 1.0,
        counter: Any = None,
    ) -> None:
        self.counter = counter
        self._tree = BPlusTree(branching=branching, counter=counter)
        self._fill = fill
        self._n = 0
        self._dirty = True  # directory cache for bulk_lookup needs rebuild
        self._directory: Optional[Tuple[np.ndarray, List[SegmentPage]]] = None
        #: Monotonic mutation counter; any observer caching derived state
        #: (e.g. the flattened arrays behind ``get_batch``) compares against
        #: it to decide when to rebuild. Bumped by every write path,
        #: including buffered inserts that leave the page directory intact.
        self._version = 0
        #: Lifetime count of buffer-merge page rebuilds (Algorithm 4) —
        #: the write-amplification signal telemetry exports per shard.
        self._page_rebuilds = 0

        if keys is None:
            keys = np.empty(0, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size > 1 and np.any(np.diff(keys) < 0):
            raise NotSortedError("build keys must be sorted ascending")

        self._auto_rowid = values is None
        if values is None:
            values = np.arange(len(keys), dtype=np.int64)
        else:
            values = np.asarray(values)
            if len(values) != len(keys):
                raise InvalidParameterError(
                    f"values length {len(values)} != keys length {len(keys)}"
                )
        self._values_dtype = values.dtype if len(values) else np.dtype(np.int64)
        self._next_rowid = len(keys)
        self._build(keys, values)

    # -- subclass hook --------------------------------------------------

    def _make_pages(
        self, keys: np.ndarray, values: np.ndarray
    ) -> List[SegmentPage]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _build(self, keys: np.ndarray, values: np.ndarray) -> None:
        self._n = len(keys)
        self._version += 1
        if self._n == 0:
            return
        pages = self._make_pages(keys, values)
        pairs = [
            ((page.start_key, i * _SEQ_SPACING), page)
            for i, page in enumerate(pages)
        ]
        self._tree.bulk_load(pairs, fill=self._fill)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def n_pages(self) -> int:
        """Number of pages currently indexed by the B+ tree."""
        return len(self._tree)

    @property
    def height(self) -> int:
        """Height of the B+ tree routing to the pages."""
        return self._tree.height

    @property
    def version(self) -> int:
        """Monotonic mutation counter (see ``__init__``)."""
        return self._version

    def model_bytes(self) -> int:
        """Modeled index size: B+ tree bytes + per-page metadata.

        Table data itself is not index overhead and is excluded, matching
        the paper's Figure 6 size axis.
        """
        return self._tree.model_bytes() + self.metadata_bytes_per_page * self.n_pages

    def pages(self) -> Iterator[SegmentPage]:
        """Yield every page in key (tree) order."""
        for _, page in self._tree.items():
            yield page

    @property
    def page_rebuilds(self) -> int:
        """Lifetime count of buffer-merge page rebuilds (Algorithm 4)."""
        return self._page_rebuilds

    def stats(self) -> Dict[str, Any]:
        """Summary statistics used by benchmarks and examples."""
        buffered = sum(page.n_buffer for page in self.pages())
        return {
            "n": self._n,
            "n_pages": self.n_pages,
            "height": self.height,
            "model_bytes": self.model_bytes(),
            "buffer_capacity": self.buffer_capacity,
            "buffered_elements": buffered,
            "page_rebuilds": self._page_rebuilds,
            "avg_page_len": (self._n / self.n_pages) if self.n_pages else 0.0,
        }

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def _page_for(
        self, key: float
    ) -> Optional[Tuple[Tuple[float, float], SegmentPage]]:
        """Tree entry of the page that owns ``key`` (the tree-search step)."""
        if len(self._tree) == 0:
            return None
        item = self._tree.floor_item((key, _INF))
        if item is None:
            # Key precedes every page: the first page owns it (inserted
            # under-min keys are buffered there too).
            item = self._tree.min_item()
        return item

    def get(self, key: float, default: Any = None) -> Any:
        """Return a value stored under ``key`` or ``default`` if absent.

        With duplicate keys any one occurrence's value is returned; use
        :meth:`lookup_all` for the complete set.
        """
        if self.counter is not None:
            self.counter.op()
        item = self._page_for(float(key))
        if item is None:
            return default
        return item[1].get(
            float(key), self.page_search_error, self.counter, default,
            self.search_mode,
        )

    def __contains__(self, key: float) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __getitem__(self, key: float) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyNotFoundError(key)
        return value

    def _pages_possibly_containing(
        self, key: float
    ) -> Iterator[Tuple[Tuple[float, float], SegmentPage]]:
        """Candidate pages for ``key``: floor page first, then preceding
        pages of a split duplicate run (start == key), plus one page before."""
        item = self._page_for(key)
        if item is None:
            return
        yield item
        tree_key = item[0]
        while True:
            prev = self._tree.lower_item(tree_key)
            if prev is None:
                return
            yield prev
            if prev[0][0] != key:
                return  # one page with start < key is enough
            tree_key = prev[0]

    def lookup_all(self, key: float) -> List[Any]:
        """Values of every occurrence of ``key`` (empty list if absent)."""
        key = float(key)
        if self.counter is not None:
            self.counter.op()
        out: List[Any] = []
        for _, page in self._pages_possibly_containing(key):
            matches: List[Any] = []
            page.collect_matches(key, self.page_search_error, matches)
            out = matches + out  # pages are visited back-to-front
        return out

    def bulk_lookup(self, queries, default: Any = None) -> List[Any]:
        """Vectorized point lookups: one value (or ``default``) per query.

        Routes all queries through a flat page directory with a single
        ``searchsorted`` instead of per-query tree descents. Results match
        :meth:`get` exactly; modeled access counts are still recorded
        (tree descents are charged at the tree's height).
        """
        queries = np.asarray(queries, dtype=np.float64)
        if len(self._tree) == 0:
            return [default] * len(queries)
        starts, pages = self._get_directory()
        page_idx = np.searchsorted(starts, queries, side="right") - 1
        np.clip(page_idx, 0, len(pages) - 1, out=page_idx)
        out: List[Any] = []
        counter = self.counter
        height = self._tree.height
        for q, pi in zip(queries, page_idx):
            page = pages[pi]
            if counter is not None:
                counter.op()
                counter.tree_nodes += height
            out.append(
                page.get(
                    float(q), self.page_search_error, counter, default,
                    self.search_mode,
                )
            )
        return out

    def _get_directory(self) -> Tuple[np.ndarray, List[SegmentPage]]:
        if self._dirty or self._directory is None:
            pages: List[SegmentPage] = []
            starts: List[float] = []
            for (start, _), page in self._tree.items():
                starts.append(start)
                pages.append(page)
            self._directory = (np.asarray(starts, dtype=np.float64), pages)
            self._dirty = False
        return self._directory

    def flat_arrays(self) -> Dict[str, Any]:
        """Export every page as contiguous NumPy arrays (the batch substrate).

        Pages are emitted in tree order, so the concatenated ``keys`` array
        is globally sorted and ``offsets[i]:offsets[i+1]`` is page ``i``'s
        slice of it. Buffers are concatenated the same way under
        ``buf_offsets`` (each page's buffer slice is sorted; the whole
        buffer array need not be). Consumers must treat the result as an
        immutable snapshot of :attr:`version` — see
        :mod:`repro.engine.batch` for the vectorized read path built on it.
        """
        starts: List[float] = []
        slopes: List[float] = []
        deletions: List[float] = []
        key_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        buf_key_parts: List[np.ndarray] = []
        buf_value_parts: List[np.ndarray] = []
        lengths: List[int] = []
        buf_lengths: List[int] = []
        for page in self.pages():
            starts.append(page.start_key)
            slopes.append(page.slope)
            deletions.append(float(page.deletions))
            key_parts.append(page.keys)
            value_parts.append(page.values)
            lengths.append(page.n_data)
            bk, bv = page.buffer_arrays(self._values_dtype)
            buf_key_parts.append(bk)
            buf_value_parts.append(bv)
            buf_lengths.append(len(bk))
        n_pages = len(starts)
        offsets = np.zeros(n_pages + 1, dtype=np.int64)
        buf_offsets = np.zeros(n_pages + 1, dtype=np.int64)
        if n_pages:
            np.cumsum(lengths, out=offsets[1:])
            np.cumsum(buf_lengths, out=buf_offsets[1:])
        empty_k = np.empty(0, dtype=np.float64)
        empty_v = np.empty(0, dtype=self._values_dtype)
        return {
            "version": self._version,
            "search_error": float(self.page_search_error),
            "heights": np.full(n_pages, self._tree.height, dtype=np.int64),
            "starts": np.asarray(starts, dtype=np.float64),
            "slopes": np.asarray(slopes, dtype=np.float64),
            "deletions": np.asarray(deletions, dtype=np.float64),
            "offsets": offsets,
            "keys": np.concatenate(key_parts) if n_pages else empty_k,
            "values": np.concatenate(value_parts) if n_pages else empty_v,
            "buf_offsets": buf_offsets,
            "buf_keys": np.concatenate(buf_key_parts) if n_pages else empty_k,
            "buf_values": np.concatenate(buf_value_parts) if n_pages else empty_v,
        }

    # ------------------------------------------------------------------
    # Snapshots (in-memory serialization; the multi-process substrate)
    # ------------------------------------------------------------------

    def _snapshot_params(self) -> Dict[str, Any]:
        """Constructor kwargs reproducing this index's configuration.

        Subclass hook for :meth:`to_state`: must return keyword arguments
        such that ``type(self)(**params)`` builds an empty index with the
        same segmentation policy, buffering, search mode and tree shape.
        """
        raise NotImplementedError

    def to_state(self) -> Dict[str, Any]:
        """Export the whole index as one in-memory, process-portable dict.

        The snapshot generalizes :mod:`repro.core.serialize`'s on-disk
        format: flat NumPy arrays (concatenated page data, per-page
        boundaries, start keys, slopes, seqs, deletion counts, buffered
        entries) plus the scalar build parameters, the row-id counter and
        the monotonic :attr:`version` stamp. :meth:`from_state` rebuilds
        an identical index with one bulk pass — no re-segmentation — which
        is how ``repro.cluster`` ships a shard into a worker process.
        Only numeric (integer/float) value dtypes are supported; object
        payloads raise :class:`InvalidParameterError` (they have no
        portable flat representation).

        Returns
        -------
        dict
            Plain dict of NumPy arrays and scalars (picklable, and every
            array is contiguous). Treat it as immutable: arrays may alias
            live page data.
        """
        if self._values_dtype == np.dtype(object):
            raise InvalidParameterError(
                "object-dtype values cannot be snapshotted"
            )
        starts: List[float] = []
        seqs: List[float] = []
        slopes: List[float] = []
        lengths: List[int] = []
        deletions: List[int] = []
        data_keys: List[np.ndarray] = []
        data_values: List[np.ndarray] = []
        buf_keys: List[float] = []
        buf_values: List[Any] = []
        buf_lengths: List[int] = []
        for (start, seq), page in self._tree.items():
            starts.append(start)
            seqs.append(seq)
            slopes.append(page.slope)
            lengths.append(page.n_data)
            deletions.append(page.deletions)
            data_keys.append(page.keys)
            data_values.append(page.values)
            buf_lengths.append(page.n_buffer)
            buf_keys.extend(page.buf_keys)
            buf_values.extend(page.buf_values)
        dtype = self._values_dtype
        return {
            "format_version": 2,
            "index_cls": type(self).__name__,
            "params": self._snapshot_params(),
            "n": self._n,
            "auto_rowid": self._auto_rowid,
            "next_rowid": self._next_rowid,
            "values_dtype": dtype.str,
            "version": self._version,
            "starts": np.asarray(starts, dtype=np.float64),
            "seqs": np.asarray(seqs, dtype=np.float64),
            "slopes": np.asarray(slopes, dtype=np.float64),
            "lengths": np.asarray(lengths, dtype=np.int64),
            "deletions": np.asarray(deletions, dtype=np.int64),
            "data_keys": (
                np.concatenate(data_keys)
                if data_keys
                else np.empty(0, dtype=np.float64)
            ),
            "data_values": (
                np.concatenate(data_values)
                if data_values
                else np.empty(0, dtype=dtype)
            ),
            "buf_keys": np.asarray(buf_keys, dtype=np.float64),
            "buf_values": np.asarray(buf_values, dtype=dtype),
            "buf_lengths": np.asarray(buf_lengths, dtype=np.int64),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "PagedIndexBase":
        """Rebuild an index from a :meth:`to_state` snapshot.

        The result is bit-identical to the snapshotted index: contents,
        page boundaries and slopes, buffered (unmerged) inserts,
        tree-key seq numbers, deletion-widening state, the row-id counter
        and the :attr:`version` stamp all survive. Pages own fresh array
        copies, so mutating the rebuilt index never touches the source.

        Parameters
        ----------
        state:
            A dict produced by :meth:`to_state` (of this class —
            ``state["index_cls"]`` is not re-dispatched here; see
            ``repro.cluster.snapshot.index_from_state`` for the
            class-dispatching entry point).

        Returns
        -------
        PagedIndexBase
            A fully functional index of type ``cls``.
        """
        index = cls(**state["params"])
        index._auto_rowid = bool(state["auto_rowid"])
        index._next_rowid = int(state["next_rowid"])
        index._values_dtype = np.dtype(state["values_dtype"])

        starts = state["starts"]
        seqs = state["seqs"]
        slopes = state["slopes"]
        lengths = state["lengths"]
        deletions = state["deletions"]
        data_keys = state["data_keys"]
        data_values = state["data_values"]
        buf_keys = state["buf_keys"]
        buf_values = state["buf_values"]
        buf_lengths = state["buf_lengths"]

        pairs = []
        offset = 0
        buf_offset = 0
        for i in range(len(starts)):
            end = offset + int(lengths[i])
            page = SegmentPage(
                float(starts[i]),
                float(slopes[i]),
                data_keys[offset:end].copy(),
                data_values[offset:end].copy(),
            )
            page.deletions = int(deletions[i])
            buf_end = buf_offset + int(buf_lengths[i])
            page.buf_keys = [float(k) for k in buf_keys[buf_offset:buf_end]]
            page.buf_values = list(buf_values[buf_offset:buf_end])
            pairs.append(((float(starts[i]), float(seqs[i])), page))
            offset = end
            buf_offset = buf_end
        if pairs:
            index._tree.bulk_load(pairs, fill=index._fill)
        index._n = int(state["n"])
        index._dirty = True
        if "version" in state:
            index._version = int(state["version"])
        return index

    def get_batch(self, queries, default: Any = None) -> np.ndarray:
        """Vectorized point lookups over a flattened-array snapshot.

        Unlike :meth:`bulk_lookup` (which still probes pages one query at a
        time), this routes, interpolates and window-searches the whole batch
        with NumPy array passes; results match :meth:`get` exactly for
        finite queries (non-finite ones, on which :meth:`get` raises, miss
        cleanly here). The snapshot is cached and invalidated by
        :attr:`version`. Cost for K queries over P pages: O(K log P)
        routing plus O(K log error) lock-step probe passes (after an
        amortized O(n) snapshot build on the first post-write batch).

        Parameters
        ----------
        queries:
            Key batch, any array-like coercible to float64.
        default:
            Value stored in the slot of every query with no match.

        Returns
        -------
        numpy.ndarray
            One value per query: the values dtype when every query hits,
            otherwise an object array with ``default`` in the missing
            slots.
        """
        from repro.engine.batch import flat_view

        return flat_view(self).get_batch(queries, default, counter=self.counter)

    # ------------------------------------------------------------------
    # Range queries
    # ------------------------------------------------------------------

    def range_items(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[float, Any]]:
        """Yield ``(key, value)`` with ``lo <= key <= hi`` in key order.

        Implements the paper's range strategy: locate the start with a
        point lookup, then scan sequentially across pages (Section 4.2).
        """
        if self.counter is not None:
            self.counter.op()
        if len(self._tree) == 0:
            return
        if lo is None:
            page_iter = self._tree.items()
        else:
            page_iter = self._tree.items_from_floor((float(lo), -_INF))
        for _, page in page_iter:
            for key, value in page.iter_items(lo):
                if lo is not None:
                    if key < lo or (not include_lo and key == lo):
                        continue
                if hi is not None:
                    if key > hi or (not include_hi and key == hi):
                        return
                yield key, value

    def items(self) -> Iterator[Tuple[float, Any]]:
        """Every ``(key, value)`` pair in ascending key order."""
        for _, page in self._tree.items():
            yield from page.iter_items()

    def keys(self) -> Iterator[float]:
        """Every key in ascending order (duplicates included)."""
        for k, _ in self.items():
            yield k

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------

    def _resolve_value(self, value: Any) -> Any:
        if value is not None:
            return value
        if self._auto_rowid:
            rowid = self._next_rowid
            self._next_rowid += 1
            return rowid
        if self._values_dtype == np.dtype(object):
            return None
        raise InvalidParameterError(
            "this index stores typed values; insert(key, value) requires "
            "an explicit value"
        )

    def _check_writable(self) -> None:
        if self.buffer_capacity == 0:
            raise InvalidParameterError(
                "index built with buffer_capacity=0 is read-only"
            )

    def insert(self, key: float, value: Any = None) -> None:
        """Insert ``key -> value`` (buffered; may trigger a page rebuild)."""
        self._check_writable()
        key = float(key)
        value = self._resolve_value(value)
        sink = self.wal_sink
        if sink is not None:
            logged = np.empty(1, dtype=self._values_dtype)
            logged[0] = value
            sink.log_insert(np.asarray([key], dtype=np.float64), logged)
        self._insert_resolved(key, value)

    def _insert_resolved(self, key: float, value: Any) -> None:
        """Apply one resolved insert (no validation, no WAL emission)."""
        self._version += 1
        if self.counter is not None:
            self.counter.op()
        if len(self._tree) == 0:
            # Element-wise fill: np.asarray would recurse into sequence
            # payloads (e.g. a tuple value under an object dtype).
            first_value = np.empty(1, dtype=self._values_dtype)
            first_value[0] = value
            page = SegmentPage(
                key,
                0.0,
                np.asarray([key], dtype=np.float64),
                first_value,
            )
            self._tree.insert((key, 0.0), page)
            self._n = 1
            self._dirty = True
            return
        tree_key, page = self._page_for(key)  # type: ignore[misc]
        page.insert_into_buffer(key, value, self.counter)
        self._n += 1
        if page.n_buffer >= self.buffer_capacity:
            self._rebuild_page(tree_key, page)

    def _resolve_batch_values(self, keys: np.ndarray, values) -> np.ndarray:
        """Vectorized :meth:`_resolve_value`: one aligned values array.

        Auto-rowid indexes assign ids in request order (before any
        sorting), matching what :class:`repro.engine.ShardedEngine` has
        always done for batches.
        """
        if values is None:
            if self._auto_rowid:
                out = np.arange(
                    self._next_rowid,
                    self._next_rowid + keys.size,
                    dtype=np.int64,
                )
                self._next_rowid += keys.size
                return out
            if self._values_dtype == np.dtype(object):
                return np.empty(keys.size, dtype=object)
            raise InvalidParameterError(
                "this index stores typed values; insert_batch requires "
                "aligned values"
            )
        return aligned_value_array(keys.size, values)

    def insert_batch(self, keys, values=None) -> None:
        """Vectorized batch insert: group keys per page, bulk-merge each.

        The final state is identical to looping :meth:`insert` over the
        batch in stable key order (ties keep request order): each owning
        page receives its whole contiguous sub-batch through
        :meth:`SegmentPage.bulk_insert` — one ``searchsorted`` and one
        splice — sliced to the buffer's remaining room, so a chunk that
        fills the buffer triggers exactly the merge/re-segmentation a
        scalar insert would, and the remaining keys re-route against the
        new pages. There is one overflow/split decision and one
        :attr:`version` bump per mutated page instead of per key. Empty
        batches are a strict no-op. Cost for K inserts: one O(K log K)
        sort, one tree descent per touched page, and O(K + rebuilt-page
        data) merge work.

        Parameters
        ----------
        keys:
            Keys to insert, any order, any array-like coercible to
            float64.
        values:
            Aligned payloads; ``None`` assigns auto row ids in request
            order (auto-rowid indexes only).
        """
        self._check_writable()
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        n = keys.size
        if n == 0:
            return
        values = self._resolve_batch_values(keys, values)
        sink = self.wal_sink
        if sink is not None:
            sink.log_insert(keys, values)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        counter = self.counter
        i = 0
        while i < n:
            if len(self._tree) == 0:
                # Seed the first page exactly like a scalar insert would
                # (the resolved body: the batch was already validated,
                # resolved and WAL-logged above).
                self._insert_resolved(float(keys[i]), values[i])
                i += 1
                continue
            tree_key, page = self._page_for(float(keys[i]))
            nxt = self._tree.higher_item(tree_key)
            if nxt is None:
                j = n
            else:
                # The page owns every batch key below the next page's
                # start (keys equal to it route to the next page, exactly
                # as the floor search does).
                j = i + int(np.searchsorted(keys[i:], nxt[0][0], side="left"))
            take = min(j - i, self.buffer_capacity - page.n_buffer)
            page.bulk_insert(keys[i : i + take], values[i : i + take], counter)
            self._n += take
            self._version += 1
            if counter is not None:
                counter.ops += take
            i += take
            if page.n_buffer >= self.buffer_capacity:
                self._rebuild_page(tree_key, page)

    def _rebuild_page(
        self, tree_key: Tuple[float, float], page: SegmentPage
    ) -> None:
        """Merge a page's buffer and re-partition it (Algorithm 4, l. 5-9)."""
        self._page_rebuilds += 1
        merged_keys, merged_values = page.merged_arrays()
        if self.counter is not None:
            self.counter.split()
            self.counter.data_move(len(merged_keys))
        if len(merged_keys) == 0:
            self._tree.delete(tree_key)
            self._dirty = True
            return
        new_pages = self._make_pages(merged_keys, merged_values)
        self._replace_page(tree_key, new_pages)

    def _replace_page(
        self, tree_key: Tuple[float, float], new_pages: List[SegmentPage]
    ) -> None:
        succ = self._tree.higher_item(tree_key)
        self._tree.delete(tree_key)
        self._dirty = True
        if not new_pages:
            return
        base_seq = tree_key[1]
        if succ is None:
            step = _SEQ_SPACING
        else:
            step = (succ[0][1] - base_seq) / (len(new_pages) + 1)
            if step <= 1e-9:
                seq_of = self._renumber()
                succ_seq = seq_of[id(succ[1])]
                base_seq = succ_seq - _SEQ_SPACING
                step = _SEQ_SPACING / (len(new_pages) + 1)
        for i, page in enumerate(new_pages):
            seq = base_seq if i == 0 else base_seq + i * step
            self._tree.insert((page.start_key, seq), page)

    def _renumber(self) -> Dict[int, float]:
        """Re-space all page seq numbers; returns ``id(page) -> seq``."""
        items = list(self._tree.items())
        self._tree.clear()
        seq_of: Dict[int, float] = {}
        pairs = []
        for i, ((start, _), page) in enumerate(items):
            seq = i * _SEQ_SPACING
            seq_of[id(page)] = seq
            pairs.append(((start, seq), page))
        self._tree.bulk_load(pairs, fill=self._fill)
        self._dirty = True
        return seq_of

    # ------------------------------------------------------------------
    # Deletes (extension; the paper does not cover deletion)
    # ------------------------------------------------------------------

    #: Sentinel returned by ``_delete_one`` when no occurrence exists.
    _DELETE_MISS = object()

    def _delete_one(self, key: float) -> Any:
        """Remove one occurrence of ``key``; ``_DELETE_MISS`` when absent.

        The scalar delete path (and the batch path's multi-page fallback
        for requests the owning floor page cannot satisfy — split
        duplicate runs and under-min keys). Charges exactly one logical
        op plus the searches it actually performs, so a loop of scalar
        deletes and one :meth:`delete_batch` charge identical page-level
        counters.
        """
        key = float(key)
        if self.counter is not None:
            self.counter.op()
        for tree_key, page in self._pages_possibly_containing(key):
            j = page.find_in_buffer(key, self.counter)
            if j >= 0:
                self._version += 1
                value = page.delete_at_buffer(j, self.counter)
                self._n -= 1
                if page.n_total == 0:
                    self._tree.delete(tree_key)
                    self._dirty = True
                return value
            i = page.find_in_data(key, self.page_search_error, self.counter)
            if i >= 0:
                self._version += 1
                value = page.delete_at_data(i, self.counter)
                self._n -= 1
                if page.n_total == 0:
                    self._tree.delete(tree_key)
                    self._dirty = True
                elif page.deletions >= self.buffer_capacity:
                    self._rebuild_page(tree_key, page)
                return value
        return self._DELETE_MISS

    def delete(self, key: float) -> Any:
        """Remove one occurrence of ``key``; returns its value.

        Buffered occurrences are removed directly; data occurrences are
        physically removed, widening the page's search window by one slot.
        After ``buffer_capacity`` deletions the page is rebuilt, so the
        user-facing error bound never degrades. Charge accounting is
        shared with :meth:`delete_batch` (op + buffer search + window
        search + ``data_move`` shift), so the scalar loop and the batch
        path charge identical page-level counters.
        """
        self._check_writable()
        key = float(key)
        sink = self.wal_sink
        if sink is not None:
            sink.log_delete(np.asarray([key], dtype=np.float64), "raise")
        value = self._delete_one(key)
        if value is self._DELETE_MISS:
            raise KeyNotFoundError(key)
        return value

    def delete_batch(
        self, keys, *, missing: str = "raise", default: Any = None
    ) -> np.ndarray:
        """Vectorized batch delete: group keys per page, bulk-splice each.

        The final state matches looping :meth:`delete` over the batch in
        stable key order (ties keep request order): each owning page
        removes its whole contiguous sub-batch through
        :meth:`SegmentPage.bulk_delete` — one buffer rebuild plus one
        ``np.delete`` splice — chunked to the page's remaining
        deletion-widening budget, so a chunk that drives ``deletions`` to
        ``buffer_capacity`` triggers exactly the rebuild a scalar delete
        would, and the remaining keys re-route against the new pages.
        Requests the floor page cannot satisfy (split duplicate runs,
        under-min keys, absent keys) fall back to the scalar multi-page
        path one request at a time, preserving scalar semantics and
        charge accounting. Empty batches are a strict no-op. Cost for K
        deletes: one O(K log K) sort, one tree descent per touched page,
        and one splice per mutated page instead of one per key.

        Parameters
        ----------
        keys:
            Keys to delete, any order, any array-like coercible to
            float64; each element removes one occurrence.
        missing:
            ``"raise"`` (default) raises :class:`KeyNotFoundError` at the
            first request with no remaining occurrence, leaving prior
            removals applied — exactly where the scalar loop would raise.
            ``"ignore"`` records a miss and continues.
        default:
            Value filling the miss slots under ``missing="ignore"``.

        Returns
        -------
        numpy.ndarray
            One deleted value per request, in request order: the values
            dtype when every request hit, else an object array with
            ``default`` in the miss slots (the :meth:`get_batch`
            convention).
        """
        self._check_writable()
        if missing not in ("raise", "ignore"):
            raise InvalidParameterError(
                f"missing must be 'raise' or 'ignore', got {missing!r}"
            )
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        n = keys.size
        if n == 0:
            return np.empty(0, dtype=self._values_dtype)
        sink = self.wal_sink
        if sink is not None:
            sink.log_delete(keys, missing)
        order = np.argsort(keys, kind="stable")
        skeys = keys[order]
        values: List[Any] = [default] * n
        found = np.zeros(n, dtype=bool)
        #: Whether any deleted value came from an insert buffer (a plain
        #: Python list that may hold payloads the values dtype cannot
        #: represent); data-array values are exact by construction.
        saw_buffer = False
        counter = self.counter
        i = 0
        while i < n:
            applied = 0
            if len(self._tree):
                tree_key, page = self._page_for(float(skeys[i]))
                nxt = self._tree.higher_item(tree_key)
                if nxt is None:
                    j = n
                else:
                    j = i + int(
                        np.searchsorted(skeys[i:], nxt[0][0], side="left")
                    )
                budget = (
                    self.buffer_capacity - page.deletions
                    if self.buffer_capacity
                    else None
                )
                applied, vals, n_data = page.bulk_delete(
                    skeys[i:j], self.page_search_error, counter, budget
                )
                if applied > n_data:
                    saw_buffer = True
                if applied:
                    values[i : i + applied] = vals
                    found[i : i + applied] = True
                    self._n -= applied
                    self._version += 1
                    if counter is not None:
                        counter.ops += applied
                    i += applied
                    if page.n_total == 0:
                        self._tree.delete(tree_key)
                        self._dirty = True
                    elif (
                        self.buffer_capacity
                        and page.deletions >= self.buffer_capacity
                    ):
                        self._rebuild_page(tree_key, page)
                    continue
            # The floor page holds no (further) occurrence of skeys[i]:
            # resolve this one request through the scalar multi-page path.
            value = self._delete_one(float(skeys[i]))
            if value is not self._DELETE_MISS:
                values[i] = value
                found[i] = True
                saw_buffer = True  # the fallback may reach buffers
            elif missing == "raise":
                raise KeyNotFoundError(float(skeys[i]))
            i += 1

        out = np.empty(n, dtype=object)
        out[order] = values
        if bool(found.all()) and self._values_dtype != np.dtype(object):
            if not saw_buffer:
                # Every value came straight off a typed data array:
                # exact by construction, no per-value verification.
                typed = np.empty(n, dtype=self._values_dtype)
                typed[:] = out
                return typed
            typed = exact_typed_array(out, self._values_dtype)
            if typed is not None:
                return typed
        return out

    def delete_value(self, key: float, value: Any) -> bool:
        """Remove the occurrence of ``key`` whose payload equals ``value``.

        Needed when duplicates carry distinct payloads (e.g. row ids in a
        secondary index, or distinct strings sharing an encoded prefix in
        :class:`repro.core.strings.StringFITingTree`). Returns True if an
        occurrence was removed, False if no (key, value) match exists.
        """
        self._check_writable()
        key = float(key)
        sink = self.wal_sink
        if sink is not None:
            sink.log_delete_value(key, value)
        if self.counter is not None:
            self.counter.op()
        for tree_key, page in self._pages_possibly_containing(key):
            j = page.find_in_buffer(key, self.counter)
            while 0 <= j < len(page.buf_keys) and page.buf_keys[j] == key:
                if page.buf_values[j] == value:
                    self._version += 1
                    page.delete_at_buffer(j, self.counter)
                    self._n -= 1
                    if page.n_total == 0:
                        self._tree.delete(tree_key)
                        self._dirty = True
                    return True
                j += 1
            i = page.find_in_data(key, self.page_search_error, self.counter)
            while 0 <= i < len(page.keys) and page.keys[i] == key:
                if page.values[i] == value:
                    self._version += 1
                    page.delete_at_data(i, self.counter)
                    self._n -= 1
                    if page.n_total == 0:
                        self._tree.delete(tree_key)
                        self._dirty = True
                    elif page.deletions >= self.buffer_capacity:
                        self._rebuild_page(tree_key, page)
                    return True
                i += 1
        return False

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the whole index: tree structure, page invariants, routing."""
        self._tree.validate()
        total = 0
        prev_start = None
        for (start, _seq), page in self._tree.items():
            if page.start_key != start:
                raise InvalidParameterError(
                    f"tree key {start} != page start {page.start_key}"
                )
            page.validate(self.page_search_error, self.buffer_capacity)
            if prev_start is not None and start < prev_start:
                raise InvalidParameterError("page starts out of order")
            prev_start = start
            total += page.n_total
        if total != self._n:
            raise InvalidParameterError(
                f"element count mismatch: pages={total} cached={self._n}"
            )
