"""String keys for the FITing-Tree via order-preserving prefix encoding.

The paper motivates the index for "data types such as timestamps or sensor
readings ... but also other data types such as geo-coordinates or string
data that have similar properties" (Section 1). The core machinery works on
float64 keys; this module bridges strings to it:

* :func:`encode_prefix` maps a string/bytes key to the integer value of its
  first six bytes (48 bits — exactly representable in a float64). The
  mapping is order-preserving on byte strings: ``a <= b`` implies
  ``encode(a) <= encode(b)``, so a byte-sorted column encodes to a sorted
  float array and the segmentation bound still holds.
* Strings sharing a 6-byte prefix collide into *duplicate* encoded keys —
  which the FITing-Tree already handles; :class:`StringFITingTree` stores
  the original strings as payload context and filters candidates by exact
  match, so collisions cost extra comparisons, never wrong answers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError, KeyNotFoundError
from repro.core.fiting_tree import FITingTree

__all__ = ["encode_prefix", "StringFITingTree"]

_PREFIX_BYTES = 6  # 48 bits: exact in float64, order-preserving


def _as_bytes(key: Any) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise InvalidParameterError(
        f"string index keys must be str or bytes, got {type(key).__name__}"
    )


def encode_prefix(key: Any) -> float:
    """Order-preserving 48-bit prefix encoding of a string/bytes key.

    ``a <= b  =>  encode_prefix(a) <= encode_prefix(b)`` under bytewise
    (UTF-8) ordering; equality of encodings means the first six bytes
    agree (a *candidate* match, not a guaranteed one).
    """
    raw = _as_bytes(key)[:_PREFIX_BYTES].ljust(_PREFIX_BYTES, b"\x00")
    return float(int.from_bytes(raw, "big"))


class StringFITingTree:
    """Error-bounded index over string keys.

    Parameters
    ----------
    keys:
        Iterable of str/bytes sorted ascending in bytewise (UTF-8) order.
    values:
        Optional payloads aligned with ``keys``; defaults to row ids.
    error, buffer_capacity, and friends:
        Forwarded to the underlying :class:`FITingTree` over the encoded
        keys.

    Notes
    -----
    Internally the index maps ``encoded_prefix -> row id``; originals and
    payloads live in append-only arrays. Lookups fetch the candidate row
    ids for the encoding and filter by exact string equality.
    """

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        error: float = 64.0,
        buffer_capacity: Optional[int] = None,
        **index_kwargs: Any,
    ) -> None:
        keys = list(keys) if keys is not None else []
        raw = [_as_bytes(k) for k in keys]
        for a, b in zip(raw, raw[1:]):
            if a > b:
                raise InvalidParameterError(
                    "string keys must be sorted ascending (bytewise)"
                )
        if values is None:
            values = list(range(len(raw)))
        else:
            values = list(values)
            if len(values) != len(raw):
                raise InvalidParameterError(
                    f"values length {len(values)} != keys length {len(raw)}"
                )
        self._originals: List[bytes] = raw
        self._payloads: List[Any] = values
        encoded = np.asarray([encode_prefix(k) for k in raw], dtype=np.float64)
        rowids = np.arange(len(raw), dtype=np.int64)
        self._index = FITingTree(
            encoded,
            rowids,
            error=error,
            buffer_capacity=buffer_capacity,
            **index_kwargs,
        )
        self._live = len(raw)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    @property
    def n_segments(self) -> int:
        return self._index.n_segments

    def model_bytes(self) -> int:
        """Index overhead (tree + segment metadata) over the encoded keys."""
        return self._index.model_bytes()

    def stats(self) -> Dict[str, Any]:
        out = self._index.stats()
        out["n"] = self._live
        return out

    # ------------------------------------------------------------------

    def _candidate_rows(self, key: Any) -> List[int]:
        return self._index.lookup_all(encode_prefix(key))

    def lookup_all(self, key: Any) -> List[Any]:
        """Payloads of every occurrence of ``key`` (exact string match)."""
        raw = _as_bytes(key)
        return [
            self._payloads[row]
            for row in self._candidate_rows(key)
            if self._originals[row] == raw
        ]

    def get(self, key: Any, default: Any = None) -> Any:
        matches = self.lookup_all(key)
        return matches[0] if matches else default

    def __contains__(self, key: Any) -> bool:
        return bool(self.lookup_all(key))

    def __getitem__(self, key: Any) -> Any:
        matches = self.lookup_all(key)
        if not matches:
            raise KeyNotFoundError(key)
        return matches[0]

    def range_items(
        self, lo: Any = None, hi: Any = None
    ) -> Iterator[Tuple[bytes, Any]]:
        """``(key, payload)`` pairs with ``lo <= key <= he`` bytewise.

        Prefix encoding is coarse at the boundaries (strings sharing the
        boundary's 6-byte prefix), so boundary candidates are re-filtered
        against the exact byte strings.
        """
        lo_raw = _as_bytes(lo) if lo is not None else None
        hi_raw = _as_bytes(hi) if hi is not None else None
        lo_enc = encode_prefix(lo) if lo is not None else None
        hi_enc = encode_prefix(hi) if hi is not None else None
        for _, row in self._index.range_items(lo_enc, hi_enc):
            original = self._originals[row]
            if lo_raw is not None and original < lo_raw:
                continue
            if hi_raw is not None and original > hi_raw:
                continue
            yield original, self._payloads[row]

    def prefix_items(self, prefix: Any) -> Iterator[Tuple[bytes, Any]]:
        """All entries whose key starts with ``prefix`` (bytewise)."""
        raw = _as_bytes(prefix)
        hi = raw + b"\xff" * max(0, _PREFIX_BYTES - len(raw)) + b"\xff" * 8
        for key, payload in self.range_items(raw, hi):
            if key.startswith(raw):
                yield key, payload

    # ------------------------------------------------------------------

    def insert(self, key: Any, value: Any = None) -> None:
        """Index a new string key."""
        raw = _as_bytes(key)
        row = len(self._originals)
        self._originals.append(raw)
        self._payloads.append(value if value is not None else row)
        self._index.insert(encode_prefix(raw), row)
        self._live += 1

    def delete(self, key: Any) -> Any:
        """Remove one occurrence of ``key``; returns its payload."""
        raw = _as_bytes(key)
        for row in self._candidate_rows(key):
            if self._originals[row] == raw:
                if not self._index.delete_value(encode_prefix(raw), row):
                    raise AssertionError(  # pragma: no cover - internal
                        "candidate row vanished during delete"
                    )
                self._live -= 1
                return self._payloads[row]
        raise KeyNotFoundError(key)

    def validate(self) -> None:
        self._index.validate()
        if len(self._index) != self._live:
            raise InvalidParameterError("live-row count out of sync")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StringFITingTree(n={self._live}, segments={self.n_segments})"
        )
