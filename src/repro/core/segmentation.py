"""Online segmentation: the ShrinkingCone algorithm (paper Algorithm 2).

Given keys sorted ascending (duplicates allowed) and an error threshold,
partition the array into the fewest segments a single greedy pass can manage
such that every element's linearly interpolated position is within ``error``
of its true position.

The cone
--------
For a segment with origin ``(x0, y0)`` (first key and its position), each
subsequent element ``(x, y)`` constrains the feasible slopes to
``[(y - error - y0)/d, (y + error + ... )/d]`` with ``d = x - x0``; the
running intersection of these intervals is the *cone* ``[lo, hi]``. Any
slope inside the final cone satisfies the error bound for every element of
the segment, so the index can safely store the midpoint.

Accept tests
------------
* ``accept="paper"`` — the paper's test: the new point itself must lie
  inside the current cone (its slope-to-origin ``s`` is in ``[lo, hi]``).
* ``accept="exact"`` — our strictly stronger variant: accept whenever the
  intersection of the cone with the new point's own slope interval is
  non-empty. Every point the paper's test accepts is also accepted here,
  and the counterexample in ``tests/core/test_segmentation_exactness.py``
  shows the inclusion is strict. The paper's prose claims its test is
  necessary; it is only sufficient. Both are provided; the index defaults
  to the paper's behaviour, and the ablation bench quantifies the gap.

Duplicates
----------
Elements equal to the origin key have ``d = 0``: interpolation predicts the
origin position regardless of slope, so such an element fits if and only if
its distance from the origin position is at most ``error``. Longer duplicate
runs are split into multiple segments sharing a start key; the FITing-Tree's
``lookup_all`` stitches across such boundaries.

Both a vectorized implementation (numpy, chunked scans — the default) and a
scalar reference implementation are provided; a hypothesis property test
pins them to identical output.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError, NotSortedError
from repro.core.segment import Segment

__all__ = [
    "shrinking_cone",
    "shrinking_cone_reference",
    "exact_cone",
    "cone_reach",
    "fixed_segments",
    "max_segments_bound",
]

_INF = float("inf")
_ACCEPT_MODES = ("paper", "exact")


def _as_sorted_keys(keys) -> np.ndarray:
    arr = np.asarray(keys, dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidParameterError(f"keys must be 1-D, got shape {arr.shape}")
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise NotSortedError("keys must be sorted ascending")
    return arr


def _check_error(error: float) -> float:
    if not error > 0:
        raise InvalidParameterError(f"error must be positive, got {error}")
    return float(error)


def _check_accept(accept: str) -> bool:
    if accept not in _ACCEPT_MODES:
        raise InvalidParameterError(
            f"accept must be one of {_ACCEPT_MODES}, got {accept!r}"
        )
    return accept == "exact"


def _slope_from_cone(lo: float, hi: float) -> float:
    """Pick the slope the index stores once a segment is closed.

    Any slope in ``[lo, hi]`` honours the error bound; we store the midpoint
    (or ``lo`` — i.e. 0 — when no finite upper bound was ever set, which
    happens only for segments whose elements all share one key).
    """
    if hi == _INF:
        return lo
    return 0.5 * (lo + hi)


# ----------------------------------------------------------------------
# Scalar reference implementation
# ----------------------------------------------------------------------

def _scan_segment_scalar(
    keys: np.ndarray, i0: int, error: float, exact: bool
) -> Tuple[int, float, float]:
    """Grow one segment starting at ``i0``; return (end_exclusive, lo, hi)."""
    n = len(keys)
    x0 = keys[i0]
    lo, hi = 0.0, _INF
    for k in range(i0 + 1, n):
        d = keys[k] - x0
        y = float(k - i0)
        if d == 0.0:
            if y <= error:
                continue
            return k, lo, hi
        with np.errstate(over="ignore", invalid="ignore"):
            s = y / d
        if not math.isfinite(s):
            # The slope this point needs overflows float64: no representable
            # slope moves the prediction off the origin position, so the
            # point behaves exactly like a duplicate of the origin.
            if y <= error:
                continue
            return k, lo, hi
        with np.errstate(over="ignore", invalid="ignore"):
            margin = error / d
            lo_cand = s - margin
            hi_cand = s + margin
        if math.isnan(lo_cand):
            lo_cand = -_INF
        if math.isnan(hi_cand):
            hi_cand = _INF
        if exact:
            ok = max(lo, lo_cand) <= min(hi, hi_cand)
        else:
            ok = lo <= s <= hi
        if not ok:
            return k, lo, hi
        if lo_cand > lo:
            lo = lo_cand
        if hi_cand < hi:
            hi = hi_cand
    return n, lo, hi


def shrinking_cone_reference(
    keys, error: float, *, accept: str = "paper"
) -> List[Segment]:
    """Scalar reference ShrinkingCone; see :func:`shrinking_cone`."""
    keys = _as_sorted_keys(keys)
    error = _check_error(error)
    exact = _check_accept(accept)
    segments: List[Segment] = []
    i0 = 0
    n = len(keys)
    while i0 < n:
        end, lo, hi = _scan_segment_scalar(keys, i0, error, exact)
        segments.append(
            Segment(float(keys[i0]), i0, _slope_from_cone(lo, hi), end - i0)
        )
        i0 = end
    return segments


# ----------------------------------------------------------------------
# Vectorized implementation
# ----------------------------------------------------------------------

def _scan_segment_vector(
    keys: np.ndarray, i0: int, error: float, exact: bool, chunk: int
) -> Tuple[int, float, float]:
    """Vectorized equivalent of :func:`_scan_segment_scalar`.

    Processes ``chunk`` elements per numpy pass: running cone bounds are
    prefix min/max scans; the first violating element is located with
    ``argmax`` on the violation mask.
    """
    n = len(keys)
    x0 = keys[i0]
    lo, hi = 0.0, _INF
    j = i0 + 1
    while j < n:
        stop = min(j + chunk, n)
        x = keys[j:stop]

        # Duplicates of the origin key form a prefix of the (sorted) chunk.
        n_dup = int(np.searchsorted(x, x0, side="right"))
        if n_dup > 0:
            last_dup_pos = j + n_dup - 1
            if last_dup_pos - i0 > error:
                # First duplicate too far from the origin position.
                return max(j, i0 + int(math.floor(error)) + 1), lo, hi
            j += n_dup
            continue

        d = x - x0
        y = np.arange(j - i0, stop - i0, dtype=np.float64)
        with np.errstate(over="ignore", invalid="ignore"):
            s = y / d
            margin = error / d
            lo_cand = s - margin
            hi_cand = s + margin
        # Points whose required slope overflows float64 behave exactly like
        # duplicates of the origin (see the scalar path): acceptable iff
        # within ``error`` of the origin position, never constraining the
        # cone. NaN candidate bounds (inf - inf) mean "no constraint".
        s_overflow = np.isinf(s)
        np.copyto(lo_cand, -_INF, where=s_overflow | np.isnan(lo_cand))
        np.copyto(hi_cand, _INF, where=s_overflow | np.isnan(hi_cand))

        lo_incl = np.maximum(lo, np.maximum.accumulate(lo_cand))
        hi_incl = np.minimum(hi, np.minimum.accumulate(hi_cand))
        # Cone bounds *before* each element (exclusive prefix scan).
        lo_pre = np.empty_like(lo_incl)
        hi_pre = np.empty_like(hi_incl)
        lo_pre[0], hi_pre[0] = lo, hi
        lo_pre[1:], hi_pre[1:] = lo_incl[:-1], hi_incl[:-1]

        if exact:
            viol = np.maximum(lo_pre, lo_cand) > np.minimum(hi_pre, hi_cand)
        else:
            viol = (s < lo_pre) | (s > hi_pre)
        viol = np.where(s_overflow, y > error, viol)

        if viol.any():
            idx = int(np.argmax(viol))
            return j + idx, float(lo_pre[idx]), float(hi_pre[idx])
        lo = float(lo_incl[-1])
        hi = float(hi_incl[-1])
        j = stop
    return n, lo, hi


def shrinking_cone(
    keys, error: float, *, accept: str = "paper", chunk: int = 4096
) -> List[Segment]:
    """Segment sorted ``keys`` with the ShrinkingCone algorithm.

    Parameters
    ----------
    keys:
        1-D array-like of keys sorted ascending; duplicates allowed.
    error:
        Maximum allowed |predicted − true| position (the paper's tunable
        error threshold). Must be positive.
    accept:
        ``"paper"`` for the paper's in-cone accept test (default),
        ``"exact"`` for the non-empty-intersection test (never produces
        more segments; see module docstring).
    chunk:
        Elements per vectorized pass; affects speed only.

    Returns
    -------
    list[Segment]
        Contiguous segments tiling ``[0, len(keys))``, each satisfying the
        error bound (checkable with
        :func:`repro.core.segment.verify_segments`).
    """
    keys = _as_sorted_keys(keys)
    error = _check_error(error)
    exact = _check_accept(accept)
    if chunk < 2:
        raise InvalidParameterError(f"chunk must be >= 2, got {chunk}")
    segments: List[Segment] = []
    i0 = 0
    n = len(keys)
    while i0 < n:
        end, lo, hi = _scan_segment_vector(keys, i0, error, exact, chunk)
        segments.append(
            Segment(float(keys[i0]), i0, _slope_from_cone(lo, hi), end - i0)
        )
        i0 = end
    return segments


def exact_cone(keys, error: float, *, chunk: int = 4096) -> List[Segment]:
    """ShrinkingCone with the exact (non-empty intersection) accept test."""
    return shrinking_cone(keys, error, accept="exact", chunk=chunk)


def cone_reach(
    keys: np.ndarray, i0: int, error: float, *, chunk: int = 4096
) -> int:
    """Maximal exclusive end of a feasible segment with origin ``i0``.

    Uses the exact accept test, so the result is the true maximal reach: a
    segment ``[i0, end)`` is feasible iff ``end <= cone_reach(keys, i0, e)``
    (feasibility is prefix-closed). This is the primitive behind the
    optimal segmentation in :mod:`repro.core.optimal`.
    """
    end, _, _ = _scan_segment_vector(keys, i0, error, True, chunk)
    return end


# ----------------------------------------------------------------------
# Fixed-size segmentation (baseline substrate) and bounds
# ----------------------------------------------------------------------

def fixed_segments(keys, page_size: int) -> List[Segment]:
    """Split ``keys`` into fixed-size pages, fitting a first-to-last slope.

    This is the paging scheme of the "Fixed" baseline: pages carry no error
    guarantee (interpolating inside one is *not* bounded by any error), so
    the resulting segments must not be fed to ``verify_segments``.
    """
    keys = _as_sorted_keys(keys)
    if page_size < 1:
        raise InvalidParameterError(f"page_size must be >= 1, got {page_size}")
    segments: List[Segment] = []
    n = len(keys)
    for start in range(0, n, page_size):
        end = min(start + page_size, n)
        span = keys[end - 1] - keys[start]
        slope = (end - 1 - start) / span if span > 0 else 0.0
        segments.append(Segment(float(keys[start]), start, float(slope), end - start))
    return segments


def max_segments_bound(n_keys: int, n_elements: int, error: float) -> float:
    """Paper Section 3.4 guarantee on ShrinkingCone's segment count.

    ``min(|keys| / 2, |D| / (error + 1))`` where ``|keys|`` counts distinct
    keys and ``|D|`` counts elements including duplicates.

    Caveat (documented in DESIGN.md): the ``|keys| / 2`` term assumes no
    single key repeats more than ``error + 1`` times. A longer duplicate
    run forces extra segments that share one key — the paper's own A.3
    construction relies on exactly this behaviour — so for duplicate-heavy
    inputs only the ``|D| / (error + 1)`` term (plus one trailing segment)
    is a sound bound for integer errors.
    """
    return min(n_keys / 2.0, n_elements / (error + 1.0))
