"""Core of the reproduction: the FITing-Tree and its algorithms.

Contents map directly onto the paper's sections:

* :mod:`repro.core.segment` / :mod:`repro.core.segmentation` — segments and
  the ShrinkingCone bulk-loading algorithm (Sections 2-3);
* :mod:`repro.core.optimal` — optimal segmentation baselines (Section 3.2);
* :mod:`repro.core.fiting_tree` / :mod:`repro.core.page` /
  :mod:`repro.core.paged_index` — the clustered index with lookups and
  buffered inserts (Sections 4-5);
* :mod:`repro.core.secondary` — the non-clustered variant (Section 2.2.1);
* :mod:`repro.core.cost_model` — the DBA-facing cost model (Section 6).
"""

from repro.core.cost_model import (
    CostModel,
    CostModelParams,
    DEFAULT_ERROR_GRID,
)
from repro.core.errors import (
    EmptyIndexError,
    InvalidParameterError,
    InvariantViolationError,
    KeyNotFoundError,
    NotSortedError,
    ReproError,
    SegmentationError,
)
from repro.core.fiting_tree import FITingTree
from repro.core.optimal import (
    optimal_count_bruteforce,
    optimal_segment_count,
    optimal_segments,
    optimal_segments_endpoint,
)
from repro.core.page import SegmentPage
from repro.core.secondary import SecondaryFITingTree
from repro.core.segment import Segment, max_deviation, verify_segments
from repro.core.segmentation import (
    cone_reach,
    exact_cone,
    fixed_segments,
    max_segments_bound,
    shrinking_cone,
    shrinking_cone_reference,
)
from repro.core.serialize import load_index, save_index
from repro.core.strings import StringFITingTree, encode_prefix

__all__ = [
    "CostModel",
    "CostModelParams",
    "DEFAULT_ERROR_GRID",
    "EmptyIndexError",
    "FITingTree",
    "InvalidParameterError",
    "InvariantViolationError",
    "KeyNotFoundError",
    "NotSortedError",
    "ReproError",
    "SecondaryFITingTree",
    "Segment",
    "SegmentPage",
    "SegmentationError",
    "StringFITingTree",
    "cone_reach",
    "encode_prefix",
    "exact_cone",
    "fixed_segments",
    "load_index",
    "max_deviation",
    "max_segments_bound",
    "save_index",
    "optimal_count_bruteforce",
    "optimal_segment_count",
    "optimal_segments",
    "optimal_segments_endpoint",
    "shrinking_cone",
    "shrinking_cone_reference",
    "verify_segments",
]
