"""Exception hierarchy for the FITing-Tree reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is out of its legal range.

    Raised, for example, for a non-positive error threshold, a buffer size
    that is not smaller than the error threshold, or a fill factor outside
    ``(0, 1]``.
    """


class NotSortedError(ReproError, ValueError):
    """Input keys that must be sorted ascending are not."""


class EmptyIndexError(ReproError, KeyError):
    """An operation that requires a non-empty index was called on an empty one."""


class KeyNotFoundError(ReproError, KeyError):
    """A lookup for a key that is not present in the index."""


class SegmentationError(ReproError, RuntimeError):
    """A segmentation algorithm produced an internal inconsistency.

    This indicates a bug in the library (segments that do not cover the
    input, or that violate the error bound), never bad user input.
    """


class InvariantViolationError(ReproError, AssertionError):
    """A structural invariant check failed (used by ``validate()`` helpers)."""
