"""Segment: the core building block of a FITing-Tree (paper Section 2.1).

A segment is a contiguous region of a sorted array for which linear
interpolation from the segment's first point predicts every covered key's
position to within a fixed error bound:

    ``|predicted_position(k) - true_position(k)| <= error``  for all keys k.

The index stores, per segment, only the start key, the slope of the fitted
line, and where the segment's data lives — three 8-byte words in the
paper's size model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.errors import SegmentationError

__all__ = ["Segment", "max_deviation", "verify_segments"]


@dataclass(frozen=True)
class Segment:
    """An immutable description of one linear segment.

    Attributes
    ----------
    start_key:
        First key covered by the segment (the cone origin).
    start_pos:
        Global position (array index) of the segment's first element.
    slope:
        Fitted slope in positions-per-key-unit. Any key ``k`` in the segment
        has predicted global position ``start_pos + (k - start_key) * slope``.
    length:
        Number of elements (array slots, duplicates included) covered.
    """

    start_key: float
    start_pos: int
    slope: float
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise SegmentationError(f"segment with non-positive length: {self}")
        if self.slope < 0:
            raise SegmentationError(f"segment with negative slope: {self}")

    @property
    def end_pos(self) -> int:
        """One past the last global position covered."""
        return self.start_pos + self.length

    def predict(self, key: float) -> float:
        """Predicted (unclamped, fractional) global position of ``key``."""
        return self.start_pos + (key - self.start_key) * self.slope

    def predict_clamped(self, key: float) -> int:
        """Predicted global position clamped into the segment's range."""
        pos = int(round(self.predict(key)))
        if pos < self.start_pos:
            return self.start_pos
        last = self.end_pos - 1
        if pos > last:
            return last
        return pos

    def local_offset(self, key: float) -> int:
        """Predicted offset within the segment's own data array, clamped."""
        return self.predict_clamped(key) - self.start_pos


def max_deviation(
    keys: np.ndarray, positions: np.ndarray, segment: Segment
) -> float:
    """Largest |predicted - true| position over the segment's own elements.

    ``keys``/``positions`` are the *global* arrays; the segment's slice is
    selected via its ``start_pos``/``length``.
    """
    sl = slice(segment.start_pos, segment.end_pos)
    predicted = segment.start_pos + (keys[sl] - segment.start_key) * segment.slope
    return float(np.max(np.abs(predicted - positions[sl]))) if segment.length else 0.0


def verify_segments(
    keys: Sequence[float],
    segments: List[Segment],
    error: float,
    positions: Sequence[float] | None = None,
) -> None:
    """Validate a segmentation against the paper's definition.

    Checks that segments tile ``[0, len(keys))`` contiguously, that each
    segment's start key matches the underlying array, and that every
    element's interpolated position is within ``error`` of its true
    position. Raises :class:`SegmentationError` on any violation — this is
    the invariant every segmentation algorithm and every re-segmentation
    after inserts must uphold.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if positions is None:
        positions = np.arange(len(keys), dtype=np.float64)
    else:
        positions = np.asarray(positions, dtype=np.float64)

    if not segments:
        if len(keys):
            raise SegmentationError("no segments for non-empty input")
        return

    expected_start = 0
    for seg in segments:
        if seg.start_pos != expected_start:
            raise SegmentationError(
                f"segments not contiguous: expected start {expected_start}, "
                f"got {seg.start_pos}"
            )
        if seg.start_key != keys[seg.start_pos]:
            raise SegmentationError(
                f"segment start key {seg.start_key} != array key "
                f"{keys[seg.start_pos]} at {seg.start_pos}"
            )
        deviation = max_deviation(keys, positions, seg)
        if deviation > error + 1e-6:
            raise SegmentationError(
                f"error bound violated: deviation {deviation} > {error} in {seg}"
            )
        expected_start = seg.end_pos
    if expected_start != len(keys):
        raise SegmentationError(
            f"segments cover {expected_start} of {len(keys)} elements"
        )
