"""Persistence: save/load a FITing-Tree to a single ``.npz`` file.

An extension beyond the paper (any adoptable index needs it). The on-disk
format stores the segment structure flat — concatenated data keys/values,
per-segment boundaries, start keys, slopes, seqs, and buffered entries —
plus the scalar build parameters. Loading rebuilds the B+ tree with one
bulk pass, so a round trip preserves exactly: contents, segment boundaries,
buffer contents, tree-key seq numbers, error accounting, and pending
deletion-widening state.

Only numeric (integer/float) value dtypes are supported: object payloads
have no portable npz representation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.core.page import SegmentPage

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def save_index(index: FITingTree, path: str) -> None:
    """Serialize ``index`` to ``path`` (a ``.npz`` file).

    Raises :class:`InvalidParameterError` for object-dtype payloads.
    """
    if not isinstance(index, FITingTree):
        raise InvalidParameterError(
            f"save_index supports FITingTree, got {type(index).__name__}"
        )
    if index._values_dtype == np.dtype(object):
        raise InvalidParameterError(
            "object-dtype values cannot be serialized to npz"
        )

    data_keys: List[np.ndarray] = []
    data_values: List[np.ndarray] = []
    starts: List[float] = []
    seqs: List[float] = []
    slopes: List[float] = []
    lengths: List[int] = []
    deletions: List[int] = []
    buf_keys: List[float] = []
    buf_values: List[Any] = []
    buf_lengths: List[int] = []

    for (start, seq), page in index._tree.items():
        starts.append(start)
        seqs.append(seq)
        slopes.append(page.slope)
        lengths.append(page.n_data)
        deletions.append(page.deletions)
        data_keys.append(page.keys)
        data_values.append(page.values)
        buf_lengths.append(page.n_buffer)
        buf_keys.extend(page.buf_keys)
        buf_values.extend(page.buf_values)

    meta = {
        "format_version": _FORMAT_VERSION,
        "error": index.error,
        "buffer_capacity": index.buffer_capacity,
        "accept": index._accept,
        "search": index.search_mode,
        "branching": index._tree.branching,
        "fill": index._fill,
        "n": len(index),
        "auto_rowid": index._auto_rowid,
        "next_rowid": index._next_rowid,
        "values_dtype": index._values_dtype.str,
    }
    value_dtype = index._values_dtype
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        data_keys=(
            np.concatenate(data_keys) if data_keys else np.empty(0)
        ),
        data_values=(
            np.concatenate(data_values)
            if data_values
            else np.empty(0, dtype=value_dtype)
        ),
        starts=np.asarray(starts, dtype=np.float64),
        seqs=np.asarray(seqs, dtype=np.float64),
        slopes=np.asarray(slopes, dtype=np.float64),
        lengths=np.asarray(lengths, dtype=np.int64),
        deletions=np.asarray(deletions, dtype=np.int64),
        buf_keys=np.asarray(buf_keys, dtype=np.float64),
        buf_values=np.asarray(buf_values, dtype=value_dtype),
        buf_lengths=np.asarray(buf_lengths, dtype=np.int64),
    )


def load_index(path: str) -> FITingTree:
    """Rebuild a FITing-Tree saved by :func:`save_index`."""
    with np.load(path) as archive:
        meta: Dict[str, Any] = json.loads(bytes(archive["meta"]).decode())
        if meta.get("format_version") != _FORMAT_VERSION:
            raise InvalidParameterError(
                f"unsupported index file version: {meta.get('format_version')}"
            )
        data_keys = archive["data_keys"]
        data_values = archive["data_values"]
        starts = archive["starts"]
        seqs = archive["seqs"]
        slopes = archive["slopes"]
        lengths = archive["lengths"]
        deletions = archive["deletions"]
        buf_keys = archive["buf_keys"]
        buf_values = archive["buf_values"]
        buf_lengths = archive["buf_lengths"]

    index = FITingTree(
        error=meta["error"],
        buffer_capacity=meta["buffer_capacity"],
        accept=meta["accept"],
        search=meta["search"],
        branching=meta["branching"],
        fill=meta["fill"],
    )
    index._auto_rowid = meta["auto_rowid"]
    index._next_rowid = meta["next_rowid"]
    index._values_dtype = np.dtype(meta["values_dtype"])

    pairs = []
    offset = 0
    buf_offset = 0
    for i in range(len(starts)):
        end = offset + int(lengths[i])
        page = SegmentPage(
            float(starts[i]),
            float(slopes[i]),
            data_keys[offset:end].copy(),
            data_values[offset:end].copy(),
        )
        page.deletions = int(deletions[i])
        buf_end = buf_offset + int(buf_lengths[i])
        page.buf_keys = [float(k) for k in buf_keys[buf_offset:buf_end]]
        page.buf_values = list(buf_values[buf_offset:buf_end])
        pairs.append(((float(starts[i]), float(seqs[i])), page))
        offset = end
        buf_offset = buf_end

    if pairs:
        index._tree.bulk_load(pairs, fill=meta["fill"])
    index._n = meta["n"]
    index._dirty = True
    return index
