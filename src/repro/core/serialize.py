"""Persistence: save/load a paged index to a single ``.npz`` file.

An extension beyond the paper (any adoptable index needs it). Since the
cluster layer landed this module is a thin disk encoding of the in-memory
snapshot contract — :meth:`repro.core.paged_index.PagedIndexBase.to_state`
/ ``from_state`` — which stores the segment structure flat: concatenated
data keys/values, per-segment boundaries, start keys, slopes, seqs, and
buffered entries, plus the scalar build parameters. Loading rebuilds the
B+ tree with one bulk pass (no re-segmentation), so a round trip preserves
exactly: contents, segment boundaries, buffer contents, tree-key seq
numbers, error accounting, pending deletion-widening state, the row-id
counter and the monotonic ``version`` stamp.

Only numeric (integer/float) value dtypes are supported: object payloads
have no portable flat representation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Type

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.core.paged_index import PagedIndexBase

__all__ = [
    "save_index",
    "load_index",
    "save_state",
    "load_state",
    "index_from_state",
    "register_index_class",
]

#: Version 1 was FITingTree-only and did not persist the version stamp;
#: version 2 is the generic ``to_state`` snapshot. Both load.
_FORMAT_VERSION = 2

#: State-array fields shared by the snapshot dict and the npz layout.
_ARRAY_FIELDS = (
    "starts",
    "seqs",
    "slopes",
    "lengths",
    "deletions",
    "data_keys",
    "data_values",
    "buf_keys",
    "buf_values",
    "buf_lengths",
)

#: Scalar snapshot fields carried in the JSON meta blob.
_META_FIELDS = ("n", "auto_rowid", "next_rowid", "values_dtype", "version")


#: The canonical snapshot-class dispatch table — shared by on-disk loads
#: here and by cluster workers (``repro.cluster.snapshot`` re-exports the
#: two functions below), so a class registered once both persists and
#: clusters.
_REGISTRY: Dict[str, Type[PagedIndexBase]] = {}


def register_index_class(cls: Type[PagedIndexBase]) -> Type[PagedIndexBase]:
    """Register a paged-index class for snapshot dispatch (by ``__name__``).

    The built-in classes are pre-registered; downstream
    :class:`~repro.core.paged_index.PagedIndexBase` subclasses call this
    once so both :func:`load_index` and cluster workers can rebuild them.
    Returns ``cls`` (usable as a decorator).
    """
    _REGISTRY[cls.__name__] = cls
    return cls


def _registry() -> Dict[str, Type[PagedIndexBase]]:
    """The dispatch table, lazily seeded (baselines import core).

    Seeding keys off the built-ins' presence, not dict truthiness, so a
    downstream class registered before the first load cannot displace
    them; ``setdefault`` likewise keeps an explicit user registration
    under a built-in name authoritative.
    """
    if "FITingTree" not in _REGISTRY or "FixedPageIndex" not in _REGISTRY:
        from repro.baselines.fixed_index import FixedPageIndex

        _REGISTRY.setdefault("FITingTree", FITingTree)
        _REGISTRY.setdefault("FixedPageIndex", FixedPageIndex)
    return _REGISTRY


def index_from_state(state: Dict[str, Any]) -> PagedIndexBase:
    """Rebuild an index from a ``to_state`` snapshot, any registered class.

    Parameters
    ----------
    state:
        A dict produced by ``PagedIndexBase.to_state`` (its
        ``"index_cls"`` field selects the class).

    Returns
    -------
    PagedIndexBase
        The rebuilt index, bit-identical to the snapshotted one.
    """
    cls = _registry().get(state.get("index_cls"))
    if cls is None:
        raise InvalidParameterError(
            f"unknown snapshot index class {state.get('index_cls')!r}; "
            "register it with repro.core.serialize.register_index_class"
        )
    return cls.from_state(state)


def save_index(index: PagedIndexBase, path: str) -> None:
    """Serialize ``index`` to ``path`` (a ``.npz`` file).

    Any :class:`~repro.core.paged_index.PagedIndexBase` subclass with a
    snapshot hook works (``FITingTree``, ``FixedPageIndex``). Raises
    :class:`InvalidParameterError` for other types and for object-dtype
    payloads.
    """
    if not isinstance(index, PagedIndexBase):
        raise InvalidParameterError(
            f"save_index supports paged indexes, got {type(index).__name__}"
        )
    save_state(index.to_state(), path)


def save_state(state: Dict[str, Any], path: str, *, sync: bool = False) -> None:
    """Write a ``to_state`` snapshot dict to ``path`` as ``.npz``.

    The disk layout is exactly :func:`save_index`'s (that function is now
    a ``to_state`` + ``save_state`` composition); the WAL snapshot path
    uses this entry point directly since cluster workers ship state dicts,
    not live index objects.

    Parameters
    ----------
    state:
        A ``PagedIndexBase.to_state`` snapshot dict.
    path:
        Destination file. Unlike ``np.savez``, no ``.npz`` suffix is
        appended — the name is used verbatim.
    sync:
        When True, ``fsync`` the file before returning (durability
        snapshots need the bytes on disk before the manifest flips).
    """
    meta = {
        "format_version": _FORMAT_VERSION,
        "index_cls": state["index_cls"],
        "params": state["params"],
    }
    meta.update({k: state[k] for k in _META_FIELDS})
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh,
            meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
            **{k: state[k] for k in _ARRAY_FIELDS},
        )
        fh.flush()
        if sync:
            os.fsync(fh.fileno())


def load_index(path: str) -> PagedIndexBase:
    """Rebuild a paged index saved by :func:`save_index`.

    Loads both format version 2 (generic snapshot) and the legacy
    FITingTree-only version 1 layout.
    """
    return index_from_state(load_state(path))


def load_state(path: str) -> Dict[str, Any]:
    """Read a snapshot file back into a ``from_state``-ready dict.

    Returns
    -------
    dict
        The snapshot state dict, loadable via :func:`index_from_state`.
    """
    with np.load(path) as archive:
        meta: Dict[str, Any] = json.loads(bytes(archive["meta"]).decode())
        fmt = meta.get("format_version")
        if fmt not in (1, 2):
            raise InvalidParameterError(
                f"unsupported index file version: {fmt}"
            )
        state: Dict[str, Any] = {
            k: archive[k] for k in _ARRAY_FIELDS if k in archive
        }
    if fmt == 1:
        # Legacy layout: FITingTree only, ctor params inline in the meta.
        state["index_cls"] = "FITingTree"
        state["params"] = {
            k: meta[k]
            for k in ("error", "buffer_capacity", "accept", "search",
                      "branching", "fill")
        }
        state["version"] = 1
    else:
        state["index_cls"] = meta["index_cls"]
        state["params"] = meta["params"]
        state["version"] = meta["version"]
    for k in ("n", "auto_rowid", "next_rowid", "values_dtype"):
        state[k] = meta[k]
    return state
