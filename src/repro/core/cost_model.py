"""The paper's cost model (Section 6): pick an error threshold from an SLA.

Two user-facing questions are answered:

* *latency guarantee* — "lookups must finish within L nanoseconds": among
  error thresholds whose modeled latency fits, return the one with the
  smallest modeled index (paper eq. 6.1-2);
* *space budget* — "the index may use at most S bytes": among thresholds
  whose modeled size fits, return the one with the lowest modeled latency
  (paper eq. 6.2-2).

Both rely on ``S_e``, the number of segments produced at error ``e``. The
paper offers two ways to get it and so do we: *learn* it by segmenting the
actual dataset at each candidate error (:meth:`CostModel.learned`), or use
a closed-form worst-case assumption (:meth:`CostModel.worst_case`,
``S_e = n / (e + 1)`` from Theorem 3.1).

Modeled quantities (``b`` = tree fanout, ``f`` = fill factor, ``bu`` =
buffer size, ``c`` = cost of a random access in ns):

* lookup latency: ``c * (log_b(S_e) + log2(e) + log2(bu))``
* index size:     ``f * S_e * log_b(S_e) * 16B + S_e * 24B``
* insert latency (our formalization of the paper's sketch): tree descent +
  buffer insertion + amortized merge/re-segmentation of the page.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.core.errors import InvalidParameterError
from repro.core.segmentation import shrinking_cone

__all__ = ["CostModelParams", "CostModel", "DEFAULT_ERROR_GRID"]

#: The candidate set ``E`` from the paper's examples, extended to a denser
#: power-of-two grid so the argmin has meaningful resolution.
DEFAULT_ERROR_GRID: tuple = tuple(2 ** k for k in range(3, 21))


@dataclass(frozen=True)
class CostModelParams:
    """Hardware/structure constants used by the model.

    ``c_ns`` is the latency of a random memory access (the paper uses 100 ns
    as a generic figure and measures 50 ns for Figure 10);
    ``seq_ns`` prices one element of sequential work (buffer shifting,
    merge copying) for the insert model.
    """

    c_ns: float = 100.0
    branching: int = 16
    fill: float = 0.5
    entry_bytes: int = 16
    segment_metadata_bytes: int = 24
    seq_ns: float = 1.0

    def __post_init__(self) -> None:
        if self.c_ns <= 0 or self.seq_ns < 0:
            raise InvalidParameterError("c_ns must be > 0 and seq_ns >= 0")
        if self.branching < 2:
            raise InvalidParameterError("branching must be >= 2")
        if not (0.0 < self.fill <= 1.0):
            raise InvalidParameterError("fill must be in (0, 1]")


class CostModel:
    """Maps an error threshold to modeled lookup latency and index size.

    Parameters
    ----------
    segments_fn:
        Callable ``error -> S_e`` (number of segments for this dataset).
    n:
        Dataset size (used only by the insert model's merge term).
    params:
        Constants; see :class:`CostModelParams`.
    """

    def __init__(
        self,
        segments_fn: Callable[[float], int],
        n: int,
        params: CostModelParams = CostModelParams(),
    ) -> None:
        self._segments_fn = segments_fn
        self.n = int(n)
        self.params = params

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def learned(
        cls,
        keys,
        params: CostModelParams = CostModelParams(),
        accept: str = "paper",
    ) -> "CostModel":
        """Learn ``S_e`` by actually segmenting ``keys`` (memoized).

        This is the paper's "segment the data using different error
        thresholds and record the number of segments created" option.
        """
        cache: Dict[float, int] = {}

        def segments_fn(error: float) -> int:
            error = float(error)
            if error not in cache:
                cache[error] = len(shrinking_cone(keys, error, accept=accept))
            return cache[error]

        return cls(segments_fn, n=len(keys), params=params)

    @classmethod
    def worst_case(
        cls, n: int, params: CostModelParams = CostModelParams()
    ) -> "CostModel":
        """Closed-form pessimistic ``S_e = n / (e + 1)`` (Theorem 3.1)."""
        return cls(lambda e: max(1, math.ceil(n / (e + 1.0))), n=n, params=params)

    # ------------------------------------------------------------------
    # Model equations
    # ------------------------------------------------------------------

    def segments(self, error: float) -> int:
        s = int(self._segments_fn(float(error)))
        if s < 1:
            raise InvalidParameterError(f"segments_fn returned {s} for {error}")
        return s

    def _tree_levels(self, n_segments: int) -> float:
        if n_segments <= 1:
            return 1.0
        return max(1.0, math.log(n_segments, self.params.branching))

    def _effective_segments(self, error: float, buffer_size: int) -> int:
        """Segments the built index actually has for user error ``error``.

        The system reserves the buffer's share of the error budget and
        segments the data at ``error - buffer_size`` (paper Section 5), so
        the structural terms must use S at that threshold — a refinement of
        the paper's formulas, which write ``S_e`` loosely.
        """
        return self.segments(max(1.0, float(error) - buffer_size))

    def lookup_latency_ns(
        self, error: float, buffer_size: Optional[int] = None
    ) -> float:
        """Paper eq. (Section 6.1): tree + segment window + buffer search."""
        error = float(error)
        if error <= 0:
            raise InvalidParameterError(f"error must be positive, got {error}")
        if buffer_size is None:
            buffer_size = int(error) // 2
        s_e = self._effective_segments(error, buffer_size)
        tree = self._tree_levels(s_e)
        segment = math.log2(error) if error > 1 else 0.0
        buffer = math.log2(buffer_size) if buffer_size > 1 else 0.0
        return self.params.c_ns * (tree + segment + buffer)

    def size_bytes(self, error: float, buffer_size: Optional[int] = None) -> float:
        """Paper eq. (Section 6.2): pessimistic tree + segment metadata.

        Deviation, documented in DESIGN.md: the paper prints the tree term
        as ``f * S_e * log_b(S_e) * 16B`` with fill ratio ``f = 0.5``, but
        multiplying by ``f < 1`` would make a *half-full* tree smaller than
        a full one — contradicting the text's claim that the term is a
        pessimistic bound. A tree at fill ``f`` stores ``S/f`` entry slots,
        so we divide by ``f``, which restores the claimed pessimism (and
        matches the measured sizes from above in Figure 10b's sense).
        """
        if buffer_size is None:
            buffer_size = int(error) // 2
        s_e = self._effective_segments(error, buffer_size)
        tree = (
            s_e
            / self.params.fill
            * self._tree_levels(s_e)
            * self.params.entry_bytes
        )
        return tree + s_e * self.params.segment_metadata_bytes

    def insert_latency_ns(
        self, error: float, buffer_size: Optional[int] = None
    ) -> float:
        """Modeled per-insert cost: descent + buffer insert + amortized split.

        The paper sketches the differences from the lookup model (no window
        probe; buffer insertion instead of search; split cost O(d) when the
        buffer fills). We charge: ``c * log_b(S_e)`` for the descent,
        ``c * log2(bu)`` to find the buffer slot, ``seq_ns * bu/2`` to shift
        the buffer, and the merge of ``d = n/S_e + bu`` elements amortized
        over ``bu`` inserts.
        """
        error = float(error)
        if buffer_size is None:
            buffer_size = int(error) // 2
        if buffer_size < 1:
            raise InvalidParameterError("insert model requires buffer_size >= 1")
        s_e = self._effective_segments(error, buffer_size)
        descent = self.params.c_ns * self._tree_levels(s_e)
        probe = self.params.c_ns * (math.log2(buffer_size) if buffer_size > 1 else 0.0)
        shift = self.params.seq_ns * buffer_size / 2.0
        d = self.n / s_e + buffer_size
        amortized_merge = self.params.seq_ns * d / buffer_size
        return descent + probe + shift + amortized_merge

    # ------------------------------------------------------------------
    # DBA-facing argmin selectors (paper eq. 2 in 6.1 / 6.2)
    # ------------------------------------------------------------------

    def pick_error_for_latency(
        self,
        latency_requirement_ns: float,
        candidates: Sequence[float] = DEFAULT_ERROR_GRID,
    ) -> float:
        """Smallest-index error meeting a lookup-latency SLA.

        Raises :class:`InvalidParameterError` when no candidate satisfies
        the requirement (the DBA must relax the SLA or shrink the data).
        """
        feasible = [
            e for e in candidates
            if self.lookup_latency_ns(e) <= latency_requirement_ns
        ]
        if not feasible:
            raise InvalidParameterError(
                f"no candidate error satisfies latency <= "
                f"{latency_requirement_ns}ns"
            )
        return min(feasible, key=self.size_bytes)

    def pick_error_for_size(
        self,
        size_budget_bytes: float,
        candidates: Sequence[float] = DEFAULT_ERROR_GRID,
    ) -> float:
        """Lowest-latency error meeting a storage budget."""
        feasible = [
            e for e in candidates if self.size_bytes(e) <= size_budget_bytes
        ]
        if not feasible:
            raise InvalidParameterError(
                f"no candidate error satisfies size <= {size_budget_bytes}B"
            )
        return min(feasible, key=self.lookup_latency_ns)
