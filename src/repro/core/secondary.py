"""Non-clustered (secondary) FITing-Tree index (paper Section 2.2.1).

A secondary index targets an *unsorted* column that may contain duplicates.
The paper adds one level versus the clustered layout: all column values are
materialized in sorted order in *key pages* (value + pointer to the table
row), and those key pages are segmented with exactly the same
error-bounded strategy. This module implements that design by sorting the
column once (stable, so ties keep table order) and delegating to the
clustered :class:`repro.core.fiting_tree.FITingTree` over the sorted values
with row ids as payloads.

Size accounting: the sorted key-page level costs 16 bytes per element in
*any* secondary index (the paper: "this overhead occurs in any non-clustered
index"), so :meth:`model_bytes` reports only the structure above it — the
part the FITing-Tree shrinks — while :meth:`key_pages_bytes` exposes the
common level for completeness.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.btree import DEFAULT_BRANCHING
from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree

__all__ = ["SecondaryFITingTree"]


class SecondaryFITingTree:
    """Error-bounded secondary index: column value -> row ids.

    Parameters
    ----------
    column:
        Array-like of (unsorted, possibly duplicated) attribute values, one
        per table row.
    rowids:
        Optional explicit row ids aligned with ``column``; defaults to
        ``0..n-1`` (the row's position in the table).
    error, buffer_capacity, accept, branching, fill, counter:
        As for :class:`repro.core.fiting_tree.FITingTree`.
    """

    def __init__(
        self,
        column=None,
        rowids=None,
        *,
        error: float = 64.0,
        buffer_capacity: Optional[int] = None,
        accept: str = "paper",
        branching: int = DEFAULT_BRANCHING,
        fill: float = 1.0,
        counter: Any = None,
    ) -> None:
        if column is None:
            column = np.empty(0, dtype=np.float64)
        column = np.asarray(column, dtype=np.float64)
        if rowids is None:
            rowids = np.arange(len(column), dtype=np.int64)
        else:
            rowids = np.asarray(rowids, dtype=np.int64)
            if len(rowids) != len(column):
                raise InvalidParameterError(
                    f"rowids length {len(rowids)} != column length {len(column)}"
                )
        order = np.argsort(column, kind="stable")
        self._index = FITingTree(
            column[order],
            rowids[order],
            error=error,
            buffer_capacity=buffer_capacity,
            accept=accept,
            branching=branching,
            fill=fill,
            counter=counter,
        )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    @property
    def counter(self) -> Any:
        return self._index.counter

    @counter.setter
    def counter(self, value: Any) -> None:
        self._index.counter = value
        self._index._tree.counter = value

    @property
    def error(self) -> float:
        return self._index.error

    @property
    def n_segments(self) -> int:
        return self._index.n_segments

    @property
    def height(self) -> int:
        return self._index.height

    def model_bytes(self) -> int:
        """Index overhead above the key-page level (tree + segment metadata)."""
        return self._index.model_bytes()

    def key_pages_bytes(self) -> int:
        """The sorted value+pointer level every secondary index must store."""
        return 16 * len(self._index)

    def stats(self) -> Dict[str, Any]:
        out = self._index.stats()
        out["key_pages_bytes"] = self.key_pages_bytes()
        return out

    # ------------------------------------------------------------------

    def lookup(self, value: float) -> List[int]:
        """Row ids of every row whose column equals ``value`` (table order
        among duplicates)."""
        return self._index.lookup_all(value)

    def get(self, value: float, default: Any = None) -> Any:
        """One matching row id, or ``default``."""
        return self._index.get(value, default)

    def __contains__(self, value: float) -> bool:
        return value in self._index

    def bulk_lookup(self, queries, default: Any = None) -> List[Any]:
        """Vectorized :meth:`get` over many query values."""
        return self._index.bulk_lookup(queries, default)

    def range_rowids(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[int]:
        """Row ids of rows with column value in ``[lo, hi]``.

        Row ids stream back in *value* order; fetching the rows themselves
        is random access into the table, as for any non-clustered index
        (paper Section 4.2).
        """
        for _, rowid in self._index.range_items(lo, hi, include_lo, include_hi):
            yield rowid

    def range_items(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[float, int]]:
        """``(value, rowid)`` pairs with value in ``[lo, hi]``."""
        return self._index.range_items(lo, hi, include_lo, include_hi)

    def items(self) -> Iterator[Tuple[float, int]]:
        return self._index.items()

    # ------------------------------------------------------------------

    def insert(self, value: float, rowid: int) -> None:
        """Index a new row's column value."""
        self._index.insert(float(value), int(rowid))

    def delete(self, value: float) -> int:
        """Unindex one row with this column value; returns its row id."""
        return self._index.delete(float(value))

    def delete_row(self, value: float, rowid: int) -> bool:
        """Unindex the *specific* row ``rowid`` under ``value``.

        Returns True if the (value, rowid) pair was indexed and is now
        removed — the operation a table delete actually needs when the
        column value is duplicated.
        """
        return self._index.delete_value(float(value), int(rowid))

    def validate(self) -> None:
        self._index.validate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SecondaryFITingTree(n={len(self)}, segments={self.n_segments}, "
            f"error={self.error})"
        )
