"""The clustered FITing-Tree index (the paper's primary contribution).

Layout (paper Figure 2): sorted table data is partitioned into variable-sized
segments by :func:`repro.core.segmentation.shrinking_cone`; a standard B+
tree (:mod:`repro.btree`) indexes one entry per segment — start key, slope
and page pointer — instead of one entry per key. Lookups locate the owning
segment with a predecessor query, interpolate the key's position, and
binary-search a window bounded by the error threshold (Section 4). Inserts
go to a fixed-size sorted buffer per segment; a full buffer triggers a merge
and re-segmentation of that page only (Section 5).

Error accounting (Section 5): for a user-facing error ``E`` and buffer
capacity ``B``, data is segmented with threshold ``E - B`` so that probing
the interpolation window *plus* the buffer never exceeds the ``E``-bounded
cost the user asked for.

Duplicate keys are allowed. A run of equal keys longer than the segmentation
threshold is split across segments sharing a start key; ``get`` returns one
matching occurrence, ``lookup_all`` stitches the full set back together.

All routing, buffering, split and delete plumbing lives in
:class:`repro.core.paged_index.PagedIndexBase`, shared verbatim with the
fixed-page baseline so comparisons isolate exactly the paper's contribution:
data-aware variable-sized pages plus interpolation search.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.btree import DEFAULT_BRANCHING
from repro.core.errors import InvalidParameterError
from repro.core.page import SegmentPage
from repro.core.paged_index import PagedIndexBase
from repro.core.segmentation import shrinking_cone

__all__ = ["FITingTree"]


class FITingTree(PagedIndexBase):
    """A bounded-approximate clustered index over sorted keys.

    Parameters
    ----------
    keys:
        Sorted (ascending, duplicates allowed) array-like of numeric keys.
        ``None`` or empty builds an empty index.
    values:
        Optional payloads aligned with ``keys``. When omitted the index
        stores row ids ``0..n-1`` and assigns fresh row ids on insert.
    error:
        User-facing error bound ``E`` (the paper's tunable knob). Must
        exceed ``buffer_capacity``.
    buffer_capacity:
        Per-segment insert buffer size ``B``; defaults to ``error // 2``
        (the paper's experimental setting). ``0`` builds a read-only index
        segmented at the full error.
    accept:
        Cone accept test: ``"paper"`` (default) or ``"exact"``.
    search:
        In-segment search strategy: ``"binary"`` (default), ``"linear"``
        (fastest for tiny errors, paper Section 4.1.2) or ``"exponential"``
        (cost follows the actual prediction miss, not the bound).
    branching, fill, counter:
        Passed to the underlying B+ tree / instrumentation; see
        :class:`repro.core.paged_index.PagedIndexBase`.

    Examples
    --------
    >>> import numpy as np
    >>> keys = np.sort(np.random.default_rng(0).uniform(0, 1e6, 100_000))
    >>> index = FITingTree(keys, error=128)
    >>> bool(index.get(keys[42]) == 42)
    True
    >>> index.insert(123.456, 999_999)
    >>> index.get(123.456)
    999999
    """

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        error: float = 64.0,
        buffer_capacity: Optional[int] = None,
        accept: str = "paper",
        search: str = "binary",
        branching: int = DEFAULT_BRANCHING,
        fill: float = 1.0,
        counter: Any = None,
    ) -> None:
        if search not in ("binary", "linear", "exponential"):
            raise InvalidParameterError(
                f"search must be binary | linear | exponential, got {search!r}"
            )
        self.search_mode = search
        if buffer_capacity is None:
            buffer_capacity = int(error) // 2
        if buffer_capacity < 0:
            raise InvalidParameterError(
                f"buffer_capacity must be >= 0, got {buffer_capacity}"
            )
        if not error > buffer_capacity:
            raise InvalidParameterError(
                f"error ({error}) must exceed buffer_capacity ({buffer_capacity})"
            )
        self.error = float(error)
        self.buffer_capacity = int(buffer_capacity)
        #: Segmentation threshold ``E - B`` (Section 5).
        self.seg_error = self.error - self.buffer_capacity
        self.page_search_error = self.seg_error
        #: Paper size model: start key + slope + pointer per segment.
        self.metadata_bytes_per_page = 24
        self._accept = accept
        super().__init__(
            keys, values, branching=branching, fill=fill, counter=counter
        )

    # ------------------------------------------------------------------

    @property
    def n_segments(self) -> int:
        """Number of segments (leaf entries of the underlying tree)."""
        return self.n_pages

    def _make_pages(
        self, keys: np.ndarray, values: np.ndarray
    ) -> List[SegmentPage]:
        segments = shrinking_cone(keys, self.seg_error, accept=self._accept)
        return [
            SegmentPage(
                seg.start_key,
                seg.slope,
                keys[seg.start_pos : seg.end_pos],
                values[seg.start_pos : seg.end_pos],
            )
            for seg in segments
        ]

    def _snapshot_params(self) -> Dict[str, Any]:
        """Constructor kwargs reproducing this tree's configuration
        (see :meth:`repro.core.paged_index.PagedIndexBase.to_state`)."""
        return {
            "error": self.error,
            "buffer_capacity": self.buffer_capacity,
            "accept": self._accept,
            "search": self.search_mode,
            "branching": self._tree.branching,
            "fill": self._fill,
        }

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out.update(
            n_segments=self.n_segments,
            avg_segment_len=out["avg_page_len"],
            error=self.error,
            seg_error=self.seg_error,
            accept=self._accept,
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FITingTree(n={len(self)}, segments={self.n_segments}, "
            f"error={self.error}, buffer={self.buffer_capacity})"
        )
