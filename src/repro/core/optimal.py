"""Optimal segmentation (paper Section 3.2, Algorithm 1) — two variants.

The paper's optimal dynamic program anchors each segment's line at *both*
endpoints and needs O(n²) time and O(n²) memory (their evaluation hit the
768 GB RAM of their server at one million elements). We implement:

``optimal_segments`` (free-slope, our improvement)
    Segments anchored at the origin with a free slope — the same segment
    definition ShrinkingCone actually uses. For this definition feasibility
    is *prefix-closed* (shrinking a feasible segment keeps it feasible), so

    * each origin ``j`` has a well-defined maximal reach ``R[j]``
      (:func:`repro.core.segmentation.cone_reach`),
    * the minimal number of segments covering a prefix is monotone in the
      prefix length, hence the optimum satisfies
      ``T[i] = T[jmin(i)] + 1`` with ``jmin(i)`` the *smallest* origin
      reaching ``i``.

    This computes an exact optimum in ``O(sum of reaches)`` time and O(n)
    memory — no feasibility matrix — with an early exit once some origin
    reaches the end of the array.

``optimal_segments_endpoint`` (paper-faithful)
    The paper's segment definition: the line runs from the segment's first
    point to its last point. Feasibility is not prefix-closed here, so the
    full DP is required; we implement it with streaming per-origin cones in
    O(n²) time but only O(n) memory (vectorized row updates). Guarded by a
    size limit because of its quadratic cost.

``optimal_count_bruteforce``
    An O(n³) direct checker used by the test suite to cross-validate both
    fast implementations on small inputs.

Free-slope segments are a superset of endpoint-anchored ones, so
``len(optimal_segments(...)) <= len(optimal_segments_endpoint(...))`` always.
"""

from __future__ import annotations

from typing import List, Literal

import numpy as np

from repro.core.errors import InvalidParameterError, SegmentationError
from repro.core.segment import Segment
from repro.core.segmentation import (
    _as_sorted_keys,
    _check_error,
    _slope_from_cone,
    cone_reach,
)

__all__ = [
    "optimal_segments",
    "optimal_segment_count",
    "optimal_segments_endpoint",
    "optimal_count_bruteforce",
    "cone_bounds",
]

_INF = float("inf")


def cone_bounds(keys: np.ndarray, start: int, end: int, error: float):
    """Feasible slope interval ``(lo, hi)`` for the segment ``[start, end)``.

    Raises :class:`SegmentationError` if the segment is infeasible — callers
    pass only ranges already known to be feasible.
    """
    x0 = keys[start]
    lo, hi = 0.0, _INF
    if end - start > 1:
        x = keys[start + 1 : end]
        d = x - x0
        y = np.arange(1, end - start, dtype=np.float64)
        nz = d > 0
        if not np.all(nz):
            # Duplicates of the origin: slope-independent constraint.
            worst = float(np.max(y[~nz]))
            if worst > error:
                raise SegmentationError(
                    f"infeasible duplicate run in [{start}, {end})"
                )
        if np.any(nz):
            s = y[nz] / d[nz]
            margin = error / d[nz]
            lo = float(np.max(s - margin))
            hi = float(np.min(s + margin))
            lo = max(lo, 0.0)
    if lo > hi:
        raise SegmentationError(f"infeasible segment [{start}, {end})")
    return lo, hi


def _segments_from_boundaries(
    keys: np.ndarray, starts: List[int], error: float
) -> List[Segment]:
    n = len(keys)
    segments: List[Segment] = []
    bounds = starts + [n]
    for a, b in zip(bounds, bounds[1:]):
        lo, hi = cone_bounds(keys, a, b, error)
        segments.append(Segment(float(keys[a]), a, _slope_from_cone(lo, hi), b - a))
    return segments


# ----------------------------------------------------------------------
# Free-slope optimum (reach + monotone DP)
# ----------------------------------------------------------------------

def optimal_segments(keys, error: float, *, chunk: int = 4096) -> List[Segment]:
    """Minimum-count segmentation under the free-slope segment definition.

    Exact: no segmentation whose segments are anchored at their first point
    can use fewer segments for this ``error``. See the module docstring for
    the algorithm; validated against brute force in the tests.
    """
    keys = _as_sorted_keys(keys)
    error = _check_error(error)
    n = len(keys)
    if n == 0:
        return []

    # jmin[i] = smallest origin whose maximal reach covers prefix length i.
    jmin = np.empty(n + 1, dtype=np.int64)
    covered = 0
    for j in range(n):
        if covered >= n:
            break
        if j > covered:
            raise SegmentationError("reach recurrence gap")  # pragma: no cover
        reach = cone_reach(keys, j, error, chunk=chunk)
        if reach > covered:
            jmin[covered + 1 : reach + 1] = j
            covered = reach

    # T[i] = min segments covering the first i elements (monotone in i).
    parent = np.empty(n + 1, dtype=np.int64)
    parent[0] = -1
    for i in range(1, n + 1):
        parent[i] = jmin[i]

    starts: List[int] = []
    i = n
    while i > 0:
        j = int(parent[i])
        starts.append(j)
        i = j
    starts.reverse()
    return _segments_from_boundaries(keys, starts, error)


def optimal_segment_count(keys, error: float, *, chunk: int = 4096) -> int:
    """Number of segments in the free-slope optimum (cheaper than segments).

    Frontier iteration: let ``f(s)`` be the longest prefix coverable with
    ``s`` segments. Monotonicity of the optimum makes "prefix j coverable
    with <= s segments" equivalent to ``j <= f(s)``, so
    ``f(s+1) = max(R[j] for j <= f(s))`` and each origin's reach is
    evaluated exactly once.
    """
    keys = _as_sorted_keys(keys)
    error = _check_error(error)
    n = len(keys)
    if n == 0:
        return 0
    count = 0
    frontier = 0  # f(count): elements covered so far
    best = 0  # running max reach over all origins evaluated
    j = 0
    while frontier < n:
        while j <= frontier and best < n:
            reach = cone_reach(keys, j, error, chunk=chunk)
            if reach > best:
                best = reach
            j += 1
        if best <= frontier:
            raise SegmentationError("frontier failed to advance")  # pragma: no cover
        count += 1
        frontier = best
    return count


# ----------------------------------------------------------------------
# Endpoint-anchored optimum (paper Algorithm 1, streaming cones)
# ----------------------------------------------------------------------

def optimal_segments_endpoint(
    keys,
    error: float,
    *,
    max_n: int = 30_000,
) -> List[Segment]:
    """Paper-faithful optimal DP: segments run point-to-point.

    ``T[k]`` is the minimal number of segments covering the first ``k``
    elements; segment ``[j, k]`` is feasible iff the slope of the line from
    element ``j`` to element ``k`` lies in origin ``j``'s cone over the
    interior elements. Cones are updated in a streaming fashion, one numpy
    row per step, so memory stays O(n) (the paper's formulation stores an
    O(n²) matrix).

    Raises
    ------
    InvalidParameterError
        If ``len(keys) > max_n`` — the DP is quadratic; raise the limit
        explicitly if you accept the cost.
    """
    keys = _as_sorted_keys(keys)
    error = _check_error(error)
    n = len(keys)
    if n == 0:
        return []
    if n > max_n:
        raise InvalidParameterError(
            f"endpoint-optimal DP is O(n^2); n={n} exceeds max_n={max_n} "
            f"(pass a larger max_n to override)"
        )

    x = keys
    T = np.full(n + 1, np.inf)
    T[0] = 0.0
    T[1] = 1.0
    parent = np.full(n + 1, -1, dtype=np.int64)
    parent[1] = 0
    lo_cone = np.zeros(n)
    hi_cone = np.full(n, _INF)

    idx = np.arange(n, dtype=np.float64)
    for k in range(1, n):
        d = x[k] - x[:k]
        rise = k - idx[:k]
        pos = d > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            s = np.where(pos, rise / d, _INF)
        feas = pos & (s >= lo_cone[:k]) & (s <= hi_cone[:k])
        # Segments made entirely of one repeated key: slope-0 line is exact
        # at the shared key, feasible while the run stays within ``error``.
        feas |= (~pos) & (rise <= error)

        best = T[k]  # singleton segment [k, k]
        best_j = k
        if feas.any():
            cand = np.where(feas, T[:k], np.inf)
            j_star = int(np.argmin(cand))
            if cand[j_star] < best:
                best = cand[j_star]
                best_j = j_star
        T[k + 1] = best + 1.0
        parent[k + 1] = best_j

        # Fold element k into every origin's cone (it is interior for any
        # segment that ends strictly beyond k).
        with np.errstate(divide="ignore", invalid="ignore"):
            lo_cand = np.where(pos, (rise - error) / d, lo_cone[:k])
            hi_cand = np.where(pos, (rise + error) / d, hi_cone[:k])
        dead = (~pos) & (rise > error)
        lo_cone[:k] = np.where(dead, _INF, np.maximum(lo_cone[:k], lo_cand))
        hi_cone[:k] = np.minimum(hi_cone[:k], hi_cand)

    starts: List[int] = []
    i = n
    while i > 0:
        j = int(parent[i])
        starts.append(j)
        i = j
    starts.reverse()

    segments: List[Segment] = []
    bounds = starts + [n]
    for a, b in zip(bounds, bounds[1:]):
        span = x[b - 1] - x[a]
        slope = (b - 1 - a) / span if span > 0 else 0.0
        segments.append(Segment(float(x[a]), a, float(slope), b - a))
    return segments


# ----------------------------------------------------------------------
# Brute force cross-validation (tests only; O(n^3))
# ----------------------------------------------------------------------

def _feasible_free(x: np.ndarray, j: int, last: int, error: float) -> bool:
    lo, hi = 0.0, _INF
    for k in range(j + 1, last + 1):
        d = x[k] - x[j]
        y = float(k - j)
        if d == 0:
            if y > error:
                return False
            continue
        lo = max(lo, (y - error) / d)
        hi = min(hi, (y + error) / d)
        if lo > hi:
            return False
    return True


def _feasible_endpoint(x: np.ndarray, j: int, last: int, error: float) -> bool:
    d = x[last] - x[j]
    if d == 0:
        return (last - j) <= error
    slope = (last - j) / d
    for k in range(j + 1, last):
        predicted = slope * (x[k] - x[j])
        if abs(predicted - (k - j)) > error:
            return False
    return True


def optimal_count_bruteforce(
    keys, error: float, anchor: Literal["free", "endpoint"] = "free"
) -> int:
    """Direct O(n³) optimal segment count for tiny inputs (test oracle)."""
    x = _as_sorted_keys(keys)
    error = _check_error(error)
    n = len(x)
    if n == 0:
        return 0
    feasible = _feasible_free if anchor == "free" else _feasible_endpoint
    T = [0] + [n + 1] * n
    for i in range(1, n + 1):
        last = i - 1
        for j in range(i - 1, -1, -1):
            if T[j] + 1 < T[i] and feasible(x, j, last, error):
                T[i] = T[j] + 1
    return T[n]
