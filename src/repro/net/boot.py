"""Spawn a fleet of TCP backend servers over one partitioned dataset.

:class:`TcpCluster` is the process-management half of the network tier:
it cuts the build dataset into contiguous key ranges with
:func:`repro.engine.partition.partition_cuts`, spawns one OS process per
range (each running a full engine + serve + :mod:`repro.net` stack via
:func:`~repro.net.server.serve_tcp`), and records the addresses and cut
keys a :class:`~repro.net.router.Router` needs to fan traffic back out.

Tests get two extra levers: :meth:`TcpCluster.kill` SIGKILLs a backend
(for ejection tests — no goodbye frame, the socket just dies) and
:meth:`TcpCluster.restart` respawns it on its recorded port so the
router's health probe can re-admit it.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.engine.partition import partition_cuts, shard_bounds

__all__ = ["TcpCluster", "run_backend"]

_READY_TIMEOUT = 30.0


def run_backend(conn, spec: Dict[str, Any]) -> None:
    """Child-process entry point: serve one key range over TCP.

    Builds the engine from ``spec`` (a config dict plus this backend's
    slice of the dataset), starts the TCP adapter, reports
    ``("ready", port, pid)`` over ``conn``, then blocks until the parent
    sends anything — at which point it drains and exits.

    Parameters
    ----------
    conn:
        The child end of a :func:`multiprocessing.Pipe`.
    spec:
        ``{"config": dict, "keys": ndarray, "values": ndarray | None,
        "port": int}``; ``port`` 0 lets the OS pick.
    """
    import asyncio

    try:
        asyncio.run(_backend_main(conn, spec))
    except KeyboardInterrupt:  # pragma: no cover - parent teardown race
        pass


async def _backend_main(conn, spec: Dict[str, Any]) -> None:
    import asyncio

    from repro.api.factory import EngineConfig
    from repro.net.server import serve_tcp

    config = EngineConfig.from_dict(spec["config"])
    net = await serve_tcp(
        spec["keys"],
        spec.get("values"),
        config=config,
        listen=f"127.0.0.1:{int(spec.get('port', 0))}",
    )
    try:
        conn.send(("ready", net.port, os.getpid()))
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, conn.recv)
    except (EOFError, OSError):  # parent vanished: just drain
        pass
    finally:
        await net.close()
    try:
        conn.send(("stopped", os.getpid()))
    except (BrokenPipeError, OSError):  # pragma: no cover
        pass


class TcpCluster:
    """N single-range TCP server processes over one partitioned dataset.

    Usage::

        with TcpCluster(keys, values, backends=2, error=64.0) as fleet:
            async with fleet.router() as router:
                await router.get(keys[0])

    Parameters
    ----------
    keys:
        Sorted build keys; cut into ``backends`` contiguous ranges.
    values:
        Optional numeric payloads aligned with ``keys``.
    backends:
        Number of server processes to spawn.
    config:
        Per-backend :class:`~repro.api.factory.EngineConfig` (its
        ``listen`` field is overridden per process; leave unset).
    **overrides:
        Individual config fields to override.
    """

    def __init__(
        self,
        keys,
        values=None,
        *,
        backends: int = 2,
        config: Any = None,
        **overrides: Any,
    ) -> None:
        from repro.api.factory import EngineConfig

        if backends < 1:
            raise InvalidParameterError(
                f"backends must be >= 1, got {backends}"
            )
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        if keys.size < backends:
            raise InvalidParameterError(
                f"{keys.size} keys cannot fill {backends} backends"
            )
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            config = EngineConfig.from_dict({**config.to_dict(), **overrides})
        self.config = config
        self.n_backends = int(backends)
        self.cuts = partition_cuts(keys, self.n_backends)
        bounds = shard_bounds(keys, self.cuts)
        vals = None if values is None else np.ascontiguousarray(values)
        self._slices: List[Tuple[np.ndarray, Optional[np.ndarray]]] = [
            (
                keys[lo:hi].copy(),
                None if vals is None else vals[lo:hi].copy(),
            )
            for lo, hi in bounds
        ]
        self._ctx = mp.get_context("spawn")
        self._procs: List[Optional[Any]] = [None] * self.n_backends
        self._pipes: List[Optional[Any]] = [None] * self.n_backends
        self.addresses: List[Tuple[str, int]] = [("127.0.0.1", 0)] * (
            self.n_backends
        )
        self.pids: List[Optional[int]] = [None] * self.n_backends
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "TcpCluster":
        """Spawn every backend and wait for all of them to listen.

        Returns
        -------
        TcpCluster
            ``self``, with ``addresses``/``pids`` populated.
        """
        if self._started:
            return self
        for idx in range(self.n_backends):
            self._spawn(idx, port=0)
        self._started = True
        return self

    def _spawn(self, idx: int, port: int) -> None:
        parent, child = self._ctx.Pipe()
        keys, values = self._slices[idx]
        spec = {
            "config": self.config.to_dict(),
            "keys": keys,
            "values": values,
            "port": port,
        }
        proc = self._ctx.Process(
            target=run_backend,
            args=(child, spec),
            name=f"repro-net-backend-{idx}",
            daemon=True,
        )
        proc.start()
        child.close()
        if not parent.poll(_READY_TIMEOUT):
            proc.terminate()
            raise InvalidParameterError(
                f"backend {idx} did not come up within {_READY_TIMEOUT}s"
            )
        msg = parent.recv()
        if msg[0] != "ready":  # pragma: no cover - protocol guard
            raise InvalidParameterError(f"backend {idx} sent {msg!r}")
        self._procs[idx] = proc
        self._pipes[idx] = parent
        self.addresses[idx] = ("127.0.0.1", int(msg[1]))
        self.pids[idx] = int(msg[2])

    def kill(self, idx: int) -> None:
        """SIGKILL backend ``idx`` — no drain, the socket just dies."""
        proc = self._procs[idx]
        if proc is not None and proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=10.0)
        self._procs[idx] = None

    def restart(self, idx: int) -> None:
        """Respawn backend ``idx`` on its previously recorded port."""
        if self._procs[idx] is not None:
            self.stop_one(idx)
        self._spawn(idx, port=self.addresses[idx][1])

    def stop_one(self, idx: int) -> None:
        """Gracefully stop backend ``idx`` (drain, then exit)."""
        proc, pipe = self._procs[idx], self._pipes[idx]
        if pipe is not None:
            try:
                pipe.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        if proc is not None:
            proc.join(timeout=15.0)
            if proc.is_alive():  # pragma: no cover - hung child
                proc.terminate()
                proc.join(timeout=5.0)
        if pipe is not None:
            pipe.close()
        self._procs[idx] = None
        self._pipes[idx] = None

    def stop(self) -> None:
        """Gracefully stop every live backend."""
        for idx in range(self.n_backends):
            if self._procs[idx] is not None:
                self.stop_one(idx)
        self._started = False

    def __enter__(self) -> "TcpCluster":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def router(self, **kwargs: Any):
        """A :class:`~repro.net.router.Router` over this fleet.

        Parameters
        ----------
        **kwargs:
            Forwarded to the router (health/client knobs, telemetry).

        Returns
        -------
        Router
            Unstarted; use ``async with`` (or ``await .start()``).
        """
        from repro.net.router import Router

        return Router(list(self.addresses), self.cuts, **kwargs)
