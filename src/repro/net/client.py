"""Client library for the TCP serving tier: pooled, pipelined, retrying.

:class:`AsyncNetClient` is the native asyncio client. It holds a small
pool of connections, assigns every request a ``request_id``, and writes
frames without waiting for earlier replies — *pipelining*: any number of
requests ride one connection concurrently, and a per-connection reader
task matches replies (which may arrive out of order) back to their
futures. On top sit the reliability knobs:

* **timeouts** — every request bounds its reply wait; an expired wait
  raises :class:`~repro.net.errors.RequestTimeoutError`.
* **bounded retry with backoff** — *idempotent* operations (``get``,
  ``range``, the batch reads, ``ping``, ``server_stats``) are retried up
  to ``retries`` times across reconnects on connection loss or timeout.
  Writes are never auto-retried after the frame may have left: like a
  :class:`~repro.cluster.errors.WorkerCrashedError`, a lost connection
  leaves the write's fate unknown and re-issuing it could apply it twice.
* **reconnects** — a dead pool slot is re-dialed lazily with exponential
  backoff the next time the round-robin reaches it.

:class:`NetClient` wraps the async client for synchronous callers by
running a private event loop on a background thread — the blocking twin
with the same verb surface.

With ``telemetry`` in a tracing mode, every call opens a ``net.call``
span, ships its context inside the request frame, and ingests the
``net.request`` span record the server returns — so one client-side trace
tree spans the socket, foreign pids included.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.net import frame as wire
from repro.net.errors import (
    ConnectionLostError,
    FrameCorruptError,
    RequestTimeoutError,
)
from repro.obs import Telemetry

__all__ = ["AsyncNetClient", "NetClient", "connect"]


class _Connection:
    """One pooled TCP connection plus its reply-demultiplexing task."""

    __slots__ = ("reader", "writer", "pending", "alive", "_task")

    def __init__(self, reader, writer, client: "AsyncNetClient") -> None:
        self.reader = reader
        self.writer = writer
        self.pending: Dict[int, asyncio.Future] = {}
        self.alive = True
        self._task = asyncio.get_running_loop().create_task(
            self._read_loop(client)
        )

    async def _read_loop(self, client: "AsyncNetClient") -> None:
        try:
            while True:
                try:
                    frame = await wire.read_frame(
                        self.reader, max_bytes=client.max_frame_bytes
                    )
                except FrameCorruptError:
                    # One damaged reply; its request will time out, the
                    # stream itself stays usable.
                    client._counters["frames_corrupt"] += 1
                    continue
                client._counters["frames_in"] += 1
                fut = self.pending.pop(frame.request_id, None)
                if fut is not None and not fut.done():
                    fut.set_result(frame)
                elif frame.request_id == 0:
                    # Server rejected an unmatchable (corrupt) frame.
                    client._counters["rejected_frames"] += 1
        except asyncio.CancelledError:
            raise
        except Exception:
            pass  # connection failure: fall through to the common burial
        finally:
            self.alive = False
            exc = ConnectionLostError("connection lost with requests in flight")
            for fut in self.pending.values():
                if not fut.done():
                    fut.set_exception(exc)
            self.pending.clear()
            try:
                self.writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass

    def shutdown(self) -> None:
        """Stop the reader task and mark the connection dead."""
        self.alive = False
        self._task.cancel()


class AsyncNetClient:
    """Asyncio client for a :class:`~repro.net.server.NetServer`.

    Parameters
    ----------
    host, port:
        The server's listen address.
    pool:
        Connections to spread requests over (round-robin).
    timeout:
        Per-request reply deadline in seconds.
    retries:
        Extra attempts for idempotent operations (and for dialing).
    backoff:
        Base sleep between retries; grows linearly per attempt (and
        exponentially while re-dialing).
    max_frame_bytes:
        Reject reply frames with bodies larger than this.
    telemetry:
        ``None``/mode string/:class:`repro.obs.Telemetry`; tracing modes
        enable cross-socket span propagation.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        pool: int = 1,
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.02,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
        telemetry: Any = None,
    ) -> None:
        if pool < 1:
            raise InvalidParameterError(f"pool must be >= 1, got {pool}")
        if timeout <= 0:
            raise InvalidParameterError(f"timeout must be > 0, got {timeout}")
        if retries < 0:
            raise InvalidParameterError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_frame_bytes = int(max_frame_bytes)
        self.telemetry = Telemetry.from_mode(telemetry)
        self._slots: List[Optional[_Connection]] = [None] * int(pool)
        self._rr = 0
        self._rid = itertools.count(1)
        self._closed = False
        self._counters: Dict[str, int] = {
            "frames_out": 0,
            "frames_in": 0,
            "frames_corrupt": 0,
            "rejected_frames": 0,
            "retries": 0,
            "reconnects": 0,
            "timeouts": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def connect(self) -> "AsyncNetClient":
        """Eagerly dial the first pool slot (fail fast on a bad address).

        Returns
        -------
        AsyncNetClient
            ``self``, ready for requests.
        """
        await self._conn(0)
        return self

    async def close(self) -> None:
        """Tear down every pooled connection; pending requests fail."""
        self._closed = True
        for slot in self._slots:
            if slot is not None:
                slot.shutdown()
                try:
                    slot.writer.close()
                except (ConnectionError, OSError, RuntimeError):
                    pass
        self._slots = [None] * len(self._slots)

    async def __aenter__(self) -> "AsyncNetClient":
        return await self.connect()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    async def _conn(self, idx: int) -> _Connection:
        existing = self._slots[idx]
        if existing is not None and existing.alive:
            return existing
        if self._closed:
            raise ConnectionLostError("client is closed")
        delay = self.backoff
        last: Optional[BaseException] = None
        for _ in range(self.retries + 1):
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except OSError as exc:
                last = exc
                await asyncio.sleep(delay)
                delay *= 2
                continue
            conn = _Connection(reader, writer, self)
            self._slots[idx] = conn
            if existing is not None:
                self._counters["reconnects"] += 1
            return conn
        raise ConnectionLostError(
            f"cannot connect to {self.host}:{self.port}: {last!r}"
        )

    async def _roundtrip(
        self,
        kind: int,
        meta: Optional[Dict[str, Any]] = None,
        arrays: Optional[List[np.ndarray]] = None,
        *,
        idempotent: bool = False,
    ) -> Any:
        attempts = (self.retries + 1) if idempotent else 1
        last: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                self._counters["retries"] += 1
                await asyncio.sleep(self.backoff * attempt)
            try:
                return await self._attempt(kind, dict(meta or {}), arrays)
            except (ConnectionLostError, RequestTimeoutError) as exc:
                last = exc
        assert last is not None
        raise last

    async def _attempt(
        self, kind: int, meta: Dict[str, Any], arrays
    ) -> Any:
        idx = self._rr
        self._rr = (self._rr + 1) % len(self._slots)
        conn = await self._conn(idx)
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        if tracer is not None:
            with tracer.span(
                "net.call", op=wire.KIND_NAMES.get(kind, str(kind))
            ) as sp:
                meta["trace"] = [sp.trace_id, sp.span_id]
                return await self._exchange(conn, kind, meta, arrays, tracer)
        return await self._exchange(conn, kind, meta, arrays, None)

    async def _exchange(
        self, conn: _Connection, kind: int, meta, arrays, tracer
    ) -> Any:
        rid = next(self._rid)
        buf = wire.encode_frame(kind, rid, meta, arrays)
        fut = asyncio.get_running_loop().create_future()
        conn.pending[rid] = fut
        try:
            try:
                conn.writer.write(buf)
                await conn.writer.drain()
            except (ConnectionError, OSError, RuntimeError) as exc:
                raise ConnectionLostError(f"send failed: {exc!r}") from exc
            self._counters["frames_out"] += 1
            try:
                reply = await asyncio.wait_for(fut, self.timeout)
            except asyncio.TimeoutError:
                self._counters["timeouts"] += 1
                raise RequestTimeoutError(
                    f"no reply to {wire.KIND_NAMES.get(kind, kind)} "
                    f"within {self.timeout}s"
                ) from None
        finally:
            conn.pending.pop(rid, None)
        if reply.kind == wire.REPLY_ERR:
            raise wire.decode_error(reply)
        if tracer is not None:
            spans = reply.meta.get("spans")
            if spans:
                tracer.ingest(spans)
        return wire.decode_result(reply)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        """Liveness probe; returns the server's ``{"pong", "pid"}`` dict."""
        return await self._roundtrip(wire.OP_PING, idempotent=True)

    async def get(self, key: float, default: Any = None) -> Any:
        """Remote point lookup (idempotent: retried on transport failure)."""
        return await self._roundtrip(
            wire.OP_GET, {"key": float(key), "default": default},
            idempotent=True,
        )

    async def range(self, lo: float, hi: float):
        """Remote range scan: the ``(keys, values)`` arrays with
        ``lo <= key <= hi``."""
        return await self._roundtrip(
            wire.OP_RANGE, {"lo": float(lo), "hi": float(hi)},
            idempotent=True,
        )

    async def insert(self, key: float, value: Any = None) -> Any:
        """Remote insert; resolves once the write is applied and durable
        per the server's config. Not auto-retried (see module doc)."""
        return await self._roundtrip(
            wire.OP_INSERT, {"key": float(key), "value": value}
        )

    async def delete(self, key: float) -> Any:
        """Remote delete of one occurrence of ``key``; returns its value.

        Raises :class:`~repro.core.errors.KeyNotFoundError` across the
        wire for absent keys. Not auto-retried."""
        return await self._roundtrip(wire.OP_DELETE, {"key": float(key)})

    async def get_batch(self, queries, default: Any = None):
        """Remote vectorized point lookups.

        Parameters
        ----------
        queries:
            Array-like of keys; ships as one lane-encoded array frame.
        default:
            Value reported for absent keys (a non-JSON-able default
            demotes the request frame to pickle).

        Returns
        -------
        numpy.ndarray
            One value per query, in query order (a read-only view over
            the reply buffer for numeric results).
        """
        return await self._roundtrip(
            wire.OP_GET_BATCH,
            {"default": default},
            [np.ascontiguousarray(queries, dtype=np.float64)],
            idempotent=True,
        )

    async def range_batch(self, bounds):
        """Remote batched range scans.

        Parameters
        ----------
        bounds:
            Array-like of shape ``(n, 2)``: inclusive ``[lo, hi]`` rows.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            One ``(keys, values)`` pair per row.
        """
        arr = np.ascontiguousarray(bounds, dtype=np.float64)
        return await self._roundtrip(
            wire.OP_RANGE_BATCH, {}, [arr.ravel()], idempotent=True
        )

    async def insert_batch(self, keys, values=None) -> None:
        """Remote bulk insert (not auto-retried).

        Parameters
        ----------
        keys:
            Array-like of keys to insert.
        values:
            Optional numeric payloads aligned with ``keys``.
        """
        arrays = [np.ascontiguousarray(keys, dtype=np.float64)]
        if values is not None:
            arrays.append(np.ascontiguousarray(values))
        return await self._roundtrip(wire.OP_INSERT_BATCH, {}, arrays)

    async def delete_batch(self, keys):
        """Remote bulk delete (not auto-retried).

        Parameters
        ----------
        keys:
            Array-like of keys to delete (one occurrence each; any
            absent key fails the whole batch with
            :class:`~repro.core.errors.KeyNotFoundError`).

        Returns
        -------
        numpy.ndarray
            The deleted values, in key order.
        """
        return await self._roundtrip(
            wire.OP_DELETE_BATCH,
            {},
            [np.ascontiguousarray(keys, dtype=np.float64)],
        )

    async def server_stats(self) -> Dict[str, Any]:
        """The remote server's full ``stats()`` dict (idempotent)."""
        return await self._roundtrip(wire.OP_STATS, idempotent=True)

    def stats(self) -> Dict[str, Any]:
        """Client-side transport counters.

        Returns
        -------
        dict
            Frame/retry/reconnect/timeout counters plus pool geometry.
        """
        out = dict(self._counters)
        out["pool"] = len(self._slots)
        out["connected"] = sum(
            1 for s in self._slots if s is not None and s.alive
        )
        return out


async def connect(host: str, port: int, **kwargs: Any) -> AsyncNetClient:
    """Dial a :class:`~repro.net.server.NetServer` and return the client.

    Parameters
    ----------
    host, port:
        The server's listen address.
    **kwargs:
        Forwarded to :class:`AsyncNetClient`.

    Returns
    -------
    AsyncNetClient
        A connected client (``await connect(...)``).
    """
    return await AsyncNetClient(host, port, **kwargs).connect()


class NetClient:
    """Blocking twin of :class:`AsyncNetClient` for synchronous callers.

    Runs a private event loop on a daemon thread and proxies every verb
    through it::

        with NetClient(host, port) as client:
            value = client.get(42.0)

    Parameters
    ----------
    host, port:
        The server's listen address.
    **kwargs:
        Forwarded to :class:`AsyncNetClient`.
    """

    def __init__(self, host: str, port: int, **kwargs: Any) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-net-client",
            daemon=True,
        )
        self._thread.start()
        try:
            self._async = self._call(
                AsyncNetClient(host, port, **kwargs).connect()
            )
        except BaseException:
            self._stop_loop()
            raise

    def _call(self, coro: Any) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        self._loop.close()

    def close(self) -> None:
        """Close the pooled connections and stop the client thread."""
        if self._loop.is_closed():
            return
        try:
            self._call(self._async.close())
        finally:
            self._stop_loop()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- proxied verbs -------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Blocking :meth:`AsyncNetClient.ping`."""
        return self._call(self._async.ping())

    def get(self, key: float, default: Any = None) -> Any:
        """Blocking :meth:`AsyncNetClient.get`."""
        return self._call(self._async.get(key, default))

    def range(self, lo: float, hi: float):
        """Blocking :meth:`AsyncNetClient.range`."""
        return self._call(self._async.range(lo, hi))

    def insert(self, key: float, value: Any = None) -> Any:
        """Blocking :meth:`AsyncNetClient.insert`."""
        return self._call(self._async.insert(key, value))

    def delete(self, key: float) -> Any:
        """Blocking :meth:`AsyncNetClient.delete`."""
        return self._call(self._async.delete(key))

    def get_batch(self, queries, default: Any = None):
        """Blocking :meth:`AsyncNetClient.get_batch`.

        Parameters
        ----------
        queries:
            Array-like of keys to look up.
        default:
            Value reported for absent keys.

        Returns
        -------
        numpy.ndarray
            One value per query, in query order.
        """
        return self._call(self._async.get_batch(queries, default))

    def range_batch(self, bounds):
        """Blocking :meth:`AsyncNetClient.range_batch`.

        Parameters
        ----------
        bounds:
            Array-like of shape ``(n, 2)``: inclusive ``[lo, hi]`` rows.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            One ``(keys, values)`` pair per row.
        """
        return self._call(self._async.range_batch(bounds))

    def insert_batch(self, keys, values=None) -> None:
        """Blocking :meth:`AsyncNetClient.insert_batch`.

        Parameters
        ----------
        keys:
            Array-like of keys to insert.
        values:
            Optional numeric payloads aligned with ``keys``.
        """
        return self._call(self._async.insert_batch(keys, values))

    def delete_batch(self, keys):
        """Blocking :meth:`AsyncNetClient.delete_batch`.

        Parameters
        ----------
        keys:
            Array-like of keys to delete (one occurrence each).

        Returns
        -------
        numpy.ndarray
            The deleted values, in key order.
        """
        return self._call(self._async.delete_batch(keys))

    def server_stats(self) -> Dict[str, Any]:
        """Blocking :meth:`AsyncNetClient.server_stats`."""
        return self._call(self._async.server_stats())

    def stats(self) -> Dict[str, Any]:
        """Client-side transport counters (see
        :meth:`AsyncNetClient.stats`).

        Returns
        -------
        dict
            Frame/retry/reconnect/timeout counters plus pool geometry.
        """
        return self._async.stats()
