"""The asyncio TCP adapter: the transport-agnostic ``Server`` on a socket.

:class:`NetServer` owns a listening socket and feeds decoded request
frames into an existing :class:`repro.serve.Server` — the same admission
control, the same :class:`~repro.serve.batcher.RequestBatcher`
micro-batching, the same stats. Scalar frames go through the batcher's
coalescing submit path (so concurrent remote clients batch together
exactly like concurrent local coroutines); batch frames dispatch whole
through the server's batch verbs.

Per connection:

* **pipelining** — every request frame carries a ``request_id``; replies
  are written as each completes, possibly out of order, and the client
  matches them back up.
* **backpressure** — at most ``max_inflight`` request frames are being
  served per connection; beyond that the reader stops pulling bytes and
  TCP flow control pushes back on the client.
* **failure isolation** — a CRC-corrupt frame is answered with a typed
  error frame (request id 0) and the connection keeps serving; a
  mid-frame disconnect just ends the connection, completing in-flight
  work whose replies are then unroutable.
* **graceful drain** — :meth:`NetServer.close` stops the listener, waits
  (bounded) for every in-flight request to finish and its reply to flush,
  then drains the underlying serve layer.

Trace context in a request frame (``meta["trace"]``) is adopted for the
handling task and a ``net.request`` span record — carrying this process's
pid — rides back in the reply for the client to ingest, the same
parent-stitching contract the cluster workers use across the shm
boundary.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Dict, Optional, Set, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.net import frame as wire
from repro.net.errors import FrameCorruptError, FrameError
from repro.obs.trace import span_record
from repro.serve.server import Server

__all__ = ["NetServer", "serve_tcp"]

#: Default per-connection in-flight request bound.
DEFAULT_MAX_INFLIGHT = 64


class _Conn:
    """Per-connection state: streams plus the in-flight task set."""

    __slots__ = ("reader", "writer", "tasks", "peer")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.tasks: Set[asyncio.Task] = set()
        try:
            self.peer = writer.get_extra_info("peername")
        except Exception:
            self.peer = None


class NetServer:
    """TCP front door for one :class:`repro.serve.Server`.

    Parameters
    ----------
    server:
        The serve-layer facade to expose. Entering the adapter enters the
        server too (admin endpoint, SLA controller); closing the adapter
        closes it. The engine's lifecycle stays with the caller, exactly
        as for a bare ``Server``.
    host, port:
        Listen address; ``port=0`` picks a free port (read it from
        :attr:`port` after :meth:`start`).
    max_inflight:
        Per-connection backpressure bound (concurrently served frames).
    max_frame_bytes:
        Reject request frames with bodies larger than this.
    drain_timeout:
        Seconds :meth:`close` waits for each connection's in-flight
        requests before forcing the socket shut.
    """

    def __init__(
        self,
        server: Server,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_frame_bytes: int = wire.MAX_FRAME_BYTES,
        drain_timeout: float = 10.0,
    ) -> None:
        if max_inflight < 1:
            raise InvalidParameterError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.server = server
        self.host = host
        self._requested_port = int(port)
        self.max_inflight = int(max_inflight)
        self.max_frame_bytes = int(max_frame_bytes)
        self.drain_timeout = float(drain_timeout)
        self._srv: Optional[asyncio.AbstractServer] = None
        self._conns: Set[_Conn] = set()
        self._closed = False
        self._owns_engine = False  # set by serve_tcp, which built it
        self._counters: Dict[str, int] = {
            "connections_opened": 0,
            "connections_active": 0,
            "frames_in": 0,
            "frames_out": 0,
            "frames_corrupt": 0,
            "frames_bad": 0,
            "errors": 0,
            "bytes_in": 0,
            "bytes_out": 0,
        }
        self._obs_frames: Any = None
        self._obs_conns: Any = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "NetServer":
        """Bind the listener and start the underlying server; idempotent.

        Returns
        -------
        NetServer
            ``self``, listening (``async with NetServer(...)`` does this).
        """
        if self._srv is not None:
            return self
        await self.server.__aenter__()  # admin endpoint + SLA task
        self.server.net_stats_provider = self.net_stats
        tel = self.server.telemetry
        if tel is not None:
            frames = tel.registry.counter(
                "repro_net_frames_total",
                "Frames crossing the TCP tier.",
                labels=("direction",),
            )
            self._obs_frames = {
                "in": frames.labels("in"),
                "out": frames.labels("out"),
            }
            self._obs_conns = tel.registry.gauge(
                "repro_net_connections",
                "Currently open client connections.",
            ).labels()
        self._srv = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after :meth:`start`)."""
        if self._srv is None:
            return self._requested_port
        return self._srv.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should connect to."""
        return (self.host, self.port)

    async def close(self) -> None:
        """Graceful drain: stop listening, finish in-flight requests
        (bounded by ``drain_timeout`` per connection), flush their
        replies, then close the underlying serve layer. Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._srv is not None:
            self._srv.close()
            await self._srv.wait_closed()
            self._srv = None
        for conn in list(self._conns):
            await self._drain_conn(conn)
        await self.server.close()
        if self._owns_engine:
            close_fn = getattr(self.server.engine, "close", None)
            if close_fn is not None:
                close_fn()

    async def __aenter__(self) -> "NetServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        conn = _Conn(reader, writer)
        self._conns.add(conn)
        self._counters["connections_opened"] += 1
        self._counters["connections_active"] += 1
        if self._obs_conns is not None:
            self._obs_conns.inc(1)
        sem = asyncio.Semaphore(self.max_inflight)
        loop = asyncio.get_running_loop()
        try:
            while not self._closed:
                try:
                    frame = await wire.read_frame(
                        reader, max_bytes=self.max_frame_bytes
                    )
                except FrameCorruptError as exc:
                    # The stream is still framed: reject just this frame.
                    self._counters["frames_corrupt"] += 1
                    self._write(conn, wire.encode_error(0, exc))
                    continue
                except FrameError as exc:
                    # Desynchronized stream: report once, then hang up.
                    self._counters["frames_bad"] += 1
                    self._write(conn, wire.encode_error(0, exc))
                    break
                except (asyncio.IncompleteReadError, ConnectionError,
                        OSError):
                    break  # peer went away (possibly mid-frame)
                self._counters["frames_in"] += 1
                self._counters["bytes_in"] += frame.wire_bytes
                if self._obs_frames is not None:
                    self._obs_frames["in"].inc(1)
                await sem.acquire()  # per-connection backpressure
                task = loop.create_task(self._serve_one(conn, frame))
                conn.tasks.add(task)
                task.add_done_callback(
                    lambda t, c=conn, s=sem: (c.tasks.discard(t), s.release())
                )
        finally:
            await self._drain_conn(conn)
            self._conns.discard(conn)
            self._counters["connections_active"] -= 1
            if self._obs_conns is not None:
                self._obs_conns.inc(-1)

    async def _drain_conn(self, conn: _Conn) -> None:
        if conn.tasks:
            await asyncio.wait(set(conn.tasks), timeout=self.drain_timeout)
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _serve_one(self, conn: _Conn, frame: wire.Frame) -> None:
        trace = frame.meta.get("trace")
        tracer = (
            self.server.telemetry.tracer
            if self.server.telemetry is not None
            else None
        )
        t0 = time.perf_counter()
        try:
            if tracer is not None and trace is not None:
                with tracer.attach((trace[0], trace[1])):
                    value = await self._apply(frame)
            else:
                value = await self._apply(frame)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._counters["errors"] += 1
            self._write(conn, wire.encode_error(frame.request_id, exc))
            return
        meta, arrays = wire.encode_result(value)
        if trace is not None:
            # Ship the server-side span back for the client to ingest —
            # the same stitching contract the shm workers use.
            rec = span_record(
                "net.request",
                (str(trace[0]), str(trace[1])),
                t0,
                time.perf_counter() - t0,
                op=frame.name,
                pid=os.getpid(),
            )
            if tracer is not None:
                tracer.ingest([rec])
            meta["spans"] = [rec]
        self._write(conn, wire.encode_frame(
            wire.REPLY_OK, frame.request_id, meta, arrays
        ))

    def _write(self, conn: _Conn, buf: bytes) -> None:
        """Queue one encoded frame on the connection (single write call,
        so concurrent completions never interleave bytes)."""
        try:
            conn.writer.write(buf)
        except (ConnectionError, OSError, RuntimeError):
            return  # reply unroutable: the peer is gone
        self._counters["frames_out"] += 1
        self._counters["bytes_out"] += len(buf)
        if self._obs_frames is not None:
            self._obs_frames["out"].inc(1)

    async def _apply(self, frame: wire.Frame) -> Any:
        """Map one request frame onto the serve layer's verbs."""
        meta, arrays = frame.meta, frame.arrays
        kind = frame.kind
        srv = self.server
        if kind == wire.OP_GET:
            return await srv.get(meta["key"], meta.get("default"))
        if kind == wire.OP_RANGE:
            return await srv.range(meta["lo"], meta["hi"])
        if kind == wire.OP_INSERT:
            return await srv.insert(meta["key"], meta.get("value"))
        if kind == wire.OP_DELETE:
            return await srv.delete(meta["key"])
        if kind == wire.OP_GET_BATCH:
            return await srv.get_batch(arrays[0], meta.get("default"))
        if kind == wire.OP_RANGE_BATCH:
            return await srv.range_batch(arrays[0].reshape(-1, 2))
        if kind == wire.OP_INSERT_BATCH:
            # Writable copies: wire views are read-only and the engine's
            # bulk-write paths are free to sort in place.
            keys = np.array(arrays[0])
            values = np.array(arrays[1]) if len(arrays) > 1 else None
            return await srv.insert_batch(keys, values)
        if kind == wire.OP_DELETE_BATCH:
            return await srv.delete_batch(np.array(arrays[0]))
        if kind == wire.OP_PING:
            return {"pong": True, "pid": os.getpid()}
        if kind == wire.OP_STATS:
            return srv.stats()
        raise InvalidParameterError(f"unknown request kind {kind}")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def net_stats(self) -> Dict[str, Any]:
        """The network tier's counters (``Server.stats()['net']``).

        Returns
        -------
        dict
            Connection and frame counters, the listen address, and the
            batcher's current (possibly SLA-adapted) ``max_delay``.
        """
        out = dict(self._counters)
        out["listen"] = f"{self.host}:{self.port}"
        out["max_inflight"] = self.max_inflight
        out["max_delay"] = float(self.server._batcher.max_delay)
        return out


async def serve_tcp(
    keys=None,
    values=None,
    *,
    config: Any = None,
    **overrides: Any,
):
    """Open an engine + server per the config and start it on TCP.

    The one-call path from a config to a listening socket::

        net = await serve_tcp(keys, config=EngineConfig(listen=":0"))
        print(net.port)
        ...
        await net.close()

    Parameters
    ----------
    keys, values:
        Build dataset, as for :func:`repro.api.factory.open_engine`.
    config:
        An :class:`~repro.api.factory.EngineConfig`; its ``listen`` field
        ("host:port", empty host = loopback, port 0 = auto) names the
        bind address, defaulting to ``"127.0.0.1:0"`` when unset.
    **overrides:
        Individual config fields to override.

    Returns
    -------
    NetServer
        The started adapter. Closing it closes the serve layer; the
        engine (reachable as ``net.server.engine``) additionally has its
        ``close()`` called for cluster/durable backends when this
        function built it — unlike :func:`open_server`, there is no other
        handle through which the caller could own it.
    """
    from repro.api.factory import open_server

    if config is not None and not overrides and not getattr(
        config, "listen", None
    ):
        overrides = {"listen": "127.0.0.1:0"}
    elif "listen" not in overrides and not getattr(config, "listen", None):
        overrides = dict(overrides, listen="127.0.0.1:0")
    net = open_server(keys, values, config=config, **overrides)
    if not isinstance(net, NetServer):  # pragma: no cover - wiring guard
        raise InvalidParameterError("serve_tcp requires a listen address")
    net._owns_engine = True
    await net.start()
    return net
